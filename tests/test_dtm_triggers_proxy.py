"""Tests for trigger comparators, the interrupt model, and boxcar proxies."""

import pytest

from repro.dtm.proxy import BoxcarPowerProxy, ProxyComparison
from repro.dtm.triggers import InterruptModel, TriggerComparator
from repro.errors import ConfigError


class TestTriggerComparator:
    def test_engages_above_threshold(self):
        trigger = TriggerComparator(101.0)
        assert not trigger.update(100.9)
        assert trigger.update(101.1)

    def test_hysteresis_band(self):
        trigger = TriggerComparator(101.0, hysteresis=0.5)
        trigger.update(101.1)
        assert trigger.update(100.8)  # inside the band: stays engaged
        assert not trigger.update(100.4)

    def test_event_counting(self):
        trigger = TriggerComparator(101.0)
        trigger.update(101.5)
        trigger.update(100.5)
        trigger.update(101.5)
        assert trigger.engage_events == 2
        assert trigger.disengage_events == 1

    def test_rejects_negative_hysteresis(self):
        with pytest.raises(ConfigError):
            TriggerComparator(101.0, hysteresis=-0.1)


class TestInterruptModel:
    def test_disabled_is_free(self):
        interrupts = InterruptModel(enabled=False)
        assert interrupts.on_transition() == 0
        assert interrupts.events == 1
        assert interrupts.stall_cycles == 0

    def test_enabled_costs_250_cycles(self):
        interrupts = InterruptModel(enabled=True)
        assert interrupts.on_transition() == 250
        assert interrupts.stall_cycles == 250

    def test_accumulates(self):
        interrupts = InterruptModel(enabled=True, cost_cycles=100)
        for _ in range(5):
            interrupts.on_transition()
        assert interrupts.stall_cycles == 500


class TestBoxcarProxy:
    def test_average_of_constant_signal(self):
        proxy = BoxcarPowerProxy(1000, trigger_power=5.0)
        proxy.update(3.0, 500)
        assert proxy.average == pytest.approx(3.0)

    def test_window_eviction(self):
        proxy = BoxcarPowerProxy(100, trigger_power=5.0)
        proxy.update(0.0, 100)
        proxy.update(10.0, 50)  # half the window now at 10
        assert proxy.average == pytest.approx(5.0)

    def test_partial_segment_eviction(self):
        proxy = BoxcarPowerProxy(100, trigger_power=5.0)
        proxy.update(2.0, 80)
        proxy.update(10.0, 60)  # evicts 40 cycles of the first segment
        expected = (2.0 * 40 + 10.0 * 60) / 100
        assert proxy.average == pytest.approx(expected)

    def test_trigger_predicate(self):
        proxy = BoxcarPowerProxy(100, trigger_power=5.0)
        proxy.update(6.0, 100)
        assert proxy.triggered
        proxy.update(1.0, 100)
        assert not proxy.triggered

    def test_lag_behind_step(self):
        # The proxy's defining flaw: it lags a power step by ~a window.
        proxy = BoxcarPowerProxy(1000, trigger_power=5.0)
        proxy.update(0.0, 1000)
        proxy.update(10.0, 400)
        assert not proxy.triggered  # only 40 % of the window is hot
        proxy.update(10.0, 200)
        assert proxy.triggered

    def test_empty_average_is_zero(self):
        assert BoxcarPowerProxy(100, 5.0).average == 0.0

    def test_reset(self):
        proxy = BoxcarPowerProxy(100, 5.0)
        proxy.update(10.0, 100)
        proxy.reset()
        assert proxy.average == 0.0

    def test_rejects_bad_arguments(self):
        with pytest.raises(ConfigError):
            BoxcarPowerProxy(0, 5.0)
        proxy = BoxcarPowerProxy(100, 5.0)
        with pytest.raises(ConfigError):
            proxy.update(1.0, 0)


class TestProxyComparison:
    def test_missed_emergency_accounting(self):
        comparison = ProxyComparison()
        # Emergency present, proxy silent: all emergency cycles missed.
        comparison.record(1000, 0.5, proxy_triggered=False,
                          true_above_trigger_fraction=1.0)
        assert comparison.missed_emergency_cycles == 500
        assert comparison.missed_fraction_of_emergencies == 1.0

    def test_false_trigger_accounting(self):
        comparison = ProxyComparison()
        # Proxy fires while the structure is cold the whole segment.
        comparison.record(1000, 0.0, proxy_triggered=True,
                          true_above_trigger_fraction=0.0)
        assert comparison.false_trigger_cycles == 1000
        assert comparison.false_trigger_rate == 1.0

    def test_correct_trigger_counts_nothing(self):
        comparison = ProxyComparison()
        comparison.record(1000, 0.5, proxy_triggered=True,
                          true_above_trigger_fraction=1.0)
        assert comparison.false_trigger_cycles == 0
        assert comparison.missed_emergency_cycles == 0

    def test_rates_normalized_by_total(self):
        comparison = ProxyComparison()
        comparison.record(500, 1.0, False, 1.0)
        comparison.record(500, 0.0, False, 0.0)
        assert comparison.missed_emergency_rate == pytest.approx(0.5)

    def test_empty_comparison_rates_are_zero(self):
        comparison = ProxyComparison()
        assert comparison.missed_emergency_rate == 0.0
        assert comparison.false_trigger_rate == 0.0
        assert comparison.missed_fraction_of_emergencies == 0.0
