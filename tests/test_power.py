"""Tests for the Wattch-style power model."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.power.capacitance import (
    STRUCTURE_GEOMETRIES,
    ArrayGeometry,
    array_access_energy,
    array_switched_capacitance,
    column_decoder_capacitance,
    row_decoder_capacitance,
)
from repro.power.clock_gating import ClockGatingStyle, effective_power
from repro.power.wattch import PowerModel


class TestCapacitance:
    def test_energy_scales_with_vdd_squared(self):
        geometry = ArrayGeometry("x", 128, 64)
        assert array_access_energy(geometry, vdd=2.0) == pytest.approx(
            4 * array_access_energy(geometry, vdd=1.0)
        )

    def test_more_ports_more_capacitance(self):
        few = ArrayGeometry("x", 128, 64, read_ports=1, write_ports=1)
        many = ArrayGeometry("x", 128, 64, read_ports=8, write_ports=4)
        assert array_switched_capacitance(many) > array_switched_capacitance(few)

    def test_bigger_array_more_capacitance(self):
        small = ArrayGeometry("x", 64, 32)
        large = ArrayGeometry("x", 1024, 256)
        assert array_switched_capacitance(large) > array_switched_capacitance(small)

    def test_column_decoder_term_present(self):
        # The paper adds column decoders to Wattch 1.02; dropping the
        # term must change the total.
        geometry = ArrayGeometry("x", 128, 64)
        total = array_switched_capacitance(geometry)
        assert column_decoder_capacitance(64) > 0
        assert column_decoder_capacitance(64) < total

    def test_regfile_energy_exceeds_lsq(self):
        # Heavily multi-ported regfile must cost more per access than
        # the small LSQ -- consistent with its higher power density.
        regfile = array_access_energy(STRUCTURE_GEOMETRIES["regfile"])
        lsq = array_access_energy(STRUCTURE_GEOMETRIES["lsq"])
        assert regfile > lsq

    def test_all_floorplan_structures_have_geometry(self, floorplan):
        assert set(STRUCTURE_GEOMETRIES) == set(floorplan.names)

    def test_rejects_bad_geometry(self):
        with pytest.raises(ConfigError):
            ArrayGeometry("x", 0, 64)
        with pytest.raises(ConfigError):
            row_decoder_capacitance(0)

    def test_access_energies_in_cacti_range(self):
        # 0.18 um array accesses cost hundreds of picojoules.
        for geometry in STRUCTURE_GEOMETRIES.values():
            energy = array_access_energy(geometry)
            assert 50e-12 < energy < 5e-9, geometry.name

    def test_derived_regfile_peak_matches_calibration(self, floorplan):
        # The regfile is a pure array, so the bottom-up derivation
        # should land close to the calibrated floorplan peak.
        from repro.power.activity import MAX_ACCESS_RATES
        from repro.power.capacitance import derived_peak_power

        derived = derived_peak_power(
            STRUCTURE_GEOMETRIES["regfile"], MAX_ACCESS_RATES["regfile"]
        )
        calibrated = floorplan.block("regfile").peak_power
        assert derived == pytest.approx(calibrated, rel=0.25)

    def test_derived_peaks_never_exceed_calibrated(self, floorplan):
        # The array model covers only the RAM portion of each structure
        # (exec units add datapath logic, caches add tag/miss machinery),
        # so the bottom-up number is a lower bound on the calibrated peak.
        from repro.power.activity import MAX_ACCESS_RATES
        from repro.power.capacitance import derived_peak_power

        for name, geometry in STRUCTURE_GEOMETRIES.items():
            derived = derived_peak_power(geometry, MAX_ACCESS_RATES[name])
            assert derived <= floorplan.block(name).peak_power * 1.05, name

    def test_derived_peak_rejects_bad_rate(self):
        from repro.power.capacitance import derived_peak_power

        with pytest.raises(ConfigError):
            derived_peak_power(STRUCTURE_GEOMETRIES["lsq"], 0.0)


class TestClockGating:
    def test_cc0_always_peak(self):
        assert effective_power(10.0, 0.0, ClockGatingStyle.CC0) == 10.0
        assert effective_power(10.0, 1.0, ClockGatingStyle.CC0) == 10.0

    def test_cc1_all_or_nothing(self):
        assert effective_power(10.0, 0.0, ClockGatingStyle.CC1) == 0.0
        assert effective_power(10.0, 0.3, ClockGatingStyle.CC1) == 10.0

    def test_cc2_linear(self):
        assert effective_power(10.0, 0.5, ClockGatingStyle.CC2) == 5.0

    def test_cc3_idle_floor(self):
        assert effective_power(10.0, 0.0, ClockGatingStyle.CC3) == pytest.approx(1.5)
        assert effective_power(10.0, 1.0, ClockGatingStyle.CC3) == pytest.approx(10.0)

    def test_cc3_interpolates(self):
        half = effective_power(10.0, 0.5, ClockGatingStyle.CC3)
        assert half == pytest.approx(10.0 * (0.15 + 0.85 * 0.5))

    def test_rejects_out_of_range_utilization(self):
        with pytest.raises(ConfigError):
            effective_power(10.0, 1.5)


class TestPowerModel:
    @pytest.fixture
    def model(self, floorplan):
        return PowerModel(floorplan)

    def test_peak_chip_power_is_130w(self, model):
        assert model.peak_chip_power == pytest.approx(130.0)

    def test_idle_floor(self, model):
        assert model.min_chip_power == pytest.approx(130.0 * 0.15)

    def test_full_utilization_hits_peaks(self, model, floorplan):
        powers = model.block_powers(np.ones(7))
        expected = [block.peak_power for block in floorplan.blocks]
        assert np.allclose(powers, expected)

    def test_power_monotonic_in_utilization(self, model):
        low = model.block_powers(np.full(7, 0.2))
        high = model.block_powers(np.full(7, 0.8))
        assert np.all(high > low)

    def test_chip_power_between_bounds(self, model):
        power = model.chip_power(np.full(7, 0.5))
        assert model.min_chip_power < power < model.peak_chip_power

    def test_counts_path_matches_vector_path(self, model, floorplan):
        from repro.power.activity import MAX_ACCESS_RATES

        counts = {name: MAX_ACCESS_RATES[name] / 2 for name in floorplan.names}
        via_counts = model.powers_from_counts(counts)
        via_vector = model.block_powers(np.full(7, 0.5))
        assert np.allclose(via_counts, via_vector)

    def test_counts_clip_at_max_rate(self, model, floorplan):
        counts = {name: 1000.0 for name in floorplan.names}
        powers = model.powers_from_counts(counts)
        expected = [block.peak_power for block in floorplan.blocks]
        assert np.allclose(powers, expected)

    def test_cc1_model(self, floorplan):
        model = PowerModel(floorplan, gating=ClockGatingStyle.CC1)
        powers = model.block_powers(np.array([0, 0.5, 0, 0, 0, 0, 0.0]))
        assert powers[0] == 0.0
        assert powers[1] == floorplan.blocks[1].peak_power

    def test_wrong_vector_length_rejected(self, model):
        with pytest.raises(ConfigError):
            model.block_powers(np.zeros(3))

    def test_rejects_bad_idle_fraction(self, floorplan):
        with pytest.raises(ConfigError):
            PowerModel(floorplan, idle_fraction=1.5)
