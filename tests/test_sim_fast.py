"""Tests for the fast sample-granularity engine."""

import numpy as np
import pytest

from repro.config import DTMConfig
from repro.dtm.policies import make_policy
from repro.errors import SimulationError
from repro.sim.fast import FastEngine
from repro.workloads.profiles import get_profile


class TestBasicRuns:
    def test_reaches_instruction_target(self):
        result = FastEngine(get_profile("gzip")).run(instructions=500_000)
        assert result.instructions >= 500_000
        assert result.cycles > 0

    def test_unmanaged_ipc_matches_profile(self):
        profile = get_profile("gzip")
        result = FastEngine(profile).run(instructions=500_000)
        assert result.ipc == pytest.approx(profile.mean_ipc, rel=0.1)

    def test_deterministic_per_seed(self):
        a = FastEngine(get_profile("gcc"), seed=5).run(instructions=300_000)
        b = FastEngine(get_profile("gcc"), seed=5).run(instructions=300_000)
        assert a.instructions == b.instructions
        assert a.mean_chip_power == b.mean_chip_power
        assert a.emergency_fraction == b.emergency_fraction

    def test_different_seeds_differ(self):
        a = FastEngine(get_profile("gcc"), seed=1).run(instructions=300_000)
        b = FastEngine(get_profile("gcc"), seed=2).run(instructions=300_000)
        assert a.mean_chip_power != b.mean_chip_power

    def test_rejects_nonpositive_instructions(self):
        with pytest.raises(SimulationError):
            FastEngine(get_profile("gcc")).run(instructions=0)

    def test_rejects_bad_supply_efficiency(self):
        with pytest.raises(SimulationError):
            FastEngine(get_profile("gcc"), supply_efficiency=0.0)


class TestThermalBehaviour:
    def test_hot_benchmark_heats_up(self):
        result = FastEngine(get_profile("gcc")).run(instructions=2_000_000)
        assert result.max_temperature > 102.0
        assert result.emergency_fraction > 0.2

    def test_cool_benchmark_stays_cool(self):
        result = FastEngine(get_profile("gzip")).run(instructions=2_000_000)
        assert result.max_temperature < 101.0
        assert result.emergency_fraction == 0.0

    def test_block_fractions_bounded(self):
        result = FastEngine(get_profile("gcc")).run(instructions=1_000_000)
        for name, fraction in result.block_emergency_fraction.items():
            assert 0.0 <= fraction <= 1.0, name
            assert fraction <= result.block_stress_fraction[name] + 1e-9

    def test_chip_emergency_at_least_any_block(self):
        result = FastEngine(get_profile("gcc")).run(instructions=1_000_000)
        assert result.emergency_fraction >= max(
            result.block_emergency_fraction.values()
        ) - 1e-9

    def test_warmup_excluded_from_statistics(self):
        cold = FastEngine(get_profile("mesa")).run(instructions=1_000_000)
        warm = FastEngine(get_profile("mesa")).run(
            instructions=1_000_000, warmup_instructions=1_000_000
        )
        # Warm run skips the heating transient, so it sees more stress.
        assert warm.stress_fraction > cold.stress_fraction


class TestDTMIntegration:
    def test_pid_holds_setpoint(self):
        result = FastEngine(
            get_profile("gcc"), policy=make_policy("pid")
        ).run(instructions=2_000_000)
        assert result.emergency_fraction == 0.0
        assert result.max_temperature == pytest.approx(101.8, abs=0.05)

    def test_toggle1_prevents_emergencies_at_conservative_trigger(self):
        result = FastEngine(
            get_profile("gcc"), policy=make_policy("toggle1")
        ).run(instructions=1_000_000)
        assert result.emergency_fraction == 0.0

    def test_dtm_never_exceeds_baseline_ipc(self):
        baseline = FastEngine(get_profile("gcc"), seed=3).run(
            instructions=1_000_000
        )
        for policy_name in ("toggle1", "m", "pid"):
            managed = FastEngine(
                get_profile("gcc"), policy=make_policy(policy_name), seed=3
            ).run(instructions=1_000_000)
            assert managed.relative_ipc(baseline) <= 1.0 + 1e-6

    def test_low_ilp_benchmark_tolerates_mild_toggling(self):
        # The paper: programs without fetch-bandwidth pressure absorb
        # mild toggling for free.
        baseline = FastEngine(get_profile("twolf"), seed=3).run(
            instructions=1_000_000
        )
        managed = FastEngine(
            get_profile("twolf"), policy=make_policy("m"), seed=3
        ).run(instructions=1_000_000)
        assert managed.relative_ipc(baseline) > 0.97

    def test_interrupt_stalls_reduce_throughput(self):
        config = DTMConfig(use_interrupts=True, policy_delay=2000)
        result = FastEngine(
            get_profile("gcc"),
            policy=make_policy("toggle1", dtm_config=config),
            dtm_config=config,
        ).run(instructions=1_000_000)
        assert result.interrupt_stall_cycles > 0


class TestHistoryRecording:
    def test_history_shapes(self):
        engine = FastEngine(get_profile("gcc"), record_history=True)
        result = engine.run(instructions=300_000)
        history = result.history
        assert history is not None
        assert history.block_temps.shape == (history.samples, 7)
        assert history.block_powers.shape == (history.samples, 7)
        assert len(history.duty) == history.samples

    def test_no_history_by_default(self):
        result = FastEngine(get_profile("gcc")).run(instructions=300_000)
        assert result.history is None

    def test_history_consistent_with_summary(self):
        engine = FastEngine(get_profile("gcc"), record_history=True)
        result = engine.run(instructions=300_000)
        history = result.history
        assert float(history.max_temp.max()) == pytest.approx(
            result.max_temperature, abs=1e-9
        )
        assert float(history.chip_power.max()) == pytest.approx(
            result.max_chip_power
        )
