"""Tests for the DTM response mechanisms."""

import pytest

from repro.dtm.mechanisms import (
    DVFSOperatingPoint,
    DVFSScaling,
    FetchThrottling,
    FetchToggling,
    SpeculationControl,
)
from repro.errors import ConfigError


class TestFetchToggling:
    def test_quantizes_to_eight_levels(self):
        toggling = FetchToggling(levels=8)
        assert toggling.quantize(0.0) == 0.0
        assert toggling.quantize(1.0) == 1.0
        assert toggling.quantize(0.5) == pytest.approx(
            round(0.5 * 7) / 7
        )

    def test_quantization_grid(self):
        toggling = FetchToggling(levels=8)
        levels = {toggling.quantize(x / 100) for x in range(101)}
        assert levels == {k / 7 for k in range(8)}

    def test_clamps_out_of_range_output(self):
        toggling = FetchToggling()
        assert toggling.set_output(1.7) == 1.0
        assert toggling.set_output(-0.3) == 0.0

    def test_duty_one_always_allows(self):
        toggling = FetchToggling()
        toggling.set_output(1.0)
        assert all(toggling.allows(c) for c in range(100))

    def test_duty_zero_never_allows(self):
        toggling = FetchToggling()
        toggling.set_output(0.0)
        assert not any(toggling.allows(c) for c in range(100))

    def test_duty_half_is_toggle2(self):
        toggling = FetchToggling(levels=3)  # levels 0, 0.5, 1
        toggling.set_output(0.5)
        pattern = [toggling.allows(c) for c in range(10)]
        assert sum(pattern) == 5
        # Evenly spread: no two consecutive allowed cycles.
        for a, b in zip(pattern, pattern[1:]):
            assert not (a and b)

    def test_fractional_duty_density(self):
        toggling = FetchToggling(levels=8)
        toggling.set_output(3 / 7)
        allowed = sum(toggling.allows(c) for c in range(7000))
        assert allowed == pytest.approx(3000, abs=1)

    def test_reset(self):
        toggling = FetchToggling()
        toggling.set_output(0.0)
        toggling.reset()
        assert toggling.duty == 1.0

    def test_rejects_single_level(self):
        with pytest.raises(ConfigError):
            FetchToggling(levels=1)


class TestFetchThrottling:
    def test_full_output_full_width(self):
        throttling = FetchThrottling(full_width=4)
        assert throttling.set_output(1.0) == 4

    def test_low_output_keeps_at_least_one(self):
        throttling = FetchThrottling(full_width=4)
        assert throttling.set_output(0.0) == 1

    def test_midrange(self):
        throttling = FetchThrottling(full_width=4)
        assert throttling.set_output(0.5) == 2

    def test_rejects_nonpositive_width(self):
        with pytest.raises(ConfigError):
            FetchThrottling(full_width=0)


class TestSpeculationControl:
    def test_full_output_unlimited(self):
        spec = SpeculationControl()
        assert spec.set_output(1.0) is None

    def test_reduced_output_limits_branches(self):
        spec = SpeculationControl(max_levels=8)
        assert spec.set_output(0.5) == 4

    def test_zero_output_allows_one_branch(self):
        spec = SpeculationControl()
        assert spec.set_output(0.0) == 1


class TestDVFS:
    def test_power_scales_as_f_v_squared(self):
        point = DVFSOperatingPoint(0.5, 0.8)
        assert point.power_scale == pytest.approx(0.5 * 0.64)

    def test_full_output_full_speed(self):
        dvfs = DVFSScaling()
        point, stall = dvfs.set_output(1.0)
        assert point.frequency_scale == 1.0
        assert stall == 0  # already at full speed

    def test_transition_costs_resync(self):
        dvfs = DVFSScaling(resync_cycles=15_000)
        _, stall = dvfs.set_output(0.0)
        assert stall == 15_000
        assert dvfs.transitions == 1

    def test_no_stall_without_change(self):
        dvfs = DVFSScaling()
        dvfs.set_output(0.0)
        _, stall = dvfs.set_output(0.0)
        assert stall == 0

    def test_points_sorted_fastest_first(self):
        dvfs = DVFSScaling()
        scales = [p.frequency_scale for p in dvfs.points]
        assert scales == sorted(scales, reverse=True)

    def test_rejects_empty_points(self):
        with pytest.raises(ConfigError):
            DVFSScaling(points=())
