"""Tests for the discrete PID controller (paper Section 3.2-3.3)."""

import pytest

from repro.control.pid import AntiWindup, PIDController
from repro.errors import ControllerError


def make_pid(**kwargs):
    defaults = dict(
        kp=1.0,
        ki=0.0,
        kd=0.0,
        setpoint=0.0,
        sample_time=1.0,
        output_limits=(0.0, 1.0),
        bias=0.0,
        integral_non_negative=False,
        anti_windup=AntiWindup.NONE,
    )
    defaults.update(kwargs)
    return PIDController(**defaults)


class TestProportional:
    def test_output_proportional_to_error(self):
        pid = make_pid(kp=2.0, setpoint=10.0, output_limits=(-100, 100))
        assert pid.update(7.0) == pytest.approx(6.0)

    def test_zero_error_outputs_bias(self):
        pid = make_pid(kp=5.0, setpoint=3.0, bias=0.5)
        assert pid.update(3.0) == pytest.approx(0.5)

    def test_saturation_high(self):
        pid = make_pid(kp=100.0, setpoint=10.0)
        assert pid.update(0.0) == 1.0

    def test_saturation_low(self):
        pid = make_pid(kp=100.0, setpoint=0.0)
        assert pid.update(10.0) == 0.0


class TestIntegral:
    def test_integral_accumulates(self):
        pid = make_pid(ki=0.5, kp=0.0, setpoint=1.0, output_limits=(-10, 10))
        first = pid.update(0.0)
        second = pid.update(0.0)
        assert first == pytest.approx(0.5)
        assert second == pytest.approx(1.0)

    def test_integral_scales_with_sample_time(self):
        fast = make_pid(ki=1.0, kp=0.0, setpoint=1.0, sample_time=0.1,
                        output_limits=(-10, 10))
        slow = make_pid(ki=1.0, kp=0.0, setpoint=1.0, sample_time=1.0,
                        output_limits=(-10, 10))
        assert slow.update(0.0) == pytest.approx(10 * fast.update(0.0))

    def test_non_negative_clamp(self):
        pid = make_pid(
            ki=1.0, kp=0.0, setpoint=0.0, integral_non_negative=True,
            output_limits=(-10, 10),
        )
        pid.update(5.0)  # strongly negative error
        assert pid.integral == 0.0

    def test_conditional_anti_windup_freezes_when_saturated(self):
        pid = make_pid(
            kp=0.0, ki=1.0, setpoint=10.0, anti_windup=AntiWindup.CONDITIONAL
        )
        for _ in range(100):
            pid.update(0.0)  # large positive error, output pinned at 1
        # The integral may reach the saturation boundary but not run away.
        assert pid.integral <= 1.0 + 10.0  # one step past the limit at most

    def test_no_anti_windup_runs_away(self):
        pid = make_pid(kp=0.0, ki=1.0, setpoint=10.0, anti_windup=AntiWindup.NONE)
        for _ in range(100):
            pid.update(0.0)
        assert pid.integral == pytest.approx(100 * 10.0)

    def test_clamp_anti_windup_bounds_to_output_range(self):
        pid = make_pid(kp=0.0, ki=1.0, setpoint=10.0, anti_windup=AntiWindup.CLAMP)
        for _ in range(100):
            pid.update(0.0)
        assert pid.integral <= 1.0

    def test_windup_recovery_latency(self):
        # The Section 3.3 scenario: after a long saturated stretch, the
        # protected controller reacts immediately when the error flips;
        # the unprotected one stays saturated while unwinding.
        protected = make_pid(
            kp=0.1, ki=1.0, setpoint=1.0, anti_windup=AntiWindup.CONDITIONAL
        )
        unprotected = make_pid(
            kp=0.1, ki=1.0, setpoint=1.0, anti_windup=AntiWindup.NONE
        )
        for _ in range(50):
            protected.update(0.0)
            unprotected.update(0.0)
        # Error flips sign (system overheats).
        assert protected.update(2.0) < 1.0
        assert unprotected.update(2.0) == 1.0


class TestDerivative:
    def test_derivative_on_measurement_opposes_rise(self):
        pid = make_pid(kp=0.0, kd=1.0, setpoint=0.0, output_limits=(-10, 10))
        pid.update(0.0)
        # Measurement rising at 2 per sample -> derivative term -2.
        assert pid.update(2.0) == pytest.approx(-2.0)

    def test_first_sample_has_no_derivative(self):
        pid = make_pid(kp=0.0, kd=5.0, setpoint=0.0, output_limits=(-10, 10))
        assert pid.update(3.0) == pytest.approx(0.0)

    def test_derivative_on_error_mode(self):
        pid = make_pid(
            kp=0.0, kd=1.0, setpoint=0.0, output_limits=(-10, 10),
            derivative_on_measurement=False,
        )
        pid.update(0.0)
        # Error falls by 2 -> derivative term -2 (same direction here).
        assert pid.update(2.0) == pytest.approx(-2.0)

    def test_no_derivative_kick_on_setpoint_change(self):
        pid = make_pid(kp=0.0, kd=10.0, setpoint=0.0, output_limits=(-100, 100))
        pid.update(5.0)
        pid.setpoint = 50.0  # big setpoint step
        # Measurement unchanged: derivative-on-measurement sees no slope.
        assert pid.update(5.0) == pytest.approx(0.0)


class TestLifecycle:
    def test_reset_clears_state(self):
        pid = make_pid(ki=1.0, setpoint=1.0, output_limits=(-10, 10))
        pid.update(0.0)
        pid.reset()
        assert pid.integral == 0.0
        assert pid.last_output == pid.bias

    def test_rejects_nonpositive_sample_time(self):
        with pytest.raises(ControllerError):
            make_pid(sample_time=0.0)

    def test_rejects_inverted_limits(self):
        with pytest.raises(ControllerError):
            make_pid(output_limits=(1.0, 0.0))

    def test_last_output_tracks(self):
        pid = make_pid(kp=1.0, setpoint=0.5)
        out = pid.update(0.2)
        assert pid.last_output == out
