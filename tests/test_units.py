"""Tests for physical constants and unit helpers."""

import math

import pytest

from repro import units


class TestConstants:
    def test_cycle_time_matches_clock(self):
        assert units.CYCLE_TIME == pytest.approx(1.0 / 1.5e9)

    def test_sampling_interval_is_667_nanoseconds(self):
        # Paper Section 3.2: 1000 cycles at 1.5 GHz = 667 ns.
        assert units.SAMPLING_INTERVAL_SECONDS == pytest.approx(667e-9, rel=1e-3)

    def test_sampling_delay_is_half_the_period(self):
        assert units.SAMPLING_DELAY_SECONDS == pytest.approx(
            units.SAMPLING_INTERVAL_SECONDS / 2
        )

    def test_silicon_resistivity_is_reciprocal_conductivity(self):
        assert units.SILICON_THERMAL_RESISTIVITY == pytest.approx(
            1.0 / units.SILICON_THERMAL_CONDUCTIVITY
        )

    def test_interrupt_cost_matches_paper(self):
        assert units.INTERRUPT_COST_CYCLES == 250


class TestConversions:
    def test_area_round_trip(self):
        assert units.m2_to_mm2(units.mm2_to_m2(3.5)) == pytest.approx(3.5)

    def test_mm2_to_m2_scale(self):
        assert units.mm2_to_m2(1.0) == pytest.approx(1e-6)

    def test_cycles_to_seconds(self):
        assert units.cycles_to_seconds(1.5e9) == pytest.approx(1.0)

    def test_seconds_to_cycles_round_trip(self):
        assert units.seconds_to_cycles(
            units.cycles_to_seconds(12345)
        ) == pytest.approx(12345)

    def test_custom_clock(self):
        assert units.cycles_to_seconds(1000, clock_hz=1e9) == pytest.approx(1e-6)

    def test_celsius_kelvin_round_trip(self):
        assert units.kelvin_to_celsius(
            units.celsius_to_kelvin(101.8)
        ) == pytest.approx(101.8)

    def test_absolute_zero(self):
        assert units.celsius_to_kelvin(-273.15) == pytest.approx(0.0)


class TestBlockTimeConstantScale:
    def test_vertical_time_constant_is_area_independent(self):
        # R*C = rho * c_v * t^2, tens-to-hundreds of microseconds.
        tau = (
            units.SILICON_THERMAL_RESISTIVITY
            * units.SILICON_VOLUMETRIC_HEAT_CAPACITY
            * units.DIE_THICKNESS**2
        )
        assert 10e-6 < tau < 1000e-6
        assert math.isclose(tau, 175e-6, rel_tol=1e-6)
