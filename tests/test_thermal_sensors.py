"""Tests for the temperature sensor models."""

import pytest

from repro.errors import ConfigError
from repro.thermal.sensors import IdealSensor, NoisySensor, QuantizedSensor


class TestIdealSensor:
    def test_reports_truth(self):
        sensor = IdealSensor()
        assert sensor.read(101.84) == 101.84


class TestNoisySensor:
    def test_zero_noise_is_offset_only(self):
        sensor = NoisySensor(noise_sigma=0.0, offset=0.5)
        assert sensor.read(100.0) == pytest.approx(100.5)

    def test_deterministic_per_seed(self):
        a = NoisySensor(noise_sigma=0.1, seed=42)
        b = NoisySensor(noise_sigma=0.1, seed=42)
        readings_a = [a.read(100.0) for _ in range(10)]
        readings_b = [b.read(100.0) for _ in range(10)]
        assert readings_a == readings_b

    def test_noise_is_zero_mean(self):
        sensor = NoisySensor(noise_sigma=0.2, seed=7)
        mean = sum(sensor.read(100.0) for _ in range(5000)) / 5000
        assert mean == pytest.approx(100.0, abs=0.02)

    def test_rejects_negative_sigma(self):
        with pytest.raises(ConfigError):
            NoisySensor(noise_sigma=-0.1)


class TestQuantizedSensor:
    def test_rounds_to_step(self):
        sensor = QuantizedSensor(step=0.25)
        assert sensor.read(101.87) == pytest.approx(101.75)
        assert sensor.read(101.88) == pytest.approx(102.0 - 0.125, abs=0.13)

    def test_exact_multiples_unchanged(self):
        sensor = QuantizedSensor(step=0.5)
        assert sensor.read(101.5) == pytest.approx(101.5)

    def test_quantization_error_bounded(self):
        sensor = QuantizedSensor(step=0.25)
        for raw in (100.01, 100.49, 101.87, 102.12):
            assert abs(sensor.read(raw) - raw) <= 0.125 + 1e-12

    def test_rejects_nonpositive_step(self):
        with pytest.raises(ConfigError):
            QuantizedSensor(step=0.0)
