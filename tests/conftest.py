"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import pytest

from repro.config import DTMConfig, MachineConfig, ThermalConfig
from repro.thermal.floorplan import Floorplan


@pytest.fixture(scope="session")
def floorplan() -> Floorplan:
    """The paper's default seven-structure floorplan."""
    return Floorplan.default()


@pytest.fixture(scope="session")
def machine() -> MachineConfig:
    """The Table 2 machine configuration."""
    return MachineConfig()


@pytest.fixture(scope="session")
def thermal_config() -> ThermalConfig:
    """The default thermal operating point."""
    return ThermalConfig()


@pytest.fixture(scope="session")
def dtm_config() -> DTMConfig:
    """The default DTM configuration."""
    return DTMConfig()
