"""Tests for the Section 4.3 material derivations of thermal R and C."""

import pytest

from repro.errors import ThermalModelError
from repro.thermal import materials


class TestBlockCapacitance:
    def test_scales_linearly_with_area(self):
        small = materials.block_capacitance(1e-6)
        large = materials.block_capacitance(4e-6)
        assert large == pytest.approx(4 * small)

    def test_scales_linearly_with_thickness(self):
        thin = materials.block_capacitance(5e-6, thickness=0.05e-3)
        thick = materials.block_capacitance(5e-6, thickness=0.1e-3)
        assert thick == pytest.approx(2 * thin)

    def test_known_value(self):
        # c_v * A * t = 1.75e6 * 5e-6 * 1e-4 = 8.75e-4 J/K.
        assert materials.block_capacitance(5e-6) == pytest.approx(8.75e-4)

    def test_rejects_nonpositive_area(self):
        with pytest.raises(ThermalModelError):
            materials.block_capacitance(0.0)

    def test_rejects_nonpositive_thickness(self):
        with pytest.raises(ThermalModelError):
            materials.block_capacitance(5e-6, thickness=-1.0)


class TestBlockNormalResistance:
    def test_inverse_in_area(self):
        small = materials.block_normal_resistance(1e-6)
        large = materials.block_normal_resistance(2e-6)
        assert small == pytest.approx(2 * large)

    def test_known_value(self):
        # rho * t / A = 0.01 * 1e-4 / 5e-6 = 0.2 K/W.
        assert materials.block_normal_resistance(5e-6) == pytest.approx(0.2)

    def test_rejects_nonpositive_area(self):
        with pytest.raises(ThermalModelError):
            materials.block_normal_resistance(-1e-6)


class TestTangentialResistance:
    def test_much_larger_than_normal(self):
        # The Figure 3C simplification: R_tan >> R_normal.
        ratio = materials.tangential_to_normal_ratio(5e-6, 100e-6)
        assert ratio > 50

    def test_grows_with_die_area(self):
        near = materials.block_tangential_resistance(5e-6, 50e-6)
        far = materials.block_tangential_resistance(5e-6, 200e-6)
        assert far > near

    def test_rejects_die_smaller_than_block(self):
        with pytest.raises(ThermalModelError):
            materials.block_tangential_resistance(5e-6, 4e-6)


class TestTimeConstant:
    def test_area_independent(self):
        tau_small = materials.block_time_constant(1e-6)
        tau_large = materials.block_time_constant(10e-6)
        assert tau_small == pytest.approx(tau_large)

    def test_is_rc_product(self):
        area = 3.5e-6
        tau = materials.block_time_constant(area)
        rc = materials.block_normal_resistance(area) * materials.block_capacitance(
            area
        )
        assert tau == pytest.approx(rc)

    def test_in_paper_range(self):
        # "tens to hundreds of microseconds"
        tau = materials.block_time_constant(5e-6)
        assert 10e-6 < tau < 1000e-6

    def test_quadratic_in_thickness(self):
        thin = materials.block_time_constant(5e-6, thickness=0.05e-3)
        thick = materials.block_time_constant(5e-6, thickness=0.1e-3)
        assert thick == pytest.approx(4 * thin)
