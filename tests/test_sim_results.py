"""Tests for result containers and metrics."""

import numpy as np
import pytest

from repro.sim.results import History, RunResult


def make_result(**overrides):
    defaults = dict(
        benchmark="gcc",
        policy="pid",
        cycles=1_000_000,
        instructions=1_500_000.0,
        emergency_fraction=0.0,
        stress_fraction=0.5,
        block_emergency_fraction={"regfile": 0.0},
        block_stress_fraction={"regfile": 0.5},
        mean_block_temperature={"regfile": 101.5},
        max_block_temperature={"regfile": 101.8, "lsq": 100.5},
        mean_chip_power=80.0,
        max_chip_power=95.0,
    )
    defaults.update(overrides)
    return RunResult(**defaults)


class TestRunResult:
    def test_ipc(self):
        assert make_result().ipc == pytest.approx(1.5)

    def test_zero_cycles_ipc(self):
        assert make_result(cycles=0).ipc == 0.0

    def test_max_temperature_over_blocks(self):
        assert make_result().max_temperature == pytest.approx(101.8)

    def test_relative_ipc(self):
        baseline = make_result(instructions=2_000_000.0)
        managed = make_result(instructions=1_000_000.0)
        assert managed.relative_ipc(baseline) == pytest.approx(0.5)

    def test_performance_loss(self):
        baseline = make_result(instructions=2_000_000.0)
        managed = make_result(instructions=1_500_000.0)
        assert managed.performance_loss(baseline) == pytest.approx(0.25)

    def test_relative_to_zero_baseline(self):
        baseline = make_result(instructions=0.0)
        assert make_result().relative_ipc(baseline) == 0.0


class TestHistory:
    def make_history(self, samples=10):
        blocks = 7
        return History(
            sample_cycles=1000,
            names=tuple(f"b{i}" for i in range(blocks)),
            max_temp=np.zeros(samples),
            duty=np.ones(samples),
            chip_power=np.full(samples, 50.0),
            block_temps=np.zeros((samples, blocks)),
            block_powers=np.zeros((samples, blocks)),
            block_emergency=np.zeros((samples, blocks)),
            block_stress=np.zeros((samples, blocks)),
        )

    def test_sample_count(self):
        assert self.make_history(25).samples == 25

    def test_time_axis_in_microseconds(self):
        history = self.make_history(3)
        times = history.time_microseconds(cycle_time=1 / 1.5e9)
        assert times[0] == pytest.approx(1000 / 1.5e9 * 1e6)
        assert times[-1] == pytest.approx(3 * 1000 / 1.5e9 * 1e6)
