"""Tests for the command-line interfaces."""

import pytest

from repro.__main__ import main as repro_main
from repro.experiments.__main__ import main as experiments_main


class TestReproCLI:
    def test_list(self, capsys):
        assert repro_main(["list"]) == 0
        out = capsys.readouterr().out
        assert "gcc" in out
        assert "pid" in out

    def test_run(self, capsys):
        code = repro_main(
            ["run", "gzip", "--policy", "pid", "--instructions", "300000"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "emergency cycles" in out
        assert "% of non-DTM IPC" in out

    def test_run_none_policy_skips_baseline(self, capsys):
        code = repro_main(
            ["run", "gzip", "--policy", "none", "--instructions", "200000"]
        )
        assert code == 0
        assert "% of non-DTM IPC" not in capsys.readouterr().out

    def test_compare(self, capsys):
        code = repro_main(
            ["compare", "gzip", "--policies", "pid", "--instructions", "200000"]
        )
        assert code == 0
        assert "pid" in capsys.readouterr().out

    def test_unknown_benchmark_errors(self):
        with pytest.raises(Exception):
            repro_main(["run", "linpack"])

    def test_unknown_policy_rejected(self):
        with pytest.raises(SystemExit):
            repro_main(["run", "gzip", "--policy", "lqr"])


class TestMulticoreCLI:
    def test_run_multicore(self, capsys):
        code = repro_main(
            [
                "run", "gcc,gzip", "--cores", "2", "--policy", "pid",
                "--coordinator", "proportional",
                "--instructions", "300000",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "core  benchmark" in out
        assert "gzip" in out
        assert "coordinator_demotions" in out

    def test_coordinator_requires_multiple_cores(self, capsys):
        code = repro_main(
            ["run", "gcc", "--coordinator", "proportional"]
        )
        assert code == 2
        assert "--coordinator" in capsys.readouterr().err

    def test_setpoint_rejected_with_cores(self, capsys):
        code = repro_main(
            [
                "run", "gcc,gzip", "--cores", "2",
                "--policy", "pid", "--setpoint", "81.0",
            ]
        )
        assert code == 2

    def test_multicore_trace_roundtrip(self, tmp_path, capsys):
        trace = tmp_path / "chip.jsonl"
        code = repro_main(
            [
                "run", "gcc,gzip", "--cores", "2", "--policy", "pid",
                "--instructions", "300000",
                "--trace-out", str(trace),
            ]
        )
        assert code == 0
        capsys.readouterr()
        assert repro_main(["trace", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "samples:" in out


class TestExperimentsCLI:
    def test_list(self, capsys):
        assert experiments_main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "table3_rc" in out
        assert "validation_grid" in out

    def test_run_one_static(self, capsys):
        assert experiments_main(["table1_duality"]) == 0
        assert "Thermal resistance" in capsys.readouterr().out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            experiments_main(["table99"])


class TestCompareResilienceCLI:
    def test_checkpoint_then_resume(self, capsys, tmp_path):
        journal = tmp_path / "compare.ckpt.jsonl"
        argv = [
            "compare", "gzip", "--policies", "pid",
            "--instructions", "200000", "--checkpoint", str(journal),
        ]
        assert repro_main(argv) == 0
        first = capsys.readouterr().out
        assert journal.exists()
        # Resuming re-runs nothing and prints the identical table.
        assert repro_main(argv + ["--resume"]) == 0
        assert capsys.readouterr().out == first

    def test_failed_policy_prints_failed_row(self, capsys, monkeypatch):
        import repro.sim.parallel as parallel_module

        real = parallel_module._execute

        def failing(spec, telemetry):
            if spec.policy == "pid":
                raise RuntimeError("injected")
            return real(spec, telemetry)

        monkeypatch.setattr(parallel_module, "_execute", failing)
        code = repro_main(
            [
                "compare", "gzip", "--policies", "pid", "toggle1",
                "--instructions", "200000", "--retries", "0", "--strict",
            ]
        )
        assert code == 1  # strict: aggregated error on stderr
        assert "failed permanently" in capsys.readouterr().err
        code = repro_main(
            [
                "compare", "gzip", "--policies", "pid", "toggle1",
                "--instructions", "200000", "--timeout", "300",
            ]
        )
        out = capsys.readouterr().out
        assert code == 2  # non-strict: FAILED row, distinct exit code
        assert "FAILED (error: RuntimeError)" in out
        assert "toggle1" in out

    def test_resume_without_checkpoint_rejected(self, capsys):
        # argparse-level rejection: a clean usage error, not a traceback.
        with pytest.raises(SystemExit) as excinfo:
            repro_main(
                [
                    "compare", "gzip", "--policies", "pid",
                    "--instructions", "200000", "--resume",
                ]
            )
        assert excinfo.value.code == 2
        assert "--resume requires --checkpoint" in capsys.readouterr().err


class TestExperimentsResilienceCLI:
    def test_resume_requires_checkpoint(self):
        with pytest.raises(SystemExit):
            experiments_main(["--resume", "table1_duality"])

    def test_checkpoint_flag_installs_default_options(self, tmp_path):
        from repro.sim.parallel import (
            get_default_sweep_options,
            set_default_sweep_options,
        )

        journal = tmp_path / "exp.ckpt.jsonl"
        try:
            assert experiments_main(
                ["--checkpoint", str(journal), "--list"]
            ) == 0
            options = get_default_sweep_options()
            assert options is not None
            assert options.resume  # shared journals need append mode
            assert str(options.checkpoint_path) == str(journal)
        finally:
            set_default_sweep_options(None)


class TestDistributedCLI:
    """serve-sweep / work / --cluster: validation and a live round trip."""

    def test_cluster_requires_token(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            repro_main(
                ["compare", "gzip", "--cluster", "127.0.0.1:9999"]
            )
        assert excinfo.value.code == 2
        assert "--cluster requires --token" in capsys.readouterr().err

    def test_work_rejects_bad_endpoint(self, capsys):
        code = repro_main(
            ["work", "--connect", "nocolon", "--token", "t"]
        )
        assert code == 2
        assert "HOST:PORT" in capsys.readouterr().err

    def test_work_rejects_connecting_to_port_zero(self, capsys):
        code = repro_main(
            ["work", "--connect", "127.0.0.1:0", "--token", "t"]
        )
        assert code == 2
        assert "port" in capsys.readouterr().err

    def test_work_rejects_empty_token(self, capsys):
        code = repro_main(
            ["work", "--connect", "127.0.0.1:9", "--token", ""]
        )
        assert code == 2
        assert "token" in capsys.readouterr().err

    def test_work_rejects_negative_idle_timeout(self, capsys):
        code = repro_main(
            [
                "work", "--connect", "127.0.0.1:9", "--token", "t",
                "--idle-timeout", "-1",
            ]
        )
        assert code == 2
        assert "idle-timeout" in capsys.readouterr().err

    def test_serve_rejects_newline_token(self, capsys):
        code = repro_main(
            [
                "serve-sweep", "gzip", "--bind", "127.0.0.1:0",
                "--token", "bad\ntoken",
            ]
        )
        assert code == 2
        assert "token" in capsys.readouterr().err

    def test_idle_worker_times_out_cleanly(self, capsys):
        # Nothing listens on the probed port: the worker retries until
        # its idle deadline, then reports zero work.
        import socket

        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]
        code = repro_main(
            [
                "work", "--connect", f"127.0.0.1:{port}",
                "--token", "t", "--idle-timeout", "0.2",
            ]
        )
        assert code == 0
        assert "0 spec(s) executed" in capsys.readouterr().out

    def test_serve_and_work_round_trip(self, capsys):
        """A live localhost sweep: serve-sweep in a thread, one worker
        through the CLI, identical table to a local compare."""
        import re
        import threading

        assert repro_main(
            ["compare", "gzip", "--policies", "pid",
             "--instructions", "200000"]
        ) == 0
        local_table = capsys.readouterr().out

        import contextlib
        import io

        results = {}
        stdout = io.StringIO()

        def serve():
            with contextlib.redirect_stdout(stdout):
                results["code"] = repro_main(
                    [
                        "serve-sweep", "gzip", "--policies", "pid",
                        "--instructions", "200000",
                        "--bind", "127.0.0.1:0", "--token", "s3",
                    ]
                )
            results["out"] = stdout.getvalue()

        # The bound port is printed before wait() blocks; poll for it.
        thread = threading.Thread(target=serve, daemon=True)
        thread.start()
        import time

        deadline = time.monotonic() + 30
        port = None
        while port is None and time.monotonic() < deadline:
            match = re.search(r"on 127\.0\.0\.1:(\d+)", stdout.getvalue())
            port = match.group(1) if match else None
            time.sleep(0.02)
        assert port, "serve-sweep never reported its port"
        code = repro_main(
            [
                "work", "--connect", f"127.0.0.1:{port}",
                "--token", "s3", "--once", "--idle-timeout", "30",
            ]
        )
        assert code == 0
        thread.join(timeout=60)
        assert results["code"] == 0
        # The redirect is process-global while the serve thread runs,
        # so the worker's summary may land on either stream.
        combined = capsys.readouterr().out + results["out"]
        assert "across 1 sweep(s)" in combined
        assert local_table in results["out"]
