"""Tests for the thermal/electrical duality helpers (Table 1)."""

import pytest

from repro.thermal import duality


class TestEquivalenceTable:
    def test_has_five_rows(self):
        assert len(duality.EQUIVALENCE_TABLE) == 5

    def test_units_match_paper(self):
        units = {
            row.thermal_quantity: (row.thermal_unit, row.electrical_unit)
            for row in duality.EQUIVALENCE_TABLE
        }
        assert units["Thermal resistance"] == ("K/W", "Ohm")
        assert units["Thermal mass, capacitance"] == ("J/K", "F")

    def test_rc_rows_share_unit_seconds(self):
        row = duality.EQUIVALENCE_TABLE[-1]
        assert row.thermal_unit == row.electrical_unit == "s"


class TestThermalOhmsLaw:
    def test_temperature_drop(self):
        assert duality.temperature_drop(25.0, 2.0) == pytest.approx(50.0)

    def test_heat_flow_inverts_drop(self):
        drop = duality.temperature_drop(10.0, 0.4)
        assert duality.heat_flow(drop, 0.4) == pytest.approx(10.0)

    def test_heat_flow_rejects_nonpositive_resistance(self):
        with pytest.raises(ValueError):
            duality.heat_flow(1.0, 0.0)

    def test_section_4_1_worked_example(self):
        # 25 W through 1+1 K/W over a 27 C ambient -> 77 C.
        assert duality.steady_state_temperature(
            25.0, 2.0, 27.0
        ) == pytest.approx(77.0)

    def test_zero_power_sits_at_reference(self):
        assert duality.steady_state_temperature(0.0, 5.0, 40.0) == 40.0

    def test_rc_time_constant(self):
        # Section 4.1: 60 J/K * 2 K/W ~ a minute or two.
        tau = duality.rc_time_constant(2.0, 60.0)
        assert tau == pytest.approx(120.0)
