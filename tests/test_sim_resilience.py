"""Fault-tolerant sweep orchestration: crashes, timeouts, retries, resume.

Faults are injected by monkeypatching :func:`repro.sim.parallel._execute`
with a version that recognizes magic benchmark names (``__crash__``
``os._exit``'s the worker, ``__hang__`` sleeps past any timeout,
``__raise__`` raises, ``__flaky__`` fails N times then succeeds).  Worker
processes inherit the patch because Linux uses the ``fork`` start
method -- the whole module is skipped elsewhere.

The determinism headline: a checkpointed sweep killed mid-run and
resumed is bit-identical to an uninterrupted sweep -- results, retained
trace records, events, and metrics -- once the ``sweep.*`` orchestration
diagnostics (which deliberately record the interruption history itself)
are filtered out.  Asserted as a hypothesis property over the truncation
point.
"""

from __future__ import annotations

import dataclasses
import math
import multiprocessing
import os
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.sim.parallel as parallel_module
from repro.config import TelemetryConfig
from repro.errors import SweepError
from repro.sim.checkpoint import load_checkpoint
from repro.sim.parallel import (
    RetryPolicy,
    SweepOptions,
    WorkSpec,
    matrix_specs,
    run_outcomes,
    run_specs,
)
from repro.telemetry.core import Telemetry

pytestmark = pytest.mark.skipif(
    multiprocessing.get_start_method() != "fork",
    reason="fault injection relies on workers inheriting the "
    "monkeypatched _execute via fork",
)

INSTRUCTIONS = 150_000

#: Captured in the parent at import; forked workers inherit a different
#: os.getpid(), letting injected faults fire only inside workers.
_PARENT_PID = os.getpid()

_REAL_EXECUTE = parallel_module._execute


def _injected_execute(spec, telemetry):
    if spec.benchmark == "__crash__":
        os._exit(42)
    if spec.benchmark == "__crash_worker_only__":
        if os.getpid() != _PARENT_PID:
            os._exit(42)
        return _delegate(spec, telemetry)
    if spec.benchmark == "__hang__":
        time.sleep(120)
    if spec.benchmark == "__raise__":
        raise RuntimeError("injected failure")
    if spec.benchmark == "__interrupt__":
        raise KeyboardInterrupt
    if spec.benchmark == "__flaky__":
        marker, failures_needed = spec.tag
        attempts = int(open(marker).read()) if os.path.exists(marker) else 0
        with open(marker, "w") as handle:
            handle.write(str(attempts + 1))
        if attempts < failures_needed:
            raise RuntimeError(f"flaky attempt {attempts}")
        return _delegate(spec, telemetry)
    return _REAL_EXECUTE(spec, telemetry)


def _delegate(spec, telemetry):
    return _REAL_EXECUTE(
        dataclasses.replace(spec, benchmark="gcc", tag=()), telemetry
    )


@pytest.fixture
def inject_faults(monkeypatch):
    monkeypatch.setattr(parallel_module, "_execute", _injected_execute)


def _spec(benchmark, policy="pid", tag=()):
    return WorkSpec(
        benchmark=benchmark,
        policy=policy,
        instructions=INSTRUCTIONS,
        tag=tag,
    )


def _quiet() -> Telemetry:
    return Telemetry(TelemetryConfig(sample_latency=False, profile=False))


def _kinds(telemetry, prefix="sweep."):
    return [e.kind for e in telemetry.trace.events if e.kind.startswith(prefix)]


class TestFailureIsolation:
    def test_errors_land_on_exactly_the_failing_specs(self, inject_faults):
        """A crash and a raise fail alone; innocents -- including the
        in-flight bystander whose future the pool death also broke --
        all complete."""
        specs = [
            _spec("gcc"),
            _spec("__raise__"),
            _spec("gzip"),
            _spec("__crash__"),
            _spec("art"),
        ]
        telemetry = _quiet()
        outcomes = run_outcomes(
            specs, jobs=2, telemetry=telemetry, options=SweepOptions()
        )
        assert [o.ok for o in outcomes] == [True, False, True, False, True]
        assert outcomes[1].error.kind == "error"
        assert outcomes[1].error.exc_type == "RuntimeError"
        assert "injected failure" in outcomes[1].error.message
        assert outcomes[3].error.kind == "crash"
        assert [o.result is not None for o in outcomes] == [
            True, False, True, False, True,
        ]
        kinds = _kinds(telemetry)
        assert "sweep.pool_crash" in kinds
        assert kinds.count("sweep.spec_failed") == 2

    def test_failed_attempt_contributes_no_telemetry(self, inject_faults):
        serial, faulty = _quiet(), _quiet()
        clean = [_spec("gcc"), _spec("gzip")]
        run_outcomes(clean, jobs=1, telemetry=serial, options=SweepOptions())
        withfail = [_spec("gcc"), _spec("__raise__"), _spec("gzip")]
        run_outcomes(
            withfail, jobs=1, telemetry=faulty, options=SweepOptions()
        )
        assert len(faulty.trace.records()) == len(serial.trace.records())

    def test_strict_raises_one_aggregated_error(self, inject_faults):
        specs = [_spec("gcc"), _spec("__raise__"), _spec("__crash__")]
        with pytest.raises(SweepError) as excinfo:
            run_outcomes(specs, jobs=2, options=SweepOptions(strict=True))
        error = excinfo.value
        assert len(error.failures) == 2
        assert "2 of 3 specs failed permanently" in str(error)

    def test_run_specs_returns_none_for_failures(self, inject_faults):
        specs = [_spec("gcc"), _spec("__raise__")]
        results = run_specs(specs, jobs=1, options=SweepOptions())
        assert results[0] is not None
        assert results[1] is None


class TestTimeouts:
    def test_hung_spec_times_out_alone_and_promptly(self, inject_faults):
        telemetry = _quiet()
        specs = [_spec("gcc"), _spec("__hang__"), _spec("gzip")]
        started = time.monotonic()
        outcomes = run_outcomes(
            specs,
            jobs=2,
            telemetry=telemetry,
            options=SweepOptions(timeout_seconds=2.0),
        )
        elapsed = time.monotonic() - started
        assert [o.ok for o in outcomes] == [True, False, True]
        assert outcomes[1].error.kind == "timeout"
        assert elapsed < 60  # nowhere near the 120s sleep
        assert "sweep.timeout" in _kinds(telemetry)

    def test_jobs1_with_timeout_runs_on_a_pool(self, inject_faults):
        # In-process execution cannot preempt a hung spec; the
        # orchestrator must route jobs=1 + timeout onto a worker pool.
        outcomes = run_outcomes(
            [_spec("__hang__"), _spec("gcc")],
            jobs=1,
            options=SweepOptions(timeout_seconds=2.0),
        )
        assert not outcomes[0].ok
        assert outcomes[0].error.kind == "timeout"
        assert outcomes[1].ok


class TestRetries:
    def test_flaky_spec_succeeds_on_allowed_retry(
        self, inject_faults, tmp_path
    ):
        marker = str(tmp_path / "flaky")
        telemetry = _quiet()
        outcomes = run_outcomes(
            [_spec("__flaky__", tag=(marker, 2))],
            jobs=2,
            telemetry=telemetry,
            options=SweepOptions(retry=RetryPolicy(max_retries=3)),
        )
        assert outcomes[0].ok
        assert outcomes[0].attempts == 3
        assert _kinds(telemetry).count("sweep.retry") == 2

    def test_retry_budget_exhausts(self, inject_faults, tmp_path):
        marker = str(tmp_path / "flaky")
        outcomes = run_outcomes(
            [_spec("__flaky__", tag=(marker, 5))],
            jobs=2,
            options=SweepOptions(retry=RetryPolicy(max_retries=1)),
        )
        assert not outcomes[0].ok
        assert outcomes[0].attempts == 2

    def test_crasher_is_charged_attempts_under_retry(self, inject_faults):
        """Pool-crash retries re-run in isolation; the deterministic
        crasher burns its budget without dragging innocents down or
        degrading the sweep."""
        telemetry = _quiet()
        specs = [_spec("gcc"), _spec("__crash__"), _spec("gzip")]
        outcomes = run_outcomes(
            specs,
            jobs=2,
            telemetry=telemetry,
            options=SweepOptions(retry=RetryPolicy(max_retries=1)),
        )
        assert [o.ok for o in outcomes] == [True, False, True]
        assert outcomes[1].attempts == 2
        assert "sweep.degraded" not in _kinds(telemetry)

    def test_backoff_schedule_is_deterministic(self):
        policy = RetryPolicy(
            max_retries=5,
            backoff_seconds=0.5,
            backoff_multiplier=2.0,
            max_backoff_seconds=1.5,
        )
        assert [policy.delay(k) for k in (1, 2, 3, 4)] == [
            0.5, 1.0, 1.5, 1.5,
        ]
        assert RetryPolicy().delay(1) == 0.0


class TestPoolRecovery:
    def test_degrades_to_serial_after_rebuild_budget(self, inject_faults):
        telemetry = _quiet()
        specs = [
            _spec("gcc"),
            _spec("__crash_worker_only__"),
            _spec("gzip"),
        ]
        outcomes = run_outcomes(
            specs,
            jobs=2,
            telemetry=telemetry,
            options=SweepOptions(max_pool_rebuilds=0),
        )
        # The crash exceeded the rebuild budget immediately; the rest of
        # the sweep -- crasher included, which only dies in a worker --
        # completed in-process.
        assert all(o.ok for o in outcomes)
        assert "sweep.degraded" in _kinds(telemetry)

    def test_interrupt_folds_completed_telemetry(self, inject_faults):
        telemetry = _quiet()
        specs = [_spec("gcc"), _spec("__interrupt__"), _spec("gzip")]
        with pytest.raises(KeyboardInterrupt):
            run_outcomes(
                specs, jobs=1, telemetry=telemetry, options=SweepOptions()
            )
        # The completed first spec's telemetry survived the interrupt.
        assert len(telemetry.trace.records()) > 0

    def test_legacy_pool_interrupt_propagates(self, inject_faults):
        specs = [_spec("__interrupt__"), _spec("gcc")]
        with pytest.raises(KeyboardInterrupt):
            run_specs(specs, jobs=1, telemetry=_quiet())


REFERENCE_BENCHMARKS = ("gcc", "gzip")
REFERENCE_POLICIES = ("none", "pid")
_reference_cache: dict = {}


def _reference(tmp_root):
    """Uninterrupted checkpointed sweep: results, telemetry, journal."""
    if not _reference_cache:
        specs = matrix_specs(
            REFERENCE_BENCHMARKS,
            REFERENCE_POLICIES,
            instructions=INSTRUCTIONS,
        )
        telemetry = _quiet()
        path = tmp_root / "reference.ckpt.jsonl"
        outcomes = run_outcomes(
            specs,
            jobs=2,
            telemetry=telemetry,
            options=SweepOptions(checkpoint_path=path),
        )
        _reference_cache.update(
            specs=specs,
            results=[o.result for o in outcomes],
            telemetry=telemetry,
            journal_lines=path.read_text().splitlines(True),
        )
    return _reference_cache


def _records_equal(a, b) -> bool:
    if len(a) != len(b):
        return False
    for x, y in zip(a, b):
        for field in x.__dataclass_fields__:
            vx, vy = getattr(x, field), getattr(y, field)
            if vx != vy and not (
                isinstance(vx, float)
                and isinstance(vy, float)
                and math.isnan(vx)
                and math.isnan(vy)
            ):
                return False
    return True


def _comparable_events(telemetry):
    return [
        e for e in telemetry.trace.events if not e.kind.startswith("sweep.")
    ]


def _comparable_metrics(telemetry):
    snapshot = telemetry.metrics.snapshot()
    return {
        name: stats
        for name, stats in snapshot.items()
        if not name.startswith("events.sweep.")
    }


class TestResumeBitIdentity:
    @settings(max_examples=6, deadline=None)
    @given(completed=st.integers(min_value=0, max_value=4))
    def test_interrupted_then_resumed_sweep_is_bit_identical(
        self, completed, tmp_path_factory
    ):
        """Kill a checkpointed sweep after N journaled outcomes, resume:
        results, retained records, events, and metrics (sweep.*
        diagnostics aside) match the uninterrupted sweep exactly."""
        root = tmp_path_factory.getbasetemp()
        reference = _reference(root)
        workdir = tmp_path_factory.mktemp("resume")
        path = workdir / "sweep.ckpt.jsonl"
        # Header + the first `completed` outcome lines: the on-disk
        # state an abrupt kill would have left behind.
        path.write_text(
            "".join(reference["journal_lines"][: 1 + completed])
        )
        telemetry = _quiet()
        outcomes = run_outcomes(
            reference["specs"],
            jobs=2,
            telemetry=telemetry,
            options=SweepOptions(checkpoint_path=path, resume=True),
        )
        assert [o.from_checkpoint for o in outcomes] == [
            index < completed for index in range(len(outcomes))
        ]
        for resumed, expected in zip(outcomes, reference["results"]):
            result = resumed.result
            assert result.cycles == expected.cycles
            assert result.emergency_fraction == expected.emergency_fraction
            assert result.mean_chip_power == expected.mean_chip_power
            assert (
                result.max_block_temperature
                == expected.max_block_temperature
            )
        sink = reference["telemetry"]
        assert _records_equal(
            telemetry.trace.records(), sink.trace.records()
        )
        assert _comparable_events(telemetry) == _comparable_events(sink)
        assert _comparable_metrics(telemetry) == _comparable_metrics(sink)
        # The journal is whole again: a further resume re-runs nothing.
        assert sum(
            len(v) for v in load_checkpoint(path).values()
        ) == len(reference["specs"])

    def test_failed_specs_are_not_journaled(self, inject_faults, tmp_path):
        path = tmp_path / "sweep.ckpt.jsonl"
        specs = [_spec("gcc"), _spec("__raise__")]
        run_outcomes(
            specs, jobs=1, options=SweepOptions(checkpoint_path=path)
        )
        saved = load_checkpoint(path)
        assert sum(len(v) for v in saved.values()) == 1

    def test_journal_is_a_content_addressed_cache(self, tmp_path):
        """A different sweep sharing a spec reuses its saved outcome."""
        path = tmp_path / "shared.ckpt.jsonl"
        first = [_spec("gcc"), _spec("gzip")]
        run_outcomes(
            first, jobs=1, options=SweepOptions(checkpoint_path=path)
        )
        second = [_spec("art"), _spec("gcc")]  # gcc shared, art new
        outcomes = run_outcomes(
            second,
            jobs=1,
            options=SweepOptions(checkpoint_path=path, resume=True),
        )
        assert [o.from_checkpoint for o in outcomes] == [False, True]

    def test_duplicate_specs_consume_one_saved_outcome_each(self, tmp_path):
        path = tmp_path / "dup.ckpt.jsonl"
        specs = [_spec("gcc"), _spec("gcc")]
        run_outcomes(
            specs, jobs=1, options=SweepOptions(checkpoint_path=path)
        )
        outcomes = run_outcomes(
            specs,
            jobs=1,
            options=SweepOptions(checkpoint_path=path, resume=True),
        )
        assert [o.from_checkpoint for o in outcomes] == [True, True]


class TestOrchestratedParity:
    def test_serial_orchestrated_matches_legacy(self):
        """SweepOptions() with jobs=1 must not perturb the classic
        sweep: same results, records, events, metrics."""
        specs = matrix_specs(
            ("gcc",), ("none", "pid"), instructions=INSTRUCTIONS
        )
        legacy_sink, orch_sink = _quiet(), _quiet()
        legacy = run_specs(specs, jobs=1, telemetry=legacy_sink)
        outcomes = run_outcomes(
            specs, jobs=1, telemetry=orch_sink, options=SweepOptions()
        )
        for a, b in zip(legacy, (o.result for o in outcomes)):
            assert a.cycles == b.cycles
            assert a.max_block_temperature == b.max_block_temperature
        assert _records_equal(
            legacy_sink.trace.records(), orch_sink.trace.records()
        )
        assert _comparable_events(legacy_sink) == _comparable_events(
            orch_sink
        )
        # Orchestrated execution runs each spec against a local sink and
        # merges, so gauge values follow the documented merge semantics
        # (value pinned to extreme) rather than last-set.
        from tests.test_sim_parallel import assert_metrics_match

        assert_metrics_match(
            _comparable_metrics(legacy_sink),
            _comparable_metrics(orch_sink),
        )
