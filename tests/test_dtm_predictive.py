"""Tests for the model-predictive DTM policy (extension E3)."""

import math

import pytest

from repro.dtm.policies import PredictivePolicy, make_policy
from repro.errors import ConfigError
from repro.sim.sweep import run_one


def make_mpc(**overrides):
    defaults = dict(
        setpoint=101.8,
        resistance=0.4,
        time_constant=175e-6,
        heatsink_temperature=100.0,
        idle_power=1.2,
        sample_seconds=667e-9,
    )
    defaults.update(overrides)
    return PredictivePolicy(**defaults)


class TestPowerInference:
    def test_first_sample_runs_free(self):
        policy = make_mpc()
        assert policy.decide(100.0) == 1.0

    def test_infers_power_from_trajectory(self):
        # Simulate a block heating toward S = 103.2 (P = 8 W at R=0.4):
        # feed two consecutive exact samples; the policy must infer the
        # steady target and back off.
        policy = make_mpc()
        tau, h = 175e-6, 667e-9
        steady = 103.2
        t0 = 101.0
        t1 = steady + (t0 - steady) * math.exp(-h / tau)
        policy.decide(t0)
        duty = policy.decide(t1)
        # Target power = 1.8/0.4 = 4.5 W; inferred slope ~ (8-1.2)/1.0;
        # duty should be ~ (4.5-1.2)/6.8 = 0.485.
        assert duty == pytest.approx(0.485, abs=0.05)

    def test_cool_system_stays_at_full_duty(self):
        policy = make_mpc()
        policy.decide(100.5)
        duty = policy.decide(100.5)  # flat trajectory at low temp
        assert duty == 1.0

    def test_reset_forgets_history(self):
        policy = make_mpc()
        policy.decide(101.0)
        policy.decide(101.5)
        policy.reset()
        assert policy.decide(103.0) == 1.0  # first sample again


class TestValidation:
    def test_rejects_bad_plant(self):
        with pytest.raises(ConfigError):
            make_mpc(resistance=0.0)
        with pytest.raises(ConfigError):
            make_mpc(time_constant=-1.0)

    def test_rejects_bad_smoothing(self):
        with pytest.raises(ConfigError):
            make_mpc(smoothing=0.0)

    def test_factory_builds_mpc(self):
        policy = make_policy("mpc")
        assert isinstance(policy, PredictivePolicy)
        assert policy.setpoint == pytest.approx(101.8)


class TestEndToEnd:
    def test_mpc_holds_setpoint_without_emergencies(self):
        result = run_one("gcc", "mpc", instructions=2_000_000)
        assert result.emergency_fraction == 0.0
        assert result.max_temperature == pytest.approx(101.8, abs=0.05)

    def test_mpc_does_not_throttle_cool_workloads(self):
        baseline = run_one("gzip", "none", instructions=1_000_000)
        result = run_one("gzip", "mpc", instructions=1_000_000)
        assert result.relative_ipc(baseline) > 0.99

    def test_mpc_competitive_with_pid(self):
        baseline = run_one("gcc", "none", instructions=2_000_000)
        pid = run_one("gcc", "pid", instructions=2_000_000)
        mpc = run_one("gcc", "mpc", instructions=2_000_000)
        # Within 15 points of the PID (both safe; PID slightly ahead).
        assert mpc.relative_ipc(baseline) > pid.relative_ipc(baseline) - 0.15
