"""Tests for the extension features: setpoint analysis, hierarchical
policy, and sensor-aware runs."""

import pytest

from repro.control import PIDController, dtm_plant, max_safe_setpoint, tune
from repro.dtm.policies import HierarchicalPolicy, make_policy
from repro.errors import ConfigError, ControllerError
from repro.sim.sweep import run_one
from repro.thermal.floorplan import Floorplan
from repro.thermal.sensors import NoisySensor


class TestMaxSafeSetpoint:
    def make_controller(self, family="PID"):
        plant = dtm_plant(Floorplan.default())
        gains = tune(plant, family)
        controller = PIDController(
            gains.kp, gains.ki, gains.kd, sample_time=667e-9,
            output_limits=(0.0, 1.0),
        )
        return controller, plant

    def test_setpoint_below_emergency(self):
        controller, plant = self.make_controller()
        setpoint = max_safe_setpoint(controller, plant, 102.0, 100.0)
        assert 100.0 < setpoint <= 102.0

    def test_small_overshoot_allows_aggressive_setpoint(self):
        # The tuned PID barely overshoots, so the analysis should allow
        # a setpoint within ~0.1 K of the threshold.
        controller, plant = self.make_controller()
        setpoint = max_safe_setpoint(controller, plant, 102.0, 100.0)
        assert setpoint > 101.8

    def test_margin_subtracts(self):
        controller, plant = self.make_controller()
        loose = max_safe_setpoint(controller, plant, 102.0, 100.0)
        controller.reset()
        tight = max_safe_setpoint(controller, plant, 102.0, 100.0, margin=0.5)
        assert tight == pytest.approx(loose - 0.5, abs=1e-9)

    def test_rejects_inverted_levels(self):
        controller, plant = self.make_controller()
        with pytest.raises(ControllerError):
            max_safe_setpoint(controller, plant, 99.0, 100.0)


class TestHierarchicalPolicy:
    def test_primary_runs_when_cool(self):
        policy = HierarchicalPolicy(make_policy("pid"), backup_trigger=101.95)
        assert policy.decide(100.0) == 1.0
        assert not policy.backup_engaged

    def test_backup_overrides_when_hot(self):
        policy = HierarchicalPolicy(make_policy("pid"), backup_trigger=101.95)
        assert policy.decide(101.97) == 0.0
        assert policy.backup_engaged
        assert policy.backup_engagements == 1

    def test_backup_releases_with_hysteresis(self):
        policy = HierarchicalPolicy(
            make_policy("pid"), backup_trigger=101.95, release_margin=0.15
        )
        policy.decide(101.97)
        policy.decide(101.85)  # inside the hysteresis band: still engaged
        assert policy.backup_engaged
        policy.decide(101.70)
        assert not policy.backup_engaged

    def test_backup_duty_is_minimum(self):
        policy = HierarchicalPolicy(
            make_policy("pid"), backup_trigger=101.5, backup_duty=0.25
        )
        assert policy.decide(101.97) <= 0.25

    def test_reset(self):
        policy = HierarchicalPolicy(make_policy("pi"))
        policy.decide(101.97)
        policy.reset()
        assert not policy.backup_engaged
        assert policy.backup_engagements == 0

    def test_name_derives_from_primary(self):
        assert "pid" in HierarchicalPolicy(make_policy("pid")).name

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigError):
            HierarchicalPolicy(make_policy("pid"), backup_duty=1.0)
        with pytest.raises(ConfigError):
            HierarchicalPolicy(make_policy("pid"), release_margin=-0.1)

    def test_end_to_end_contains_sensor_error(self):
        # Aggressive setpoint + low-reading sensor: plain PID enters
        # emergency; the hierarchical backup does not.
        sensor = NoisySensor(noise_sigma=0.0, offset=-0.15)
        plain = run_one(
            "gcc", "pid", instructions=1_500_000, setpoint=101.9,
            sensor=sensor,
        )
        guarded = run_one(
            "gcc", "",
            instructions=1_500_000,
            policy=HierarchicalPolicy(
                make_policy("pid", setpoint=101.9), backup_trigger=101.8
            ),
            sensor=sensor,
        )
        assert plain.emergency_fraction > 0.0
        assert guarded.emergency_fraction < plain.emergency_fraction
        assert guarded.max_temperature < plain.max_temperature


class TestSensorIntegration:
    def test_high_reading_sensor_costs_performance(self):
        baseline = run_one("gcc", "none", instructions=1_000_000)
        ideal = run_one("gcc", "pid", instructions=1_000_000)
        pessimistic = run_one(
            "gcc", "pid", instructions=1_000_000,
            sensor=NoisySensor(noise_sigma=0.0, offset=0.3),
        )
        assert pessimistic.relative_ipc(baseline) < ideal.relative_ipc(baseline)
        assert pessimistic.emergency_fraction == 0.0

    def test_low_reading_sensor_erodes_safety(self):
        optimistic = run_one(
            "gcc", "pid", instructions=2_000_000,
            sensor=NoisySensor(noise_sigma=0.0, offset=-0.3),
        )
        assert optimistic.max_temperature > 102.0
