"""Tests for the DTM policies (toggle1/2, M, P/PD/PI/PID)."""

import pytest

from repro.config import DTMConfig
from repro.dtm.policies import (
    ControlTheoreticPolicy,
    FixedTogglePolicy,
    ManualProportionalPolicy,
    NoDTMPolicy,
    make_policy,
)
from repro.errors import ConfigError


class TestNoDTM:
    def test_always_full_duty(self):
        policy = NoDTMPolicy()
        assert policy.decide(150.0) == 1.0
        assert policy.decide(20.0) == 1.0


class TestFixedToggle:
    def test_engages_above_trigger(self):
        policy = FixedTogglePolicy(0.0, trigger=101.0, check_interval_samples=10)
        assert policy.decide(100.5) == 1.0
        assert policy.decide(101.2) == 0.0
        assert policy.engaged

    def test_disengages_below_trigger(self):
        policy = FixedTogglePolicy(0.0, trigger=101.0, check_interval_samples=10)
        policy.decide(101.5)
        assert policy.decide(100.8) == 1.0
        assert not policy.engaged

    def test_toggle2_uses_half_duty(self):
        policy = FixedTogglePolicy(0.5, trigger=101.0, check_interval_samples=10)
        assert policy.decide(101.5) == 0.5

    def test_is_interrupt_driven(self):
        assert FixedTogglePolicy(0.0, 101.0, 10).is_interrupt_driven

    def test_reset_disengages(self):
        policy = FixedTogglePolicy(0.0, 101.0, 10)
        policy.decide(101.5)
        policy.reset()
        assert not policy.engaged

    def test_rejects_full_engaged_duty(self):
        with pytest.raises(ConfigError):
            FixedTogglePolicy(1.0, 101.0, 10)


class TestManualProportional:
    def test_band_endpoints(self):
        policy = ManualProportionalPolicy(100.0, 102.0)
        assert policy.decide(100.0) == 1.0
        assert policy.decide(102.0) == 0.0

    def test_midpoint_is_toggle2(self):
        # Paper: 101 C -> 50 % error -> toggle every other cycle.
        policy = ManualProportionalPolicy(100.0, 102.0)
        assert policy.decide(101.0) == pytest.approx(0.5)

    def test_clamps_outside_band(self):
        policy = ManualProportionalPolicy(100.0, 102.0)
        assert policy.decide(95.0) == 1.0
        assert policy.decide(110.0) == 0.0

    def test_linear_in_between(self):
        policy = ManualProportionalPolicy(100.0, 102.0)
        assert policy.decide(100.5) == pytest.approx(0.75)

    def test_rejects_inverted_band(self):
        with pytest.raises(ConfigError):
            ManualProportionalPolicy(102.0, 100.0)


class TestControlTheoretic:
    def test_cool_system_full_duty(self):
        policy = make_policy("pid")
        assert policy.decide(100.0) == 1.0

    def test_hot_system_cuts_duty(self):
        policy = make_policy("pid")
        assert policy.decide(103.0) < 0.5

    def test_trigger_is_bottom_of_sensor_range(self):
        policy = make_policy("pid")
        config = DTMConfig()
        assert policy.trigger == pytest.approx(
            config.pid_setpoint - config.pid_sensor_halfrange
        )

    def test_measurement_clamped_to_sensor_range(self):
        # Readings beyond the range must not change the response.
        policy_a = make_policy("pid")
        policy_b = make_policy("pid")
        assert policy_a.decide(103.0) == policy_b.decide(200.0)

    def test_reset_clears_controller(self):
        policy = make_policy("pi")
        for _ in range(10):
            policy.decide(101.9)
        policy.reset()
        assert policy.controller.integral == 0.0

    def test_rejects_nonpositive_halfrange(self):
        policy = make_policy("pid")
        with pytest.raises(ConfigError):
            ControlTheoreticPolicy(policy.controller, 101.8, 0.0, "x")


class TestMakePolicy:
    @pytest.mark.parametrize(
        "name, type_", [
            ("none", NoDTMPolicy),
            ("toggle1", FixedTogglePolicy),
            ("toggle2", FixedTogglePolicy),
            ("m", ManualProportionalPolicy),
            ("p", ControlTheoreticPolicy),
            ("pd", ControlTheoreticPolicy),
            ("pi", ControlTheoreticPolicy),
            ("pid", ControlTheoreticPolicy),
        ],
    )
    def test_factory_names(self, name, type_):
        assert isinstance(make_policy(name), type_)

    def test_unknown_name_raises(self):
        with pytest.raises(ConfigError):
            make_policy("fuzzy")

    def test_toggle1_full_stop(self):
        policy = make_policy("toggle1")
        assert policy.engaged_duty == 0.0

    def test_toggle2_half(self):
        policy = make_policy("toggle2")
        assert policy.engaged_duty == 0.5

    def test_nonct_check_interval_from_policy_delay(self):
        config = DTMConfig()
        policy = make_policy("toggle1", dtm_config=config)
        assert policy.check_interval_samples == (
            config.policy_delay // config.sampling_interval
        )

    def test_ct_checks_every_sample(self):
        assert make_policy("pid").check_interval_samples == 1

    def test_setpoint_override(self):
        policy = make_policy("pid", setpoint=101.4)
        assert policy.setpoint == 101.4
        toggle = make_policy("toggle1", setpoint=101.5)
        assert toggle.comparator.threshold == 101.5

    def test_p_family_has_midrange_bias(self):
        assert make_policy("p").controller.bias == 0.5
        assert make_policy("pd").controller.bias == 0.5
        assert make_policy("pid").controller.bias == 0.0

    def test_integral_families_have_integral_gain(self):
        assert make_policy("pi").controller.ki > 0
        assert make_policy("p").controller.ki == 0
