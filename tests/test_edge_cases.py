"""Edge-case tests across subsystem boundaries."""

import numpy as np
import pytest

from repro.config import DTMConfig, MachineConfig
from repro.dtm.manager import DTMManager
from repro.dtm.policies import make_policy
from repro.isa.instructions import Instruction, OpClass
from repro.sim.fast import FastEngine
from repro.sim.simulator import DetailedSimulator
from repro.uarch.pipeline import OutOfOrderCore
from repro.workloads.profiles import get_profile


class TestManagerEdges:
    def test_disengage_also_costs_an_interrupt(self):
        config = DTMConfig(
            use_interrupts=True, policy_delay=1000, sampling_interval=1000
        )
        manager = DTMManager(make_policy("toggle1", dtm_config=config), config)
        manager.on_sample(103.0)  # engage (first check at index 0)
        _, stall = manager.on_sample(100.0)  # disengage
        assert stall == config.interrupt_cost
        assert manager.interrupts.events == 2

    def test_quantization_changes_do_not_count_as_transitions(self):
        # CT duty moves between nonzero levels: engaged state unchanged,
        # so no interrupt events even when interrupts are enabled for
        # a hypothetical interrupt-driven CT policy.
        config = DTMConfig(use_interrupts=True)
        manager = DTMManager(make_policy("m", dtm_config=config), config)
        manager.on_sample(100.8)
        manager.on_sample(101.1)
        manager.on_sample(101.4)
        # M is not interrupt-driven, so the interrupt model is disabled.
        assert manager.interrupts.stall_cycles == 0

    def test_manager_with_custom_sampling_interval(self):
        config = DTMConfig(sampling_interval=4000)
        manager = DTMManager(make_policy("pid", dtm_config=config), config)
        assert manager.sampling_interval == 4000


class TestFastEngineEdges:
    def test_max_cycles_terminates_starved_run(self):
        # toggle1 pinned on (trigger below any achievable temperature)
        # makes zero progress; the cycle budget must end the run.
        policy = make_policy("toggle1", setpoint=0.0)
        engine = FastEngine(get_profile("gzip"), policy=policy)
        result = engine.run(instructions=1_000_000, max_cycles=200_000)
        assert result.cycles <= 200_000

    def test_single_sample_run(self):
        result = FastEngine(get_profile("gzip")).run(
            instructions=1, max_cycles=1000
        )
        assert result.cycles == 1000

    def test_zero_jitter_profile_is_exactly_repeatable(self):
        from repro.workloads.patterns import step_profile

        a = FastEngine(step_profile(), seed=1).run(instructions=400_000)
        b = FastEngine(step_profile(), seed=99).run(instructions=400_000)
        # No jitter: the seed cannot matter.
        assert a.mean_chip_power == b.mean_chip_power
        assert a.max_temperature == b.max_temperature

    def test_history_with_warmup_excludes_warmup_samples(self):
        engine = FastEngine(get_profile("gzip"), record_history=True)
        with_warmup = engine.run(
            instructions=200_000, warmup_instructions=200_000
        )
        expected_samples = with_warmup.cycles // 1000
        assert with_warmup.history.samples == expected_samples


class TestDetailedSimEdges:
    def test_sampling_interval_respected(self):
        config = DTMConfig(sampling_interval=2500)
        sim = DetailedSimulator(
            get_profile("gzip"), policy=make_policy("pid", dtm_config=config),
            dtm_config=config, seed=1,
        )
        sim.run(max_cycles=10_000)
        assert sim.manager.samples == 4  # checks at 0, 2500, 5000, 7500

    def test_interrupt_stall_blocks_fetch(self):
        config = DTMConfig(
            use_interrupts=True, policy_delay=1000, interrupt_cost=500
        )
        # Trigger below idle temperature: engages on the first check.
        policy = make_policy("toggle1", setpoint=99.0, dtm_config=config)
        sim = DetailedSimulator(
            get_profile("gzip"), policy=policy, dtm_config=config, seed=1
        )
        result = sim.run(max_cycles=5_000)
        assert result.interrupt_stall_cycles > 0


class TestPipelineEdges:
    def test_nop_stream_commits(self):
        def nops():
            index = 0
            while True:
                yield Instruction(
                    pc=0x400000 + (index * 4) % 1024, op=OpClass.NOP
                )
                index += 1

        core = OutOfOrderCore(MachineConfig(), nops())
        result = core.run(max_cycles=5000)
        assert result.stats.committed > 1000

    def test_store_only_stream_bounded_by_mem_ports(self):
        def stores():
            index = 0
            while True:
                yield Instruction(
                    pc=0x400000 + (index * 4) % 1024,
                    op=OpClass.STORE,
                    src_regs=(1,),
                    address=0x1000_0000 + (index % 512) * 8,
                )
                index += 1

        core = OutOfOrderCore(MachineConfig(), stores())
        core.run(max_cycles=4000)  # warm
        committed0 = core.stats.committed
        cycles0 = core.stats.cycles
        core.run(max_cycles=4000)
        ipc = (core.stats.committed - committed0) / (core.stats.cycles - cycles0)
        assert ipc <= 2.05  # two memory ports

    def test_narrow_machine_configuration_runs(self):
        config = MachineConfig(
            fetch_width=1, decode_width=1, issue_width=1,
            int_issue_width=1, fp_issue_width=1, commit_width=1,
            ruu_entries=8, lsq_entries=4,
        )
        core = OutOfOrderCore(
            config,
            (Instruction(pc=0x400000 + (i * 4) % 512, op=OpClass.INT_ALU,
                         dest_reg=i % 8) for i in range(10**9)),
        )
        result = core.run(max_cycles=3000)
        assert 0 < result.ipc <= 1.0


class TestNumericalEdges:
    def test_thermal_model_handles_zero_length_history(self):
        from repro.thermal.floorplan import Floorplan
        from repro.thermal.lumped import LumpedThermalModel

        model = LumpedThermalModel(Floorplan.default(), 100.0)
        frac = model.fraction_above(
            np.full(7, 100.0), np.full(7, 100.0), 1e-9, 102.0
        )
        assert np.all(frac == 0.0)

    def test_controller_with_extreme_measurement(self):
        policy = make_policy("pid")
        assert policy.decide(1e6) == 0.0  # clamped, fully throttled
        policy.reset()
        assert policy.decide(-1e6) == 1.0  # clamped, fully open
