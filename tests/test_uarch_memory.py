"""Tests for caches, the memory hierarchy, and the TLB."""

import pytest

from repro.config import CacheConfig
from repro.errors import ConfigError
from repro.uarch.caches import Cache, MemoryHierarchy
from repro.uarch.tlb import PAGE_BYTES, TLB


def small_cache(size=1024, assoc=2, block=32):
    return Cache(CacheConfig("test", size, assoc, block, 1))


class TestCache:
    def test_cold_miss_then_hit(self):
        cache = small_cache()
        assert not cache.access(0x1000)
        assert cache.access(0x1000)

    def test_same_block_different_word_hits(self):
        cache = small_cache(block=32)
        cache.access(0x1000)
        assert cache.access(0x101F)  # last byte of the same 32 B block
        assert not cache.access(0x1020)  # next block

    def test_lru_eviction(self):
        cache = small_cache(size=128, assoc=2, block=32)  # 2 sets
        set_stride = 2 * 32
        a, b, c = 0x0, set_stride, 2 * set_stride  # all map to set 0
        cache.access(a)
        cache.access(b)
        cache.access(a)  # A is MRU, B is LRU
        cache.access(c)  # evicts B
        assert cache.access(a)
        assert not cache.access(b)

    def test_dirty_eviction_counts_writeback(self):
        cache = small_cache(size=128, assoc=2, block=32)
        set_stride = 2 * 32
        cache.access(0x0, is_write=True)
        cache.access(set_stride)
        cache.access(2 * set_stride)  # evicts the dirty block
        assert cache.writebacks == 1

    def test_clean_eviction_no_writeback(self):
        cache = small_cache(size=128, assoc=2, block=32)
        set_stride = 2 * 32
        cache.access(0x0)
        cache.access(set_stride)
        cache.access(2 * set_stride)
        assert cache.writebacks == 0

    def test_read_after_write_keeps_dirty(self):
        cache = small_cache(size=128, assoc=2, block=32)
        set_stride = 2 * 32
        cache.access(0x0, is_write=True)
        cache.access(0x0)  # read hit must not clear the dirty bit
        cache.access(set_stride)
        cache.access(2 * set_stride)
        assert cache.writebacks == 1

    def test_miss_rate(self):
        cache = small_cache()
        cache.access(0x0)
        cache.access(0x0)
        cache.access(0x0)
        assert cache.miss_rate == pytest.approx(1 / 3)

    def test_probe_does_not_disturb_state(self):
        cache = small_cache()
        cache.access(0x1000)
        accesses_before = cache.accesses
        assert cache.probe(0x1000)
        assert not cache.probe(0x2000)
        assert cache.accesses == accesses_before

    def test_working_set_fitting_in_cache_has_no_steady_misses(self):
        cache = small_cache(size=4096, assoc=2, block=32)
        addresses = list(range(0, 2048, 32))
        for address in addresses:  # warm
            cache.access(address)
        cache.hits = cache.misses = cache.accesses = 0
        for _ in range(10):
            for address in addresses:
                cache.access(address)
        assert cache.miss_rate == 0.0


class TestMemoryHierarchy:
    def build(self):
        return MemoryHierarchy(
            l1_icache=CacheConfig("il1", 1024, 2, 32, 1),
            l1_dcache=CacheConfig("dl1", 1024, 2, 32, 1),
            l2_cache=CacheConfig("ul2", 8192, 4, 32, 11),
            memory_latency=100,
        )

    def test_l1_hit_latency(self):
        hierarchy = self.build()
        hierarchy.data_access(0x1000)
        assert hierarchy.data_access(0x1000) == 1

    def test_cold_miss_costs_memory(self):
        hierarchy = self.build()
        assert hierarchy.data_access(0x1000) == 1 + 11 + 100

    def test_l2_hit_after_l1_eviction(self):
        hierarchy = self.build()
        hierarchy.data_access(0x1000)
        # Evict 0x1000 from tiny L1 by touching conflicting blocks.
        set_stride = (1024 // (2 * 32)) * 32
        hierarchy.data_access(0x1000 + set_stride)
        hierarchy.data_access(0x1000 + 2 * set_stride)
        # Back to 0x1000: L1 miss, L2 hit.
        assert hierarchy.data_access(0x1000) == 1 + 11

    def test_instruction_fetch_uses_icache(self):
        hierarchy = self.build()
        hierarchy.instruction_fetch(0x400000)
        assert hierarchy.il1.accesses == 1
        assert hierarchy.dl1.accesses == 0

    def test_l2_is_shared(self):
        hierarchy = self.build()
        hierarchy.instruction_fetch(0x400000)  # brings block into L2
        assert hierarchy.data_access(0x400000) == 1 + 11  # L2 hit

    def test_rejects_nonpositive_memory_latency(self):
        with pytest.raises(ConfigError):
            MemoryHierarchy(
                CacheConfig("il1", 1024, 2, 32, 1),
                CacheConfig("dl1", 1024, 2, 32, 1),
                CacheConfig("ul2", 8192, 4, 32, 11),
                memory_latency=0,
            )


class TestTLB:
    def test_miss_then_hit(self):
        tlb = TLB(entries=4, miss_penalty=30)
        assert tlb.access(0x1000) == 30
        assert tlb.access(0x1000) == 0

    def test_same_page_hits(self):
        tlb = TLB(entries=4, miss_penalty=30)
        tlb.access(0)
        assert tlb.access(PAGE_BYTES - 1) == 0
        assert tlb.access(PAGE_BYTES) == 30

    def test_lru_replacement(self):
        tlb = TLB(entries=2, miss_penalty=30)
        tlb.access(0 * PAGE_BYTES)
        tlb.access(1 * PAGE_BYTES)
        tlb.access(0 * PAGE_BYTES)  # page 1 becomes LRU
        tlb.access(2 * PAGE_BYTES)  # evicts page 1
        assert tlb.access(0 * PAGE_BYTES) == 0
        assert tlb.access(1 * PAGE_BYTES) == 30

    def test_miss_rate(self):
        tlb = TLB(entries=4)
        tlb.access(0)
        tlb.access(0)
        assert tlb.miss_rate == pytest.approx(0.5)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigError):
            TLB(entries=0)
        with pytest.raises(ConfigError):
            TLB(miss_penalty=-1)
