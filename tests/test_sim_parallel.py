"""The parallel sweep executor: determinism, telemetry parity, plumbing.

The headline guarantee -- ``jobs=N`` is bit-identical to ``jobs=1`` --
is asserted twice: once on a fixed matrix with full telemetry parity
(trace records, events, metrics, meta), and once as a hypothesis
property over random benchmark/policy/seed subsets and ``jobs in
{1, 2, 4}``.

Metric parity note: results and traces are *exactly* equal.  Metrics
obey the documented associative merge semantics of
:meth:`repro.telemetry.metrics.MetricsRegistry.merge_snapshot`:
counters, histogram bin counts, min/max, and gauge extremes are exactly
equal; histogram ``sum`` is a regrouped float summation (equal to ~1
ulp); a merged gauge's ``value`` is pinned to its ``extreme``.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import TelemetryConfig
from repro.errors import ConfigError
from repro.sim.parallel import (
    WorkSpec,
    get_default_jobs,
    matrix_specs,
    resolve_jobs,
    run_specs,
    set_default_jobs,
)
from repro.sim.sweep import run_one, run_suite
from repro.telemetry.core import Telemetry

RESULT_FIELDS = (
    "benchmark",
    "policy",
    "cycles",
    "instructions",
    "emergency_fraction",
    "stress_fraction",
    "block_emergency_fraction",
    "block_stress_fraction",
    "mean_block_temperature",
    "max_block_temperature",
    "mean_chip_power",
    "max_chip_power",
    "energy_joules",
    "engaged_fraction",
    "interrupt_events",
    "interrupt_stall_cycles",
    "extra",
)

#: Short budget: parity does not depend on run length.
INSTRUCTIONS = 150_000


def quiet_telemetry() -> Telemetry:
    """Deterministic sink: no wall-clock observations, no spans."""
    return Telemetry(TelemetryConfig(sample_latency=False, profile=False))


def assert_results_equal(a, b):
    for field in RESULT_FIELDS:
        assert getattr(a, field) == getattr(b, field), field


def nan_equal(a, b) -> bool:
    """Structural equality where NaN == NaN (trace fields default NaN)."""
    if isinstance(a, float) and isinstance(b, float):
        return a == b or (math.isnan(a) and math.isnan(b))
    if isinstance(a, (list, tuple)) and isinstance(b, (list, tuple)):
        return len(a) == len(b) and all(nan_equal(x, y) for x, y in zip(a, b))
    if isinstance(a, dict) and isinstance(b, dict):
        return a.keys() == b.keys() and all(nan_equal(a[k], b[k]) for k in a)
    return a == b


def assert_metrics_match(serial: dict, parallel: dict):
    """Exact equality up to the documented merge semantics."""
    assert serial.keys() == parallel.keys()
    for name in serial:
        a, b = serial[name], parallel[name]
        assert a["kind"] == b["kind"], name
        if a["kind"] == "counter":
            assert a == b, name
        elif a["kind"] == "gauge":
            assert a["extreme"] == b["extreme"], name
            assert a["updates"] == b["updates"], name
            assert a["prefer"] == b["prefer"], name
            # Serial (jobs=1) keeps last-set semantics; merged worker
            # snapshots pin value to the extreme (documented).
            assert b["value"] in (a["value"], b["extreme"]), name
        else:  # histogram
            assert a["edges"] == b["edges"], name
            assert a["counts"] == b["counts"], name
            assert a["count"] == b["count"], name
            assert a["min"] == b["min"] and a["max"] == b["max"], name
            assert a["nan_count"] == b["nan_count"], name
            # Regrouped float summation: equal to ~1 ulp.
            assert a["sum"] == pytest.approx(b["sum"], rel=1e-12), name


class TestWorkSpec:
    def test_key_is_matrix_coordinate(self):
        spec = WorkSpec(benchmark="gcc", policy="pid", seed=9)
        assert spec.key == ("gcc", "pid", 9)

    def test_matrix_specs_canonical_order(self):
        specs = matrix_specs(["a", "b"], ["p", "q"], seeds=(0, 1))
        assert [s.key for s in specs] == [
            ("a", "p", 0), ("a", "p", 1), ("a", "q", 0), ("a", "q", 1),
            ("b", "p", 0), ("b", "p", 1), ("b", "q", 0), ("b", "q", 1),
        ]

    def test_matrix_specs_baseline_first(self):
        specs = matrix_specs(["a"], ["pid"], include_baseline=True)
        assert [s.policy for s in specs] == ["none", "pid"]

    def test_execute_matches_run_one(self):
        spec = WorkSpec(benchmark="gzip", policy="pid", instructions=INSTRUCTIONS)
        [result] = run_specs([spec], jobs=1)
        direct = run_one("gzip", "pid", instructions=INSTRUCTIONS)
        assert_results_equal(result, direct)


class TestResolveJobs:
    def test_none_uses_process_default(self):
        assert resolve_jobs(None, 8) == get_default_jobs() == 1

    def test_zero_means_all_cores_clamped_to_tasks(self):
        assert resolve_jobs(0, 1) == 1

    def test_clamped_to_task_count(self):
        assert resolve_jobs(16, 3) == 3

    def test_default_jobs_round_trip(self):
        set_default_jobs(3)
        try:
            assert get_default_jobs() == 3
            assert resolve_jobs(None, 8) == 3
        finally:
            set_default_jobs(1)

    def test_rejects_negative_and_non_int(self):
        with pytest.raises(ConfigError):
            set_default_jobs(-1)
        with pytest.raises(ConfigError):
            resolve_jobs(-2, 4)
        with pytest.raises(ConfigError):
            resolve_jobs(1.5, 4)  # type: ignore[arg-type]

    def test_rejects_bool(self):
        # bool is an int subclass: set_default_jobs(True) used to pass
        # the isinstance check and silently mean "one worker".
        with pytest.raises(ConfigError):
            set_default_jobs(True)
        with pytest.raises(ConfigError):
            set_default_jobs(False)
        with pytest.raises(ConfigError):
            resolve_jobs(True, 4)  # type: ignore[arg-type]


class TestSubmissionWindow:
    def test_window_bounds_in_flight_submissions(self):
        from repro.sim.parallel import _submission_window

        assert _submission_window(4) == 16
        assert _submission_window(4, window_factor=2) == 8
        # Degenerate inputs clamp to at least one in-flight spec.
        assert _submission_window(0) == 4
        assert _submission_window(1, window_factor=0) == 1


class TestParallelBitIdentity:
    def test_run_specs_parallel_matches_serial(self):
        specs = matrix_specs(
            ["gcc", "gzip"],
            ["pid", "toggle1"],
            include_baseline=True,
            instructions=INSTRUCTIONS,
        )
        serial = run_specs(specs, jobs=1)
        parallel = run_specs(specs, jobs=4)
        for a, b in zip(serial, parallel):
            assert_results_equal(a, b)

    def test_run_suite_parallel_matches_serial(self):
        kwargs = dict(
            policies=["pid"],
            benchmarks=["gcc", "art"],
            instructions=INSTRUCTIONS,
            seed=5,
        )
        serial = run_suite(**kwargs)
        parallel = run_suite(jobs=2, **kwargs)
        assert serial.keys() == parallel.keys()
        for key in serial:
            assert_results_equal(serial[key], parallel[key])

    def test_telemetry_parity(self):
        kwargs = dict(
            policies=["pid", "toggle1"],
            benchmarks=["gcc", "gzip"],
            instructions=INSTRUCTIONS,
            seed=3,
        )
        t_serial = quiet_telemetry()
        run_suite(telemetry=t_serial, **kwargs)
        t_parallel = quiet_telemetry()
        run_suite(telemetry=t_parallel, jobs=4, **kwargs)

        serial_records = [r.to_dict() for r in t_serial.trace.records()]
        parallel_records = [r.to_dict() for r in t_parallel.trace.records()]
        assert len(serial_records) == len(parallel_records)
        assert t_serial.trace.emitted == t_parallel.trace.emitted
        assert t_serial.trace.stride == t_parallel.trace.stride
        for a, b in zip(serial_records, parallel_records):
            assert nan_equal(a, b)

        serial_events = [e.to_dict() for e in t_serial.trace.events]
        parallel_events = [e.to_dict() for e in t_parallel.trace.events]
        assert nan_equal(serial_events, parallel_events)

        assert_metrics_match(
            t_serial.metrics.snapshot(), t_parallel.metrics.snapshot()
        )
        assert nan_equal(t_serial.meta, t_parallel.meta)
        assert (t_serial.benchmark, t_serial.policy) == (
            t_parallel.benchmark,
            t_parallel.policy,
        )

    def test_record_history_survives_pickling(self):
        specs = [
            WorkSpec(
                benchmark="gcc",
                policy="pid",
                instructions=INSTRUCTIONS,
                record_history=True,
            )
        ] * 2
        serial = run_specs(specs, jobs=1)
        parallel = run_specs(specs, jobs=2)
        assert parallel[0].history is not None
        import numpy as np

        for a, b in zip(serial, parallel):
            assert np.array_equal(a.history.block_temps, b.history.block_temps)
            assert np.array_equal(a.history.duty, b.history.duty)


class TestParallelProperty:
    @given(
        benchmarks=st.lists(
            st.sampled_from(["gcc", "gzip", "art", "mesa"]),
            min_size=1,
            max_size=2,
            unique=True,
        ),
        policies=st.lists(
            st.sampled_from(["none", "toggle1", "pi", "pid"]),
            min_size=1,
            max_size=2,
            unique=True,
        ),
        seeds=st.lists(
            st.integers(min_value=0, max_value=2**16),
            min_size=1,
            max_size=2,
            unique=True,
        ),
        jobs=st.sampled_from([1, 2, 4]),
    )
    @settings(max_examples=8, deadline=None)
    def test_parallel_is_bit_identical_to_serial(
        self, benchmarks, policies, seeds, jobs
    ):
        specs = matrix_specs(
            benchmarks, policies, seeds=seeds, instructions=INSTRUCTIONS
        )
        t_serial = quiet_telemetry()
        serial = run_specs(specs, jobs=1, telemetry=t_serial)
        t_parallel = quiet_telemetry()
        parallel = run_specs(specs, jobs=jobs, telemetry=t_parallel)
        for a, b in zip(serial, parallel):
            assert_results_equal(a, b)
        assert_metrics_match(
            t_serial.metrics.snapshot(), t_parallel.metrics.snapshot()
        )
        assert t_serial.trace.emitted == t_parallel.trace.emitted
        for a, b in zip(t_serial.trace.records(), t_parallel.trace.records()):
            assert nan_equal(a.to_dict(), b.to_dict())
