"""Tests for the load-store queue and store-to-load forwarding."""

import itertools

import pytest

from repro.config import MachineConfig
from repro.errors import SimulationError
from repro.isa.instructions import Instruction, OpClass
from repro.uarch.lsq import LoadStoreQueue
from repro.uarch.pipeline import OutOfOrderCore


class TestOccupancy:
    def test_dispatch_and_commit(self):
        lsq = LoadStoreQueue(capacity=4)
        lsq.dispatch(is_store=False, address=0x100)
        lsq.dispatch(is_store=True, address=0x200)
        assert lsq.occupancy == 2
        lsq.commit(is_store=False, address=0x100)
        assert lsq.occupancy == 1

    def test_full_flag(self):
        lsq = LoadStoreQueue(capacity=2)
        lsq.dispatch(False, 0)
        lsq.dispatch(False, 8)
        assert lsq.full
        with pytest.raises(SimulationError):
            lsq.dispatch(False, 16)

    def test_commit_from_empty_rejected(self):
        with pytest.raises(SimulationError):
            LoadStoreQueue().commit(False, 0)

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(SimulationError):
            LoadStoreQueue(capacity=0)


class TestForwarding:
    def test_load_forwards_from_inflight_store(self):
        lsq = LoadStoreQueue()
        lsq.dispatch(is_store=True, address=0x1000)
        assert lsq.load_forwards(0x1000)

    def test_word_granularity(self):
        lsq = LoadStoreQueue()
        lsq.dispatch(is_store=True, address=0x1000)
        assert lsq.load_forwards(0x1004)  # same 8-byte word
        assert not lsq.load_forwards(0x1008)  # next word

    def test_no_forward_after_store_commits(self):
        lsq = LoadStoreQueue()
        lsq.dispatch(is_store=True, address=0x1000)
        lsq.commit(is_store=True, address=0x1000)
        assert not lsq.load_forwards(0x1000)

    def test_loads_do_not_forward_to_loads(self):
        lsq = LoadStoreQueue()
        lsq.dispatch(is_store=False, address=0x1000)
        assert not lsq.load_forwards(0x1000)

    def test_duplicate_stores_counted(self):
        lsq = LoadStoreQueue()
        lsq.dispatch(is_store=True, address=0x1000)
        lsq.dispatch(is_store=True, address=0x1000)
        lsq.commit(is_store=True, address=0x1000)
        assert lsq.load_forwards(0x1000)  # one store still in flight

    def test_forwarding_rate(self):
        lsq = LoadStoreQueue()
        lsq.dispatch(is_store=True, address=0x1000)
        lsq.load_forwards(0x1000)
        lsq.load_forwards(0x2000)
        assert lsq.forwarding_rate == pytest.approx(0.5)


class TestPipelineIntegration:
    def store_load_stream(self):
        """store to X immediately followed by a load from X, forever."""
        index = 0
        while True:
            address = 0x1000_0000 + (index % 64) * 8
            pc = 0x400000 + (index * 8) % 4096
            yield Instruction(pc=pc, op=OpClass.STORE, src_regs=(1,),
                              address=address)
            yield Instruction(pc=pc + 4, op=OpClass.LOAD, dest_reg=2,
                              src_regs=(), address=address)
            index += 1

    def test_forwarding_happens_in_pipeline(self):
        core = OutOfOrderCore(MachineConfig(), self.store_load_stream())
        core.run(max_cycles=5000)
        assert core.lsq.forwarded_loads > 0
        assert core.lsq.forwarding_rate > 0.3

    def test_lsq_drains_at_commit(self):
        core = OutOfOrderCore(MachineConfig(), self.store_load_stream())
        core.run(max_cycles=5000)
        assert core.lsq.occupancy <= core.lsq.capacity

    def test_itlb_sees_fetch_traffic(self):
        core = OutOfOrderCore(MachineConfig(), self.store_load_stream())
        core.run(max_cycles=2000)
        assert core.itlb.accesses > 0
        # 4 KB code loop: a single page, so at most one I-TLB miss.
        assert core.itlb.misses <= 1
