"""Tests for the 18 SPEC2000-like benchmark profiles."""

import pytest

from repro.errors import WorkloadError
from repro.thermal.floorplan import Floorplan
from repro.workloads.profiles import (
    BENCHMARKS,
    ThermalCategory,
    get_profile,
    profiles_by_category,
)

#: Steady-state rise of a block at activity u (CC3, 15 % idle power).
def steady_rise(block, activity):
    return block.peak_power * (0.15 + 0.85 * activity) * block.resistance


class TestRegistry:
    def test_eighteen_benchmarks(self):
        assert len(BENCHMARKS) == 18

    def test_paper_names_present(self):
        expected = {
            "gzip", "wupwise", "vpr", "gcc", "mesa", "art", "equake",
            "crafty", "facerec", "fma3d", "parser", "eon", "perlbmk",
            "gap", "vortex", "bzip2", "twolf", "apsi",
        }
        assert set(BENCHMARKS) == expected

    def test_get_profile_unknown_raises(self):
        with pytest.raises(WorkloadError):
            get_profile("linpack")

    def test_categories_cover_all(self):
        total = sum(
            len(profiles_by_category(category)) for category in ThermalCategory
        )
        assert total == 18

    def test_four_extreme_benchmarks(self):
        extreme = profiles_by_category(ThermalCategory.EXTREME)
        assert {p.name for p in extreme} == {"gcc", "equake", "fma3d", "perlbmk"}

    def test_seeds_are_unique(self):
        seeds = [profile.seed for profile in BENCHMARKS.values()]
        assert len(set(seeds)) == len(seeds)

    def test_mix_of_int_and_fp(self):
        fp = [p.name for p in BENCHMARKS.values() if p.is_fp]
        assert "equake" in fp and "art" in fp
        assert "gcc" not in fp


class TestPhaseLookup:
    def test_phase_at_start(self):
        profile = get_profile("gcc")
        assert profile.phase_at(0) is profile.phases[0]

    def test_phase_boundaries(self):
        profile = get_profile("gcc")
        first_len = profile.phases[0].instructions
        assert profile.phase_at(first_len - 1) is profile.phases[0]
        assert profile.phase_at(first_len) is profile.phases[1]

    def test_wraps_around(self):
        profile = get_profile("gcc")
        total = profile.total_instructions
        assert profile.phase_at(total) is profile.phases[0]
        assert profile.phase_at(3 * total + 5) is profile.phase_at(5)

    def test_negative_index_rejected(self):
        with pytest.raises(WorkloadError):
            get_profile("gcc").phase_at(-1)

    def test_mean_ipc_is_weighted(self):
        profile = get_profile("art")
        ipcs = [phase.ipc for phase in profile.phases]
        assert min(ipcs) <= profile.mean_ipc <= max(ipcs)


class TestThermalCalibration:
    """The profiles must realize their declared thermal categories
    (steady-state check against the floorplan; the dynamic check lives
    in the integration tests)."""

    @pytest.fixture(scope="class")
    def floorplan(self):
        return Floorplan.default()

    def hottest_steady_rise(self, profile, floorplan):
        worst = 0.0
        for phase in profile.phases:
            for block in floorplan.blocks:
                rise = steady_rise(block, phase.activity.get(block.name, 0.0))
                worst = max(worst, rise)
        return worst

    def test_extreme_profiles_exceed_emergency_steadily(self, floorplan):
        for profile in profiles_by_category(ThermalCategory.EXTREME):
            assert self.hottest_steady_rise(profile, floorplan) > 2.0, profile.name

    def test_low_profiles_stay_below_stress(self, floorplan):
        for profile in profiles_by_category(ThermalCategory.LOW):
            assert self.hottest_steady_rise(profile, floorplan) < 1.0, profile.name

    def test_medium_profiles_between_stress_and_emergency(self, floorplan):
        for profile in profiles_by_category(ThermalCategory.MEDIUM):
            worst = self.hottest_steady_rise(profile, floorplan)
            assert 1.0 < worst < 2.0, profile.name

    def test_art_is_bursty(self):
        # Hot short phase + cool long phase (the paper's description).
        art = get_profile("art")
        hot = max(art.phases, key=lambda p: max(p.activity.values()))
        cool = min(art.phases, key=lambda p: max(p.activity.values()))
        assert hot.instructions < cool.instructions / 4
        assert max(hot.activity.values()) > 1.5 * max(cool.activity.values())

    def test_mesa_is_steady_near_threshold(self, floorplan):
        mesa = get_profile("mesa")
        assert len(mesa.phases) == 1
        worst = self.hottest_steady_rise(mesa, floorplan)
        assert 1.5 < worst < 2.0  # near but below emergency
        assert mesa.phases[0].jitter <= 0.03  # low variance keeps it safe
