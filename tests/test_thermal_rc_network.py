"""Tests for the general thermal RC network solver (Figure 3B model)."""

import numpy as np
import pytest

from repro.errors import ThermalModelError
from repro.thermal.rc_network import ThermalRCNetwork


def single_node_network(r=2.0, c=60.0, ambient=27.0):
    network = ThermalRCNetwork()
    network.add_node("die", c, ambient)
    network.connect_reference("die", ambient, r)
    return network


class TestConstruction:
    def test_duplicate_node_rejected(self):
        network = ThermalRCNetwork()
        network.add_node("a", 1.0, 0.0)
        with pytest.raises(ThermalModelError):
            network.add_node("a", 1.0, 0.0)

    def test_self_connection_rejected(self):
        network = ThermalRCNetwork()
        network.add_node("a", 1.0, 0.0)
        with pytest.raises(ThermalModelError):
            network.connect("a", "a", 1.0)

    def test_unknown_node_rejected(self):
        network = ThermalRCNetwork()
        network.add_node("a", 1.0, 0.0)
        with pytest.raises(ThermalModelError):
            network.connect("a", "b", 1.0)

    def test_nonpositive_resistance_rejected(self):
        network = ThermalRCNetwork()
        network.add_node("a", 1.0, 0.0)
        network.add_node("b", 1.0, 0.0)
        with pytest.raises(ThermalModelError):
            network.connect("a", "b", 0.0)

    def test_nonpositive_capacitance_rejected(self):
        network = ThermalRCNetwork()
        with pytest.raises(ThermalModelError):
            network.add_node("a", 0.0, 0.0)

    def test_empty_network_cannot_step(self):
        network = ThermalRCNetwork()
        with pytest.raises(ThermalModelError):
            network.step({}, 1.0)


class TestSingleNode:
    def test_steady_state_matches_ohms_law(self):
        network = single_node_network()
        steady = network.steady_state({"die": 25.0})
        assert steady["die"] == pytest.approx(77.0)

    def test_step_approaches_steady_state(self):
        network = single_node_network()
        for _ in range(100):
            network.step({"die": 25.0}, 10.0)
        assert network.temperature("die") == pytest.approx(77.0, abs=0.1)

    def test_one_time_constant_reaches_63_percent(self):
        network = single_node_network(r=2.0, c=60.0)
        network.run({"die": 25.0}, duration=120.0, dt=0.05)
        expected = 27.0 + 50.0 * (1 - np.exp(-1))
        assert network.temperature("die") == pytest.approx(expected, abs=0.3)

    def test_cooling_returns_to_ambient(self):
        network = single_node_network()
        network.run({"die": 25.0}, duration=600.0, dt=0.1)
        network.run({}, duration=1200.0, dt=0.1)
        assert network.temperature("die") == pytest.approx(27.0, abs=0.1)

    def test_reset_restores_initial(self):
        network = single_node_network()
        network.run({"die": 25.0}, duration=100.0, dt=0.1)
        network.reset()
        assert network.temperature("die") == pytest.approx(27.0)


class TestTwoNodes:
    def build(self):
        network = ThermalRCNetwork()
        network.add_node("die", 0.1, 27.0)
        network.add_node("sink", 60.0, 27.0)
        network.connect("die", "sink", 1.0)
        network.connect_reference("sink", 27.0, 1.0)
        return network

    def test_steady_state_stacks_resistances(self):
        steady = self.build().steady_state({"die": 25.0})
        assert steady["sink"] == pytest.approx(52.0)
        assert steady["die"] == pytest.approx(77.0)

    def test_integration_matches_steady_state(self):
        network = self.build()
        network.run({"die": 25.0}, duration=1200.0, dt=0.5)
        assert network.temperature("die") == pytest.approx(77.0, abs=0.5)

    def test_die_leads_sink_during_heating(self):
        network = self.build()
        network.run({"die": 25.0}, duration=5.0, dt=0.01)
        temps = network.temperatures()
        assert temps["die"] > temps["sink"]

    def test_no_reference_steady_state_raises(self):
        network = ThermalRCNetwork()
        network.add_node("a", 1.0, 0.0)
        network.add_node("b", 1.0, 0.0)
        network.connect("a", "b", 1.0)
        with pytest.raises(ThermalModelError):
            network.steady_state({"a": 1.0})


class TestConservation:
    def test_zero_power_isothermal_equilibrium(self):
        network = ThermalRCNetwork()
        for name in ("a", "b", "c"):
            network.add_node(name, 1e-3, 100.0)
        network.connect("a", "b", 5.0)
        network.connect("b", "c", 3.0)
        network.connect_reference("a", 100.0, 1.0)
        network.run({}, duration=1.0, dt=1e-3)
        for temp in network.temperatures().values():
            assert temp == pytest.approx(100.0, abs=1e-9)

    def test_unknown_power_node_raises(self):
        network = single_node_network()
        with pytest.raises(ThermalModelError):
            network.step({"nope": 1.0}, 1.0)

    def test_substepping_keeps_explicit_euler_stable(self):
        # dt far above the stability bound must still converge (the
        # integrator sub-steps internally).
        network = single_node_network(r=0.1, c=1e-4)  # tau = 10 us
        network.step({"die": 10.0}, dt=1.0)  # 100,000x the bound
        assert network.temperature("die") == pytest.approx(28.0, abs=1e-3)
