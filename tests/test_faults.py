"""Unit tests for the fault-injection subsystem (repro.faults)."""

import math

import pytest

from repro.dtm.mechanisms import FetchToggling
from repro.errors import FaultError
from repro.faults import FaultSchedule, FaultWindow, FaultyActuator, FaultySensor
from repro.thermal.sensors import IdealSensor, NoisySensor


class TestFaultWindow:
    def test_active_is_half_open(self):
        window = FaultWindow(10, 20)
        assert not window.active(9)
        assert window.active(10)
        assert window.active(19)
        assert not window.active(20)

    def test_rejects_bad_intervals(self):
        with pytest.raises(FaultError):
            FaultWindow(-1, 5)
        with pytest.raises(FaultError):
            FaultWindow(5, 5)
        with pytest.raises(FaultError):
            FaultWindow(7, 3)


class TestFaultSchedule:
    def test_rejects_bad_rates(self):
        with pytest.raises(FaultError):
            FaultSchedule(dropout_rate=1.5)
        with pytest.raises(FaultError):
            FaultSchedule(spike_rate=-0.1)
        with pytest.raises(FaultError):
            FaultSchedule(stale_rate=2.0)
        with pytest.raises(FaultError):
            FaultSchedule(spike_magnitude=-1.0)
        with pytest.raises(FaultError):
            FaultSchedule(stale_depth=0)

    def test_trivial_schedule_never_fires(self):
        schedule = FaultSchedule(seed=3)
        assert schedule.is_trivial
        for index in range(200):
            assert not schedule.dropout(index)
            assert schedule.spike(index) == 0.0
            assert not schedule.stale(index)
            assert schedule.drift(index) == 0.0
            assert schedule.sensor_stuck(index) is None
            assert schedule.actuator_stuck(index) is None
            assert not schedule.actuator_ignores(index)

    def test_draws_are_order_independent(self):
        schedule = FaultSchedule(seed=11, dropout_rate=0.3)
        forward = [schedule.dropout(i) for i in range(100)]
        backward = [schedule.dropout(i) for i in reversed(range(100))]
        assert forward == list(reversed(backward))

    def test_rates_are_approximately_honored(self):
        schedule = FaultSchedule(seed=5, dropout_rate=0.2)
        hits = sum(schedule.dropout(i) for i in range(5000))
        assert 0.15 < hits / 5000 < 0.25

    def test_channels_are_independent(self):
        schedule = FaultSchedule(seed=5, dropout_rate=0.5, stale_rate=0.5)
        dropouts = [schedule.dropout(i) for i in range(200)]
        stales = [schedule.stale(i) for i in range(200)]
        assert dropouts != stales

    def test_window_tuples_are_normalized(self):
        schedule = FaultSchedule(sensor_stuck_windows=[(5, 8)])
        assert schedule.sensor_stuck(5) == FaultWindow(5, 8)
        assert not schedule.is_trivial

    def test_drift_accumulates_linearly(self):
        schedule = FaultSchedule(drift_per_sample=0.01)
        assert schedule.drift(0) == 0.0
        assert schedule.drift(100) == pytest.approx(1.0)


class TestFaultySensor:
    def test_dropout_reports_nan(self):
        sensor = FaultySensor(IdealSensor(), FaultSchedule(seed=1, dropout_rate=1.0))
        assert math.isnan(sensor.read(100.0))
        assert sensor.dropouts == 1

    def test_stuck_at_last_value(self):
        schedule = FaultSchedule(sensor_stuck_windows=[(2, 5)])
        sensor = FaultySensor(IdealSensor(), schedule)
        assert sensor.read(100.0) == 100.0
        assert sensor.read(101.0) == 101.0
        # Window [2, 5): every reading repeats the last pre-window one.
        assert sensor.read(102.0) == 101.0
        assert sensor.read(103.0) == 101.0
        assert sensor.read(104.0) == 101.0
        # Window over: live readings resume.
        assert sensor.read(105.0) == 105.0
        assert sensor.stuck_reads == 3

    def test_stuck_at_railed_value(self):
        schedule = FaultSchedule(
            sensor_stuck_windows=[FaultWindow(1, 3, value=42.0)]
        )
        sensor = FaultySensor(IdealSensor(), schedule)
        assert sensor.read(100.0) == 100.0
        assert sensor.read(101.0) == 42.0
        assert sensor.read(102.0) == 42.0
        assert sensor.read(103.0) == 103.0

    def test_spikes_add_magnitude(self):
        schedule = FaultSchedule(seed=2, spike_rate=1.0, spike_magnitude=5.0)
        sensor = FaultySensor(IdealSensor(), schedule)
        readings = [sensor.read(100.0) for _ in range(50)]
        assert all(r in (95.0, 105.0) for r in readings)
        # Both polarities occur.
        assert any(r == 95.0 for r in readings)
        assert any(r == 105.0 for r in readings)
        assert sensor.spikes == 50

    def test_drift_biases_reading(self):
        schedule = FaultSchedule(drift_per_sample=0.1)
        sensor = FaultySensor(IdealSensor(), schedule)
        assert sensor.read(100.0) == pytest.approx(100.0)
        assert sensor.read(100.0) == pytest.approx(100.1)
        assert sensor.read(100.0) == pytest.approx(100.2)

    def test_stale_returns_old_reading(self):
        schedule = FaultSchedule(seed=0, stale_rate=1.0, stale_depth=2)
        sensor = FaultySensor(IdealSensor(), schedule)
        assert sensor.read(100.0) == 100.0  # nothing older yet
        assert sensor.read(101.0) == 100.0
        assert sensor.read(102.0) == 100.0
        assert sensor.read(103.0) == 101.0  # depth-2 lag established

    def test_reset_restarts_fault_stream(self):
        schedule = FaultSchedule(seed=9, dropout_rate=0.4)
        sensor = FaultySensor(IdealSensor(), schedule)
        first = [sensor.read(100.0) for _ in range(50)]
        sensor.reset()
        second = [sensor.read(100.0) for _ in range(50)]
        assert [math.isnan(a) for a in first] == [math.isnan(b) for b in second]
        assert sensor.sample_index == 50

    def test_wraps_noisy_sensor(self):
        reference = NoisySensor(noise_sigma=0.1, seed=4)
        wrapped = FaultySensor(
            NoisySensor(noise_sigma=0.1, seed=4), FaultSchedule()
        )
        for _ in range(20):
            assert wrapped.read(100.0) == reference.read(100.0)


class TestFaultyActuator:
    def test_delegates_when_trivial(self):
        actuator = FaultyActuator(FetchToggling(8), FaultSchedule())
        assert actuator.set_output(0.5) == pytest.approx(0.5, abs=0.08)
        assert actuator.duty == actuator.inner.duty
        assert actuator.levels == 8
        assert actuator.quantize(1.0) == 1.0

    def test_ignore_window_drops_commands(self):
        schedule = FaultSchedule(actuator_ignore_windows=[(1, 3)])
        actuator = FaultyActuator(FetchToggling(8), schedule)
        actuator.set_output(1.0)
        assert actuator.set_output(0.0) == 1.0  # ignored
        assert actuator.set_output(0.0) == 1.0  # ignored
        assert actuator.set_output(0.0) == 0.0  # window over
        assert actuator.ignored_commands == 2

    def test_stuck_window_freezes_pre_window_duty(self):
        schedule = FaultSchedule(actuator_stuck_windows=[(1, 3)])
        actuator = FaultyActuator(FetchToggling(8), schedule)
        actuator.set_output(1.0)
        assert actuator.set_output(0.0) == 1.0
        assert actuator.set_output(0.25) == 1.0
        assert actuator.stuck_commands == 2
        assert actuator.set_output(0.0) == 0.0

    def test_stuck_window_with_level(self):
        schedule = FaultSchedule(
            actuator_stuck_windows=[FaultWindow(0, 2, value=0.5)]
        )
        actuator = FaultyActuator(FetchToggling(8), schedule)
        assert actuator.set_output(1.0) == pytest.approx(0.5, abs=0.08)
        assert actuator.set_output(0.0) == pytest.approx(0.5, abs=0.08)
        assert actuator.set_output(1.0) == 1.0

    def test_allows_delegates_to_inner_gate(self):
        actuator = FaultyActuator(FetchToggling(8), FaultSchedule())
        actuator.set_output(1.0)
        assert all(actuator.allows(cycle) for cycle in range(10))

    def test_reset_clears_state(self):
        schedule = FaultSchedule(actuator_ignore_windows=[(0, 2)])
        actuator = FaultyActuator(FetchToggling(8), schedule)
        actuator.set_output(0.0)
        actuator.reset()
        assert actuator.duty == 1.0
        assert actuator.ignored_commands == 0
        # Fault stream restarted: the window applies again.
        actuator.set_output(0.0)
        assert actuator.duty == 1.0
