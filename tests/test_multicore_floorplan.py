"""Tests for multicore floorplan tiling and lateral coupling."""

import numpy as np
import pytest

from repro.errors import ThermalModelError
from repro.multicore.floorplan import (
    CoreCoupling,
    MulticoreFloorplan,
    core_coupling_resistance,
)
from repro.thermal.floorplan import Floorplan


class TestCoreCoupling:
    def test_self_coupling_rejected(self):
        with pytest.raises(ThermalModelError):
            CoreCoupling(1, 1, 10.0)

    def test_negative_index_rejected(self):
        with pytest.raises(ThermalModelError):
            CoreCoupling(-1, 0, 10.0)

    def test_non_positive_resistance_rejected(self):
        with pytest.raises(ThermalModelError):
            CoreCoupling(0, 1, 0.0)


class TestCouplingResistance:
    def test_weak_next_to_vertical_path(self):
        """The lateral path must be much weaker than the ~0.2 K/W
        vertical one -- the paper's justification for dropping it
        within a core."""
        core = Floorplan.default()
        resistance = core_coupling_resistance(core)
        assert resistance > 5.0
        worst_vertical = max(block.resistance for block in core.blocks)
        assert resistance > 10.0 * worst_vertical

    def test_thinner_die_raises_resistance(self):
        core = Floorplan.default()
        nominal = core_coupling_resistance(core)  # 0.1 mm die
        thin = core_coupling_resistance(core, thickness=0.05e-3)
        assert thin > nominal


class TestTiling:
    def test_near_square_grid(self):
        tiling = MulticoreFloorplan.tile(n_cores=4)
        assert (tiling.rows, tiling.cols) == (2, 2)
        tiling = MulticoreFloorplan.tile(n_cores=8)
        assert tiling.rows * tiling.cols >= 8
        assert abs(tiling.rows - tiling.cols) <= 1

    def test_four_neighbor_couplings(self):
        tiling = MulticoreFloorplan.tile(n_cores=4)
        # 2x2 grid: 2 horizontal + 2 vertical pairs.
        assert len(tiling.couplings) == 4
        assert tiling.neighbors(0) == (1, 2)
        assert tiling.neighbors(3) == (1, 2)

    def test_zero_scale_decouples(self):
        tiling = MulticoreFloorplan.tile(n_cores=4, coupling_scale=0.0)
        assert tiling.couplings == ()
        assert not np.any(tiling.coupling_conductance_matrix())

    def test_scale_divides_resistance(self):
        nominal = MulticoreFloorplan.tile(n_cores=2, coupling_scale=1.0)
        strong = MulticoreFloorplan.tile(n_cores=2, coupling_scale=2.0)
        assert strong.couplings[0].resistance == pytest.approx(
            nominal.couplings[0].resistance / 2.0
        )

    def test_duplicate_coupling_rejected(self):
        with pytest.raises(ThermalModelError):
            MulticoreFloorplan(
                core=Floorplan.default(),
                n_cores=2,
                rows=1,
                cols=2,
                couplings=(
                    CoreCoupling(0, 1, 10.0),
                    CoreCoupling(1, 0, 20.0),
                ),
            )

    def test_out_of_range_coupling_rejected(self):
        with pytest.raises(ThermalModelError):
            MulticoreFloorplan(
                core=Floorplan.default(),
                n_cores=2,
                rows=1,
                cols=2,
                couplings=(CoreCoupling(0, 5, 10.0),),
            )

    def test_grid_must_hold_cores(self):
        with pytest.raises(ThermalModelError):
            MulticoreFloorplan(
                core=Floorplan.default(), n_cores=5, rows=2, cols=2
            )


class TestDerived:
    @pytest.fixture(scope="class")
    def tiling(self):
        return MulticoreFloorplan.tile(n_cores=4)

    def test_names_and_nodes(self, tiling):
        assert tiling.core_names == ("core0", "core1", "core2", "core3")
        assert tiling.node_name(2, "regfile") == "core2.regfile"
        with pytest.raises(ThermalModelError):
            tiling.node_name(9, "regfile")
        with pytest.raises(ThermalModelError):
            tiling.node_name(0, "nonesuch")

    def test_conductance_matrix_symmetric(self, tiling):
        matrix = tiling.coupling_conductance_matrix()
        assert matrix.shape == (4, 4)
        assert np.allclose(matrix, matrix.T)
        assert np.all(np.diag(matrix) == 0.0)

    def test_capacitance_shares_sum_to_one(self, tiling):
        shares = tiling.capacitance_shares()
        assert shares.shape == (tiling.n_blocks,)
        assert shares.sum() == pytest.approx(1.0)
        assert np.all(shares > 0.0)

    def test_die_area_scales(self, tiling):
        assert tiling.die_area_m2 == pytest.approx(
            4 * tiling.core.die_area_m2
        )

    def test_rc_network_expansion(self, tiling):
        network = tiling.to_rc_network(100.0)
        temps = network.temperatures()
        assert len(temps) == tiling.n_cores * tiling.n_blocks
        assert "core3.lsq" in temps
