"""Tests for the chip-level thermal-budget coordinator."""

import numpy as np
import pytest

from repro.config import TelemetryConfig
from repro.errors import ConfigError
from repro.multicore.coordinator import (
    COORDINATOR_STRATEGIES,
    ThermalBudgetCoordinator,
)
from repro.telemetry import Telemetry

COOL = np.array([100.0, 100.0, 100.0, 100.0])


def make(strategy="proportional", **kwargs):
    return ThermalBudgetCoordinator(4, strategy=strategy, **kwargs)


class TestValidation:
    def test_unknown_strategy_rejected(self):
        with pytest.raises(ConfigError, match="strategy"):
            ThermalBudgetCoordinator(4, strategy="lottery")

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"duty_budget": 0.0},
            {"demote_trigger_samples": 0},
            {"demote_duty": 1.5},
            {"rearm_margin": -0.1},
            {"rearm_samples": 0},
        ],
    )
    def test_bad_parameters_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            ThermalBudgetCoordinator(4, **kwargs)

    def test_zero_cores_rejected(self):
        with pytest.raises(ConfigError):
            ThermalBudgetCoordinator(0)

    def test_wrong_shapes_rejected(self):
        coordinator = make()
        with pytest.raises(ConfigError):
            coordinator.arbitrate(np.ones(3), COOL, 0)

    def test_default_budget(self):
        assert make().duty_budget == pytest.approx(3.0)


class TestBudget:
    def test_within_budget_untouched(self):
        coordinator = make(duty_budget=3.0)
        proposed = np.array([0.5, 0.5, 0.5, 0.5])
        granted = coordinator.arbitrate(proposed, COOL, 0)
        assert np.array_equal(granted, proposed)
        assert not coordinator.budget_engaged

    def test_proportional_scales_uniformly(self):
        coordinator = make("proportional", duty_budget=2.0)
        proposed = np.array([1.0, 1.0, 1.0, 1.0])
        granted = coordinator.arbitrate(proposed, COOL, 0)
        assert granted.sum() == pytest.approx(2.0)
        assert np.allclose(granted, 0.5)
        assert coordinator.budget_engaged

    def test_uniform_caps_per_core(self):
        coordinator = make("uniform", duty_budget=2.0)
        proposed = np.array([1.0, 0.2, 1.0, 1.0])
        granted = coordinator.arbitrate(proposed, COOL, 0)
        assert np.all(granted <= 0.5 + 1e-12)
        assert granted[1] == pytest.approx(0.2)  # under the cap: kept

    def test_hottest_cut_first(self):
        coordinator = make("hottest", duty_budget=3.0)
        proposed = np.array([1.0, 1.0, 1.0, 1.0])
        temps = np.array([100.0, 101.0, 102.5, 100.5])
        granted = coordinator.arbitrate(proposed, temps, 0)
        assert granted.sum() == pytest.approx(3.0)
        assert granted[2] == pytest.approx(0.0)  # hottest loses it all
        assert granted[0] == pytest.approx(1.0)  # coolest untouched

    def test_budget_event_on_transition_only(self):
        telemetry = Telemetry(TelemetryConfig())
        coordinator = make("proportional", duty_budget=2.0,
                           telemetry=telemetry)
        hot_demand = np.ones(4)
        for index in range(3):
            coordinator.arbitrate(hot_demand, COOL, index)
        coordinator.arbitrate(np.full(4, 0.25), COOL, 3)
        events = [
            e for e in telemetry.trace.events
            if e.kind == "coordinator_budget"
        ]
        assert len(events) == 2  # one engage, one release
        assert events[0].data["engaged"] is True
        assert events[1].data["engaged"] is False
        assert coordinator.budget_engaged_samples == 3


class TestDemotion:
    def test_demotes_after_trigger_streak(self):
        coordinator = make(
            demote_temperature=102.0, demote_trigger_samples=3,
            demote_duty=0.25, duty_budget=4.0,
        )
        hot = np.array([103.0, 100.0, 100.0, 100.0])
        for index in range(2):
            granted = coordinator.arbitrate(np.ones(4), hot, index)
            assert not coordinator.demoted[0]
        granted = coordinator.arbitrate(np.ones(4), hot, 2)
        assert coordinator.demoted[0]
        assert granted[0] == pytest.approx(0.25)
        assert coordinator.demotions == 1

    def test_streak_resets_on_cool_sample(self):
        coordinator = make(demote_trigger_samples=3)
        hot = np.array([103.0, 100.0, 100.0, 100.0])
        coordinator.arbitrate(np.ones(4), hot, 0)
        coordinator.arbitrate(np.ones(4), hot, 1)
        coordinator.arbitrate(np.ones(4), COOL, 2)  # breaks the streak
        coordinator.arbitrate(np.ones(4), hot, 3)
        coordinator.arbitrate(np.ones(4), hot, 4)
        assert not any(coordinator.demoted)

    def test_rearms_after_cool_streak(self):
        telemetry = Telemetry(TelemetryConfig())
        coordinator = make(
            demote_trigger_samples=1, rearm_samples=3,
            telemetry=telemetry,
        )
        hot = np.array([103.0, 100.0, 100.0, 100.0])
        coordinator.arbitrate(np.ones(4), hot, 0)
        assert coordinator.demoted[0]
        for index in range(1, 4):
            coordinator.arbitrate(np.ones(4), COOL, index)
        assert not coordinator.demoted[0]
        assert coordinator.rearms == 1
        kinds = [e.kind for e in telemetry.trace.events]
        assert "coordinator_demote" in kinds
        assert "coordinator_rearm" in kinds
        demote = next(
            e for e in telemetry.trace.events
            if e.kind == "coordinator_demote"
        )
        assert demote.data["core"] == 0

    def test_stats_counters(self):
        coordinator = make(demote_trigger_samples=1)
        hot = np.array([103.0, 100.0, 100.0, 100.0])
        coordinator.arbitrate(np.ones(4), hot, 0)
        stats = coordinator.stats()
        assert stats["coordinator_demotions"] == 1.0
        assert stats["coordinator_demoted_now"] == 1.0

    def test_reset_clears_everything(self):
        coordinator = make(demote_trigger_samples=1)
        hot = np.array([103.0, 100.0, 100.0, 100.0])
        coordinator.arbitrate(np.ones(4), hot, 0)
        coordinator.reset()
        assert not any(coordinator.demoted)
        assert coordinator.demotions == 0
        assert coordinator.samples == 0


class TestStrategies:
    def test_all_strategies_enforce_budget(self):
        for strategy in COORDINATOR_STRATEGIES:
            coordinator = ThermalBudgetCoordinator(
                4, strategy=strategy, duty_budget=1.5
            )
            granted = coordinator.arbitrate(np.ones(4), COOL, 0)
            assert granted.sum() <= 1.5 + 1e-9, strategy
