"""Tests for the spectral exact-exponential grid solver.

Three layers, matching the claims in ``src/repro/thermal/spectral.py``:

* **Analytic** -- the cosine basis diagonalizes the explicit 1D Neumann
  Laplacian matrix; a uniform power field reproduces the closed-form
  vertical-path steady state; a single cosine eigenmode decays at
  exactly ``exp(-lambda t / C)``; the propagator satisfies the
  semigroup property ``advance(a) o advance(b) == advance(a + b)``.
* **Cross-solver parity** -- the spectral and Euler integrators agree
  within 0.05 degC on the per-block means of every grid experiment's
  configuration (they are different *time* discretizations of the same
  spatial operator, so the gate is a tolerance, not bitwise; the gap
  must also shrink as the mesh refines, since Euler's sub-step does).
* **Bitwise regression** -- the vectorized scatter (``_power_field``)
  and gather (``block_temperatures``) are bit-identical to the pinned
  loop forms they replaced, and the Euler integrator itself matches a
  verbatim copy of the pre-spectral update rule bit for bit.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ThermalModelError
from repro.thermal.floorplan import Floorplan
from repro.thermal.geometry import DieLayout, Rectangle
from repro.thermal.grid import GridThermalModel
from repro.thermal.lumped import LumpedThermalModel
from repro.thermal.spectral import (
    SpectralPropagator,
    cosine_basis,
    neumann_eigenvalues,
)

FLOORPLAN = Floorplan.default()

powers_strategy = st.lists(
    st.floats(min_value=0.0, max_value=25.0, allow_nan=False),
    min_size=7,
    max_size=7,
).map(np.array)


def neumann_laplacian(n: int) -> np.ndarray:
    """The explicit 1D Neumann (adiabatic-edge) Laplacian matrix."""
    lap = np.zeros((n, n))
    for j in range(n):
        if j > 0:
            lap[j, j - 1] += 1.0
            lap[j, j] -= 1.0
        if j < n - 1:
            lap[j, j + 1] += 1.0
            lap[j, j] -= 1.0
    return lap


def make_propagator(n: int = 12) -> SpectralPropagator:
    """A small propagator with round, physically plausible constants."""
    return SpectralPropagator(
        n, g_lat_x=2e-3, g_lat_y=3e-3, g_ver=5e-2, cell_c=4e-8
    )


class TestCosineBasis:
    @pytest.mark.parametrize("n", [1, 2, 5, 16, 48])
    def test_orthonormal(self, n):
        basis = cosine_basis(n)
        assert np.allclose(basis.T @ basis, np.eye(n), atol=1e-12)

    @pytest.mark.parametrize("n", [2, 7, 16, 33])
    def test_diagonalizes_neumann_laplacian(self, n):
        """L v_k == -mu_k v_k against the explicit matrix, all modes."""
        basis = cosine_basis(n)
        mu = neumann_eigenvalues(n)
        lap = neumann_laplacian(n)
        assert np.allclose(lap @ basis, basis * (-mu), atol=1e-12)

    def test_eigenvalue_range(self):
        mu = neumann_eigenvalues(32)
        assert mu[0] == 0.0  # conserved DC mode
        assert np.all(np.diff(mu) > 0)  # strictly increasing
        assert mu[-1] < 4.0  # spectral bound of the 1D stencil

    def test_read_only(self):
        with pytest.raises(ValueError):
            cosine_basis(8)[0, 0] = 1.0
        with pytest.raises(ValueError):
            neumann_eigenvalues(8)[0] = 1.0

    def test_rejects_zero_resolution(self):
        with pytest.raises(ThermalModelError):
            cosine_basis(0)
        with pytest.raises(ThermalModelError):
            neumann_eigenvalues(0)


class TestPropagatorValidation:
    def test_rejects_nonpositive_g_ver(self):
        with pytest.raises(ThermalModelError, match="g_ver"):
            SpectralPropagator(8, 1e-3, 1e-3, 0.0, 1e-8)

    def test_rejects_negative_lateral(self):
        with pytest.raises(ThermalModelError, match="lateral"):
            SpectralPropagator(8, -1e-3, 1e-3, 1e-2, 1e-8)

    def test_rejects_nonpositive_capacitance(self):
        with pytest.raises(ThermalModelError, match="cell_c"):
            SpectralPropagator(8, 1e-3, 1e-3, 1e-2, 0.0)

    def test_rejects_wrong_field_shape(self):
        prop = make_propagator(8)
        with pytest.raises(ThermalModelError, match="shape"):
            prop.advance(np.zeros((4, 4)), np.zeros((8, 8)), 1e-6)

    def test_rejects_nonpositive_seconds(self):
        prop = make_propagator(8)
        zeros = np.zeros((8, 8))
        with pytest.raises(ThermalModelError, match="seconds"):
            prop.advance(zeros, zeros, 0.0)

    def test_transform_round_trip(self):
        prop = make_propagator(10)
        rng = np.random.default_rng(3)
        field = rng.normal(size=(10, 10))
        assert np.allclose(
            prop.from_modes(prop.to_modes(field)), field, atol=1e-12
        )


class TestAnalyticSolutions:
    def test_uniform_power_matches_vertical_path_closed_form(self):
        """Uniform power has no lateral gradients: the steady deviation
        is exactly ``p / G_ver`` per cell, the 1-resistor closed form."""
        prop = make_propagator(16)
        p = 0.375
        power = np.full((16, 16), p)
        steady = prop.steady_state(power)
        assert np.allclose(steady, p / 5e-2, rtol=1e-12)

    def test_uniform_power_transient_matches_scalar_rc(self):
        """From zero, the uniform mode heats as the scalar RC solution
        ``(p/G)(1 - exp(-G t / C))`` -- the lumped model's own form."""
        prop = make_propagator(16)
        p, g, c = 0.25, 5e-2, 4e-8
        t = 2.5 * c / g  # a few time constants in
        out = prop.advance(np.zeros((16, 16)), np.full((16, 16), p), t)
        expected = (p / g) * (1.0 - np.exp(-g * t / c))
        assert np.allclose(out, expected, rtol=1e-12)

    @pytest.mark.parametrize("k,m", [(0, 0), (1, 0), (0, 3), (2, 5), (11, 11)])
    def test_single_eigenmode_decays_at_exact_rate(self, k, m):
        """A pure cosine mode under zero power decays by exactly
        ``exp(-lambda_{km} t / C)`` -- the defining spectral property."""
        n = 12
        prop = make_propagator(n)
        mode = np.outer(prop.basis[:, k], prop.basis[:, m])
        t = 7e-7
        out = prop.advance(mode, np.zeros((n, n)), t)
        rate = np.exp(-prop.eigenvalues[k, m] * t / prop.cell_c)
        assert np.allclose(out, mode * rate, atol=1e-10)

    def test_steady_state_is_fixed_point_of_advance(self):
        prop = make_propagator(14)
        rng = np.random.default_rng(9)
        power = rng.uniform(0, 1, size=(14, 14))
        steady = prop.steady_state(power)
        for seconds in (1e-8, 1e-5, 1.0):
            out = prop.advance(steady, power, seconds)
            assert np.allclose(out, steady, atol=1e-9)

    @given(
        powers=powers_strategy,
        split=st.floats(min_value=0.05, max_value=0.95),
        total_us=st.floats(min_value=1.0, max_value=500.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_semigroup_property(self, powers, split, total_us):
        """advance(a) then advance(b) == advance(a + b).

        Not bitwise -- ``exp(-la) * exp(-lb)`` differs from
        ``exp(-l(a+b))`` in the last float bits and each step round-trips
        through the physical basis -- but the 1e-6 degC gate is ~5e4x
        tighter than the cross-solver parity tolerance.
        """
        total = total_us * 1e-6
        a = split * total
        b = total - a
        one = GridThermalModel(FLOORPLAN, resolution=16, solver="spectral")
        two = GridThermalModel(FLOORPLAN, resolution=16, solver="spectral")
        one.advance(powers, total)
        two.advance(powers, a)
        two.advance(powers, b)
        assert np.allclose(one.temperatures, two.temperatures, atol=1e-6)

    def test_decay_cache_reuses_array(self):
        prop = make_propagator(8)
        first = prop.decay(1e-6)
        assert prop.decay(1e-6) is first
        assert not first.flags.writeable
        # A second propagator with the same operator shares through the
        # process-wide store.
        other = make_propagator(8)
        assert other.decay(1e-6) is first


class TestCrossSolverParity:
    """Spectral vs Euler: tolerance-gated on per-block means.

    The configurations mirror the grid experiments: V1 uses 48x48 with
    50 us heating intervals, V2 closes the DTM loop on 24x24 with
    ~6.7 us sampling intervals.
    """

    PARITY_TOLERANCE = 0.05  # degC, per-block mean

    def peak_powers(self):
        return np.array([b.peak_power for b in FLOORPLAN.blocks])

    def _pair(self, resolution):
        return (
            GridThermalModel(FLOORPLAN, resolution=resolution, solver="spectral"),
            GridThermalModel(FLOORPLAN, resolution=resolution, solver="euler"),
        )

    def test_steady_state_parity_v1_config(self):
        spectral, euler = self._pair(48)
        powers = self.peak_powers()
        dev = np.abs(spectral.steady_state(powers) - euler.steady_state(powers))
        assert np.max(dev) < self.PARITY_TOLERANCE

    def test_transient_parity_v1_config_against_euler_limit(self):
        """The V1 heating probe (50 us of full peak power) runs pinned
        Euler right at its stability bound, where its own first-order
        error is ~0.09 degC at 48x48 -- larger than the parity gate.
        Since Euler is pinned byte-identical, the gate on this config is
        against the Euler *limit*: a sub-step-refined Euler must land
        within 0.05 degC of spectral."""
        spectral, euler = self._pair(48)
        euler._max_stable_dt /= 8  # 8x finer sub-steps, same update rule
        powers = self.peak_powers()
        for _ in range(4):
            s = spectral.advance(powers, 50e-6)
            e = euler.advance(powers, 50e-6)
            assert np.max(np.abs(s - e)) < self.PARITY_TOLERANCE

    def test_v1_transient_gap_is_eulers_first_order_error(self):
        """Attribution: halving Euler's sub-step roughly halves its gap
        to spectral (first-order convergence), so the residual on the
        V1 probe belongs to Euler's time discretization, not spectral."""
        powers = self.peak_powers()
        gaps = []
        for refine in (1, 2, 4):
            spectral, euler = self._pair(48)
            euler._max_stable_dt /= refine
            worst = 0.0
            for _ in range(4):
                s = spectral.advance(powers, 50e-6)
                e = euler.advance(powers, 50e-6)
                worst = max(worst, float(np.max(np.abs(s - e))))
            gaps.append(worst)
        # Each 2x refinement shrinks the gap by ~2x (allow 1.5x slack).
        assert gaps[1] < gaps[0] / 1.5
        assert gaps[2] < gaps[1] / 1.5

    def test_steady_state_parity_all_experiment_resolutions(self):
        powers = self.peak_powers()
        for resolution in (24, 48, 96, 128):
            spectral, euler = self._pair(resolution)
            dev = np.abs(
                spectral.steady_state(powers) - euler.steady_state(powers)
            )
            assert np.max(dev) < self.PARITY_TOLERANCE

    def test_transient_parity_v2_config(self):
        # The DTM sampling cadence: 10k cycles at 1.5 GHz per interval.
        spectral, euler = self._pair(24)
        powers = self.peak_powers()
        sample_seconds = 10_000 / 1.5e9
        worst = 0.0
        for _ in range(60):
            s = spectral.advance(powers, sample_seconds)
            e = euler.advance(powers, sample_seconds)
            worst = max(worst, float(np.max(np.abs(s - e))))
        assert worst < self.PARITY_TOLERANCE
        # The hottest-cell reading the V2 sensors use must agree too.
        assert abs(
            spectral.max_temperature - euler.max_temperature
        ) < self.PARITY_TOLERANCE

    def test_agreement_tightens_with_resolution(self):
        """Euler's sub-step shrinks as 1/N^2, so its time-integration
        error -- the whole cross-solver gap -- drops as the mesh refines."""
        powers = self.peak_powers()
        gaps = {}
        for resolution in (16, 32):
            spectral, euler = self._pair(resolution)
            s = spectral.advance(powers, 50e-6)
            e = euler.advance(powers, 50e-6)
            gaps[resolution] = float(np.max(np.abs(s - e)))
        assert gaps[32] <= gaps[16]


def reference_euler_advance(grid, power_field, seconds):
    """Verbatim copy of the pre-spectral integrator's update rule.

    Pinned from the original ``GridThermalModel.advance`` so the Euler
    path can be byte-compared against history, not just against itself.
    """
    sub_dt = 0.4 * grid._max_stable_dt
    steps = max(1, int(np.ceil(seconds / sub_dt)))
    dt = seconds / steps
    temps = grid._temps
    sink = grid.heatsink_temperature
    gx, gy = grid._g_lat_x, grid._g_lat_y
    gv, c = grid._g_ver, grid._cell_c
    for _ in range(steps):
        flow = power_field - gv * (temps - sink)
        dx = np.diff(temps, axis=1)
        flow[:, :-1] += gx * dx
        flow[:, 1:] -= gx * dx
        dy = np.diff(temps, axis=0)
        flow[:-1, :] += gy * dy
        flow[1:, :] -= gy * dy
        temps = temps + (dt / c) * flow
    return temps


class TestEulerPinnedReference:
    def peak_powers(self):
        return np.array([b.peak_power for b in FLOORPLAN.blocks])

    def test_euler_advance_bitwise_matches_reference(self):
        grid = GridThermalModel(FLOORPLAN, resolution=16, solver="euler")
        powers = self.peak_powers()
        for seconds in (3e-6, 50e-6, 1e-4):
            expected = reference_euler_advance(
                grid, grid._power_field_loop(powers), seconds
            )
            grid.advance(powers, seconds)
            assert np.array_equal(grid._temps, expected)

    def test_euler_not_silently_replaced(self):
        """solver='euler' must not construct a spectral propagator."""
        grid = GridThermalModel(FLOORPLAN, resolution=16, solver="euler")
        assert grid._spectral is None
        assert grid.solver == "euler"


class TestEulerSteadyState:
    def peak_powers(self):
        return np.array([b.peak_power for b in FLOORPLAN.blocks])

    def test_converges_on_default_floorplan(self):
        grid = GridThermalModel(FLOORPLAN, resolution=16, solver="euler")
        temps = grid.steady_state(self.peak_powers())
        # Settled: one more settle interval moves nothing.
        again = grid.advance(self.peak_powers(), 5 * grid._cell_c / grid._g_ver)
        assert np.max(np.abs(again - temps)) < 1e-5

    def test_nonconvergence_raises_with_residual(self, monkeypatch):
        grid = GridThermalModel(FLOORPLAN, resolution=16, solver="euler")
        flip = [0.0, 1.0]

        def oscillating_advance(block_powers, seconds):
            flip.reverse()
            return np.full(len(FLOORPLAN.blocks), 100.0 + flip[0])

        monkeypatch.setattr(grid, "advance", oscillating_advance)
        with pytest.raises(ThermalModelError, match="residual 1"):
            grid.steady_state(self.peak_powers())

    def test_steady_state_overwrites_transient_state(self):
        """Documented side effect: the model holds the equilibrium field
        after the call, regardless of the transient that preceded it."""
        for solver in GridThermalModel.SOLVERS:
            grid = GridThermalModel(FLOORPLAN, resolution=16, solver=solver)
            grid.advance(self.peak_powers(), 1e-5)
            steady = grid.steady_state(self.peak_powers())
            assert np.allclose(grid.block_temperatures(), steady)


def overlapping_layout():
    """A legal-but-overlapping custom placement (DieLayout allows it)."""
    names = [b.name for b in FLOORPLAN.blocks]
    side = 1e-2
    rects = []
    for i, name in enumerate(names):
        offset = (i % 4) * 1.5e-3
        rects.append(Rectangle(name, offset, offset, 4e-3, 4e-3))
    return DieLayout(die_width=side, die_height=side, rectangles=tuple(rects))


class TestBitwiseVectorization:
    """The vectorized scatter/gather vs the pinned loop forms."""

    @given(powers=powers_strategy)
    @settings(max_examples=30, deadline=None)
    def test_power_field_bitwise(self, powers):
        grid = GridThermalModel(FLOORPLAN, resolution=20)
        assert np.array_equal(
            grid._power_field(powers), grid._power_field_loop(powers)
        )

    @given(powers=powers_strategy)
    @settings(max_examples=30, deadline=None)
    def test_power_field_bitwise_overlapping_masks(self, powers):
        grid = GridThermalModel(
            FLOORPLAN, resolution=20, layout=overlapping_layout()
        )
        assert grid._scatter_overlaps
        assert np.array_equal(
            grid._power_field(powers), grid._power_field_loop(powers)
        )

    @given(seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=30, deadline=None)
    def test_block_temperatures_bitwise(self, seed):
        grid = GridThermalModel(FLOORPLAN, resolution=20)
        rng = np.random.default_rng(seed)
        grid._temps = 100.0 + rng.normal(0, 3, size=grid._temps.shape)
        for statistic in ("mean", "max"):
            assert np.array_equal(
                grid.block_temperatures(statistic),
                grid._block_temperatures_loop(statistic),
            )

    def test_power_field_conserves_total_power(self):
        grid = GridThermalModel(FLOORPLAN, resolution=20)
        powers = np.array([b.peak_power for b in FLOORPLAN.blocks])
        assert grid._power_field(powers).sum() == pytest.approx(
            powers.sum(), rel=1e-12
        )


class TestSpectralSolverOnGridModel:
    """The grid model's spectral path against the lumped reference."""

    def peak_powers(self):
        return np.array([b.peak_power for b in FLOORPLAN.blocks])

    def test_invalid_solver_rejected(self):
        with pytest.raises(ThermalModelError, match="solver"):
            GridThermalModel(FLOORPLAN, resolution=16, solver="rk4")

    def test_default_solver_is_spectral(self):
        grid = GridThermalModel(FLOORPLAN, resolution=16)
        assert grid.solver == "spectral"
        assert grid._spectral is not None

    def test_spectral_steady_close_to_lumped(self):
        grid = GridThermalModel(FLOORPLAN, resolution=32, solver="spectral")
        lumped = LumpedThermalModel(FLOORPLAN, 100.0)
        powers = self.peak_powers()
        dev = np.abs(grid.steady_state(powers) - lumped.steady_state(powers))
        assert np.max(dev) < 0.3

    def test_long_advance_lands_on_steady_state(self):
        """One 1-second step from reset is ~5700 vertical time constants:
        it must land on the direct steady solve to float rounding.  This
        is the heatsink-scale regime Euler cannot reach in one step."""
        grid = GridThermalModel(FLOORPLAN, resolution=32, solver="spectral")
        powers = self.peak_powers()
        steady = grid.steady_state(powers)
        grid.reset()
        advanced = grid.advance(powers, 1.0)
        assert np.allclose(advanced, steady, atol=1e-9)

    def test_zero_power_isothermal(self):
        grid = GridThermalModel(FLOORPLAN, resolution=16, solver="spectral")
        grid.advance(np.zeros(7), 1e-3)
        assert np.allclose(grid.temperatures, 100.0, atol=1e-9)
