"""Tests for the chip-level package model (Figure 2, Section 4.1)."""

import pytest

from repro.errors import ThermalModelError
from repro.thermal.package import PackageModel


class TestSteadyState:
    def test_section_4_1_example(self):
        # 25 W, 1 K/W + 1 K/W, 27 C ambient -> 77 C die, 52 C heatsink.
        die, sink = PackageModel().steady_state(25.0)
        assert die == pytest.approx(77.0)
        assert sink == pytest.approx(52.0)

    def test_zero_power_is_ambient(self):
        die, sink = PackageModel().steady_state(0.0)
        assert die == sink == pytest.approx(27.0)

    def test_total_resistance(self):
        assert PackageModel().total_resistance == pytest.approx(2.0)

    def test_dominant_time_constant_on_the_order_of_a_minute(self):
        tau = PackageModel().dominant_time_constant
        assert 60.0 <= tau <= 180.0


class TestTransient:
    def test_integration_converges_to_steady_state(self):
        package = PackageModel()
        for _ in range(2400):
            package.step(25.0, 0.5)
        assert package.die_temperature == pytest.approx(77.0, abs=0.2)
        assert package.heatsink_temperature == pytest.approx(52.0, abs=0.2)

    def test_die_heats_faster_than_heatsink(self):
        package = PackageModel()
        package.step(25.0, 2.0)
        assert package.die_temperature > package.heatsink_temperature

    def test_cooling_returns_to_ambient(self):
        package = PackageModel()
        for _ in range(600):
            package.step(25.0, 0.5)
        for _ in range(4800):
            package.step(0.0, 0.5)
        assert package.die_temperature == pytest.approx(27.0, abs=0.2)

    def test_reset(self):
        package = PackageModel()
        package.step(25.0, 10.0)
        package.reset()
        assert package.die_temperature == pytest.approx(27.0)
        assert package.heatsink_temperature == pytest.approx(27.0)

    def test_rejects_nonpositive_dt(self):
        with pytest.raises(ThermalModelError):
            PackageModel().step(25.0, 0.0)

    def test_heatsink_is_five_orders_slower_than_blocks(self):
        # The justification for holding the heatsink constant in the
        # block model (Section 4.3).
        block_tau = 175e-6
        assert PackageModel().dominant_time_constant / block_tau > 1e5


class TestValidation:
    def test_rejects_nonpositive_resistance(self):
        with pytest.raises(ThermalModelError):
            PackageModel(r_die_case=0.0)

    def test_rejects_nonpositive_capacitance(self):
        with pytest.raises(ThermalModelError):
            PackageModel(c_heatsink=-1.0)
