"""Span profiling: timing attribution on a deterministic fake clock."""

import pytest

from repro.errors import TelemetryError
from repro.telemetry import NULL_PROFILER, Profiler


class FakeClock:
    """A controllable monotonic clock."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def tick(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture
def clock():
    return FakeClock()


class TestSpans:
    def test_total_and_count(self, clock):
        profiler = Profiler(clock=clock)
        for _ in range(3):
            with profiler.span("work"):
                clock.tick(0.5)
        stats = profiler.stats("work")
        assert stats.count == 3
        assert stats.total == pytest.approx(1.5)
        assert stats.mean == pytest.approx(0.5)
        assert stats.min == pytest.approx(0.5)
        assert stats.max == pytest.approx(0.5)

    def test_self_time_excludes_children(self, clock):
        profiler = Profiler(clock=clock)
        with profiler.span("outer"):
            clock.tick(1.0)
            with profiler.span("inner"):
                clock.tick(3.0)
            clock.tick(0.5)
        outer = profiler.stats("outer")
        inner = profiler.stats("inner")
        assert outer.total == pytest.approx(4.5)
        assert outer.self_total == pytest.approx(1.5)
        assert inner.total == inner.self_total == pytest.approx(3.0)

    def test_nested_same_name_reentrant(self, clock):
        profiler = Profiler(clock=clock)
        with profiler.span("f"):
            clock.tick(1.0)
            with profiler.span("f"):
                clock.tick(2.0)
        stats = profiler.stats("f")
        assert stats.count == 2
        assert stats.total == pytest.approx(3.0 + 2.0)  # outer + inner
        assert stats.self_total == pytest.approx(3.0)

    def test_time_helper_returns_result(self, clock):
        profiler = Profiler(clock=clock)
        assert profiler.time("calc", lambda x: x + 1, 41) == 42
        assert profiler.stats("calc").count == 1

    def test_unknown_span_raises(self):
        with pytest.raises(TelemetryError):
            Profiler().stats("never")

    def test_snapshot_and_names_sorted(self, clock):
        profiler = Profiler(clock=clock)
        with profiler.span("b"):
            clock.tick(1.0)
        with profiler.span("a"):
            clock.tick(2.0)
        assert profiler.names() == ("a", "b")
        snapshot = profiler.snapshot()
        assert snapshot["a"]["total_seconds"] == pytest.approx(2.0)
        assert snapshot["b"]["count"] == 1

    def test_report_lists_slowest_first(self, clock):
        profiler = Profiler(clock=clock)
        with profiler.span("fast"):
            clock.tick(0.1)
        with profiler.span("slow"):
            clock.tick(5.0)
        lines = profiler.report().splitlines()
        assert lines[1].startswith("slow")

    def test_clear(self, clock):
        profiler = Profiler(clock=clock)
        with profiler.span("x"):
            clock.tick(1.0)
        profiler.clear()
        assert profiler.names() == ()

    def test_exception_still_recorded(self, clock):
        profiler = Profiler(clock=clock)
        with pytest.raises(ValueError):
            with profiler.span("boom"):
                clock.tick(1.0)
                raise ValueError("x")
        assert profiler.stats("boom").count == 1


class TestNullProfiler:
    def test_span_is_shared_noop(self):
        span = NULL_PROFILER.span("anything")
        assert span is NULL_PROFILER.span("else")
        with span:
            pass
        assert NULL_PROFILER.snapshot() == {}
        assert NULL_PROFILER.names() == ()
        assert not NULL_PROFILER.enabled

    def test_time_passthrough(self):
        assert NULL_PROFILER.time("n", lambda: 7) == 7

    def test_report_placeholder(self):
        assert "disabled" in NULL_PROFILER.report()
