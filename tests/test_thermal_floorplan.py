"""Tests for the Table 3 floorplan."""

import pytest

from repro.errors import ThermalModelError
from repro.thermal.floorplan import (
    Block,
    Floorplan,
    STRUCTURES,
    scaled_floorplan,
)


class TestBlock:
    def test_derives_r_and_c_from_area(self):
        block = Block("x", 5e-6, 8.0)
        assert block.resistance == pytest.approx(0.2)
        assert block.capacitance == pytest.approx(8.75e-4)

    def test_explicit_overrides_win(self):
        block = Block("x", 5e-6, 8.0, resistance=1.0, capacitance=2.0)
        assert block.resistance == 1.0
        assert block.time_constant == pytest.approx(2.0)

    def test_peak_temperature_rise(self):
        block = Block("x", 5e-6, 10.0)
        assert block.peak_temperature_rise == pytest.approx(2.0)

    def test_rejects_nonpositive_power(self):
        with pytest.raises(ThermalModelError):
            Block("x", 5e-6, 0.0)


class TestDefaultFloorplan:
    def test_has_seven_monitored_structures(self, floorplan):
        assert floorplan.names == STRUCTURES
        assert len(floorplan.blocks) == 7

    def test_chip_peak_power_is_130w(self, floorplan):
        # Matches the paper's "peak power may soon be as high as 130 W".
        assert floorplan.chip_peak_power == pytest.approx(130.0)

    def test_chip_time_constant_is_tens_of_seconds(self, floorplan):
        assert 10.0 < floorplan.chip_time_constant < 60.0

    def test_block_time_constants_are_microseconds(self, floorplan):
        for block in floorplan.blocks:
            assert 10e-6 < block.time_constant < 1000e-6

    def test_peak_rises_span_headroom(self, floorplan):
        # Some blocks must be able to exceed the 2 K emergency headroom
        # at peak, others must not (the hot-spot diversity of Table 6).
        rises = [block.peak_temperature_rise for block in floorplan.blocks]
        assert max(rises) > 2.0
        assert min(rises) < 2.0

    def test_regfile_is_hottest_potential_spot(self, floorplan):
        rises = {b.name: b.peak_temperature_rise for b in floorplan.blocks}
        assert max(rises, key=rises.get) == "regfile"

    def test_lookup_by_name(self, floorplan):
        assert floorplan.block("lsq").name == "lsq"
        assert floorplan.index("window") == 1

    def test_unknown_block_raises(self, floorplan):
        with pytest.raises(ThermalModelError):
            floorplan.block("l3")
        with pytest.raises(ThermalModelError):
            floorplan.index("l3")

    def test_table3_rows_include_chip(self, floorplan):
        rows = floorplan.table3_rows()
        assert len(rows) == 8
        assert rows[-1]["structure"] == "chip"
        assert rows[-1]["r_k_per_w"] == pytest.approx(0.34)

    def test_with_block_overrides_one_block(self, floorplan):
        modified = floorplan.with_block("lsq", peak_power=99.0)
        assert modified.block("lsq").peak_power == 99.0
        assert modified.block("window").peak_power == floorplan.block(
            "window"
        ).peak_power

    def test_with_block_unknown_name(self, floorplan):
        with pytest.raises(ThermalModelError):
            floorplan.with_block("nope", peak_power=1.0)


class TestFloorplanValidation:
    def test_rejects_duplicate_names(self):
        block = Block("dup", 1e-6, 1.0)
        with pytest.raises(ThermalModelError):
            Floorplan(blocks=(block, block))

    def test_rejects_blocks_exceeding_die(self):
        big = Block("big", 200e-6, 1.0)
        with pytest.raises(ThermalModelError):
            Floorplan(blocks=(big,))

    def test_rejects_empty(self):
        with pytest.raises(ThermalModelError):
            Floorplan(blocks=())


class TestScaledFloorplan:
    def test_identity_scale(self, floorplan):
        scaled = scaled_floorplan(1.0, 1.0)
        assert scaled.chip_peak_power == pytest.approx(floorplan.chip_peak_power)

    def test_power_scale_scales_peaks(self):
        scaled = scaled_floorplan(power_scale=0.5)
        assert scaled.block("lsq").peak_power == pytest.approx(4.0)

    def test_area_scale_preserves_time_constant(self):
        # R*C is area-independent, so scaling area must not change tau.
        scaled = scaled_floorplan(area_scale=2.0)
        base = Floorplan.default()
        assert scaled.block("lsq").time_constant == pytest.approx(
            base.block("lsq").time_constant
        )

    def test_rejects_nonpositive_scale(self):
        with pytest.raises(ThermalModelError):
            scaled_floorplan(area_scale=0.0)
