"""The crash-safe sweep journal: fingerprints, round trips, recovery.

The checkpoint subsystem's contract (docs/robustness.md):

* spec fingerprints are pure content hashes -- stable across processes,
  sensitive to every field that changes the run;
* a journaled ``RunResult`` (history and telemetry included) round-trips
  bit-exactly, floats included, because ``repr``-based JSON float
  serialization is lossless;
* a crash can truncate at most the final line, and both the loader and
  the resume-append path discard it silently; corruption anywhere else
  is a loud :class:`~repro.errors.CheckpointError`.
"""

from __future__ import annotations

import json
import math

import numpy as np
import pytest

from repro.config import DTMConfig, TelemetryConfig
from repro.errors import CheckpointError
from repro.faults import FaultSchedule
from repro.sim.checkpoint import (
    SWEEP_SCHEMA,
    CheckpointJournal,
    fold_saved_telemetry,
    history_from_dict,
    history_to_dict,
    load_checkpoint,
    result_from_dict,
    result_to_dict,
    spec_fingerprint,
    telemetry_to_dict,
)
from repro.sim.parallel import WorkSpec
from repro.sim.sweep import run_one
from repro.telemetry.core import Telemetry

INSTRUCTIONS = 150_000


def _quiet() -> Telemetry:
    return Telemetry(TelemetryConfig(sample_latency=False, profile=False))


class TestSpecFingerprint:
    def test_stable_for_equal_specs(self):
        a = WorkSpec(benchmark="gcc", policy="pid", seed=3)
        b = WorkSpec(benchmark="gcc", policy="pid", seed=3)
        assert spec_fingerprint(a) == spec_fingerprint(b)

    def test_sensitive_to_every_run_shaping_field(self):
        base = WorkSpec(benchmark="gcc", policy="pid")
        variants = [
            WorkSpec(benchmark="gzip", policy="pid"),
            WorkSpec(benchmark="gcc", policy="pi"),
            WorkSpec(benchmark="gcc", policy="pid", seed=1),
            WorkSpec(benchmark="gcc", policy="pid", instructions=1),
            WorkSpec(benchmark="gcc", policy="pid", setpoint=101.0),
            WorkSpec(benchmark="gcc", policy="pid", record_history=True),
            WorkSpec(
                benchmark="gcc", policy="pid",
                dtm_config=DTMConfig(nonct_trigger=100.5),
            ),
        ]
        fingerprints = {spec_fingerprint(v) for v in variants}
        assert spec_fingerprint(base) not in fingerprints
        assert len(fingerprints) == len(variants)

    def test_plain_object_fields_hash_by_public_attrs(self):
        # FaultSchedule is a plain class: its repr carries memory
        # addresses and it lazily builds private caches.  Equal-valued
        # schedules must fingerprint identically regardless.
        a = WorkSpec(
            benchmark="gcc", policy="pid",
            fault_schedule=FaultSchedule(dropout_rate=0.1, seed=7),
        )
        b = WorkSpec(
            benchmark="gcc", policy="pid",
            fault_schedule=FaultSchedule(dropout_rate=0.1, seed=7),
        )
        c = WorkSpec(
            benchmark="gcc", policy="pid",
            fault_schedule=FaultSchedule(dropout_rate=0.2, seed=7),
        )
        assert spec_fingerprint(a) == spec_fingerprint(b)
        assert spec_fingerprint(a) != spec_fingerprint(c)

    def test_fingerprint_is_hex_and_short(self):
        fp = spec_fingerprint(WorkSpec(benchmark="gcc", policy="pid"))
        assert len(fp) == 24
        int(fp, 16)  # raises if not hex


class TestResultRoundTrip:
    def test_result_with_history_is_bit_exact(self):
        result = run_one(
            "gcc", "pid", instructions=INSTRUCTIONS, record_history=True
        )
        rebuilt = result_from_dict(
            json.loads(json.dumps(result_to_dict(result)))
        )
        for field in (
            "benchmark", "policy", "cycles", "instructions",
            "emergency_fraction", "stress_fraction",
            "block_emergency_fraction", "block_stress_fraction",
            "mean_block_temperature", "max_block_temperature",
            "mean_chip_power", "max_chip_power", "energy_joules",
            "engaged_fraction", "interrupt_events",
            "interrupt_stall_cycles", "extra",
        ):
            assert getattr(rebuilt, field) == getattr(result, field), field
        assert rebuilt.history is not None
        for name in (
            "max_temp", "duty", "chip_power", "block_temps",
            "block_powers", "block_emergency", "block_stress",
        ):
            original = getattr(result.history, name)
            restored = getattr(rebuilt.history, name)
            assert restored.dtype == original.dtype
            assert np.array_equal(restored, original)
        assert rebuilt.history.names == result.history.names
        assert rebuilt.history.sample_cycles == result.history.sample_cycles

    def test_history_round_trip_preserves_exact_floats(self):
        result = run_one(
            "art", "pi", instructions=INSTRUCTIONS, record_history=True
        )
        data = json.loads(json.dumps(history_to_dict(result.history)))
        rebuilt = history_from_dict(data)
        # Bit-exact, not approximately equal: repr-based JSON floats.
        assert rebuilt.max_temp.tobytes() == result.history.max_temp.tobytes()


class TestTelemetryRoundTrip:
    def test_fold_saved_equals_fold_live(self):
        live, saved_sink = _quiet(), _quiet()
        local = _quiet()
        run_one("gcc", "pid", instructions=INSTRUCTIONS, telemetry=local)
        from repro.telemetry.core import merge_telemetry

        merge_telemetry(live, local)
        payload = json.loads(json.dumps(telemetry_to_dict(local)))
        fold_saved_telemetry(saved_sink, payload)
        a, b = live.trace.records(), saved_sink.trace.records()
        assert len(a) == len(b)
        for x, y in zip(a, b):
            for field in x.__dataclass_fields__:
                vx, vy = getattr(x, field), getattr(y, field)
                assert vx == vy or (
                    isinstance(vx, float)
                    and math.isnan(vx)
                    and math.isnan(vy)
                ), field
        assert list(live.trace.events) == list(saved_sink.trace.events)
        assert live.metrics.snapshot() == saved_sink.metrics.snapshot()

    def test_none_payload_is_noop(self):
        sink = _quiet()
        fold_saved_telemetry(sink, None)
        assert sink.trace.records() == []


class TestJournal:
    def _outcome_entry(self, tmp_path, n=2):
        path = tmp_path / "sweep.ckpt.jsonl"
        spec = WorkSpec(
            benchmark="gcc", policy="pid", instructions=INSTRUCTIONS
        )
        result = run_one("gcc", "pid", instructions=INSTRUCTIONS)
        with CheckpointJournal.open(path) as journal:
            for _ in range(n):
                journal.append_outcome(
                    spec_fingerprint(spec), spec, 1, result
                )
        return path, spec, result

    def test_round_trip(self, tmp_path):
        path, spec, result = self._outcome_entry(tmp_path, n=1)
        saved = load_checkpoint(path)
        [entries] = saved.values()
        entry = entries[0]
        assert entry["benchmark"] == "gcc"
        assert entry["attempts"] == 1
        rebuilt = result_from_dict(entry["result"])
        assert rebuilt.cycles == result.cycles
        assert rebuilt.emergency_fraction == result.emergency_fraction

    def test_duplicate_specs_form_a_multiset(self, tmp_path):
        path, spec, _ = self._outcome_entry(tmp_path, n=2)
        saved = load_checkpoint(path)
        assert len(saved[spec_fingerprint(spec)]) == 2

    def test_missing_file_is_empty(self, tmp_path):
        assert load_checkpoint(tmp_path / "nope.jsonl") == {}

    def test_truncated_tail_is_discarded(self, tmp_path):
        path, spec, _ = self._outcome_entry(tmp_path, n=2)
        raw = path.read_text()
        path.write_text(raw[: len(raw) - 40])  # chop mid-final-line
        saved = load_checkpoint(path)
        assert len(saved[spec_fingerprint(spec)]) == 1

    def test_resume_open_truncates_partial_tail(self, tmp_path):
        path, spec, result = self._outcome_entry(tmp_path, n=1)
        with path.open("a") as handle:
            handle.write('{"type": "outcome", "finger')  # crash mid-write
        with CheckpointJournal.open(path, resume=True) as journal:
            journal.append_outcome(spec_fingerprint(spec), spec, 2, result)
        saved = load_checkpoint(path)
        entries = saved[spec_fingerprint(spec)]
        assert [e["attempts"] for e in entries] == [1, 2]

    def test_mid_file_corruption_raises(self, tmp_path):
        path, _, _ = self._outcome_entry(tmp_path, n=1)
        with path.open("a") as handle:
            handle.write("not json at all\n")
            handle.write('{"type": "header", "schema": "%s"}\n' % SWEEP_SCHEMA)
        with pytest.raises(CheckpointError, match="corrupt"):
            load_checkpoint(path)

    def test_schema_mismatch_raises(self, tmp_path):
        path = tmp_path / "old.jsonl"
        path.write_text('{"type": "header", "schema": "repro.sweep/v0"}\n')
        with pytest.raises(CheckpointError, match="schema"):
            load_checkpoint(path)

    def test_missing_header_raises(self, tmp_path):
        path = tmp_path / "headerless.jsonl"
        path.write_text('{"type": "outcome", "fingerprint": "ab"}\n')
        with pytest.raises(CheckpointError):
            load_checkpoint(path)

    def test_unknown_line_type_raises(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            json.dumps({"type": "header", "schema": SWEEP_SCHEMA})
            + "\n"
            + json.dumps({"type": "surprise"})
            + "\n"
        )
        with pytest.raises(CheckpointError, match="surprise"):
            load_checkpoint(path)

    def test_fresh_open_replaces_existing_journal(self, tmp_path):
        path, spec, _ = self._outcome_entry(tmp_path, n=2)
        CheckpointJournal.open(path).close()
        assert load_checkpoint(path) == {}
