"""Distributed sweep sharding: codec, protocol, coordinator, workers.

The headline guarantee mirrors the rest of the performance stack: a
sweep sharded over TCP workers is **bit-identical** to the serial
``run_outcomes`` -- results, retained trace records, events, and
metrics -- once the ``sweep.*`` / ``shard.*`` orchestration diagnostics
(which deliberately record the distribution history itself) are
filtered out.  Asserted on a fixed matrix with two live workers, and as
a hypothesis property over coordinator kill-and-resume points with a
worker disconnecting mid-lease.

Workers run as in-process threads against a real localhost TCP
coordinator, so every byte crosses a genuine socket; misbehaving
workers are simulated with a raw protocol client (lease-then-vanish,
stale results, wrong schema).
"""

from __future__ import annotations

import json
import math
import socket
import threading
import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import TelemetryConfig
from repro.errors import CodecError, ConfigError, ShardError, SweepError
from repro.sim.checkpoint import load_checkpoint, spec_fingerprint
from repro.sim.codec import (
    decode_value,
    encode_value,
    spec_from_dict,
    spec_to_dict,
)
from repro.sim.distributed import (
    SHARD_SCHEMA,
    ClusterConfig,
    ShardCoordinator,
    parse_endpoint,
    run_cluster_outcomes,
    run_worker,
)
from repro.sim.distributed.protocol import read_message, write_message
from repro.sim.parallel import (
    RetryPolicy,
    SweepOptions,
    WorkSpec,
    execute_payloads,
    matrix_specs,
    run_outcomes,
)
from repro.sim.sweep import run_suite
from repro.telemetry.core import Telemetry
from tests.test_sim_parallel import assert_metrics_match, assert_results_equal

INSTRUCTIONS = 150_000
BENCHMARKS = ("gcc", "gzip")
POLICIES = ("none", "pid")
TOKEN = "secret"


def _specs() -> list[WorkSpec]:
    return matrix_specs(BENCHMARKS, POLICIES, instructions=INSTRUCTIONS)


def _quiet() -> Telemetry:
    return Telemetry(TelemetryConfig(sample_latency=False, profile=False))


def _cluster(port: int = 0, **overrides) -> ClusterConfig:
    overrides.setdefault("token", TOKEN)
    overrides.setdefault("lease_seconds", 10.0)
    overrides.setdefault("heartbeat_seconds", 0.5)
    overrides.setdefault("poll_seconds", 0.02)
    return ClusterConfig(host="127.0.0.1", port=port, **overrides)


def _start_worker(port: int, token: str = TOKEN, **kwargs) -> threading.Thread:
    """A real worker in a daemon thread, serving one sweep then exiting."""
    kwargs.setdefault("once", True)
    kwargs.setdefault("idle_timeout", 60.0)
    kwargs.setdefault("reconnect_seconds", 0.05)
    thread = threading.Thread(
        target=run_worker,
        args=(_cluster(port, token=token),),
        kwargs=kwargs,
        daemon=True,
    )
    thread.start()
    return thread


def _run_distributed(
    specs,
    telemetry=None,
    options=None,
    workers: int = 2,
    cluster: ClusterConfig | None = None,
    before_workers=None,
):
    """Serve ``specs`` from a real coordinator with N worker threads."""
    coordinator = ShardCoordinator(
        specs,
        cluster if cluster is not None else _cluster(),
        options=options,
        telemetry=telemetry,
    )
    coordinator.start()
    threads = []
    try:
        if before_workers is not None:
            before_workers(coordinator)
        threads = [
            _start_worker(coordinator.port) for _ in range(workers)
        ]
        return coordinator.wait()
    finally:
        coordinator.request_stop()
        for thread in threads:
            thread.join(timeout=60)


class _RawClient:
    """A hand-rolled protocol client for simulating misbehaving workers."""

    def __init__(
        self,
        port: int,
        token: str = TOKEN,
        schema: str = SHARD_SCHEMA,
        name: str = "griefer",
    ) -> None:
        self.sock = socket.create_connection(("127.0.0.1", port))
        self.rfile = self.sock.makefile("r", encoding="utf-8")
        self.wfile = self.sock.makefile("w", encoding="utf-8")
        self.send(
            {
                "type": "hello",
                "schema": schema,
                "token": token,
                "worker": name,
                "capacity": 8,
            }
        )

    def send(self, message: dict) -> None:
        write_message(self.wfile, message)

    def read(self) -> dict | None:
        return read_message(self.rfile)

    def lease(self, max_leases: int = 8) -> dict:
        self.send({"type": "lease", "max": max_leases})
        return self.read()

    def close(self) -> None:
        self.sock.close()


def _comparable_events(telemetry):
    """Trace events minus the orchestration diagnostics."""
    return [
        e
        for e in telemetry.trace.events
        if not e.kind.startswith(("sweep.", "shard."))
    ]


def _comparable_metrics(telemetry):
    snapshot = telemetry.metrics.snapshot()
    return {
        name: stats
        for name, stats in snapshot.items()
        if not name.startswith(("events.sweep.", "events.shard."))
    }


def _records_equal(a, b) -> bool:
    if len(a) != len(b):
        return False
    for x, y in zip(a, b):
        for field in x.__dataclass_fields__:
            vx, vy = getattr(x, field), getattr(y, field)
            if vx != vy and not (
                isinstance(vx, float)
                and isinstance(vy, float)
                and math.isnan(vx)
                and math.isnan(vy)
            ):
                return False
    return True


# -- the codec ----------------------------------------------------------------
class TestCodec:
    def test_plain_spec_round_trips_with_identical_fingerprint(self):
        spec = WorkSpec(
            benchmark="gcc", policy="pid", seed=7, instructions=INSTRUCTIONS
        )
        decoded = spec_from_dict(json.loads(json.dumps(spec_to_dict(spec))))
        assert decoded == spec
        assert spec_fingerprint(decoded) == spec_fingerprint(spec)

    def test_loaded_spec_round_trips(self):
        from repro.config import DTMConfig, FailsafeConfig, ThermalConfig
        from repro.control.pid import AntiWindup
        from repro.faults import FaultSchedule, FaultWindow

        spec = WorkSpec(
            benchmark="gzip",
            policy="pid",
            seed=3,
            instructions=INSTRUCTIONS,
            thermal_config=ThermalConfig(),
            dtm_config=DTMConfig(),
            anti_windup=AntiWindup.CONDITIONAL,
            setpoint=81.25,
            fault_schedule=FaultSchedule(
                seed=11,
                dropout_rate=0.01,
                sensor_stuck_windows=(FaultWindow(10, 20),),
            ),
            failsafe=FailsafeConfig(),
            tag=("a", 1, 2.5),
        )
        decoded = spec_from_dict(json.loads(json.dumps(spec_to_dict(spec))))
        assert spec_fingerprint(decoded) == spec_fingerprint(spec)
        # FaultSchedule is a plain object (no __eq__): compare content.
        assert (
            decoded.fault_schedule.dropout_rate
            == spec.fault_schedule.dropout_rate
        )
        assert (
            decoded.fault_schedule.sensor_stuck_windows
            == spec.fault_schedule.sensor_stuck_windows
        )
        assert decoded.tag == spec.tag

    def test_ndarray_round_trips_exactly(self):
        array = np.array([[1.1, float("inf")], [-0.0, 2**-1074]])
        decoded = decode_value(
            json.loads(json.dumps(encode_value(array)))
        )
        assert decoded.dtype == array.dtype
        assert decoded.shape == array.shape
        assert np.array_equal(decoded, array)

    def test_unregistered_types_are_rejected_both_ways(self):
        class Sneaky:
            pass

        with pytest.raises(CodecError):
            encode_value(Sneaky())
        with pytest.raises(CodecError):
            decode_value(
                {"__repro__": "object", "type": "Sneaky", "fields": {}}
            )

    @settings(max_examples=200, deadline=None)
    @given(value=st.floats(allow_nan=True, allow_infinity=True))
    def test_floats_survive_the_wire_repr_losslessly(self, value):
        decoded = decode_value(json.loads(json.dumps(encode_value(value))))
        assert repr(decoded) == repr(value)


# -- protocol & config validation ---------------------------------------------
class TestProtocol:
    def test_parse_endpoint(self):
        assert parse_endpoint("localhost:8421") == ("localhost", 8421)
        assert parse_endpoint("10.0.0.2:1") == ("10.0.0.2", 1)
        assert parse_endpoint(
            "127.0.0.1:0", allow_ephemeral=True
        ) == ("127.0.0.1", 0)

    @pytest.mark.parametrize(
        "endpoint",
        ["nocolon", ":80", "host:", "host:abc", "host:70000", "host:0"],
    )
    def test_parse_endpoint_rejects(self, endpoint):
        with pytest.raises(ConfigError):
            parse_endpoint(endpoint)

    @pytest.mark.parametrize(
        "overrides",
        [
            {"host": ""},
            {"host": "  "},
            {"port": -1},
            {"port": 65536},
            {"port": True},
            {"port": "80"},
            {"token": ""},
            {"token": "two\nlines"},
            {"lease_seconds": 0.0},
            {"heartbeat_seconds": 0.0},
            {"heartbeat_seconds": 31.0},  # >= lease_seconds default
            {"poll_seconds": 0.0},
        ],
    )
    def test_cluster_config_rejects(self, overrides):
        fields = dict(host="127.0.0.1", port=0, token=TOKEN)
        fields.update(overrides)
        with pytest.raises(ConfigError):
            ClusterConfig(**fields)

    def test_read_message_frames(self):
        import io

        stream = io.StringIO()
        write_message(stream, {"type": "hello", "x": 1.5})
        stream.seek(0)
        assert read_message(stream) == {"type": "hello", "x": 1.5}
        assert read_message(stream) is None  # clean EOF
        with pytest.raises(ShardError):
            read_message(io.StringIO("not json\n"))
        with pytest.raises(ShardError):
            read_message(io.StringIO('{"no_type": 1}\n'))


# -- authentication and protocol hygiene --------------------------------------
class TestHandshake:
    def test_wrong_token_is_fatal_for_the_worker(self):
        # One unsettled spec keeps the coordinator from reporting
        # "complete" to the mis-authenticated worker.
        coordinator = ShardCoordinator(
            _specs()[:1], _cluster(), telemetry=_quiet()
        )
        coordinator.start()
        try:
            with pytest.raises(ShardError, match="authentication"):
                run_worker(
                    _cluster(coordinator.port, token="wrong"),
                    once=True,
                    idle_timeout=10.0,
                )
        finally:
            coordinator.request_stop()
            with pytest.raises(ShardError, match="stopped before"):
                coordinator.wait()

    def test_schema_mismatch_is_rejected_explicitly(self):
        coordinator = ShardCoordinator(
            _specs()[:1], _cluster(), telemetry=_quiet()
        )
        coordinator.start()
        try:
            client = _RawClient(coordinator.port, schema="repro.shard/v999")
            reply = client.read()
            assert reply["type"] == "error"
            assert "repro.shard/v1" in reply["reason"]
            client.close()
        finally:
            coordinator.request_stop()
            with pytest.raises(ShardError):
                coordinator.wait()

    def test_malformed_result_gets_an_error_reply(self):
        coordinator = ShardCoordinator(
            _specs()[:1], _cluster(), telemetry=_quiet()
        )
        coordinator.start()
        try:
            client = _RawClient(coordinator.port)
            assert client.read()["type"] == "welcome"
            client.send(
                {
                    "type": "result",
                    "index": 999,
                    "fingerprint": "bogus",
                    "ok": False,
                }
            )
            reply = client.read()
            assert reply["type"] == "error"
            assert "index" in reply["reason"]
            client.close()
        finally:
            coordinator.request_stop()
            with pytest.raises(ShardError):
                coordinator.wait()


# -- worker-side execution entry ----------------------------------------------
class TestExecutePayloads:
    def test_settled_payloads_match_serial_execution(self):
        specs = [
            WorkSpec(
                benchmark="gcc", policy="pid", instructions=INSTRUCTIONS
            ),
            WorkSpec(
                benchmark="__nope__", policy="pid", instructions=INSTRUCTIONS
            ),
        ]
        payloads = execute_payloads(specs, jobs=1)
        assert payloads[0][0] == "ok"
        serial = run_outcomes([specs[0]], jobs=1)[0].result
        assert_results_equal(payloads[0][1], serial)
        kind, exc_type, message, traceback = payloads[1]
        assert kind == "error"
        assert "__nope__" in message
        assert traceback  # captured for the coordinator's diagnostics


# -- the distributed <-> serial bit-identity contract -------------------------
#: Built once per session: the serial reference sweep (journaled) and
#: one checkpointed 2-worker distributed sweep over the same specs.
_reference_cache: dict = {}


def _reference(root):
    if not _reference_cache:
        specs = _specs()
        serial_sink = _quiet()
        serial_path = root / "serial-reference.ckpt.jsonl"
        serial_outcomes = run_outcomes(
            specs,
            jobs=1,
            telemetry=serial_sink,
            options=SweepOptions(checkpoint_path=serial_path),
        )
        distributed_sink = _quiet()
        distributed_path = root / "distributed-reference.ckpt.jsonl"
        distributed_outcomes = _run_distributed(
            specs,
            telemetry=distributed_sink,
            options=SweepOptions(checkpoint_path=distributed_path),
        )
        _reference_cache.update(
            specs=specs,
            serial_outcomes=serial_outcomes,
            serial_telemetry=serial_sink,
            serial_journal_lines=serial_path.read_text().splitlines(True),
            distributed_outcomes=distributed_outcomes,
            distributed_telemetry=distributed_sink,
            distributed_journal_lines=(
                distributed_path.read_text().splitlines(True)
            ),
        )
    return _reference_cache


class TestBitIdentity:
    def test_two_workers_match_serial_exactly(self, tmp_path_factory):
        reference = _reference(tmp_path_factory.getbasetemp())
        serial = reference["serial_outcomes"]
        distributed = reference["distributed_outcomes"]
        assert len(distributed) == len(serial)
        for d, s in zip(distributed, serial):
            assert d.error is None
            assert d.attempts == 1
            assert not d.from_checkpoint
            assert_results_equal(d.result, s.result)

    def test_telemetry_folds_match_serial(self, tmp_path_factory):
        reference = _reference(tmp_path_factory.getbasetemp())
        serial = reference["serial_telemetry"]
        distributed = reference["distributed_telemetry"]
        assert _records_equal(
            distributed.trace.records(), serial.trace.records()
        )
        assert _comparable_events(distributed) == _comparable_events(serial)
        assert_metrics_match(
            _comparable_metrics(serial), _comparable_metrics(distributed)
        )

    def test_journal_entries_are_byte_identical_to_serial(
        self, tmp_path_factory
    ):
        """Settlement *order* races between workers, but each journaled
        line -- fingerprint, attempts, repr-lossless result and
        telemetry payloads -- is the exact line a local sweep writes."""
        reference = _reference(tmp_path_factory.getbasetemp())
        serial = reference["serial_journal_lines"]
        distributed = reference["distributed_journal_lines"]
        assert serial[0] == distributed[0]  # the repro.sweep/v1 header
        assert sorted(serial[1:]) == sorted(distributed[1:])

    def test_run_suite_routes_through_the_cluster(self):
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]
        cluster = _cluster(port)
        worker = _start_worker(port)
        try:
            distributed = run_suite(
                ["pid"],
                benchmarks=["gcc"],
                instructions=INSTRUCTIONS,
                cluster=cluster,
            )
        finally:
            worker.join(timeout=60)
        serial = run_suite(["pid"], benchmarks=["gcc"], instructions=INSTRUCTIONS)
        assert distributed.keys() == serial.keys()
        for key in serial:
            assert_results_equal(distributed[key], serial[key])


# -- failure model ------------------------------------------------------------
class TestFaultTolerance:
    def test_worker_disconnect_mid_lease_requeues_uncharged(self):
        telemetry = _quiet()

        def grief(coordinator):
            client = _RawClient(coordinator.port)
            assert client.read()["type"] == "welcome"
            grant = client.lease()
            assert grant["state"] == "ok" and grant["leases"]
            client.close()  # vanish with the leases held

        outcomes = _run_distributed(
            _specs(), telemetry=telemetry, workers=1, before_workers=grief
        )
        assert all(o.error is None and o.attempts == 1 for o in outcomes)
        kinds = [e.kind for e in telemetry.trace.events]
        assert "shard.worker_lost" in kinds

    def test_expired_lease_requeues_uncharged(self):
        telemetry = _quiet()
        cluster = _cluster(lease_seconds=0.6, heartbeat_seconds=0.2)
        clients = []

        def hoard(coordinator):
            client = _RawClient(coordinator.port)
            assert client.read()["type"] == "welcome"
            grant = client.lease()
            assert grant["state"] == "ok"
            clients.append(client)  # stay connected, never heartbeat

        outcomes = _run_distributed(
            _specs(),
            telemetry=telemetry,
            workers=1,
            cluster=cluster,
            before_workers=hoard,
        )
        for client in clients:
            client.close()
        assert all(o.error is None and o.attempts == 1 for o in outcomes)
        kinds = [e.kind for e in telemetry.trace.events]
        assert "shard.lease_expired" in kinds

    def test_stale_duplicate_result_is_acked_and_ignored(self):
        telemetry = _quiet()
        specs = _specs()
        stale: dict = {}

        def hold_then_submit(coordinator):
            client = _RawClient(coordinator.port)
            assert client.read()["type"] == "welcome"
            grant = client.lease(1)
            assert grant["state"] == "ok"
            stale["lease"] = grant["leases"][0]
            stale["client"] = client

        outcomes = _run_distributed(
            specs,
            telemetry=telemetry,
            workers=1,
            cluster=_cluster(lease_seconds=0.6, heartbeat_seconds=0.2),
            before_workers=hold_then_submit,
        )
        assert all(o.error is None for o in outcomes)
        # The long-expired holder finally reports a failure for its
        # settled spec: acked (it is not at fault) and ignored.
        client = stale["client"]
        lease = stale["lease"]
        client.send(
            {
                "type": "result",
                "index": lease["index"],
                "fingerprint": lease["fingerprint"],
                "attempt": lease["attempt"],
                "ok": False,
                "failure": {"kind": "error", "exc_type": "RuntimeError"},
            }
        )
        assert client.read()["type"] == "ack"
        client.close()
        assert outcomes[lease["index"]].error is None
        kinds = [e.kind for e in telemetry.trace.events]
        assert "shard.duplicate" in kinds

    def test_execution_failures_are_charged_and_retried(self):
        telemetry = _quiet()
        specs = _specs() + [
            WorkSpec(
                benchmark="__nope__", policy="pid", instructions=INSTRUCTIONS
            )
        ]
        outcomes = _run_distributed(
            specs,
            telemetry=telemetry,
            workers=2,
            options=SweepOptions(
                retry=RetryPolicy(max_retries=2, backoff_seconds=0.01)
            ),
        )
        good, bad = outcomes[:-1], outcomes[-1]
        assert all(o.error is None and o.attempts == 1 for o in good)
        assert bad.error is not None
        assert bad.attempts == 3  # initial try + two retries
        assert "__nope__" in bad.error.message
        kinds = [e.kind for e in telemetry.trace.events]
        assert kinds.count("shard.retry") == 2
        assert kinds.count("shard.spec_failed") == 1

    def test_strict_mode_aggregates_permanent_failures(self):
        specs = [
            WorkSpec(
                benchmark="__nope__", policy="pid", instructions=INSTRUCTIONS
            )
        ]
        with pytest.raises(SweepError, match="__nope__"):
            _run_distributed(
                specs, workers=1, options=SweepOptions(strict=True)
            )


# -- coordinator kill-and-resume ----------------------------------------------
class TestResume:
    @settings(max_examples=4, deadline=None)
    @given(completed=st.integers(min_value=0, max_value=4))
    def test_killed_coordinator_resumes_bit_identically(
        self, completed, tmp_path_factory
    ):
        """Truncate the journal to N settled specs (the on-disk state a
        ``kill -9``'d coordinator leaves), resume distributed -- with a
        worker vanishing mid-lease for good measure -- and the sweep is
        bit-identical to the serial reference."""
        root = tmp_path_factory.getbasetemp()
        reference = _reference(root)
        specs = reference["specs"]
        workdir = tmp_path_factory.mktemp("shard-resume")
        path = workdir / "sweep.ckpt.jsonl"
        path.write_text(
            "".join(reference["serial_journal_lines"][: 1 + completed])
        )
        telemetry = _quiet()

        def grief(coordinator):
            client = _RawClient(coordinator.port)
            assert client.read()["type"] == "welcome"
            grant = client.lease()
            if completed < len(specs):
                assert grant["state"] == "ok" and grant["leases"]
            client.close()

        outcomes = _run_distributed(
            specs,
            telemetry=telemetry,
            workers=1,
            options=SweepOptions(checkpoint_path=path, resume=True),
            before_workers=grief,
        )
        assert [o.from_checkpoint for o in outcomes] == [
            index < completed for index in range(len(outcomes))
        ]
        for resumed, serial in zip(outcomes, reference["serial_outcomes"]):
            assert_results_equal(resumed.result, serial.result)
        serial_sink = reference["serial_telemetry"]
        assert _records_equal(
            telemetry.trace.records(), serial_sink.trace.records()
        )
        assert _comparable_events(telemetry) == _comparable_events(
            serial_sink
        )
        assert_metrics_match(
            _comparable_metrics(serial_sink), _comparable_metrics(telemetry)
        )
        # The journal is whole again: its fingerprint multiset is
        # exactly the sweep's, so a further resume re-runs nothing.
        saved = load_checkpoint(path)
        journaled = sorted(
            fingerprint
            for fingerprint, entries in saved.items()
            for _ in entries
        )
        assert journaled == sorted(spec_fingerprint(s) for s in specs)

    def test_live_stop_then_resume_completes_the_sweep(self, tmp_path):
        """``request_stop`` mid-sweep (the SIGTERM path) keeps every
        settled spec durable; a fresh coordinator finishes the rest."""
        specs = _specs()
        path = tmp_path / "sweep.ckpt.jsonl"
        coordinator = ShardCoordinator(
            specs,
            _cluster(),
            options=SweepOptions(checkpoint_path=path),
            telemetry=_quiet(),
        )
        coordinator.start()
        worker = _start_worker(coordinator.port)
        try:
            deadline = time.monotonic() + 60
            while coordinator.stats()["settled"] < 1:
                if time.monotonic() >= deadline:
                    pytest.fail("no spec settled within 60s")
                time.sleep(0.01)
            coordinator.request_stop()
            with pytest.raises(ShardError, match="stopped before"):
                coordinator.wait()
        finally:
            worker.join(timeout=60)
        settled = sum(len(v) for v in load_checkpoint(path).values())
        assert settled >= 1
        outcomes = _run_distributed(
            specs,
            telemetry=_quiet(),
            workers=1,
            options=SweepOptions(checkpoint_path=path, resume=True),
        )
        assert sum(o.from_checkpoint for o in outcomes) == settled
        serial = run_outcomes(specs, jobs=1)
        for d, s in zip(outcomes, serial):
            assert_results_equal(d.result, s.result)
