"""Tests for the DTM manager (the Figure 1 loop orchestration)."""

import pytest

from repro.config import DTMConfig
from repro.dtm.manager import DTMManager
from repro.dtm.policies import make_policy
from repro.thermal.sensors import NoisySensor


class TestSamplingCadence:
    def test_ct_policy_checked_every_sample(self):
        manager = DTMManager(make_policy("pid"))
        duties = [manager.on_sample(t)[0] for t in (100.0, 103.0, 103.0)]
        # Reacts on the very next sample after the temperature jump.
        assert duties[0] == 1.0
        assert duties[1] < 1.0

    def test_nonct_policy_checked_at_policy_delay(self):
        config = DTMConfig(policy_delay=5000, sampling_interval=1000)
        manager = DTMManager(make_policy("toggle1", dtm_config=config), config)
        # First sample is a check (index 0); the next four are not.
        assert manager.on_sample(100.0)[0] == 1.0
        for _ in range(4):
            duty, _ = manager.on_sample(103.0)
            assert duty == 1.0  # hot, but no check until the boundary
        duty, _ = manager.on_sample(103.0)
        assert duty == 0.0  # fifth sample: check fires, policy engages

    def test_duty_quantized_to_actuator_grid(self):
        config = DTMConfig(toggle_levels=8)
        manager = DTMManager(make_policy("m", dtm_config=config), config)
        duty, _ = manager.on_sample(100.9)
        assert duty in {k / 7 for k in range(8)}


class TestInterruptAccounting:
    def test_interrupt_cost_on_transitions(self):
        config = DTMConfig(
            use_interrupts=True, policy_delay=1000, sampling_interval=1000
        )
        manager = DTMManager(make_policy("toggle1", dtm_config=config), config)
        _, stall_cold = manager.on_sample(100.0)
        _, stall_engage = manager.on_sample(103.0)
        _, stall_steady = manager.on_sample(103.0)
        assert stall_cold == 0
        assert stall_engage == config.interrupt_cost
        assert stall_steady == 0

    def test_ct_policies_never_pay_interrupts(self):
        config = DTMConfig(use_interrupts=True)
        manager = DTMManager(make_policy("pid", dtm_config=config), config)
        manager.on_sample(100.0)
        _, stall = manager.on_sample(103.0)
        assert stall == 0


class TestSensorsAndState:
    def test_sensor_is_applied(self):
        # A sensor with a large positive offset makes a cool chip look
        # hot, so the policy should engage.
        sensor = NoisySensor(noise_sigma=0.0, offset=5.0)
        manager = DTMManager(make_policy("pid"), sensor=sensor)
        duty, _ = manager.on_sample(100.0)  # reads as 105
        assert duty < 1.0

    def test_engaged_fraction(self):
        manager = DTMManager(make_policy("pid"))
        manager.on_sample(100.0)
        manager.on_sample(103.0)
        manager.on_sample(103.0)
        assert manager.engaged_fraction == pytest.approx(2 / 3)

    def test_reset_restores_initial_state(self):
        manager = DTMManager(make_policy("pi"))
        manager.on_sample(103.0)
        manager.reset()
        assert manager.duty == 1.0
        assert manager.samples == 0
        assert manager.engaged_fraction == 0.0
