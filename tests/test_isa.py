"""Tests for the synthetic ISA: instructions and trace serialization."""

import pytest

from repro.errors import WorkloadError
from repro.isa.instructions import EXECUTION_LATENCY, Instruction, OpClass
from repro.isa.trace import load_trace, save_trace


class TestOpClass:
    def test_memory_classification(self):
        assert OpClass.LOAD.is_memory
        assert OpClass.STORE.is_memory
        assert not OpClass.INT_ALU.is_memory

    def test_fp_classification(self):
        assert OpClass.FP_ALU.is_fp
        assert OpClass.FP_MULT.is_fp
        assert not OpClass.LOAD.is_fp

    def test_every_class_has_a_latency(self):
        for op in OpClass:
            assert EXECUTION_LATENCY[op] >= 1

    def test_multiplies_slower_than_adds(self):
        assert EXECUTION_LATENCY[OpClass.INT_MULT] > EXECUTION_LATENCY[OpClass.INT_ALU]
        assert EXECUTION_LATENCY[OpClass.FP_MULT] > EXECUTION_LATENCY[OpClass.FP_ALU]


class TestInstruction:
    def test_branch_flag(self):
        branch = Instruction(pc=0x400000, op=OpClass.BRANCH, taken=True, target=4)
        alu = Instruction(pc=0x400004, op=OpClass.INT_ALU)
        assert branch.is_branch
        assert not alu.is_branch

    def test_latency_property(self):
        inst = Instruction(pc=0, op=OpClass.FP_MULT)
        assert inst.latency == EXECUTION_LATENCY[OpClass.FP_MULT]

    def test_defaults(self):
        inst = Instruction(pc=4, op=OpClass.NOP)
        assert inst.dest_reg == -1
        assert inst.src_regs == ()
        assert not inst.taken


class TestTraceRoundTrip:
    def make_instructions(self):
        return [
            Instruction(pc=0x400000, op=OpClass.INT_ALU, dest_reg=3,
                        src_regs=(1, 2)),
            Instruction(pc=0x400004, op=OpClass.LOAD, dest_reg=5,
                        src_regs=(3,), address=0x10000040),
            Instruction(pc=0x400008, op=OpClass.STORE, src_regs=(5, 3),
                        address=0x10000048),
            Instruction(pc=0x40000C, op=OpClass.BRANCH, src_regs=(5,),
                        taken=True, target=0x400000),
            Instruction(pc=0x400010, op=OpClass.NOP),
        ]

    def test_round_trip(self, tmp_path):
        path = tmp_path / "trace.txt"
        originals = self.make_instructions()
        count = save_trace(path, originals)
        assert count == len(originals)
        loaded = load_trace(path)
        assert loaded == originals

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(WorkloadError):
            load_trace(tmp_path / "nope.txt")

    def test_blank_lines_and_comments_skipped(self, tmp_path):
        path = tmp_path / "trace.txt"
        save_trace(path, self.make_instructions()[:1])
        content = path.read_text()
        path.write_text("# header comment\n\n" + content)
        assert len(load_trace(path)) == 1

    def test_malformed_line_raises(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text("not a valid line\n")
        with pytest.raises(WorkloadError):
            load_trace(path)

    def test_unknown_op_raises(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text("400000 warp 3 1,2 0 0 0\n")
        with pytest.raises(WorkloadError):
            load_trace(path)


class TestTraceReplayEquivalence:
    def test_saved_trace_reproduces_pipeline_results(self, tmp_path):
        """Replaying a saved trace through the core gives identical
        results to the live generator -- the EIO reproducibility
        property, end to end."""
        import itertools

        from repro.config import MachineConfig
        from repro.uarch.pipeline import OutOfOrderCore
        from repro.workloads.generator import instruction_stream
        from repro.workloads.profiles import get_profile

        profile = get_profile("gzip")
        instructions = list(
            itertools.islice(instruction_stream(profile, seed=11), 20_000)
        )
        path = tmp_path / "gzip.trace"
        save_trace(path, instructions)

        live = OutOfOrderCore(MachineConfig(), iter(instructions))
        replay = OutOfOrderCore(MachineConfig(), iter(load_trace(path)))
        live_result = live.run(max_cycles=12_000)
        replay_result = replay.run(max_cycles=12_000)
        assert live_result.stats.committed == replay_result.stats.committed
        assert live_result.stats.mispredicts == replay_result.stats.mispredicts
        assert live_result.mean_utilization == replay_result.mean_utilization
