"""Tests for the FOPDT plant model of the controlled thermal process."""

import pytest

from repro.control.plant import FirstOrderPlant, dtm_plant
from repro.errors import ControllerError


class TestFirstOrderPlant:
    def test_steady_state_output(self):
        plant = FirstOrderPlant(gain=3.2, time_constant=175e-6)
        assert plant.steady_state_output(0.5) == pytest.approx(1.6)

    def test_rejects_zero_gain(self):
        with pytest.raises(ControllerError):
            FirstOrderPlant(gain=0.0, time_constant=1.0)

    def test_rejects_nonpositive_time_constant(self):
        with pytest.raises(ControllerError):
            FirstOrderPlant(gain=1.0, time_constant=0.0)

    def test_rejects_negative_dead_time(self):
        with pytest.raises(ControllerError):
            FirstOrderPlant(gain=1.0, time_constant=1.0, dead_time=-1.0)


class TestDTMPlant:
    def test_worst_case_gain_is_max_peak_rise(self, floorplan):
        plant = dtm_plant(floorplan)
        expected = max(b.peak_temperature_rise for b in floorplan.blocks)
        assert plant.gain == pytest.approx(expected)

    def test_time_constant_is_longest_block_rc(self, floorplan):
        plant = dtm_plant(floorplan)
        assert plant.time_constant == pytest.approx(
            floorplan.longest_block_time_constant
        )

    def test_dead_time_is_half_sampling_period(self, floorplan):
        plant = dtm_plant(floorplan, sampling_interval_cycles=1000)
        assert plant.dead_time == pytest.approx(500 / 1.5e9)

    def test_single_block_plant(self, floorplan):
        plant = dtm_plant(floorplan, block="lsq")
        assert plant.gain == pytest.approx(
            floorplan.block("lsq").peak_temperature_rise
        )

    def test_rejects_nonpositive_sampling(self, floorplan):
        with pytest.raises(ControllerError):
            dtm_plant(floorplan, sampling_interval_cycles=0)
