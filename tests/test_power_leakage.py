"""Tests for the temperature-dependent leakage model."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.power.leakage import LeakageModel
from repro.sim.fast import FastEngine
from repro.thermal.floorplan import Floorplan
from repro.workloads.profiles import get_profile


class TestLeakagePower:
    def test_reference_point(self):
        model = LeakageModel(fraction_of_peak=0.1, reference_temperature=100.0)
        power = model.power(np.array([10.0]), np.array([100.0]))
        assert power[0] == pytest.approx(1.0)

    def test_doubles_per_interval(self):
        model = LeakageModel(
            fraction_of_peak=0.1, reference_temperature=100.0, doubling_interval=12.0
        )
        cold = model.power(np.array([10.0]), np.array([100.0]))[0]
        hot = model.power(np.array([10.0]), np.array([112.0]))[0]
        assert hot == pytest.approx(2 * cold)

    def test_monotone_in_temperature(self):
        model = LeakageModel(fraction_of_peak=0.2)
        temps = np.array([95.0, 100.0, 105.0, 110.0])
        powers = model.power(np.full(4, 10.0), temps)
        assert np.all(np.diff(powers) > 0)

    def test_zero_fraction_is_zero_power(self):
        model = LeakageModel(fraction_of_peak=0.0)
        assert np.all(model.power(np.full(3, 10.0), np.full(3, 120.0)) == 0.0)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigError):
            LeakageModel(fraction_of_peak=-0.1)
        with pytest.raises(ConfigError):
            LeakageModel(doubling_interval=0.0)


class TestRunawayAnalysis:
    @pytest.fixture(scope="class")
    def regfile(self):
        return Floorplan.default().block("regfile")

    def test_slope_matches_numeric_derivative(self, regfile):
        model = LeakageModel(fraction_of_peak=0.3)
        t = 105.0
        analytic = model.slope(regfile.peak_power, t)
        eps = 1e-4
        hi = model.power(np.array([regfile.peak_power]), np.array([t + eps]))[0]
        lo = model.power(np.array([regfile.peak_power]), np.array([t - eps]))[0]
        assert analytic == pytest.approx((hi - lo) / (2 * eps), rel=1e-5)

    def test_runaway_temperature_is_slope_crossover(self, regfile):
        model = LeakageModel(fraction_of_peak=0.5, doubling_interval=8.0)
        t_star = model.runaway_temperature(regfile)
        # At T*, leakage slope equals the conduction slope 1/R.
        assert model.slope(regfile.peak_power, t_star) == pytest.approx(
            1.0 / regfile.resistance, rel=1e-9
        )

    def test_zero_leakage_never_runs_away(self, regfile):
        assert LeakageModel(fraction_of_peak=0.0).runaway_temperature(
            regfile
        ) == float("inf")

    def test_throttled_floor_grows_with_leakage(self, regfile):
        weak = LeakageModel(fraction_of_peak=0.1).throttled_floor_temperature(
            regfile, 100.0
        )
        strong = LeakageModel(fraction_of_peak=0.4).throttled_floor_temperature(
            regfile, 100.0
        )
        assert strong > weak > 100.0

    def test_throttled_floor_is_equilibrium(self, regfile):
        model = LeakageModel(fraction_of_peak=0.3)
        floor = model.throttled_floor_temperature(regfile, 100.0)
        leak = model.power(
            np.array([regfile.peak_power]), np.array([floor])
        )[0]
        reconstructed = 100.0 + regfile.resistance * (
            0.15 * regfile.peak_power + leak
        )
        assert reconstructed == pytest.approx(floor, abs=1e-6)


class TestEngineIntegration:
    def test_leakage_raises_temperatures(self):
        base = FastEngine(get_profile("gcc")).run(instructions=800_000)
        leaky = FastEngine(
            get_profile("gcc"), leakage=LeakageModel(fraction_of_peak=0.2)
        ).run(instructions=800_000)
        assert leaky.max_temperature > base.max_temperature
        assert leaky.mean_chip_power > base.mean_chip_power

    def test_strong_leakage_defeats_fetch_side_dtm(self):
        from repro.dtm.policies import make_policy

        result = FastEngine(
            get_profile("gcc"),
            policy=make_policy("pid"),
            leakage=LeakageModel(fraction_of_peak=0.5),
        ).run(instructions=800_000)
        # The throttled floor is above 102: emergencies are unavoidable.
        assert result.emergency_fraction > 0.5
