"""Tests for the out-of-order core."""

import itertools

import pytest

from repro.config import MachineConfig
from repro.errors import SimulationError
from repro.isa.instructions import Instruction, OpClass
from repro.uarch.functional_units import FunctionalUnitPool, FunctionalUnits
from repro.uarch.pipeline import OutOfOrderCore
from repro.workloads.generator import instruction_stream
from repro.workloads.profiles import get_profile


def independent_alu_stream():
    """An endless stream of independent single-cycle ALU ops.

    The PC wraps within a 4 KB loop so the I-cache stays warm (an
    unbounded straight-line PC would make every test I-cache-bound).
    """
    index = 0
    while True:
        yield Instruction(
            pc=0x400000 + (index * 4) % 4096,
            op=OpClass.INT_ALU,
            dest_reg=index % 64,
            src_regs=(),
        )
        index += 1


def serial_chain_stream():
    """Every instruction depends on the previous one."""
    index = 0
    while True:
        yield Instruction(
            pc=0x400000 + (index * 4) % 4096,
            op=OpClass.INT_ALU,
            dest_reg=1,
            src_regs=(1,),
        )
        index += 1


class TestFunctionalUnits:
    def test_pool_limits_per_cycle_issue(self):
        pool = FunctionalUnitPool("alu", 2)
        pool.begin_cycle()
        pool.issue()
        pool.issue()
        assert not pool.can_issue()
        with pytest.raises(SimulationError):
            pool.issue()

    def test_begin_cycle_resets(self):
        pool = FunctionalUnitPool("alu", 1)
        pool.begin_cycle()
        pool.issue()
        pool.begin_cycle()
        assert pool.can_issue()

    def test_dispatch_table(self):
        units = FunctionalUnits()
        assert units.pool_for(OpClass.LOAD) is units.mem_port
        assert units.pool_for(OpClass.FP_MULT) is units.fp_mult
        assert units.pool_for(OpClass.BRANCH) is units.int_alu


def warm_ipc(core, warm_cycles=18_000, measure_cycles=4000):
    """IPC measured after an I-cache/predictor warmup period."""
    core.run(max_cycles=warm_cycles)
    cycles0 = core.stats.cycles
    committed0 = core.stats.committed
    core.run(max_cycles=measure_cycles)
    return (core.stats.committed - committed0) / (core.stats.cycles - cycles0)


class TestThroughput:
    def test_independent_ops_reach_fetch_width(self):
        # Independent ALU ops: bounded by fetch width (4), not by the
        # 4 IntALUs -- warm IPC should approach 4.
        core = OutOfOrderCore(MachineConfig(), independent_alu_stream())
        assert warm_ipc(core) > 3.0

    def test_serial_chain_limits_ipc_to_about_one(self):
        core = OutOfOrderCore(MachineConfig(), serial_chain_stream())
        assert 0.3 < warm_ipc(core) <= 1.1

    def test_fetch_gate_zero_stops_commits(self):
        core = OutOfOrderCore(
            MachineConfig(), independent_alu_stream(), fetch_gate=lambda c: False
        )
        result = core.run(max_cycles=500)
        assert result.stats.committed == 0
        assert result.stats.fetch_gated_cycles == 500

    def test_half_duty_roughly_halves_throughput(self):
        full = OutOfOrderCore(MachineConfig(), independent_alu_stream())
        half = OutOfOrderCore(
            MachineConfig(),
            independent_alu_stream(),
            fetch_gate=lambda c: c % 2 == 0,
        )
        ipc_full = warm_ipc(full)
        ipc_half = warm_ipc(half)
        assert ipc_half == pytest.approx(ipc_full / 2, rel=0.15)

    def test_fetch_width_limit_caps_ipc(self):
        core = OutOfOrderCore(MachineConfig(), independent_alu_stream())
        core.fetch_width_limit = 1
        result = core.run(max_cycles=2000)
        assert result.ipc <= 1.05

    def test_max_instructions_stops_early(self):
        core = OutOfOrderCore(MachineConfig(), independent_alu_stream())
        result = core.run(max_cycles=100_000, max_instructions=500)
        assert 500 <= result.stats.committed < 600
        assert result.stats.cycles < 100_000


class TestBranchHandling:
    def test_synthetic_stream_mispredict_rate_reasonable(self):
        profile = get_profile("gcc")
        core = OutOfOrderCore(MachineConfig(), instruction_stream(profile, seed=3))
        core.run(max_cycles=60_000)
        # Tables are still warming at this budget; the rate must already
        # be far below chance and heading toward the stream's ~8 %.
        assert core.stats.mispredict_rate < 0.35
        assert core.stats.branches > 500

    def test_mispredicts_create_wrong_path_cycles(self):
        profile = get_profile("gcc")
        core = OutOfOrderCore(MachineConfig(), instruction_stream(profile, seed=3))
        core.run(max_cycles=20_000)
        assert core.stats.mispredicts > 0
        assert core.stats.wrong_path_cycles > 0

    def test_speculation_control_limits_unresolved_branches(self):
        profile = get_profile("gcc")
        limited = OutOfOrderCore(
            MachineConfig(), instruction_stream(profile, seed=3)
        )
        limited.max_unresolved_branches = 1
        free = OutOfOrderCore(MachineConfig(), instruction_stream(profile, seed=3))
        ipc_limited = limited.run(max_cycles=20_000).ipc
        ipc_free = free.run(max_cycles=20_000).ipc
        assert ipc_limited <= ipc_free


class TestActivityAccounting:
    def test_activity_counters_populated(self):
        profile = get_profile("gcc")
        core = OutOfOrderCore(MachineConfig(), instruction_stream(profile, seed=3))
        result = core.run(max_cycles=20_000)
        assert result.mean_utilization["window"] > 0
        assert result.mean_utilization["regfile"] > 0
        assert result.mean_utilization["int_exec"] > 0

    def test_fp_stream_exercises_fp_unit(self):
        profile = get_profile("equake")
        core = OutOfOrderCore(MachineConfig(), instruction_stream(profile, seed=3))
        result = core.run(max_cycles=20_000)
        assert result.mean_utilization["fp_exec"] > 0.01

    def test_int_stream_leaves_fp_idle(self):
        core = OutOfOrderCore(MachineConfig(), independent_alu_stream())
        result = core.run(max_cycles=2000)
        assert result.mean_utilization["fp_exec"] == 0.0

    def test_utilizations_bounded(self):
        profile = get_profile("gcc")
        core = OutOfOrderCore(MachineConfig(), instruction_stream(profile, seed=3))
        result = core.run(max_cycles=10_000)
        for name, value in result.mean_utilization.items():
            assert 0.0 <= value <= 1.0, name

    def test_rejects_nonpositive_cycles(self):
        core = OutOfOrderCore(MachineConfig(), independent_alu_stream())
        with pytest.raises(SimulationError):
            core.run(max_cycles=0)


class TestDeterminism:
    def test_same_seed_same_result(self):
        profile = get_profile("gcc")
        a = OutOfOrderCore(MachineConfig(), instruction_stream(profile, seed=9))
        b = OutOfOrderCore(MachineConfig(), instruction_stream(profile, seed=9))
        ra = a.run(max_cycles=15_000)
        rb = b.run(max_cycles=15_000)
        assert ra.stats.committed == rb.stats.committed
        assert ra.stats.mispredicts == rb.stats.mispredicts
        assert ra.mean_utilization == rb.mean_utilization
