"""Tests for the floorplan geometry and the 2D grid thermal model."""

import numpy as np
import pytest

from repro.errors import ThermalModelError
from repro.thermal.floorplan import Floorplan
from repro.thermal.geometry import Rectangle, slicing_layout
from repro.thermal.grid import GridThermalModel
from repro.thermal.lumped import LumpedThermalModel


class TestRectangle:
    def test_area(self):
        assert Rectangle("r", 0, 0, 2e-3, 3e-3).area == pytest.approx(6e-6)

    def test_contains(self):
        rect = Rectangle("r", 1e-3, 1e-3, 2e-3, 2e-3)
        assert rect.contains(2e-3, 2e-3)
        assert not rect.contains(0.5e-3, 2e-3)
        assert not rect.contains(3e-3, 3.5e-3)

    def test_overlap_detection(self):
        a = Rectangle("a", 0, 0, 2e-3, 2e-3)
        b = Rectangle("b", 1e-3, 1e-3, 2e-3, 2e-3)
        c = Rectangle("c", 2e-3, 0, 1e-3, 1e-3)
        assert a.overlaps(b)
        assert not a.overlaps(c)  # touching edges do not overlap

    def test_rejects_degenerate(self):
        with pytest.raises(ThermalModelError):
            Rectangle("r", 0, 0, 0.0, 1e-3)


class TestSlicingLayout:
    def test_areas_preserved(self, floorplan):
        layout = slicing_layout(floorplan)
        for block in floorplan.blocks:
            rect = layout.rectangle(block.name)
            assert rect.area == pytest.approx(block.area_m2, rel=1e-9)

    def test_no_overlaps(self, floorplan):
        layout = slicing_layout(floorplan)
        rects = layout.rectangles
        for i, a in enumerate(rects):
            for b in rects[i + 1 :]:
                assert not a.overlaps(b), (a.name, b.name)

    def test_fits_on_die(self, floorplan):
        layout = slicing_layout(floorplan)
        for rect in layout.rectangles:
            assert rect.x + rect.width <= layout.die_width + 1e-12
            assert rect.y + rect.height <= layout.die_height + 1e-12

    def test_occupied_fraction_matches_floorplan(self, floorplan):
        layout = slicing_layout(floorplan)
        expected = sum(b.area_m2 for b in floorplan.blocks) / floorplan.die_area_m2
        assert layout.occupied_fraction == pytest.approx(expected, rel=1e-9)

    def test_block_at_lookup(self, floorplan):
        layout = slicing_layout(floorplan)
        rect = layout.rectangle("regfile")
        center = (rect.x + rect.width / 2, rect.y + rect.height / 2)
        assert layout.block_at(*center) == "regfile"
        assert layout.block_at(layout.die_width * 0.99, layout.die_height * 0.99) is None

    def test_unknown_block_raises(self, floorplan):
        with pytest.raises(ThermalModelError):
            slicing_layout(floorplan).rectangle("l3")


class TestGridModel:
    @pytest.fixture(scope="class")
    def grid(self):
        return GridThermalModel(Floorplan.default(), resolution=32)

    def peak_powers(self, floorplan):
        return np.array([b.peak_power for b in floorplan.blocks])

    def test_starts_at_heatsink(self, grid):
        assert grid.max_temperature == pytest.approx(100.0)

    def test_zero_power_stays_isothermal(self, floorplan):
        grid = GridThermalModel(floorplan, resolution=16)
        grid.advance(np.zeros(7), 1e-3)
        assert np.allclose(grid.temperatures, 100.0, atol=1e-9)

    def test_heating_bounded_by_physics(self, floorplan):
        grid = GridThermalModel(floorplan, resolution=16)
        grid.advance(self.peak_powers(floorplan), 2e-3)
        # No cell can exceed the hottest lumped steady state by much.
        assert grid.max_temperature < 104.0
        assert grid.max_temperature > 101.0

    def test_steady_state_close_to_lumped(self, floorplan):
        grid = GridThermalModel(floorplan, resolution=32)
        lumped = LumpedThermalModel(floorplan, 100.0)
        powers = self.peak_powers(floorplan)
        grid_steady = grid.steady_state(powers)
        lumped_steady = lumped.steady_state(powers)
        assert np.max(np.abs(grid_steady - lumped_steady)) < 0.3

    def test_transient_close_to_lumped(self, floorplan):
        grid = GridThermalModel(floorplan, resolution=32)
        lumped = LumpedThermalModel(floorplan, 100.0)
        powers = self.peak_powers(floorplan)
        grid_temps = grid.advance(powers, 100e-6)
        lumped_temps = lumped.advance(powers, 150_000)
        assert np.max(np.abs(grid_temps - lumped_temps)) < 0.3

    def test_lateral_spreading_warms_background(self, floorplan):
        # Heat only the regfile: neighboring background cells must warm.
        grid = GridThermalModel(floorplan, resolution=32)
        powers = np.zeros(7)
        powers[floorplan.index("regfile")] = 8.0
        grid.steady_state(powers)
        field = grid.temperatures
        hot_cells = (field > 100.05).sum()
        regfile_cells = grid._block_masks[floorplan.index("regfile")].sum()
        assert hot_cells > regfile_cells  # spread beyond the block

    def test_hot_block_is_the_powered_one(self, floorplan):
        grid = GridThermalModel(floorplan, resolution=32)
        powers = np.zeros(7)
        powers[floorplan.index("bpred")] = 8.0
        temps = grid.steady_state(powers)
        assert int(np.argmax(temps)) == floorplan.index("bpred")

    def test_reset(self, floorplan):
        grid = GridThermalModel(floorplan, resolution=16)
        grid.advance(self.peak_powers(floorplan), 1e-4)
        grid.reset()
        assert grid.max_temperature == pytest.approx(100.0)

    def test_wrong_power_shape_rejected(self, grid):
        with pytest.raises(ThermalModelError):
            grid.advance(np.zeros(3), 1e-6)

    def test_too_coarse_grid_rejected(self, floorplan):
        with pytest.raises(ThermalModelError):
            GridThermalModel(floorplan, resolution=4)


class TestBlockStatisticValidation:
    """Regression: unknown statistics used to fall back to "mean"."""

    def test_mean_and_max_accepted(self, floorplan):
        grid = GridThermalModel(floorplan, resolution=16)
        powers = np.array([b.peak_power for b in floorplan.blocks])
        grid.advance(powers, 1e-4)
        means = grid.block_temperatures("mean")
        maxes = grid.block_temperatures("max")
        assert np.all(maxes >= means)

    def test_unknown_statistic_rejected(self, floorplan):
        grid = GridThermalModel(floorplan, resolution=16)
        with pytest.raises(ValueError, match="median"):
            grid.block_temperatures("median")

    def test_unknown_statistic_rejected_single_block(self, floorplan):
        grid = GridThermalModel(floorplan, resolution=16)
        with pytest.raises(ValueError, match="statistic"):
            grid.block_temperature("regfile", "p99")

    def test_case_sensitive(self, floorplan):
        # "Mean" is not "mean"; silent coercion is exactly the bug.
        grid = GridThermalModel(floorplan, resolution=16)
        with pytest.raises(ValueError):
            grid.block_temperature("regfile", "Mean")
