"""Integration tests: the paper's quantitative claims, end to end.

These run the fast engine over real profiles with real controllers and
assert the phenomena the paper reports.  Budgets are kept moderate so
the suite stays fast; the full-budget numbers live in EXPERIMENTS.md.
"""

import pytest

from repro.sim.sweep import run_one

INSTRUCTIONS = 2_000_000


@pytest.fixture(scope="module")
def gcc_baseline():
    return run_one("gcc", "none", instructions=INSTRUCTIONS)


@pytest.fixture(scope="module")
def mesa_baseline():
    return run_one("mesa", "none", instructions=INSTRUCTIONS)


class TestUnmanagedBehaviour:
    def test_extreme_benchmark_has_emergencies(self, gcc_baseline):
        assert gcc_baseline.emergency_fraction > 0.2

    def test_mesa_is_near_threshold_but_safe(self, mesa_baseline):
        # Section 5.4: mesa spends nearly all its time above the stress
        # trigger but (almost) never in emergency.
        assert mesa_baseline.stress_fraction > 0.5
        assert mesa_baseline.emergency_fraction < 0.001

    def test_localized_hot_spot_structure_identified(self, gcc_baseline):
        # gcc's hot spot must be the register file (the highest power
        # density in the floorplan).
        hottest = max(
            gcc_baseline.max_block_temperature,
            key=gcc_baseline.max_block_temperature.get,
        )
        assert hottest == "regfile"


class TestEmergencyElimination:
    """Paper: the goal is that DTM never allows a thermal emergency."""

    @pytest.mark.parametrize("policy", ["toggle1", "m", "p", "pd", "pi", "pid"])
    def test_policies_eliminate_emergencies_on_gcc(self, policy):
        result = run_one("gcc", policy, instructions=INSTRUCTIONS)
        assert result.emergency_fraction == 0.0, policy

    def test_toggle2_cannot_eliminate_emergencies(self):
        # Section 2.1: "toggle1 is able to eliminate emergencies,
        # because it stops fetching entirely; toggle2 is not."
        result = run_one("gcc", "toggle2", instructions=INSTRUCTIONS)
        assert result.emergency_fraction > 0.0


class TestControlTheoreticAdvantage:
    """Paper headline: CT-DTM sharply cuts the performance loss."""

    def test_pid_beats_toggle1_on_hot_benchmark(self, gcc_baseline):
        toggle1 = run_one("gcc", "toggle1", instructions=INSTRUCTIONS)
        pid = run_one("gcc", "pid", instructions=INSTRUCTIONS)
        assert pid.relative_ipc(gcc_baseline) > toggle1.relative_ipc(gcc_baseline)

    def test_pid_barely_penalizes_near_threshold_benchmark(self, mesa_baseline):
        # "Any successful DTM scheme should minimize the penalties for
        # these programs" (mesa-class) -- CT-DTM does.
        pid = run_one("mesa", "pid", instructions=INSTRUCTIONS)
        assert pid.relative_ipc(mesa_baseline) > 0.95

    def test_toggle1_punishes_near_threshold_benchmark(self, mesa_baseline):
        toggle1 = run_one("mesa", "toggle1", instructions=INSTRUCTIONS)
        assert toggle1.relative_ipc(mesa_baseline) < 0.7

    def test_loss_reduction_at_least_half_on_gcc_and_mesa(
        self, gcc_baseline, mesa_baseline
    ):
        # The paper reports a 65 % suite-mean loss reduction; require at
        # least 50 % on these two representative benchmarks.
        for benchmark, baseline in (("gcc", gcc_baseline), ("mesa", mesa_baseline)):
            toggle1 = run_one(benchmark, "toggle1", instructions=INSTRUCTIONS)
            pid = run_one(benchmark, "pid", instructions=INSTRUCTIONS)
            loss_toggle1 = toggle1.performance_loss(baseline)
            loss_pid = pid.performance_loss(baseline)
            assert loss_pid < 0.5 * loss_toggle1, benchmark

    def test_pid_holds_temperature_at_setpoint(self):
        pid = run_one("gcc", "pid", instructions=INSTRUCTIONS)
        assert pid.max_temperature == pytest.approx(101.8, abs=0.05)

    def test_pi_and_pid_equivalent_here(self, gcc_baseline):
        pi = run_one("gcc", "pi", instructions=INSTRUCTIONS)
        pid = run_one("gcc", "pid", instructions=INSTRUCTIONS)
        assert pi.relative_ipc(gcc_baseline) == pytest.approx(
            pid.relative_ipc(gcc_baseline), abs=0.03
        )


class TestTriggerPlacement:
    """Abstract: the CT trigger can sit within 0.2 C of the maximum."""

    def test_pid_safe_at_aggressive_setpoint(self):
        result = run_one("gcc", "pid", instructions=INSTRUCTIONS, setpoint=101.8)
        assert result.emergency_fraction == 0.0

    def test_toggle1_unsafe_at_aggressive_trigger(self):
        result = run_one(
            "gcc", "toggle1", instructions=INSTRUCTIONS, setpoint=101.8
        )
        assert result.emergency_fraction > 0.0

    def test_toggle1_safe_at_conservative_trigger(self):
        result = run_one(
            "gcc", "toggle1", instructions=INSTRUCTIONS, setpoint=101.0
        )
        assert result.emergency_fraction == 0.0

    def test_higher_setpoint_means_less_loss(self, gcc_baseline):
        low = run_one("gcc", "pid", instructions=INSTRUCTIONS, setpoint=101.4)
        high = run_one("gcc", "pid", instructions=INSTRUCTIONS, setpoint=101.8)
        assert high.relative_ipc(gcc_baseline) > low.relative_ipc(gcc_baseline)


class TestBurstyWorkload:
    def test_art_is_bursty_unmanaged(self):
        result = run_one("art", "none", instructions=14_000_000)
        # Little total stress time, a good chunk of it in emergency.
        assert 0.05 < result.stress_fraction < 0.3
        assert result.emergency_fraction > 0.01
        assert result.emergency_fraction < result.stress_fraction

    def test_pid_tames_art_cheaply(self):
        baseline = run_one("art", "none", instructions=14_000_000)
        pid = run_one("art", "pid", instructions=14_000_000)
        assert pid.emergency_fraction == 0.0
        assert pid.relative_ipc(baseline) > 0.9
