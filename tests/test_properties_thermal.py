"""Property-based tests (hypothesis) for the thermal models."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.thermal.floorplan import Floorplan
from repro.thermal.lumped import LumpedThermalModel
from repro.thermal.rc_network import ThermalRCNetwork

FLOORPLAN = Floorplan.default()

powers_strategy = st.lists(
    st.floats(min_value=0.0, max_value=25.0, allow_nan=False),
    min_size=7,
    max_size=7,
).map(np.array)

temps_strategy = st.lists(
    st.floats(min_value=80.0, max_value=120.0, allow_nan=False),
    min_size=7,
    max_size=7,
).map(np.array)


class TestLumpedModelProperties:
    @given(powers=powers_strategy, cycles=st.integers(1, 500_000))
    @settings(max_examples=60, deadline=None)
    def test_temperature_bounded_by_start_and_steady(self, powers, cycles):
        """Exponential approach: T stays between start and steady state."""
        model = LumpedThermalModel(FLOORPLAN, 100.0)
        steady = model.steady_state(powers)
        end = model.advance(powers, cycles)
        low = np.minimum(100.0, steady) - 1e-9
        high = np.maximum(100.0, steady) + 1e-9
        assert np.all(end >= low)
        assert np.all(end <= high)

    @given(powers=powers_strategy, cycles=st.integers(1, 100_000))
    @settings(max_examples=40, deadline=None)
    def test_advance_is_composable(self, powers, cycles):
        """advance(a+b) == advance(a); advance(b) under constant power."""
        one = LumpedThermalModel(FLOORPLAN, 100.0)
        two = LumpedThermalModel(FLOORPLAN, 100.0)
        one.advance(powers, 2 * cycles)
        two.advance(powers, cycles)
        two.advance(powers, cycles)
        assert np.allclose(one.temperatures, two.temperatures, atol=1e-9)

    @given(powers=powers_strategy)
    @settings(max_examples=40, deadline=None)
    def test_monotone_in_power(self, powers):
        """More power never yields lower temperatures."""
        base = LumpedThermalModel(FLOORPLAN, 100.0)
        hotter = LumpedThermalModel(FLOORPLAN, 100.0)
        base.advance(powers, 100_000)
        hotter.advance(powers + 1.0, 100_000)
        assert np.all(hotter.temperatures >= base.temperatures - 1e-12)

    @given(powers=powers_strategy, start=temps_strategy,
           threshold=st.floats(90.0, 115.0))
    @settings(max_examples=80, deadline=None)
    def test_fraction_above_in_unit_interval(self, powers, start, threshold):
        model = LumpedThermalModel(FLOORPLAN, 100.0)
        model._temps = start.copy()
        steady = model.steady_state(powers)
        frac = model.fraction_above(start, steady, 1000 / 1.5e9, threshold)
        assert np.all(frac >= 0.0)
        assert np.all(frac <= 1.0)

    @given(powers=powers_strategy, start=temps_strategy,
           threshold=st.floats(90.0, 115.0))
    @settings(max_examples=80, deadline=None)
    def test_fraction_above_consistent_with_endpoints(
        self, powers, start, threshold
    ):
        """If both endpoints are above, fraction is 1; both below, 0."""
        model = LumpedThermalModel(FLOORPLAN, 100.0)
        model._temps = start.copy()
        steady = model.steady_state(powers)
        duration = 1000 / 1.5e9  # the interval advance(powers, 1000) covers
        end = model.advance(powers, 1000)
        frac = model.fraction_above(start, steady, duration, threshold)
        both_above = (start > threshold) & (end > threshold)
        both_below = (start <= threshold) & (end <= threshold)
        assert np.all(frac[both_above] == 1.0)
        assert np.all(frac[both_below] == 0.0)


class TestNetworkProperties:
    @given(
        powers=st.lists(st.floats(0.0, 30.0), min_size=3, max_size=3),
        resistances=st.lists(st.floats(0.05, 5.0), min_size=3, max_size=3),
    )
    @settings(max_examples=40, deadline=None)
    def test_steady_state_above_reference_for_positive_power(
        self, powers, resistances
    ):
        network = ThermalRCNetwork()
        names = ["a", "b", "c"]
        for name, resistance in zip(names, resistances):
            network.add_node(name, 1e-3, 100.0)
            network.connect_reference(name, 100.0, resistance)
        network.connect("a", "b", 10.0)
        network.connect("b", "c", 10.0)
        steady = network.steady_state(dict(zip(names, powers)))
        for temp in steady.values():
            assert temp >= 100.0 - 1e-9

    @given(power=st.floats(0.0, 50.0), resistance=st.floats(0.05, 5.0))
    @settings(max_examples=40, deadline=None)
    def test_single_node_steady_state_is_ohms_law(self, power, resistance):
        network = ThermalRCNetwork()
        network.add_node("die", 0.5, 27.0)
        network.connect_reference("die", 27.0, resistance)
        steady = network.steady_state({"die": power})
        assert steady["die"] == (
            27.0 + power * resistance
        ) or abs(steady["die"] - (27.0 + power * resistance)) < 1e-9


class TestNetworkSteadyStateAgreesWithSettledRun:
    """steady_state must be the fixed point the Euler run settles to."""

    @given(
        n_nodes=st.integers(2, 4),
        powers=st.lists(st.floats(0.0, 10.0), min_size=4, max_size=4),
        resistances=st.lists(st.floats(0.2, 2.0), min_size=4, max_size=4),
        capacitances=st.lists(
            st.floats(1e-4, 8e-4), min_size=4, max_size=4
        ),
        chain_resistance=st.floats(0.5, 10.0),
    )
    @settings(max_examples=25, deadline=None)
    def test_long_run_settles_to_steady_state(
        self, n_nodes, powers, resistances, capacitances, chain_resistance
    ):
        network = ThermalRCNetwork()
        names = [f"n{i}" for i in range(n_nodes)]
        for name, capacitance in zip(names, capacitances):
            network.add_node(name, capacitance, 100.0)
        # Only the head node sees the reference; the rest reach it
        # through the chain, so the solve is genuinely coupled.
        network.connect_reference(names[0], 100.0, resistances[0])
        for left, right, resistance in zip(
            names, names[1:], resistances[1:]
        ):
            network.connect(left, right, chain_resistance * resistance)
        injected = dict(zip(names, powers))
        steady = network.steady_state(injected)
        # Longest possible time constant: every capacitance through
        # the full series resistance to the reference.
        total_r = resistances[0] + chain_resistance * sum(
            resistances[1:n_nodes]
        )
        tau = sum(capacitances[:n_nodes]) * total_r
        network.run(injected, duration=30.0 * tau, dt=tau / 50.0)
        for name in names:
            assert network.temperatures()[name] == pytest.approx(
                steady[name], abs=1e-6
            )


class TestMulticoreZeroCouplingProperties:
    """Decoupled stacked model == N independent single-core models."""

    @given(
        n_cores=st.integers(1, 4),
        seed=st.integers(0, 2**32 - 1),
        steps=st.integers(1, 5),
    )
    @settings(max_examples=30, deadline=None)
    def test_bitwise_identical_to_independent_models(
        self, n_cores, seed, steps
    ):
        from repro.multicore.floorplan import MulticoreFloorplan
        from repro.multicore.thermal import MulticoreThermalModel

        tiling = MulticoreFloorplan.tile(
            n_cores=n_cores, coupling_scale=0.0
        )
        stacked = MulticoreThermalModel(tiling)
        independents = [
            LumpedThermalModel(tiling.core) for _ in range(n_cores)
        ]
        rng = np.random.default_rng(seed)
        for _ in range(steps):
            powers = rng.uniform(0.0, 12.0, size=stacked.shape)
            cycles = int(rng.integers(1, 200_000))
            stacked.advance(powers, cycles)
            for core, model in enumerate(independents):
                model.advance(powers[core], cycles)
        expected = np.stack(
            [model.temperatures for model in independents]
        )
        assert np.array_equal(stacked.temperatures, expected)

    @given(
        n_cores=st.integers(2, 4),
        seed=st.integers(0, 2**32 - 1),
    )
    @settings(max_examples=20, deadline=None)
    def test_fraction_above_matches_single_core(self, n_cores, seed):
        from repro.multicore.floorplan import MulticoreFloorplan
        from repro.multicore.thermal import MulticoreThermalModel

        tiling = MulticoreFloorplan.tile(
            n_cores=n_cores, coupling_scale=0.0
        )
        stacked = MulticoreThermalModel(tiling)
        single = LumpedThermalModel(tiling.core)
        rng = np.random.default_rng(seed)
        powers = rng.uniform(0.0, 12.0, size=stacked.shape)
        start0, steady0, _ = stacked.sample_update(powers, 1000)
        single._temps = start0[0].copy()
        frac_stack = stacked.fraction_above(
            start0, steady0, 1000 / 1.5e9, 101.0
        )
        frac_single = single.fraction_above(
            start0[0], steady0[0], 1000 / 1.5e9, 101.0
        )
        assert np.array_equal(frac_stack[0], frac_single)
