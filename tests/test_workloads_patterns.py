"""Tests for the synthetic stress-pattern workloads."""

import pytest

from repro.dtm.policies import make_policy
from repro.errors import WorkloadError
from repro.sim.fast import FastEngine
from repro.workloads.patterns import (
    ramp_profile,
    square_wave_profile,
    step_profile,
    worst_case_burst_profile,
)


class TestConstruction:
    def test_step_profile_shape(self):
        profile = step_profile(level=0.9)
        assert len(profile.phases) == 2
        assert profile.phases[1].activity["regfile"] == 0.9

    def test_step_rejects_bad_level(self):
        with pytest.raises(WorkloadError):
            step_profile(level=0.0)

    def test_square_wave_alternates(self):
        profile = square_wave_profile(high=0.8, low=0.2)
        assert profile.phases[0].activity["regfile"] == 0.8
        assert profile.phases[1].activity["regfile"] == 0.2

    def test_square_rejects_inverted_levels(self):
        with pytest.raises(WorkloadError):
            square_wave_profile(high=0.2, low=0.8)

    def test_ramp_is_monotone(self):
        profile = ramp_profile(steps=6, peak=0.9)
        levels = [phase.activity["regfile"] for phase in profile.phases]
        assert levels == sorted(levels)
        assert levels[-1] == pytest.approx(0.9)

    def test_ramp_rejects_single_step(self):
        with pytest.raises(WorkloadError):
            ramp_profile(steps=1)

    def test_patterns_are_deterministic(self):
        assert step_profile().phases[0].jitter == 0.0


class TestBehaviour:
    def test_step_heats_into_emergency_unmanaged(self):
        result = FastEngine(step_profile(level=0.95)).run(instructions=2_000_000)
        assert result.max_temperature > 102.0

    def test_pid_contains_the_step(self):
        result = FastEngine(
            step_profile(level=0.95), policy=make_policy("pid")
        ).run(instructions=2_000_000)
        assert result.emergency_fraction == 0.0
        assert result.max_temperature <= 101.85

    def test_square_wave_oscillates_unmanaged(self):
        engine = FastEngine(square_wave_profile(), record_history=True)
        result = engine.run(instructions=3_000_000)
        temps = result.history.max_temp
        assert temps.max() - temps.min() > 0.5  # visible oscillation

    def test_pid_tracks_the_ramp_safely(self):
        result = FastEngine(
            ramp_profile(peak=0.95), policy=make_policy("pid")
        ).run(instructions=3_000_000)
        assert result.emergency_fraction == 0.0

    def test_worst_case_burst_defeats_unprotected_integral(self):
        from repro.control.pid import AntiWindup
        from repro.dtm.policies import make_policy as build

        profile = worst_case_burst_profile()
        naive = FastEngine(
            profile, policy=build("pi", anti_windup=AntiWindup.NONE)
        ).run(instructions=2 * profile.total_instructions)
        protected = FastEngine(
            profile, policy=build("pi")
        ).run(instructions=2 * profile.total_instructions)
        assert protected.max_temperature < naive.max_temperature
        assert protected.emergency_fraction == 0.0
