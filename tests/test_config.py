"""Tests for the configuration dataclasses (paper Table 2 defaults)."""

import pytest

from repro.config import (
    BranchPredictorConfig,
    CacheConfig,
    DTMConfig,
    MachineConfig,
    ThermalConfig,
)
from repro.errors import ConfigError


class TestCacheConfig:
    def test_num_sets(self):
        cache = CacheConfig("dl1", 64 * 1024, 2, 32, 1)
        assert cache.num_sets == 1024

    def test_rejects_non_multiple_size(self):
        with pytest.raises(ConfigError):
            CacheConfig("bad", 1000, 2, 32, 1)

    def test_rejects_zero_associativity(self):
        with pytest.raises(ConfigError):
            CacheConfig("bad", 1024, 0, 32, 1)

    def test_rejects_negative_size(self):
        with pytest.raises(ConfigError):
            CacheConfig("bad", -1024, 2, 32, 1)


class TestBranchPredictorConfig:
    def test_defaults_match_table2(self):
        bp = BranchPredictorConfig()
        assert bp.bimodal_entries == 4096
        assert bp.global_entries == 4096
        assert bp.global_history_bits == 12
        assert bp.chooser_entries == 4096
        assert bp.btb_entries == 1024
        assert bp.btb_associativity == 2
        assert bp.ras_entries == 32

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ConfigError):
            BranchPredictorConfig(bimodal_entries=3000)

    def test_rejects_zero_history(self):
        with pytest.raises(ConfigError):
            BranchPredictorConfig(global_history_bits=0)


class TestMachineConfig:
    def test_defaults_match_table2(self, machine):
        assert machine.ruu_entries == 80
        assert machine.lsq_entries == 40
        assert machine.issue_width == 6
        assert machine.int_issue_width == 4
        assert machine.fp_issue_width == 2
        assert machine.int_alus == 4
        assert machine.mem_ports == 2
        assert machine.l1_dcache.size_bytes == 64 * 1024
        assert machine.l2_cache.size_bytes == 2 * 1024 * 1024
        assert machine.l2_cache.hit_latency == 11
        assert machine.memory_latency == 100
        assert machine.tlb_entries == 128
        assert machine.tlb_miss_penalty == 30
        assert machine.extra_pipe_stages == 3

    def test_cycle_time(self, machine):
        assert machine.cycle_time == pytest.approx(1 / 1.5e9)

    def test_lsq_cannot_exceed_ruu(self):
        with pytest.raises(ConfigError):
            MachineConfig(ruu_entries=16, lsq_entries=32)

    def test_rejects_zero_width(self):
        with pytest.raises(ConfigError):
            MachineConfig(issue_width=0)


class TestThermalConfig:
    def test_defaults(self, thermal_config):
        assert thermal_config.heatsink_temperature == 100.0
        assert thermal_config.emergency_temperature == 102.0
        assert thermal_config.chip_thermal_resistance == pytest.approx(0.34)
        assert thermal_config.heatsink_capacitance == pytest.approx(60.0)

    def test_headroom(self, thermal_config):
        assert thermal_config.headroom == pytest.approx(2.0)

    def test_emergency_must_exceed_heatsink(self):
        with pytest.raises(ConfigError):
            ThermalConfig(heatsink_temperature=103.0)

    def test_rejects_nonpositive_resistance(self):
        with pytest.raises(ConfigError):
            ThermalConfig(chip_thermal_resistance=0.0)


class TestDTMConfig:
    def test_defaults(self, dtm_config):
        assert dtm_config.sampling_interval == 1000
        assert dtm_config.nonct_trigger == 101.0
        assert dtm_config.pid_setpoint == 101.8
        assert dtm_config.pid_sensor_halfrange == 0.2
        assert dtm_config.toggle_levels == 8
        assert dtm_config.interrupt_cost == 250
        assert not dtm_config.use_interrupts

    def test_pid_trigger_within_point_two_of_emergency(
        self, dtm_config, thermal_config
    ):
        # The abstract's claim: the CT trigger sits within 0.2-0.4 C of
        # the emergency threshold.
        trigger = dtm_config.pid_setpoint - dtm_config.pid_sensor_halfrange
        assert thermal_config.emergency_temperature - trigger <= 0.4 + 1e-9

    def test_rejects_single_toggle_level(self):
        with pytest.raises(ConfigError):
            DTMConfig(toggle_levels=1)

    def test_rejects_negative_delay(self):
        with pytest.raises(ConfigError):
            DTMConfig(policy_delay=-1)
