"""Offline trace analysis: episodes, hottest samples, report rendering."""

import math

from repro.telemetry import (
    TraceEvent,
    TraceRecord,
    emergency_episodes,
    hottest_samples,
    render_report,
    summarize,
)


def _record(index, temp, emergency=0.0, duty=1.0):
    return TraceRecord(
        index=index,
        cycle=1000 * (index + 1),
        benchmark="gcc",
        policy="pid",
        max_temp=temp,
        duty=duty,
        emergency_fraction=emergency,
    )


class TestEpisodes:
    def test_groups_contiguous_samples(self):
        records = [
            _record(0, 101.0),
            _record(1, 102.5, emergency=0.4),
            _record(2, 102.8, emergency=1.0),
            _record(3, 101.0),
            _record(4, 102.2, emergency=0.2),
        ]
        episodes = emergency_episodes(records)
        assert len(episodes) == 2
        first = episodes[0]
        assert (first.start_index, first.end_index) == (1, 2)
        assert first.samples == 2
        assert first.span == 2
        assert first.peak_temp == 102.8
        assert first.emergency_sample_equivalents == 1.4

    def test_episode_open_at_end_is_closed(self):
        records = [_record(0, 101.0), _record(1, 103.0, emergency=1.0)]
        episodes = emergency_episodes(records)
        assert len(episodes) == 1
        assert episodes[0].end_index == 1

    def test_threshold_fallback_without_fractions(self):
        """max_temp alone triggers detection when fractions are zero."""
        records = [_record(0, 103.0), _record(1, 101.0)]
        assert len(emergency_episodes(records, threshold=102.0)) == 1
        assert not emergency_episodes(records, threshold=104.0)

    def test_no_emergencies(self):
        assert emergency_episodes([_record(0, 100.0)]) == []


class TestHottest:
    def test_sorted_hottest_first(self):
        records = [_record(i, 100.0 + i % 3) for i in range(9)]
        hot = hottest_samples(records, n=2)
        assert [r.max_temp for r in hot] == [102.0, 102.0]

    def test_nan_temps_skipped(self):
        records = [_record(0, math.nan), _record(1, 101.0)]
        assert [r.index for r in hottest_samples(records)] == [1]


class TestSummarize:
    def test_headline_numbers(self):
        records = [
            _record(0, 101.0, duty=1.0),
            _record(1, 102.5, emergency=1.0, duty=0.5),
            _record(2, 101.5, duty=0.75),
        ]
        events = [TraceEvent("fault", 1, "spike")]
        summary = summarize(records, events)
        assert summary["samples"] == 3
        assert summary["benchmark"] == "gcc"
        assert summary["policy"] == "pid"
        assert summary["temperature"]["max"] == 102.5
        assert summary["engaged_samples"] == 2
        assert summary["emergency_samples"] == 1
        assert summary["emergency_episodes"] == 1
        assert summary["events"] == {"fault": 1}

    def test_empty_trace(self):
        summary = summarize([])
        assert summary["samples"] == 0
        assert summary["temperature"]["mean"] is None


class TestRenderReport:
    def test_report_sections(self):
        records = [
            _record(0, 101.0),
            _record(1, 102.5, emergency=1.0, duty=0.5),
        ]
        events = [TraceEvent("failsafe_transition", 1, "watchdog")]
        text = render_report(
            records, events, meta={"retained": 2, "emitted": 2, "mode": "ring"}
        )
        assert "gcc / pid" in text
        assert "retention:" in text
        assert "emergency episodes:" in text
        assert "hottest samples" in text
        assert "failsafe_transition: 1" in text

    def test_report_handles_empty_trace(self):
        text = render_report([])
        assert "samples:            0" in text


class TestCoreFieldCompat:
    """Multicore runs tag events with ``data["core"]``; old traces
    don't have the field and must keep producing the old report."""

    def test_old_trace_without_core_field_unchanged(self):
        records = [_record(0, 101.0)]
        events = [
            TraceEvent("fault", 0, "spike"),
            TraceEvent("fault", 1, "dropout", {"channel": "sensor"}),
        ]
        summary = summarize(records, events)
        assert summary["events"] == {"fault": 2}
        assert summary["events_by_core"] == {}
        text = render_report(records, events)
        assert "fault: 2" in text
        assert "per core" not in text

    def test_core_tagged_events_grouped(self):
        records = [_record(0, 101.0)]
        events = [
            TraceEvent("fault", 0, "spike", {"core": 1}),
            TraceEvent("fault", 1, "spike", {"core": 1}),
            TraceEvent("failsafe_transition", 2, "watchdog", {"core": 0}),
            TraceEvent("coordinator_budget", 3, "over", {"engaged": True}),
        ]
        summary = summarize(records, events)
        assert summary["events_by_core"] == {
            0: {"failsafe_transition": 1},
            1: {"fault": 2},
        }
        text = render_report(records, events)
        assert "per core:" in text
        assert "core 0: failsafe_transition=1" in text
        assert "core 1: fault=2" in text

    def test_boolean_core_value_not_treated_as_index(self):
        # JSON round-trips can surface odd payloads; ``True`` must not
        # be counted as core 1.
        events = [TraceEvent("fault", 0, "spike", {"core": True})]
        summary = summarize([_record(0, 101.0)], events)
        assert summary["events_by_core"] == {}


class TestOrchestrationBreakdown:
    """``sweep.*`` / ``shard.*`` events get their own report section;
    traces that predate those layers keep producing the old report."""

    def test_sweep_and_shard_events_grouped(self):
        events = [
            TraceEvent("sweep.retry", 0, "flaky"),
            TraceEvent("sweep.retry", 1, "flaky again"),
            TraceEvent("sweep.timeout", 2, "hung"),
            TraceEvent("shard.worker_lost", 3, "vanished"),
            TraceEvent("fault", 4, "spike"),
        ]
        summary = summarize([_record(0, 101.0)], events)
        assert summary["orchestration"] == {
            "sweep": {"retry": 2, "timeout": 1},
            "shard": {"worker_lost": 1},
        }
        text = render_report([_record(0, 101.0)], events)
        assert "sweep orchestration:" in text
        assert "orchestrator: retry=2, timeout=1" in text
        assert "distributed coordinator: worker_lost=1" in text

    def test_old_trace_without_orchestration_events_unchanged(self):
        events = [TraceEvent("fault", 0, "spike")]
        summary = summarize([_record(0, 101.0)], events)
        assert summary["orchestration"] == {}
        assert "orchestration" not in render_report(
            [_record(0, 101.0)], events
        )

    def test_bare_prefix_kinds_are_not_grouped(self):
        # A literal "sweep." (empty suffix) or plain "shard" kind must
        # not fabricate a breakdown entry.
        events = [TraceEvent("sweep.", 0, ""), TraceEvent("shard", 1, "")]
        summary = summarize([], events)
        assert summary["orchestration"] == {}
