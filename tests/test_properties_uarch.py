"""Property-based tests (hypothesis) for uarch data structures."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import CacheConfig
from repro.dtm.mechanisms import FetchToggling
from repro.dtm.proxy import BoxcarPowerProxy
from repro.uarch.caches import Cache
from repro.uarch.tlb import TLB

addresses = st.lists(
    st.integers(min_value=0, max_value=0xFFFF), min_size=1, max_size=300
)


class TestCacheProperties:
    @given(stream=addresses)
    @settings(max_examples=60, deadline=None)
    def test_hits_plus_misses_equals_accesses(self, stream):
        cache = Cache(CacheConfig("t", 512, 2, 32, 1))
        for address in stream:
            cache.access(address)
        assert cache.hits + cache.misses == cache.accesses == len(stream)

    @given(stream=addresses)
    @settings(max_examples=60, deadline=None)
    def test_occupancy_never_exceeds_capacity(self, stream):
        config = CacheConfig("t", 512, 2, 32, 1)
        cache = Cache(config)
        for address in stream:
            cache.access(address)
        total_lines = sum(len(ways) for ways in cache._sets)
        assert total_lines <= config.size_bytes // config.block_bytes
        for ways in cache._sets:
            assert len(ways) <= config.associativity

    @given(stream=addresses)
    @settings(max_examples=60, deadline=None)
    def test_immediate_reaccess_always_hits(self, stream):
        cache = Cache(CacheConfig("t", 512, 2, 32, 1))
        for address in stream:
            cache.access(address)
            assert cache.access(address)  # block was just installed

    @given(stream=addresses)
    @settings(max_examples=40, deadline=None)
    def test_writebacks_bounded_by_write_misses(self, stream):
        cache = Cache(CacheConfig("t", 256, 2, 32, 1))
        writes = 0
        for address in stream:
            cache.access(address, is_write=True)
            writes += 1
        assert cache.writebacks <= cache.misses


class TestTLBProperties:
    @given(stream=addresses)
    @settings(max_examples=40, deadline=None)
    def test_entry_count_bounded(self, stream):
        tlb = TLB(entries=8)
        for address in stream:
            tlb.access(address * 517)  # spread across pages
        assert len(tlb._pages) <= 8

    @given(stream=addresses)
    @settings(max_examples=40, deadline=None)
    def test_latency_is_zero_or_penalty(self, stream):
        tlb = TLB(entries=8, miss_penalty=30)
        for address in stream:
            assert tlb.access(address) in (0, 30)


class TestTogglingProperties:
    @given(
        level=st.integers(0, 7),
        horizon=st.integers(70, 5000),
    )
    @settings(max_examples=60, deadline=None)
    def test_long_run_density_matches_duty(self, level, horizon):
        """Over any horizon, allowed cycles track duty within one cycle
        of rounding -- the accumulator never drifts."""
        toggling = FetchToggling(levels=8)
        duty = toggling.set_output(level / 7)
        allowed = sum(toggling.allows(cycle) for cycle in range(horizon))
        assert abs(allowed - duty * horizon) <= 1.0

    @given(outputs=st.lists(st.floats(-0.5, 1.5), min_size=1, max_size=50))
    @settings(max_examples=60, deadline=None)
    def test_quantize_always_on_grid(self, outputs):
        toggling = FetchToggling(levels=8)
        grid = {k / 7 for k in range(8)}
        for output in outputs:
            assert toggling.quantize(output) in grid


class TestBoxcarProperties:
    @given(
        segments=st.lists(
            st.tuples(st.floats(0.0, 50.0), st.integers(1, 500)),
            min_size=1,
            max_size=60,
        ),
        window=st.integers(10, 2000),
    )
    @settings(max_examples=60, deadline=None)
    def test_matches_naive_windowed_average(self, segments, window):
        """The incremental proxy equals a naive recomputation over the
        expanded cycle list."""
        proxy = BoxcarPowerProxy(window, trigger_power=1.0)
        expanded: list[float] = []
        for power, cycles in segments:
            proxy.update(power, cycles)
            expanded.extend([power] * cycles)
        tail = expanded[-window:]
        naive = sum(tail) / len(tail)
        assert abs(proxy.average - naive) < 1e-9

    @given(
        powers=st.lists(st.floats(0.0, 50.0), min_size=1, max_size=200),
        window=st.integers(1, 100),
    )
    @settings(max_examples=40, deadline=None)
    def test_average_within_input_range(self, powers, window):
        proxy = BoxcarPowerProxy(window, trigger_power=1.0)
        for power in powers:
            proxy.update(power, 1)
        assert min(powers) - 1e-9 <= proxy.average <= max(powers) + 1e-9
