"""Tests for the closed-loop step-response analysis."""

import pytest

from repro.control.analysis import simulate_step_response
from repro.control.pid import PIDController
from repro.control.plant import FirstOrderPlant
from repro.errors import ControllerError


def simple_loop(kp=0.5, ki=2.0, limits=(-100.0, 100.0)):
    controller = PIDController(
        kp,
        ki,
        0.0,
        sample_time=0.01,
        output_limits=limits,
        integral_non_negative=False,
    )
    plant = FirstOrderPlant(gain=2.0, time_constant=1.0, dead_time=0.02)
    return controller, plant


class TestStepResponse:
    def test_reaches_setpoint(self):
        controller, plant = simple_loop()
        response = simulate_step_response(controller, plant, setpoint=5.0,
                                          duration=30.0)
        assert response.final_value == pytest.approx(5.0, abs=0.05)
        assert response.stable

    def test_settling_time_reported(self):
        controller, plant = simple_loop()
        response = simulate_step_response(controller, plant, setpoint=5.0,
                                          duration=30.0)
        assert 0 < response.settling_time < 30.0

    def test_overshoot_non_negative(self):
        controller, plant = simple_loop()
        response = simulate_step_response(controller, plant, setpoint=5.0,
                                          duration=30.0)
        assert response.overshoot >= 0.0
        assert response.overshoot_fraction == pytest.approx(
            response.overshoot / 5.0
        )

    def test_unstable_loop_detected(self):
        # Absurd gain on a delayed plant oscillates/diverges.
        controller = PIDController(
            kp=500.0, ki=0.0, kd=0.0, sample_time=0.01,
            output_limits=(-1e9, 1e9), integral_non_negative=False,
        )
        plant = FirstOrderPlant(gain=2.0, time_constant=1.0, dead_time=0.05)
        response = simulate_step_response(controller, plant, setpoint=5.0,
                                          duration=20.0)
        assert not response.stable

    def test_disturbance_shifts_p_only_loop(self):
        controller = PIDController(
            kp=0.5, ki=0.0, kd=0.0, sample_time=0.01,
            output_limits=(-100, 100), integral_non_negative=False,
        )
        plant = FirstOrderPlant(gain=2.0, time_constant=1.0)
        with_disturbance = simulate_step_response(
            controller, plant, setpoint=5.0, duration=30.0, disturbance=1.0
        )
        # P-only: nonzero steady-state error, reduced by the disturbance.
        assert with_disturbance.steady_state_error != pytest.approx(0.0, abs=1e-3)

    def test_integral_rejects_disturbance(self):
        controller, plant = simple_loop()
        response = simulate_step_response(
            controller, plant, setpoint=5.0, duration=40.0, disturbance=1.0
        )
        assert abs(response.steady_state_error) < 0.05

    def test_too_short_simulation_rejected(self):
        controller, plant = simple_loop()
        with pytest.raises(ControllerError):
            simulate_step_response(controller, plant, setpoint=1.0, duration=0.01)

    def test_downward_step(self):
        controller, plant = simple_loop()
        response = simulate_step_response(
            controller, plant, setpoint=-3.0, initial_output=0.0, duration=30.0
        )
        assert response.final_value == pytest.approx(-3.0, abs=0.05)
