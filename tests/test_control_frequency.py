"""Tests for the frequency-domain loop analysis."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.control.frequency import (
    measure_margins,
    open_loop_phase_deg,
    open_loop_response,
)
from repro.control.plant import FirstOrderPlant, dtm_plant
from repro.control.tuning import ControllerGains, tune
from repro.errors import ControllerError
from repro.thermal.floorplan import Floorplan


@pytest.fixture(scope="module")
def plant():
    return dtm_plant(Floorplan.default())


class TestOpenLoop:
    def test_magnitude_decreases_with_frequency(self, plant):
        gains = tune(plant, "PI")
        low = abs(open_loop_response(gains, plant, 1e3))
        high = abs(open_loop_response(gains, plant, 1e6))
        assert low > high

    def test_analytic_phase_matches_principal_value_below_wrap(self, plant):
        gains = tune(plant, "PI")
        import cmath

        omega = 1e5  # well below the wrap frequency pi/D
        analytic = open_loop_phase_deg(gains, plant, omega)
        principal = math.degrees(
            cmath.phase(open_loop_response(gains, plant, omega))
        )
        assert analytic == pytest.approx(principal, abs=1e-6)

    def test_phase_monotone_decreasing(self, plant):
        gains = tune(plant, "PI")
        omegas = [10 ** (3 + i / 4) for i in range(20)]
        phases = [open_loop_phase_deg(gains, plant, w) for w in omegas]
        assert all(a >= b for a, b in zip(phases, phases[1:]))

    def test_rejects_nonpositive_frequency(self, plant):
        gains = tune(plant, "PI")
        with pytest.raises(ControllerError):
            open_loop_response(gains, plant, 0.0)


class TestMargins:
    @pytest.mark.parametrize("family", ["P", "PI", "PD", "PID"])
    def test_measured_pm_equals_designed(self, plant, family):
        gains = tune(plant, family)
        margins = measure_margins(gains, plant)
        assert margins.phase_margin_deg == pytest.approx(
            gains.phase_margin_deg, abs=0.2
        )

    @pytest.mark.parametrize("family", ["P", "PI", "PD", "PID"])
    def test_measured_crossover_equals_designed(self, plant, family):
        gains = tune(plant, family)
        margins = measure_margins(gains, plant)
        assert margins.gain_crossover_rad_s == pytest.approx(
            gains.crossover_rad_s, rel=0.01
        )

    def test_gain_margin_positive_for_tuned_loops(self, plant):
        for family in ("P", "PI", "PD", "PID"):
            margins = measure_margins(tune(plant, family), plant)
            assert margins.stable
            if margins.gain_margin_db is not None:
                assert margins.gain_margin_db > 0

    def test_thinner_phase_margin_means_thinner_gain_margin(self, plant):
        aggressive = measure_margins(
            tune(plant, "PI", phase_margin_deg=40.0), plant
        )
        conservative = measure_margins(
            tune(plant, "PI", phase_margin_deg=75.0), plant
        )
        assert aggressive.gain_margin_db < conservative.gain_margin_db

    def test_doubled_gain_detected_as_reduced_margin(self, plant):
        gains = tune(plant, "PI")
        hot_gains = ControllerGains(
            gains.family, 2 * gains.kp, 2 * gains.ki, 2 * gains.kd,
            gains.crossover_rad_s, gains.phase_margin_deg,
        )
        nominal = measure_margins(gains, plant)
        doubled = measure_margins(hot_gains, plant)
        assert doubled.phase_margin_deg < nominal.phase_margin_deg
        assert doubled.gain_margin_db == pytest.approx(
            nominal.gain_margin_db - 20 * math.log10(2), abs=0.1
        )

    @given(
        gain=st.floats(0.5, 10.0),
        tau=st.floats(5e-5, 5e-3),
        dead=st.floats(1e-8, 1e-6),
    )
    @settings(max_examples=30, deadline=None)
    def test_margins_positive_across_random_plants(self, gain, tau, dead):
        """Property: every tuned PI loop has positive measured margins."""
        random_plant = FirstOrderPlant(gain, tau, dead)
        margins = measure_margins(tune(random_plant, "PI"), random_plant)
        assert margins.phase_margin_deg > 30.0
        assert margins.gain_margin_db is None or margins.gain_margin_db > 3.0
