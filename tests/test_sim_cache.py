"""The cross-sweep result cache: durability, parity, invalidation.

The headline guarantee is the Level-5 analogue of every other perf
layer's: a *warm* sweep (results replayed from ``ResultCache``) is
bit-identical to a *cold* one -- same results, same folded trace
records/events, same metrics -- at every execution level (serial loop,
pool workers, lane batching, the orchestrated runner, the distributed
coordinator).  ``cache.*`` orchestration events are excluded from
parity exactly like ``sweep.*`` / ``shard.*``.

The store itself is exercised the way a shared on-disk artifact gets
abused in practice: torn tails from killed writers, corrupt lines,
concurrent sweeps, GC compaction mid-use, and kernel-version bumps
that must provably invalidate every prior entry.
"""

from __future__ import annotations

import json
import shutil
import tempfile
import threading
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import TelemetryConfig
from repro.errors import CacheError, ConfigError
from repro.sim.batch import plan_batches
from repro.sim.cache import (
    CACHE_SCHEMA,
    ResultCache,
    cache_key,
    resolve_cache_dir,
)
from repro.sim.codec import result_from_dict
from repro.sim.parallel import (
    RetryPolicy,
    SweepOptions,
    _run_spec,
    matrix_specs,
    resolve_cache,
    run_outcomes,
    run_specs,
    set_default_cache,
)
from repro.telemetry.core import Telemetry

INSTRUCTIONS = 150_000
BENCHMARKS = ("gcc", "gzip")
POLICIES = ("none", "pid")


def _specs():
    return matrix_specs(BENCHMARKS, POLICIES, instructions=INSTRUCTIONS)


def _quiet() -> Telemetry:
    """Deterministic sink: no wall-clock observations, no spans."""
    return Telemetry(TelemetryConfig(sample_latency=False, profile=False))


def _events(telemetry):
    """Trace events minus the orchestration diagnostics."""
    return [
        e
        for e in telemetry.trace.events
        if not e.kind.startswith(("sweep.", "shard.", "cache."))
    ]


def _metrics(telemetry):
    return {
        name: stats
        for name, stats in telemetry.metrics.snapshot().items()
        if not name.startswith(
            ("events.sweep.", "events.shard.", "events.cache.")
        )
    }


def assert_telemetry_identical(warm: Telemetry, cold: Telemetry):
    """Warm and cold sweeps both fold saved payloads, so their sinks
    must agree *exactly* -- repr equality catches every float bit (and
    treats NaN fields as equal, which ``==`` would not)."""
    assert repr(warm.trace.records()) == repr(cold.trace.records())
    assert repr(_events(warm)) == repr(_events(cold))
    assert repr(_metrics(warm)) == repr(_metrics(cold))


def _completed(spec, telemetry=True):
    """One executed spec: ``(key, result, worker-local telemetry)``."""
    result, local = _run_spec(
        spec, TelemetryConfig(sample_latency=False, profile=False)
        if telemetry
        else None,
    )
    return cache_key(spec), result, local


# -- the store ----------------------------------------------------------------
class TestResultCacheStore:
    def test_round_trip_is_codec_lossless(self, tmp_path):
        spec = _specs()[1]
        key, result, local = _completed(spec)
        store = ResultCache(tmp_path / "cache")
        assert store.store(key, spec, result, local)
        entry = store.lookup(key, need_telemetry=True)
        assert entry is not None
        assert result_from_dict(entry["result"]) == result
        assert entry["telemetry"] is not None
        assert entry["benchmark"] == spec.benchmark
        assert entry["policy"] == spec.policy

    def test_telemetry_less_entry_misses_when_telemetry_needed(
        self, tmp_path
    ):
        spec = _specs()[0]
        key, result, _ = _completed(spec, telemetry=False)
        store = ResultCache(tmp_path / "cache")
        store.store(key, spec, result, None)
        assert store.lookup(key, need_telemetry=True) is None
        assert store.lookup(key) is not None

    def test_only_telemetry_upgrades_overwrite(self, tmp_path):
        spec = _specs()[0]
        key, result, local = _completed(spec)
        store = ResultCache(tmp_path / "cache")
        assert store.store(key, spec, result, None)
        # Same-or-worse entries are skipped ...
        assert not store.store(key, spec, result, None)
        # ... but attaching telemetry upgrades in place.
        assert store.store(key, spec, result, local)
        assert not store.store(key, spec, result, local)
        assert store.lookup(key, need_telemetry=True) is not None

    def test_counters_persist_across_instances(self, tmp_path):
        spec = _specs()[0]
        key, result, local = _completed(spec)
        store = ResultCache(tmp_path / "cache")
        store.store(key, spec, result, local)
        assert store.lookup(key) is not None  # hit
        assert store.lookup("no-such-key") is None  # miss
        store.close()
        reopened = ResultCache(tmp_path / "cache")
        stats = reopened.stats()
        assert stats["hits"] == 1
        # store_payload's pre-insert probe does not count; only the
        # explicit lookup misses do.
        assert stats["misses"] == 1
        assert stats["entries"] == 1

    def test_kernel_version_bump_invalidates_every_entry(
        self, tmp_path, monkeypatch
    ):
        from repro.sim import fast as fast_module

        specs = _specs()
        store = ResultCache(tmp_path / "cache")
        old_keys = []
        for spec in specs:
            key, result, local = _completed(spec)
            store.store(key, spec, result, local)
            old_keys.append(key)
        assert all(store.lookup(key) is not None for key in old_keys)
        monkeypatch.setattr(fast_module, "KERNEL_VERSION", "fast-kernel/v2")
        new_keys = [cache_key(spec) for spec in specs]
        assert set(new_keys).isdisjoint(old_keys)
        assert all(store.lookup(key) is None for key in new_keys)

    def test_explicit_kernel_version_pins_the_key(self):
        spec = _specs()[0]
        a = cache_key(spec, kernel_version="x")
        b = cache_key(spec, kernel_version="y")
        assert a != b
        assert cache_key(spec, kernel_version="x") == a

    def test_torn_tail_is_tolerated_and_healed(self, tmp_path):
        spec = _specs()[0]
        key, result, local = _completed(spec)
        store = ResultCache(tmp_path / "cache")
        store.store(key, spec, result, local)
        log = tmp_path / "cache" / "cache.log"
        with open(log, "ab") as handle:
            handle.write(b'{"type": "entry", "key": "torn')  # no newline
        fresh = ResultCache(tmp_path / "cache")
        assert fresh.lookup(key) is not None
        assert fresh.verify()["torn_tail"]
        # The next locked write truncates the tail before appending.
        spec2 = _specs()[1]
        key2, result2, local2 = _completed(spec2)
        fresh.store(key2, spec2, result2, local2)
        report = fresh.verify()
        assert not report["torn_tail"]
        assert report["entries"] == 2
        assert report["errors"] == []

    def test_crash_mid_append_loses_only_the_last_entry(self, tmp_path):
        """Truncating the log mid-line (what a ``kill -9`` during the
        fsync'd append leaves behind) never damages earlier entries."""
        specs = _specs()[:2]
        store = ResultCache(tmp_path / "cache")
        keys = []
        for spec in specs:
            key, result, local = _completed(spec)
            store.store(key, spec, result, local)
            keys.append(key)
        store.close()
        log = tmp_path / "cache" / "cache.log"
        raw = log.read_bytes()
        log.write_bytes(raw[: len(raw) - len(raw.splitlines()[-1]) // 2 - 1])
        survivor = ResultCache(tmp_path / "cache")
        assert survivor.lookup(keys[0]) is not None
        assert survivor.lookup(keys[1]) is None
        # Re-storing the lost spec heals the store completely.
        key, result, local = _completed(specs[1])
        survivor.store(key, specs[1], result, local)
        assert survivor.verify()["errors"] == []

    def test_corrupt_mid_file_line_is_skipped_and_counted(self, tmp_path):
        specs = _specs()[:2]
        store = ResultCache(tmp_path / "cache")
        key0, result0, local0 = _completed(specs[0])
        store.store(key0, specs[0], result0, local0)
        store.close()
        log = tmp_path / "cache" / "cache.log"
        with open(log, "ab") as handle:
            handle.write(b"!!! not json at all\n")
        key1, result1, local1 = _completed(specs[1])
        fresh = ResultCache(tmp_path / "cache")
        fresh.store(key1, specs[1], result1, local1)
        assert fresh.lookup(key0) is not None
        assert fresh.lookup(key1) is not None
        assert fresh.stats()["corrupt_lines"] == 1
        # GC reclaims the damage.
        fresh.gc()
        assert fresh.stats()["corrupt_lines"] == 0
        assert fresh.verify()["errors"] == []

    def test_foreign_schema_header_is_rejected(self, tmp_path):
        directory = tmp_path / "cache"
        directory.mkdir()
        (directory / "cache.log").write_text(
            json.dumps({"type": "header", "schema": "someone.elses/v9"})
            + "\n"
        )
        store = ResultCache(directory)
        with pytest.raises(CacheError, match="schema"):
            store.lookup("anything")

    def test_concurrent_writers_lose_no_entries(self, tmp_path):
        specs = matrix_specs(
            BENCHMARKS, POLICIES, seeds=(0, 1), instructions=INSTRUCTIONS
        )
        completed = [(spec, *_completed(spec)[1:]) for spec in specs]

        def write(spec, result, local):
            # Each writer opens its own handle, like separate sweeps
            # sharing one directory.
            own = ResultCache(tmp_path / "cache")
            own.store(cache_key(spec), spec, result, local)
            own.close()

        threads = [
            threading.Thread(target=write, args=entry)
            for entry in completed
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        store = ResultCache(tmp_path / "cache")
        report = store.verify()
        assert report["entries"] == len(specs)
        assert report["errors"] == []
        for spec, result, _ in completed:
            entry = store.lookup(cache_key(spec), need_telemetry=True)
            assert result_from_dict(entry["result"]) == result

    def test_gc_evicts_least_recently_used_first(self, tmp_path):
        specs = _specs()[:3]
        store = ResultCache(tmp_path / "cache")
        keys = []
        for spec in specs:
            key, result, local = _completed(spec)
            store.store(key, spec, result, local)
            keys.append(key)
        # Touch the *oldest* entry so it becomes the most recent.
        assert store.lookup(keys[0]) is not None
        store.flush()
        entry_bytes = [
            length for (_, length, _) in store._index.values()
        ]
        budget = sum(entry_bytes) - min(entry_bytes) // 2  # forces 1 out
        summary = store.gc(budget)
        assert summary == {
            "kept": 2,
            "evicted": 1,
            "bytes": (tmp_path / "cache" / "cache.log").stat().st_size,
        }
        # keys[1] was least recently used (stored 2nd, never touched
        # after keys[0]'s re-touch) -- it is the one evicted.
        assert store.lookup(keys[0]) is not None
        assert store.lookup(keys[1]) is None
        assert store.lookup(keys[2]) is not None

    def test_gc_is_deterministic_over_log_contents(self, tmp_path):
        specs = _specs()
        store = ResultCache(tmp_path / "a")
        for spec in specs:
            key, result, local = _completed(spec)
            store.store(key, spec, result, local)
        store.lookup(cache_key(specs[0]))
        store.flush()
        store.close()
        # A byte-identical replica must evict identically: eviction
        # order depends only on log contents, never on clocks.
        shutil.copytree(tmp_path / "a", tmp_path / "b")
        survivors = []
        for name in ("a", "b"):
            replica = ResultCache(tmp_path / name)
            replica.gc(3000)
            survivors.append(sorted(replica._index))
        assert survivors[0] == survivors[1]

    def test_gc_zero_budget_evicts_everything(self, tmp_path):
        specs = _specs()[:2]
        store = ResultCache(tmp_path / "cache")
        for spec in specs:
            key, result, local = _completed(spec)
            store.store(key, spec, result, local)
        summary = store.gc(0)
        assert summary["kept"] == 0 and summary["evicted"] == 2
        assert store.stats()["entries"] == 0
        assert store.stats()["evictions"] == 2

    def test_flush_compacts_past_the_byte_budget(self, tmp_path):
        spec = _specs()[0]
        key, result, local = _completed(spec)
        store = ResultCache(tmp_path / "cache", max_bytes=1)
        store.store(key, spec, result, local)
        store.flush()
        assert store.stats()["entries"] == 0  # budget of 1 byte fits none

    def test_verify_reports_undecodable_entries(self, tmp_path):
        directory = tmp_path / "cache"
        directory.mkdir()
        lines = [
            {"type": "header", "schema": CACHE_SCHEMA},
            {"type": "entry", "key": "k", "result": {"not": "a result"}},
        ]
        (directory / "cache.log").write_text(
            "".join(json.dumps(line) + "\n" for line in lines)
        )
        report = ResultCache(directory).verify()
        assert report["undecodable_entries"] == 1
        assert report["errors"]

    def test_missing_store_verifies_clean(self, tmp_path):
        report = ResultCache(tmp_path / "cache").verify()
        assert report["entries"] == 0
        assert report["errors"] == []
        assert not report["torn_tail"]


class TestCacheConfiguration:
    def test_relative_directory_is_rejected_actionably(self):
        with pytest.raises(CacheError, match="absolute"):
            resolve_cache_dir("relative/cache")

    def test_empty_and_non_string_directories_are_rejected(self):
        for bogus in ("", "   ", 7, ["/tmp"]):
            with pytest.raises(CacheError, match="non-empty path"):
                resolve_cache_dir(bogus)

    def test_unwritable_directory_is_rejected(self, tmp_path, monkeypatch):
        import repro.sim.cache as cache_module

        target = tmp_path / "readonly"
        target.mkdir()
        monkeypatch.setattr(
            cache_module.os, "access", lambda path, mode: False
        )
        with pytest.raises(CacheError, match="not writable"):
            resolve_cache_dir(target)

    def test_tilde_expands_before_the_absolute_check(self, monkeypatch,
                                                     tmp_path):
        monkeypatch.setenv("HOME", str(tmp_path))
        path = resolve_cache_dir("~/.cache/repro-test")
        assert path.is_absolute() and path.is_dir()

    def test_max_bytes_must_be_positive(self, tmp_path):
        with pytest.raises(CacheError, match="max_bytes"):
            ResultCache(tmp_path / "cache", max_bytes=0)

    def test_resolve_cache_precedence(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE", raising=False)
        assert resolve_cache(None) is None
        assert resolve_cache(False) is None
        store = ResultCache(tmp_path / "direct")
        assert resolve_cache(store) is store
        monkeypatch.setenv("REPRO_CACHE", str(tmp_path / "env"))
        assert resolve_cache(None).directory == tmp_path / "env"
        assert resolve_cache(False) is None  # --no-cache beats the env
        try:
            set_default_cache(tmp_path / "default")
            assert resolve_cache(None).directory == tmp_path / "default"
            set_default_cache(False)
            assert resolve_cache(None) is None
        finally:
            set_default_cache(None)

    def test_default_cache_rejects_open_handles(self, tmp_path):
        with pytest.raises(ConfigError, match="path"):
            set_default_cache(ResultCache(tmp_path / "cache"))


class TestBatchPlanSkip:
    def test_skipped_specs_drop_out_and_break_adjacency(self):
        specs = _specs()  # four mutually lane-compatible specs
        assert plan_batches(specs, 4) == [[0, 1, 2, 3]]
        assert plan_batches(specs, 4, skip={1}) == [[0], [2, 3]]
        assert plan_batches(specs, 4, skip={0, 1, 2, 3}) == []
        assert plan_batches(specs, 1, skip={2}) == [[0], [1], [3]]


# -- sweep-level parity --------------------------------------------------------
class TestSweepParity:
    @pytest.mark.parametrize(
        "jobs,batch", [(1, 1), (1, 4), (2, 1), (2, 4)]
    )
    def test_warm_sweep_is_bit_identical(self, tmp_path, jobs, batch):
        specs = _specs()
        reference_sink = _quiet()
        reference = run_specs(specs, jobs=1, telemetry=reference_sink)
        store = ResultCache(tmp_path / "cache")
        cold_sink = _quiet()
        cold = run_specs(
            specs, jobs=jobs, batch=batch, telemetry=cold_sink, cache=store
        )
        warm_sink = _quiet()
        warm = run_specs(
            specs, jobs=jobs, batch=batch, telemetry=warm_sink, cache=store
        )
        assert cold == reference
        assert warm == reference
        assert_telemetry_identical(warm_sink, cold_sink)
        # Every spec replayed: the warm pass recorded only hits.
        assert store.stats()["hits"] >= len(specs)

    def test_warm_sweep_records_replay_serial_reference_exactly(
        self, tmp_path
    ):
        """Against a shared-sink serial run (no fold), warm trace
        records and events are exact; gauges match up to the documented
        value-pins-to-extreme merge semantics."""
        specs = _specs()
        serial_sink = _quiet()
        serial = run_specs(specs, jobs=1, telemetry=serial_sink)
        store = ResultCache(tmp_path / "cache")
        run_specs(specs, jobs=1, telemetry=_quiet(), cache=store)
        warm_sink = _quiet()
        warm = run_specs(specs, jobs=1, telemetry=warm_sink, cache=store)
        assert warm == serial
        assert repr(warm_sink.trace.records()) == repr(
            serial_sink.trace.records()
        )
        assert repr(_events(warm_sink)) == repr(_events(serial_sink))

    def test_mixed_warm_cold_sweep_is_bit_identical(self, tmp_path):
        specs = _specs()
        reference = run_specs(specs, jobs=1)
        store = ResultCache(tmp_path / "cache")
        # Pre-warm only half the matrix.
        run_specs(specs[:2], jobs=1, cache=store)
        mixed = run_specs(specs, jobs=2, batch=4, cache=store)
        assert mixed == reference

    def test_cache_hit_event_reports_the_replay(self, tmp_path):
        specs = _specs()
        store = ResultCache(tmp_path / "cache")
        run_specs(specs, jobs=1, telemetry=_quiet(), cache=store)
        warm_sink = _quiet()
        run_specs(specs, jobs=1, telemetry=warm_sink, cache=store)
        hits = [
            e for e in warm_sink.trace.events if e.kind == "cache.hit"
        ]
        assert len(hits) == 1
        assert hits[0].data["hits"] == len(specs)
        assert hits[0].data["total"] == len(specs)

    def test_telemetry_less_entries_upgrade_then_replay(self, tmp_path):
        specs = _specs()
        store = ResultCache(tmp_path / "cache")
        run_specs(specs, jobs=1, cache=store)  # no sink: entries bare
        cold_sink = _quiet()
        run_specs(specs, jobs=1, telemetry=cold_sink, cache=store)
        warm_sink = _quiet()
        run_specs(specs, jobs=1, telemetry=warm_sink, cache=store)
        assert_telemetry_identical(warm_sink, cold_sink)

    @settings(max_examples=6, deadline=None)
    @given(
        jobs=st.sampled_from([1, 2]),
        batch=st.sampled_from([1, 4]),
        prewarm=st.integers(min_value=0, max_value=4),
    )
    def test_any_warm_cold_split_matches_serial(self, jobs, batch, prewarm):
        specs = _specs()
        reference = run_specs(specs, jobs=1)
        with tempfile.TemporaryDirectory() as scratch:
            store = ResultCache(Path(scratch) / "cache")
            if prewarm:
                run_specs(specs[:prewarm], jobs=1, cache=store)
            observed = run_specs(
                specs, jobs=jobs, batch=batch, cache=store
            )
            again = run_specs(
                specs, jobs=jobs, batch=batch, cache=store
            )
        assert observed == reference
        assert again == reference

    def test_kernel_version_bump_forces_re_execution(
        self, tmp_path, monkeypatch
    ):
        from repro.sim import fast as fast_module

        specs = _specs()
        store = ResultCache(tmp_path / "cache")
        run_specs(specs, jobs=1, cache=store)
        baseline_misses = store.stats()["misses"]
        monkeypatch.setattr(
            fast_module, "KERNEL_VERSION", "fast-kernel/v2"
        )
        reference = run_specs(specs, jobs=1)
        warm = run_specs(specs, jobs=1, cache=store)
        assert warm == reference
        # Every spec missed under the new kernel tag and re-executed.
        assert store.stats()["misses"] >= baseline_misses + len(specs)


class TestOrchestratedRunner:
    def test_warm_outcomes_are_marked_and_identical(self, tmp_path):
        specs = _specs()
        store = ResultCache(tmp_path / "cache")
        options = SweepOptions(retry=RetryPolicy(max_retries=1))
        cold_sink = _quiet()
        cold = run_outcomes(
            specs, options=options, telemetry=cold_sink, cache=store
        )
        warm_sink = _quiet()
        warm = run_outcomes(
            specs, options=options, telemetry=warm_sink, cache=store
        )
        assert not any(outcome.from_cache for outcome in cold)
        assert all(outcome.from_cache for outcome in warm)
        for a, b in zip(cold, warm):
            assert a.result == b.result
        assert_telemetry_identical(warm_sink, cold_sink)

    def test_checkpoint_journal_wins_over_cache(self, tmp_path):
        specs = _specs()
        journal = tmp_path / "sweep.jsonl"
        store = ResultCache(tmp_path / "cache")
        options = SweepOptions(
            checkpoint_path=str(journal), resume=True
        )
        cold = run_outcomes(specs, options=options, cache=store)
        resumed = run_outcomes(specs, options=options, cache=store)
        assert all(outcome.from_checkpoint for outcome in resumed)
        assert not any(outcome.from_cache for outcome in resumed)
        for a, b in zip(cold, resumed):
            assert a.result == b.result

    def test_checkpoint_resume_warms_the_cache(self, tmp_path):
        specs = _specs()
        journal = tmp_path / "sweep.jsonl"
        options = SweepOptions(
            checkpoint_path=str(journal), resume=True
        )
        run_outcomes(specs, options=options)  # journal only, no cache
        store = ResultCache(tmp_path / "cache")
        run_outcomes(specs, options=options, cache=store)
        # The resumed entries were written back to the cache, so a
        # journal-less sweep now replays from it.
        warm = run_outcomes(specs, cache=store)
        assert all(outcome.from_cache for outcome in warm)

    def test_interrupted_warm_sweep_journals_its_hits(self, tmp_path):
        """Cache hits append to the checkpoint journal like executed
        specs, so a later --resume needs neither cache nor re-run."""
        specs = _specs()
        store = ResultCache(tmp_path / "cache")
        run_outcomes(specs, cache=store)
        journal = tmp_path / "sweep.jsonl"
        options = SweepOptions(
            checkpoint_path=str(journal), resume=True
        )
        run_outcomes(specs, options=options, cache=store)
        resumed = run_outcomes(specs, options=options)
        assert all(outcome.from_checkpoint for outcome in resumed)


class TestClusteredCache:
    @staticmethod
    def _cluster(port: int = 0):
        from repro.sim.distributed import ClusterConfig

        return ClusterConfig(
            host="127.0.0.1",
            port=port,
            token="secret",
            lease_seconds=10.0,
            heartbeat_seconds=0.5,
            poll_seconds=0.02,
        )

    def _run_clustered(self, specs, store, telemetry=None, workers=2):
        from repro.sim.distributed import ShardCoordinator, run_worker

        coordinator = ShardCoordinator(
            specs, self._cluster(), telemetry=telemetry, cache=store
        )
        coordinator.start()
        threads = []
        try:
            threads = [
                threading.Thread(
                    target=run_worker,
                    args=(self._cluster(coordinator.port),),
                    kwargs=dict(
                        once=True,
                        idle_timeout=60.0,
                        reconnect_seconds=0.05,
                    ),
                    daemon=True,
                )
                for _ in range(workers)
            ]
            for thread in threads:
                thread.start()
            outcomes = coordinator.wait()
        finally:
            coordinator.request_stop()
            for thread in threads:
                thread.join(timeout=60)
        return outcomes, coordinator.stats()

    def test_warm_cluster_answers_without_leasing(self, tmp_path):
        specs = _specs()
        reference = run_specs(specs, jobs=1)
        store = ResultCache(tmp_path / "cache")
        cold_sink = _quiet()
        cold, cold_stats = self._run_clustered(
            specs, store, telemetry=cold_sink
        )
        warm_sink = _quiet()
        # Zero workers: every spec must be answered from the cache
        # before any lease could happen.
        warm, warm_stats = self._run_clustered(
            specs, store, telemetry=warm_sink, workers=0
        )
        assert cold_stats["executed"] == len(specs)
        assert cold_stats["cached"] == 0
        assert warm_stats["cached"] == len(specs)
        assert warm_stats["executed"] == 0
        assert [o.result for o in cold] == reference
        assert [o.result for o in warm] == reference
        assert all(outcome.from_cache for outcome in warm)
        assert_telemetry_identical(warm_sink, cold_sink)


class TestRunSuiteCache:
    def test_run_suite_replays_from_the_cache(self, tmp_path):
        from repro.sim.sweep import run_suite

        store = ResultCache(tmp_path / "cache")
        kwargs = dict(
            policies=["pid"],
            benchmarks=["gcc"],
            instructions=INSTRUCTIONS,
        )
        cold = run_suite(cache=store, **kwargs)
        executed = store.stats()["misses"]
        warm = run_suite(cache=store, **kwargs)
        assert warm == cold
        assert store.stats()["misses"] == executed  # no new executions
