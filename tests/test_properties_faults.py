"""Property-based tests (hypothesis) for the fault-injection subsystem."""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import FaultSchedule, FaultWindow, FaultySensor
from repro.thermal.sensors import IdealSensor, NoisySensor, QuantizedSensor

rates = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
seeds = st.integers(min_value=0, max_value=2**32 - 1)
temps = st.lists(
    st.floats(min_value=60.0, max_value=130.0, allow_nan=False),
    min_size=1,
    max_size=120,
)


class TestScheduleDeterminism:
    @given(seed=seeds, dropout=rates, spike=rates, stale=rates)
    @settings(max_examples=50, deadline=None)
    def test_two_instances_agree_everywhere(self, seed, dropout, spike, stale):
        """Same seed + rates => bit-identical event streams."""
        one = FaultSchedule(
            seed, dropout_rate=dropout, spike_rate=spike, stale_rate=stale
        )
        two = FaultSchedule(
            seed, dropout_rate=dropout, spike_rate=spike, stale_rate=stale
        )
        for index in range(0, 400, 7):
            assert one.dropout(index) == two.dropout(index)
            assert one.spike(index) == two.spike(index)
            assert one.stale(index) == two.stale(index)

    @given(seed=seeds, dropout=st.floats(min_value=0.05, max_value=0.95))
    @settings(max_examples=30, deadline=None)
    def test_queries_are_stateless(self, seed, dropout):
        """Query order never changes any answer (counter-based PRNG)."""
        schedule = FaultSchedule(seed, dropout_rate=dropout)
        once = {i: schedule.dropout(i) for i in range(100)}
        # Re-query in a scrambled order, twice.
        scrambled = np.random.default_rng(0).permutation(100)
        for i in scrambled:
            assert schedule.dropout(int(i)) == once[int(i)]
        for i in reversed(scrambled):
            assert schedule.dropout(int(i)) == once[int(i)]

    @given(seed=seeds)
    @settings(max_examples=30, deadline=None)
    def test_different_seeds_differ(self, seed):
        """Different seeds produce different dropout patterns (w.h.p.)."""
        one = FaultSchedule(seed, dropout_rate=0.5)
        two = FaultSchedule(seed + 1, dropout_rate=0.5)
        assert [one.dropout(i) for i in range(128)] != [
            two.dropout(i) for i in range(128)
        ]


class TestFaultySensorProperties:
    @given(readings=temps, seed=seeds)
    @settings(max_examples=50, deadline=None)
    def test_zero_rates_is_byte_identical_to_inner(self, readings, seed):
        """All rates 0 + no windows => exact pass-through of any sensor."""
        for make in (
            IdealSensor,
            lambda: NoisySensor(noise_sigma=0.07, seed=3),
            lambda: QuantizedSensor(step=0.25),
        ):
            reference = make()
            wrapped = FaultySensor(make(), FaultSchedule(seed))
            for true_temp in readings:
                assert wrapped.read(true_temp) == reference.read(true_temp)

    @given(readings=temps, seed=seeds, dropout=rates)
    @settings(max_examples=50, deadline=None)
    def test_replay_is_bit_reproducible(self, readings, seed, dropout):
        """Two sensors built from equal schedules replay identically."""
        schedule = dict(
            dropout_rate=dropout,
            spike_rate=0.1,
            stale_rate=0.1,
            drift_per_sample=0.003,
            sensor_stuck_windows=[FaultWindow(5, 9)],
        )
        one = FaultySensor(IdealSensor(), FaultSchedule(seed, **schedule))
        two = FaultySensor(IdealSensor(), FaultSchedule(seed, **schedule))
        for true_temp in readings:
            a, b = one.read(true_temp), two.read(true_temp)
            assert (a == b) or (math.isnan(a) and math.isnan(b))

    @given(readings=temps, seed=seeds)
    @settings(max_examples=50, deadline=None)
    def test_reset_equals_fresh_instance(self, readings, seed):
        """reset() replays the identical fault stream from sample 0."""
        schedule = FaultSchedule(seed, dropout_rate=0.2, spike_rate=0.2)
        sensor = FaultySensor(IdealSensor(), schedule)
        first = [sensor.read(t) for t in readings]
        sensor.reset()
        second = [sensor.read(t) for t in readings]
        for a, b in zip(first, second):
            assert (a == b) or (math.isnan(a) and math.isnan(b))

    @given(readings=temps, seed=seeds)
    @settings(max_examples=40, deadline=None)
    def test_faults_only_corrupt_flagged_samples(self, readings, seed):
        """Samples with no scheduled fault pass through untouched."""
        schedule = FaultSchedule(seed, dropout_rate=0.3, spike_rate=0.3)
        sensor = FaultySensor(IdealSensor(), schedule)
        for index, true_temp in enumerate(readings):
            reading = sensor.read(true_temp)
            if not schedule.dropout(index) and not schedule.spike(index):
                assert reading == true_temp
