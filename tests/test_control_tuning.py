"""Tests for Laplace-domain controller tuning."""

import pytest

from repro.control.analysis import simulate_step_response
from repro.control.pid import PIDController
from repro.control.plant import FirstOrderPlant, dtm_plant
from repro.control.tuning import tune
from repro.errors import ControllerError
from repro.thermal.floorplan import Floorplan


@pytest.fixture(scope="module")
def plant():
    return dtm_plant(Floorplan.default())


class TestGainStructure:
    def test_p_has_only_kp(self, plant):
        gains = tune(plant, "P")
        assert gains.kp > 0
        assert gains.ki == 0
        assert gains.kd == 0

    def test_pi_has_kp_ki(self, plant):
        gains = tune(plant, "PI")
        assert gains.kp > 0 and gains.ki > 0 and gains.kd == 0

    def test_pd_has_kp_kd(self, plant):
        gains = tune(plant, "PD")
        assert gains.kp > 0 and gains.ki == 0 and gains.kd > 0

    def test_pid_has_all(self, plant):
        gains = tune(plant, "PID")
        assert gains.kp > 0 and gains.ki > 0 and gains.kd > 0

    def test_pi_integral_cancels_plant_pole(self, plant):
        # Ti = Kp/Ki = tau (pole cancellation).
        gains = tune(plant, "PI")
        assert gains.kp / gains.ki == pytest.approx(plant.time_constant)

    def test_pid_derivative_absorbs_half_dead_time(self, plant):
        gains = tune(plant, "PID")
        assert gains.kd / gains.kp == pytest.approx(plant.dead_time / 2)

    def test_case_insensitive(self, plant):
        assert tune(plant, "pid").family == "PID"

    def test_unknown_family_rejected(self, plant):
        with pytest.raises(ControllerError):
            tune(plant, "LQR")

    def test_silly_phase_margin_rejected(self, plant):
        with pytest.raises(ControllerError):
            tune(plant, "PI", phase_margin_deg=120.0)

    def test_describe_mentions_gains(self, plant):
        text = tune(plant, "PI").describe()
        assert "Kp=" in text and "PM=" in text


class TestGainScaling:
    def test_kp_inverse_in_plant_gain(self, plant):
        weak = FirstOrderPlant(plant.gain / 2, plant.time_constant, plant.dead_time)
        assert tune(weak, "PI").kp == pytest.approx(2 * tune(plant, "PI").kp)

    def test_crossover_set_by_dead_time_for_pi(self, plant):
        # For PI with pole cancellation, wc = (90 - PM) in radians / D.
        gains = tune(plant, "PI", phase_margin_deg=60.0)
        import math

        expected = (30.0 * math.pi / 180.0) / plant.dead_time
        assert gains.crossover_rad_s == pytest.approx(expected, rel=1e-3)

    def test_larger_margin_means_smaller_gain(self, plant):
        aggressive = tune(plant, "PI", phase_margin_deg=40.0)
        conservative = tune(plant, "PI", phase_margin_deg=80.0)
        assert conservative.kp < aggressive.kp


class TestClosedLoopStability:
    @pytest.mark.parametrize("family", ["P", "PI", "PD", "PID"])
    def test_tuned_loop_is_stable(self, plant, family):
        gains = tune(plant, family)
        controller = PIDController(
            gains.kp,
            gains.ki,
            gains.kd,
            sample_time=667e-9,
            output_limits=(0.0, 1.0),
            bias=0.5 if family in ("P", "PD") else 0.0,
        )
        response = simulate_step_response(
            controller, plant, setpoint=1.8, duration=0.005
        )
        assert response.stable
        assert response.overshoot < 0.1  # < 0.1 K over the setpoint

    @pytest.mark.parametrize("family", ["PI", "PID"])
    def test_integral_families_have_no_steady_state_error(self, plant, family):
        gains = tune(plant, family)
        controller = PIDController(
            gains.kp, gains.ki, gains.kd,
            sample_time=667e-9, output_limits=(0.0, 1.0),
        )
        response = simulate_step_response(
            controller, plant, setpoint=1.8, duration=0.005
        )
        assert abs(response.steady_state_error) < 0.02

    def test_settling_well_inside_a_policy_delay(self, plant):
        # The CT advantage: settling in ~a thermal time constant.
        gains = tune(plant, "PID")
        controller = PIDController(
            gains.kp, gains.ki, gains.kd,
            sample_time=667e-9, output_limits=(0.0, 1.0),
        )
        response = simulate_step_response(
            controller, plant, setpoint=1.8, duration=0.005
        )
        assert response.settling_time < 2 * plant.time_constant

    def test_robust_to_plant_mismatch(self, plant):
        # The paper: feedback control keeps working when the plant is
        # mis-modeled.  Tune against the nominal plant, run against one
        # with 2x gain and half the time constant.
        gains = tune(plant, "PI")
        controller = PIDController(
            gains.kp, gains.ki, 0.0, sample_time=667e-9, output_limits=(0.0, 1.0)
        )
        mismatched = FirstOrderPlant(
            plant.gain * 2, plant.time_constant / 2, plant.dead_time
        )
        response = simulate_step_response(
            controller, mismatched, setpoint=1.8, duration=0.005
        )
        assert response.stable
