"""Tests for power breakdowns and energy accounting."""

import pytest

from repro.errors import ConfigError
from repro.power.metrics import energy_summary, power_breakdown
from repro.sim.fast import FastEngine
from repro.thermal.floorplan import Floorplan
from repro.workloads.profiles import get_profile


@pytest.fixture(scope="module")
def gcc_run():
    return FastEngine(get_profile("gcc"), record_history=True).run(
        instructions=800_000
    )


class TestPowerBreakdown:
    def test_components_sum_to_total(self, gcc_run, floorplan):
        for entry in power_breakdown(gcc_run.history, floorplan):
            assert entry.mean_dynamic_w + entry.mean_idle_w == pytest.approx(
                entry.mean_total_w, rel=1e-9
            )

    def test_shares_sum_to_one(self, gcc_run, floorplan):
        shares = [
            entry.fraction_of_monitored
            for entry in power_breakdown(gcc_run.history, floorplan)
        ]
        assert sum(shares) == pytest.approx(1.0)

    def test_idle_component_bounded_by_floor(self, gcc_run, floorplan):
        for entry, block in zip(
            power_breakdown(gcc_run.history, floorplan), floorplan.blocks
        ):
            assert entry.mean_idle_w <= 0.15 * block.peak_power + 1e-9

    def test_busy_structure_is_dynamic_dominated(self, gcc_run, floorplan):
        by_name = {
            entry.name: entry
            for entry in power_breakdown(gcc_run.history, floorplan)
        }
        # gcc hammers the window and barely touches the FP unit.
        assert by_name["window"].dynamic_share > 0.5
        assert by_name["fp_exec"].dynamic_share < 0.3

    def test_rejects_bad_idle_fraction(self, gcc_run, floorplan):
        with pytest.raises(ConfigError):
            power_breakdown(gcc_run.history, floorplan, idle_fraction=1.0)


class TestEnergySummary:
    def test_baseline_relative_epi_is_one(self, gcc_run):
        rows = energy_summary({"none": gcc_run})
        assert rows[0].relative_epi == pytest.approx(1.0)

    def test_throttling_raises_epi(self):
        from repro.dtm.policies import make_policy

        profile = get_profile("gcc")
        baseline = FastEngine(profile).run(instructions=800_000)
        toggled = FastEngine(profile, policy=make_policy("toggle1")).run(
            instructions=800_000
        )
        rows = {
            row.policy: row
            for row in energy_summary({"none": baseline, "toggle1": toggled})
        }
        assert rows["toggle1"].relative_epi > 1.0
        assert rows["toggle1"].mean_power_w < rows["none"].mean_power_w

    def test_missing_baseline_rejected(self, gcc_run):
        with pytest.raises(ConfigError):
            energy_summary({"pid": gcc_run})
