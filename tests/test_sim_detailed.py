"""Tests for the detailed cycle-level coupled simulator."""

import pytest

from repro.dtm.policies import make_policy
from repro.errors import SimulationError
from repro.sim.simulator import DetailedSimulator
from repro.workloads.profiles import get_profile


class TestDetailedSimulator:
    def test_runs_and_commits(self):
        sim = DetailedSimulator(get_profile("gcc"), seed=1)
        result = sim.run(max_cycles=15_000)
        assert result.instructions > 0
        assert result.cycles == 15_000

    def test_temperatures_rise_from_heatsink(self):
        sim = DetailedSimulator(get_profile("gcc"), seed=1)
        result = sim.run(max_cycles=15_000)
        assert all(t >= 100.0 for t in result.mean_block_temperature.values())
        assert result.max_temperature > 100.0

    def test_power_within_chip_bounds(self):
        sim = DetailedSimulator(get_profile("gcc"), seed=1)
        result = sim.run(max_cycles=15_000)
        assert 130.0 * 0.15 <= result.mean_chip_power <= 130.0

    def test_extra_stats_exposed(self):
        sim = DetailedSimulator(get_profile("gcc"), seed=1)
        result = sim.run(max_cycles=15_000)
        assert "mispredict_rate" in result.extra
        assert "dl1_miss_rate" in result.extra

    def test_max_instructions_stops_early(self):
        sim = DetailedSimulator(get_profile("gcc"), seed=1)
        result = sim.run(max_cycles=100_000, max_instructions=1000)
        assert result.cycles < 100_000

    def test_duty_zero_policy_gates_fetch(self):
        # A toggle1 policy pinned on (trigger below heatsink temp)
        # should stop fetch entirely after the first check.
        policy = make_policy("toggle1", setpoint=99.0)
        sim = DetailedSimulator(get_profile("gcc"), policy=policy, seed=1)
        result = sim.run(max_cycles=10_000)
        gated = result.extra["fetch_gated_cycles"]
        assert gated > 8000

    def test_rejects_nonpositive_cycles(self):
        sim = DetailedSimulator(get_profile("gcc"), seed=1)
        with pytest.raises(SimulationError):
            sim.run(max_cycles=0)

    def test_deterministic(self):
        a = DetailedSimulator(get_profile("gzip"), seed=4).run(max_cycles=8000)
        b = DetailedSimulator(get_profile("gzip"), seed=4).run(max_cycles=8000)
        assert a.instructions == b.instructions
        assert a.mean_chip_power == pytest.approx(b.mean_chip_power)

    def test_dtm_reduces_throughput_under_forced_trigger(self):
        # Force the PID setpoint below the idle temperature so the
        # controller throttles constantly; IPC must drop.
        free = DetailedSimulator(get_profile("gcc"), seed=2).run(max_cycles=12_000)
        clamped_policy = make_policy("pid", setpoint=99.5)
        clamped = DetailedSimulator(
            get_profile("gcc"), policy=clamped_policy, seed=2
        ).run(max_cycles=12_000)
        assert clamped.ipc < free.ipc
