"""Bit-identity guard: the fused fast-engine kernel vs the pinned reference.

Every optimization in :meth:`repro.sim.fast.FastEngine._run` (prebuilt
phase activity arrays, no-copy state views, the fused
``advance_from`` thermal call, the single dual-threshold
``fractions_above`` pass, preallocated history buffers) must be a pure
strength reduction.  These tests assert *exact* float equality -- not
approximate closeness -- between the fused engine and
:class:`repro.sim.reference.ReferenceFastEngine`, which pins the
original per-sample body verbatim.

The one intentional difference is also locked down here: the reference
carries the pre-fix cycle-budget bug (warmup consumed its own
``max_cycles`` allowance on top of the measurement budget), while the
fused engine charges warmup and measurement against a single shared
budget.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.dtm.policies import make_policy
from repro.errors import SimulationError
from repro.power.leakage import LeakageModel
from repro.sim.fast import FastEngine
from repro.sim.reference import ReferenceFastEngine
from repro.telemetry.core import Telemetry
from repro.thermal.floorplan import Floorplan
from repro.thermal.lumped import LumpedThermalModel
from repro.workloads.profiles import get_profile

SCALAR_FIELDS = (
    "benchmark",
    "policy",
    "cycles",
    "instructions",
    "emergency_fraction",
    "stress_fraction",
    "mean_chip_power",
    "max_chip_power",
    "energy_joules",
    "engaged_fraction",
    "interrupt_events",
    "interrupt_stall_cycles",
)
DICT_FIELDS = (
    "block_emergency_fraction",
    "block_stress_fraction",
    "mean_block_temperature",
    "max_block_temperature",
    "extra",
)
HISTORY_FIELDS = (
    "max_temp",
    "duty",
    "chip_power",
    "block_temps",
    "block_powers",
    "block_emergency",
    "block_stress",
)


def build(cls, benchmark, policy, seed=0, **kwargs):
    floorplan = kwargs.pop("floorplan", None) or Floorplan.default()
    return cls(
        get_profile(benchmark),
        policy=make_policy(policy, floorplan),
        floorplan=floorplan,
        seed=seed,
        **kwargs,
    )


def assert_identical(fused, reference):
    """Exact (bit-level) equality of two RunResults."""
    for field in SCALAR_FIELDS:
        assert getattr(fused, field) == getattr(reference, field), field
    for field in DICT_FIELDS:
        assert getattr(fused, field) == getattr(reference, field), field
    if reference.history is None:
        assert fused.history is None
    else:
        assert fused.history is not None
        for field in HISTORY_FIELDS:
            a = getattr(fused.history, field)
            b = getattr(reference.history, field)
            assert a.shape == b.shape, field
            assert np.array_equal(a, b), field


class TestFusedKernelBitIdentity:
    # ("bench", not "benchmark": pytest-benchmark claims that fixture name)
    @pytest.mark.parametrize("bench", ["gcc", "gzip", "art"])
    @pytest.mark.parametrize("policy", ["none", "toggle1", "pid"])
    def test_matrix(self, bench, policy):
        for seed in (0, 7):
            fused = build(FastEngine, bench, policy, seed=seed)
            reference = build(ReferenceFastEngine, bench, policy, seed=seed)
            assert_identical(fused.run(400_000), reference.run(400_000))

    def test_with_history(self):
        fused = build(FastEngine, "gcc", "pid", seed=3, record_history=True)
        reference = build(
            ReferenceFastEngine, "gcc", "pid", seed=3, record_history=True
        )
        assert_identical(fused.run(600_000), reference.run(600_000))

    def test_with_leakage(self):
        leakage = LeakageModel()
        fused = build(FastEngine, "gcc", "pi", seed=1, leakage=leakage)
        reference = build(
            ReferenceFastEngine, "gcc", "pi", seed=1, leakage=leakage
        )
        assert_identical(fused.run(400_000), reference.run(400_000))

    def test_with_monitored_blocks(self):
        monitored = ("regfile", "int_exec")
        fused = build(FastEngine, "gcc", "pid", monitored_blocks=monitored)
        reference = build(
            ReferenceFastEngine, "gcc", "pid", monitored_blocks=monitored
        )
        assert_identical(fused.run(400_000), reference.run(400_000))

    def test_with_warmup(self):
        fused = build(FastEngine, "gzip", "pid", seed=2)
        reference = build(ReferenceFastEngine, "gzip", "pid", seed=2)
        assert_identical(
            fused.run(300_000, warmup_instructions=100_000),
            reference.run(300_000, warmup_instructions=100_000),
        )

    def test_with_telemetry(self):
        fused = build(FastEngine, "gcc", "pid", telemetry=Telemetry())
        reference = build(
            ReferenceFastEngine, "gcc", "pid", telemetry=Telemetry()
        )
        a, b = fused.run(300_000), reference.run(300_000)
        assert_identical(a, b)
        assert fused.telemetry.trace.emitted == reference.telemetry.trace.emitted
        assert (
            fused.telemetry.metrics.snapshot()["engine.max_temperature_c"]
            == reference.telemetry.metrics.snapshot()["engine.max_temperature_c"]
        )


class TestCycleBudgetFix:
    """Warmup and measurement now share one ``max_cycles`` budget."""

    def test_budget_covers_warmup_plus_measurement(self):
        engine = build(FastEngine, "gcc", "none", seed=0)
        budget = 400_000
        result = engine.run(
            instructions=10**12,  # never reached: budget-limited run
            max_cycles=budget,
            warmup_instructions=50_000,
        )
        sample = engine.dtm_config.sampling_interval
        total_cycles = engine.manager.samples * sample  # includes warmup
        assert total_cycles <= budget
        assert result.cycles < total_cycles  # warmup actually happened

    def test_reference_overruns_budget_by_warmup(self):
        """The pinned reference keeps the old double-budget behaviour."""
        budget = 400_000
        fused = build(FastEngine, "gcc", "none", seed=0)
        fused.run(10**12, max_cycles=budget, warmup_instructions=50_000)
        reference = build(ReferenceFastEngine, "gcc", "none", seed=0)
        reference.run(10**12, max_cycles=budget, warmup_instructions=50_000)
        sample = fused.dtm_config.sampling_interval
        assert fused.manager.samples * sample <= budget
        assert reference.manager.samples * sample > budget

    def test_budget_exhausted_during_warmup_raises(self):
        engine = build(FastEngine, "gcc", "none", seed=0)
        with pytest.raises(SimulationError, match="warmup"):
            engine.run(
                instructions=10**12,
                max_cycles=10_000,
                warmup_instructions=10**12,
            )

    def test_unlimited_runs_unaffected(self):
        """Runs that never exhaust their budget are bit-identical."""
        fused = build(FastEngine, "gzip", "pid", seed=4)
        reference = build(ReferenceFastEngine, "gzip", "pid", seed=4)
        assert_identical(
            fused.run(300_000, warmup_instructions=60_000),
            reference.run(300_000, warmup_instructions=60_000),
        )


class TestReadOnlyViews:
    """Hot-path no-copy views stay immutable from the outside."""

    def test_thermal_view_matches_and_rejects_writes(self):
        model = LumpedThermalModel(Floorplan.default())
        view = model.temperatures_view
        assert np.array_equal(view, model.temperatures)
        with pytest.raises(ValueError):
            view[0] = 0.0

    def test_thermal_view_tracks_advances(self):
        model = LumpedThermalModel(Floorplan.default())
        powers = np.full(len(model.floorplan.blocks), 5.0)
        before = model.temperatures_view.copy()
        model.advance(powers, 100_000)
        after = model.temperatures_view
        assert not np.array_equal(before, after)
        assert np.array_equal(after, model.temperatures)
        with pytest.raises(ValueError):
            after[0] = 0.0

    def test_advance_from_preserves_start_snapshot(self):
        model = LumpedThermalModel(Floorplan.default())
        powers = np.full(len(model.floorplan.blocks), 5.0)
        start = model.temperatures_view
        frozen = start.copy()
        end, steady = model.advance_from(start, powers, 100_000)
        assert np.array_equal(start, frozen)  # rebind, not overwrite
        assert np.array_equal(end, model.temperatures)
        assert np.array_equal(steady, model.steady_state(powers))

    def test_power_peaks_view_matches_and_rejects_writes(self):
        from repro.power.wattch import PowerModel

        model = PowerModel(Floorplan.default())
        view = model.peaks_view
        assert np.array_equal(view, model.peaks)
        assert view is model.peaks_view  # cached, no per-read allocation
        with pytest.raises(ValueError):
            view[0] = 0.0

    def test_public_copies_stay_defensive(self):
        model = LumpedThermalModel(Floorplan.default())
        copy = model.temperatures
        copy[0] = -1000.0
        assert model.temperatures[0] != -1000.0


class TestFractionsAbove:
    """The fused dual-threshold pass equals per-threshold calls exactly."""

    def test_matches_single_threshold_kernel(self):
        model = LumpedThermalModel(Floorplan.default())
        rng = np.random.default_rng(11)
        n = len(model.floorplan.blocks)
        for _ in range(50):
            start = 60.0 + 50.0 * rng.random(n)
            steady = 60.0 + 50.0 * rng.random(n)
            duration = float(10.0 ** rng.uniform(-6, -2))
            thresholds = tuple(60.0 + 50.0 * rng.random(2))
            fused = model.fractions_above(start, steady, duration, thresholds)
            for row, threshold in enumerate(thresholds):
                single = model.fraction_above(start, steady, duration, threshold)
                assert np.array_equal(fused[row], single), threshold

    def test_steady_equal_threshold_lane(self):
        """steady == threshold must not divide by zero or mis-classify."""
        model = LumpedThermalModel(Floorplan.default())
        n = len(model.floorplan.blocks)
        threshold = 100.0
        start = np.full(n, 90.0)
        steady = np.full(n, threshold)  # approaches but never crosses
        fraction = model.fractions_above(start, steady, 1e-3, (threshold,))
        assert np.all(fraction == 0.0)
        start_above = np.full(n, 110.0)  # cooling toward the threshold
        fraction = model.fractions_above(start_above, steady, 1e-3, (threshold,))
        assert np.all(fraction == 1.0)
