"""Tests for phase and stream-parameter validation."""

import pytest

from repro.errors import WorkloadError
from repro.workloads.phases import Phase, StreamParameters, uniform_activity


class TestStreamParameters:
    def test_defaults_valid(self):
        StreamParameters()

    def test_rejects_fraction_out_of_range(self):
        with pytest.raises(WorkloadError):
            StreamParameters(branch_fraction=1.5)

    def test_rejects_no_compute_left(self):
        with pytest.raises(WorkloadError):
            StreamParameters(
                branch_fraction=0.4, load_fraction=0.4, store_fraction=0.2
            )

    def test_rejects_dependency_distance_below_one(self):
        with pytest.raises(WorkloadError):
            StreamParameters(dependency_distance=0.5)

    def test_rejects_nonpositive_working_set(self):
        with pytest.raises(WorkloadError):
            StreamParameters(working_set_bytes=0)


class TestPhase:
    def test_activity_vector_orders_and_defaults(self):
        phase = Phase("p", 1000, 1.0, activity={"regfile": 0.5})
        vector = phase.activity_vector()
        assert vector[2] == 0.5  # regfile is third in floorplan order
        assert sum(vector) == 0.5  # everything else defaults to zero

    def test_rejects_unknown_structure(self):
        with pytest.raises(WorkloadError):
            Phase("p", 1000, 1.0, activity={"l3_cache": 0.5})

    def test_rejects_activity_out_of_range(self):
        with pytest.raises(WorkloadError):
            Phase("p", 1000, 1.0, activity={"regfile": 1.5})

    def test_rejects_nonpositive_length(self):
        with pytest.raises(WorkloadError):
            Phase("p", 0, 1.0)

    def test_rejects_silly_ipc(self):
        with pytest.raises(WorkloadError):
            Phase("p", 1000, 9.0)

    def test_rejects_huge_jitter(self):
        with pytest.raises(WorkloadError):
            Phase("p", 1000, 1.0, jitter=0.9)


class TestUniformActivity:
    def test_fills_all_structures(self):
        activity = uniform_activity(0.3)
        assert len(activity) == 7
        assert all(level == 0.3 for level in activity.values())

    def test_overrides(self):
        activity = uniform_activity(0.3, regfile=0.9)
        assert activity["regfile"] == 0.9
        assert activity["lsq"] == 0.3

    def test_rejects_unknown_override(self):
        with pytest.raises(WorkloadError):
            uniform_activity(0.3, l3=0.9)

    def test_rejects_out_of_range_level(self):
        with pytest.raises(WorkloadError):
            uniform_activity(1.5)
