"""Telemetry end-to-end: engine wiring, compat shims, exports, CLI.

The two load-bearing guarantees:

1. **observation-only** -- a telemetry-enabled run produces
   bit-identical simulation results to a disabled one;
2. **reconstruction** -- the retained trace carries enough to rebuild
   the Figure-4 curves (temperature + duty series) and the emergency
   episodes without ``record_history``.
"""

import json
import math

import numpy as np
import pytest

from repro.__main__ import main as repro_main
from repro.config import DTMConfig, FailsafeConfig, TelemetryConfig
from repro.dtm.failsafe import FailsafeGuard
from repro.dtm.manager import DTMManager
from repro.dtm.policies import make_policy
from repro.errors import ConfigError, FailsafeEngaged
from repro.faults import FaultSchedule, FaultWindow
from repro.sim.sweep import run_one, run_suite
from repro.telemetry import (
    NULL_TELEMETRY,
    Telemetry,
    emergency_episodes,
    merge_telemetry,
    read_trace_jsonl,
    write_metrics_json,
    write_trace_csv,
    write_trace_jsonl,
)
from repro.thermal.floorplan import Floorplan


def _fields(result):
    return (
        result.cycles,
        result.instructions,
        result.ipc,
        result.max_temperature,
        result.emergency_fraction,
        result.stress_fraction,
        result.mean_chip_power,
        result.energy_joules,
    )


class TestObservationOnly:
    def test_enabled_run_bit_identical_to_disabled(self):
        disabled = run_one("gcc", "pid", instructions=300_000)
        telemetry = Telemetry()
        enabled = run_one(
            "gcc", "pid", instructions=300_000, telemetry=telemetry
        )
        assert _fields(enabled) == _fields(disabled)
        assert len(telemetry.trace.records()) > 0

    def test_bit_identical_under_faults_and_failsafe(self):
        schedule = FaultSchedule(
            7,
            dropout_rate=0.05,
            spike_rate=0.02,
            sensor_stuck_windows=[FaultWindow(40, 80, value=101.0)],
        )
        kwargs = dict(
            instructions=300_000,
            fault_schedule=schedule,
            failsafe=FailsafeConfig(),
        )
        disabled = run_one("gcc", "pid", **kwargs)
        enabled = run_one("gcc", "pid", telemetry=Telemetry(), **kwargs)
        assert _fields(enabled) == _fields(disabled)

    def test_null_telemetry_surface(self):
        assert not NULL_TELEMETRY.enabled
        assert NULL_TELEMETRY.event("fault", 0) is None
        with NULL_TELEMETRY.span("x"):
            pass
        assert NULL_TELEMETRY.snapshot()["metrics"] == {}


class TestTraceReconstruction:
    def test_trace_matches_history(self):
        """TraceRecord series == History series, sample for sample."""
        telemetry = Telemetry(
            TelemetryConfig(trace_mode="ring", trace_capacity=65_536)
        )
        result = run_one(
            "gcc",
            "pid",
            instructions=300_000,
            record_history=True,
            telemetry=telemetry,
        )
        history = result.history
        records = telemetry.trace.records()
        assert len(records) == len(history.max_temp)
        np.testing.assert_allclose(
            [r.max_temp for r in records], history.max_temp
        )
        np.testing.assert_allclose([r.duty for r in records], history.duty)
        np.testing.assert_allclose(
            [r.chip_power for r in records], history.chip_power
        )

    def test_controller_terms_recorded(self):
        telemetry = Telemetry()
        run_one("gcc", "pid", instructions=200_000, telemetry=telemetry)
        record = telemetry.trace.records()[-1]
        assert not math.isnan(record.error)
        assert not math.isnan(record.p_term)
        assert not math.isnan(record.i_term)
        assert not math.isnan(record.d_term)
        assert 0.0 <= record.post_saturation <= 1.0
        # PID output = saturated sum of terms.
        raw = record.pre_saturation
        assert record.post_saturation == pytest.approx(
            min(1.0, max(0.0, raw))
        )

    def test_episode_accounting_matches_emergency_fraction(self):
        """A run with emergency time yields at least one episode."""
        telemetry = Telemetry(
            TelemetryConfig(trace_mode="ring", trace_capacity=65_536)
        )
        result = run_one("gcc", "none", instructions=500_000,
                         telemetry=telemetry)
        episodes = emergency_episodes(telemetry.trace.records())
        if result.emergency_fraction > 0:
            assert episodes
        else:
            assert not episodes

    def test_latency_histogram_counts_every_sample(self):
        telemetry = Telemetry()
        run_one("gcc", "pid", instructions=200_000, telemetry=telemetry)
        latency = telemetry.metrics["engine.sample_latency_seconds"]
        assert latency.count == len(telemetry.trace.records())
        assert telemetry.metrics["engine.samples"].value == latency.count

    def test_profiler_spans_cover_engine_phases(self):
        telemetry = Telemetry()
        run_one("gcc", "pid", instructions=200_000, telemetry=telemetry)
        names = telemetry.profiler.names()
        assert "engine.run" in names
        assert "dtm.on_sample" in names
        assert "thermal.advance" in names
        run_span = telemetry.profiler.stats("engine.run")
        sample_span = telemetry.profiler.stats("dtm.on_sample")
        assert run_span.count == 1
        assert sample_span.count == len(telemetry.trace.records())
        assert run_span.total >= sample_span.total

    def test_profile_disabled_by_config(self):
        telemetry = Telemetry(TelemetryConfig(profile=False))
        run_one("gcc", "pid", instructions=200_000, telemetry=telemetry)
        assert telemetry.profiler.names() == ()
        assert telemetry.trace.records()  # tracing unaffected


class TestEventStreamMigration:
    def _faulted_watchdog_run(self, telemetry=None):
        schedule = FaultSchedule(
            3,
            dropout_rate=0.0,
            sensor_stuck_windows=[FaultWindow(10, 400, value=104.0)],
        )
        return run_one(
            "gcc",
            "pi",
            instructions=300_000,
            fault_schedule=schedule,
            failsafe=FailsafeConfig(),
            telemetry=telemetry,
        )

    def test_failsafe_transitions_on_shared_stream(self):
        telemetry = Telemetry()
        self._faulted_watchdog_run(telemetry)
        transitions = telemetry.trace.events.of_kind("failsafe_transition")
        assert transitions
        assert transitions[0].data["state"] == "failsafe"
        faults = telemetry.trace.events.of_kind("fault")
        assert any(e.data["channel"] == "sensor.stuck" for e in faults)

    def test_event_counters_increment(self):
        telemetry = Telemetry()
        self._faulted_watchdog_run(telemetry)
        assert telemetry.metrics["events.fault"].value >= 1
        assert telemetry.metrics["events.failsafe_transition"].value >= 1

    def test_guard_events_compat_shim(self):
        """The historical ``events`` list still materializes."""
        guard = FailsafeGuard(FailsafeConfig())
        guard.gate(104.0, 0)
        events = guard.events
        assert events
        assert isinstance(events[0], FailsafeEngaged)
        assert events[0].state == "failsafe"
        # Mutating the materialized list cannot corrupt the guard.
        events.clear()
        assert guard.events
        assert len(guard.event_log) == 1

    def test_guard_event_log_bounded(self):
        config = FailsafeConfig(max_event_log=2)
        guard = FailsafeGuard(config)
        sample = 0
        for index in range(20):
            # Unique readings so stuck detection never kicks in.
            guard.gate(104.0 + 0.001 * index, sample)  # engage
            sample += 1
            for cool in range(config.rearm_samples):
                guard.gate(80.0 + 0.001 * sample, sample)  # re-arm
                sample += 1
        assert len(guard.event_log) == 2
        assert guard.event_log.dropped > 0


class TestManagerRegressions:
    def _manager(self, failsafe=None):
        policy = make_policy("pi", Floorplan.default(), DTMConfig())
        return DTMManager(policy, DTMConfig(), failsafe=failsafe)

    def test_failsafe_events_returns_tuple_copy(self):
        """Regression: the accessor must not expose internal state."""
        manager = self._manager(failsafe=FailsafeConfig())
        manager.on_sample(104.0)
        events = manager.failsafe_events
        assert isinstance(events, tuple)
        assert events
        # A tuple cannot be mutated; repeated access re-materializes
        # (FailsafeEngaged has identity equality, so compare strings).
        again = manager.failsafe_events
        assert [str(e) for e in again] == [str(e) for e in events]

    def test_failsafe_events_empty_without_guard(self):
        assert self._manager().failsafe_events == ()

    def test_engaged_fraction_zero_samples(self):
        """No samples yet -> 0.0, not ZeroDivisionError."""
        assert self._manager().engaged_fraction == 0.0

    def test_manager_stages_control_half(self):
        telemetry = Telemetry()
        policy = make_policy("pi", Floorplan.default(), DTMConfig())
        manager = DTMManager(policy, DTMConfig(), telemetry=telemetry)
        manager.on_sample(101.0)
        assert telemetry._pending_control is not None
        assert telemetry._pending_control["sample_index"] == 0


class TestSweepTelemetry:
    def test_run_suite_shares_one_stream(self):
        telemetry = Telemetry()
        results = run_suite(
            ["pid"],
            benchmarks=["gzip"],
            instructions=150_000,
            telemetry=telemetry,
        )
        assert ("gzip", "pid") in results
        contexts = {
            (r.benchmark, r.policy) for r in telemetry.trace.records()
        }
        assert ("gzip", "pid") in contexts
        assert ("gzip", "none") in contexts  # baseline traced too
        assert telemetry.profiler.stats("sweep.run_suite").count == 1
        assert telemetry.profiler.stats("engine.run").count == 2

    def test_merge_telemetry_folds_runs(self):
        sink = Telemetry()
        local = Telemetry()
        run_one("gzip", "pid", instructions=150_000, telemetry=local)
        merge_telemetry(sink, local)
        assert len(sink.trace.records()) == len(local.trace.records())
        assert (
            sink.metrics["engine.samples"].value
            == local.metrics["engine.samples"].value
        )
        merge_telemetry(None, local)  # no-op, must not raise
        merge_telemetry(sink, sink)  # self-merge is a no-op
        assert len(sink.trace.records()) == len(local.trace.records())


class TestExportRoundTrip:
    def _traced(self):
        telemetry = Telemetry()
        run_one("gcc", "pid", instructions=200_000, telemetry=telemetry)
        telemetry.event("fault", 5, "sensor.spike", channel="sensor.spike")
        return telemetry

    def test_jsonl_round_trip(self, tmp_path):
        telemetry = self._traced()
        path = tmp_path / "trace.jsonl"
        lines = write_trace_jsonl(telemetry.trace, path, meta=telemetry.meta)
        parsed = read_trace_jsonl(path)
        records = telemetry.trace.records()
        assert lines == 1 + len(records) + 1
        assert parsed.meta["schema"] == "repro.trace/v1"
        assert parsed.meta["benchmark"] == "gcc"
        assert len(parsed.records) == len(records)
        first, roundtrip = records[0], parsed.records[0]
        assert roundtrip.max_temp == first.max_temp
        assert roundtrip.block_temps == first.block_temps
        assert roundtrip.duty == first.duty
        assert parsed.events[0].data["channel"] == "sensor.spike"

    def test_jsonl_nan_round_trip(self, tmp_path):
        """NaN fields (non-CT policies) survive as null and back."""
        telemetry = Telemetry()
        run_one("gcc", "toggle1", instructions=150_000, telemetry=telemetry)
        path = tmp_path / "trace.jsonl"
        write_trace_jsonl(telemetry.trace, path)
        for line in path.read_text().splitlines():
            json.loads(line)  # strictly valid JSON, no bare NaN
        parsed = read_trace_jsonl(path)
        assert math.isnan(parsed.records[0].p_term)

    def test_csv_export(self, tmp_path):
        telemetry = self._traced()
        path = tmp_path / "trace.csv"
        rows = write_trace_csv(
            telemetry.trace, path, block_names=telemetry.meta["block_names"]
        )
        lines = path.read_text().splitlines()
        assert len(lines) == rows + 1
        assert "temp_int_exec" in lines[0]

    def test_metrics_json(self, tmp_path):
        telemetry = self._traced()
        path = tmp_path / "metrics.json"
        write_metrics_json(telemetry.snapshot(), path)
        data = json.loads(path.read_text())
        assert data["metrics"]["engine.samples"]["value"] > 0


class TestConfig:
    def test_defaults(self):
        config = TelemetryConfig()
        assert config.trace_mode == "decimate"
        assert config.profile

    def test_validation(self):
        with pytest.raises(ConfigError):
            TelemetryConfig(trace_capacity=1)
        with pytest.raises(ConfigError):
            TelemetryConfig(trace_mode="reservoir")
        with pytest.raises(ConfigError):
            TelemetryConfig(event_capacity=0)


class TestCLI:
    def test_run_with_trace_and_metrics_out(self, tmp_path, capsys):
        trace_path = tmp_path / "t.jsonl"
        metrics_path = tmp_path / "m.json"
        code = repro_main(
            [
                "run", "gzip", "--policy", "pid",
                "--instructions", "200000",
                "--trace-out", str(trace_path),
                "--metrics-out", str(metrics_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "trace retained:" in out
        assert trace_path.exists() and metrics_path.exists()
        assert read_trace_jsonl(trace_path).records

    def test_trace_subcommand_reports(self, tmp_path, capsys):
        trace_path = tmp_path / "t.jsonl"
        repro_main(
            [
                "run", "gzip", "--policy", "pid",
                "--instructions", "200000",
                "--trace-out", str(trace_path),
            ]
        )
        capsys.readouterr()
        assert repro_main(["trace", str(trace_path), "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "trace report: gzip / pid" in out
        assert "hottest samples" in out

    def test_csv_trace_out(self, tmp_path, capsys):
        trace_path = tmp_path / "t.csv"
        code = repro_main(
            [
                "run", "gzip", "--policy", "pid",
                "--instructions", "150000",
                "--trace-out", str(trace_path),
            ]
        )
        assert code == 0
        assert trace_path.read_text().startswith("index,")


class TestExperiments:
    def test_figure4_uses_trace_schema(self):
        from repro.experiments import figure4_traces

        sink = Telemetry()
        result = figure4_traces.run(
            benchmark="gzip",
            policies=("none", "pid"),
            instructions=200_000,
            telemetry=sink,
        )
        assert set(result.extras["temps"]) == {"none", "pid"}
        assert len(result.extras["temps"]["pid"]) > 0
        # The shared sink accumulated both runs' records.
        contexts = {(r.benchmark, r.policy) for r in sink.trace.records()}
        assert contexts == {("gzip", "none"), ("gzip", "pid")}
