"""Property-based tests (hypothesis) for controllers and tuning."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.control.analysis import simulate_step_response
from repro.control.pid import AntiWindup, PIDController
from repro.control.plant import FirstOrderPlant
from repro.control.tuning import tune

plant_strategy = st.builds(
    FirstOrderPlant,
    gain=st.floats(min_value=0.5, max_value=10.0),
    time_constant=st.floats(min_value=5e-5, max_value=5e-3),
    dead_time=st.floats(min_value=1e-8, max_value=1e-6),
)


class TestTuningProperties:
    @given(plant=plant_strategy, family=st.sampled_from(["P", "PI", "PD", "PID"]))
    @settings(max_examples=40, deadline=None)
    def test_gains_positive_and_finite(self, plant, family):
        gains = tune(plant, family)
        assert gains.kp > 0
        assert gains.ki >= 0
        assert gains.kd >= 0
        assert gains.crossover_rad_s > 0

    @given(plant=plant_strategy)
    @settings(max_examples=25, deadline=None)
    def test_tuned_pi_loop_stable_across_plants(self, plant):
        """Whatever FOPDT plant we draw, the tuned PI loop must be
        stable with bounded overshoot -- the paper's design-methodology
        guarantee."""
        gains = tune(plant, "PI")
        controller = PIDController(
            gains.kp,
            gains.ki,
            0.0,
            sample_time=667e-9,
            output_limits=(0.0, 1.0),
        )
        setpoint = 0.6 * plant.gain  # reachable within actuator range
        response = simulate_step_response(
            controller, plant, setpoint=setpoint,
            duration=max(20 * plant.time_constant, 1e-3),
        )
        assert response.stable
        assert response.overshoot_fraction < 0.25


class TestControllerProperties:
    output_limits = (0.0, 1.0)

    @given(
        kp=st.floats(0.0, 100.0),
        ki=st.floats(0.0, 1e6),
        measurements=st.lists(st.floats(90.0, 110.0), min_size=1, max_size=60),
    )
    @settings(max_examples=80, deadline=None)
    def test_output_always_saturated_to_limits(self, kp, ki, measurements):
        controller = PIDController(
            kp, ki, 0.0, setpoint=101.8, sample_time=667e-9,
            output_limits=self.output_limits,
        )
        for measurement in measurements:
            output = controller.update(measurement)
            assert 0.0 <= output <= 1.0

    @given(
        ki=st.floats(1e3, 1e6),
        measurements=st.lists(st.floats(90.0, 101.0), min_size=10, max_size=80),
    )
    @settings(max_examples=50, deadline=None)
    def test_conditional_windup_keeps_integral_bounded(self, ki, measurements):
        """Cool measurements (positive error) with a saturated actuator
        must not grow the integral without bound."""
        controller = PIDController(
            10.0, ki, 0.0, setpoint=101.8, sample_time=667e-9,
            output_limits=self.output_limits,
            anti_windup=AntiWindup.CONDITIONAL,
        )
        for measurement in measurements:
            controller.update(measurement)
        # One sample's worth past the saturation boundary at most.
        max_step = ki * 12.0 * 667e-9
        assert controller.integral <= 1.0 + max_step

    @given(measurements=st.lists(st.floats(90.0, 110.0), min_size=2, max_size=40))
    @settings(max_examples=50, deadline=None)
    def test_reset_restores_initial_behaviour(self, measurements):
        fresh = PIDController(5.0, 1e4, 1e-6, setpoint=101.8,
                              sample_time=667e-9)
        used = PIDController(5.0, 1e4, 1e-6, setpoint=101.8,
                             sample_time=667e-9)
        for measurement in measurements:
            used.update(measurement)
        used.reset()
        for measurement in measurements[:5]:
            assert used.update(measurement) == fresh.update(measurement)

    @given(
        error=st.floats(-5.0, 5.0),
        kp=st.floats(0.01, 10.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_proportional_response_sign(self, error, kp):
        """Positive error (cool) never lowers output below bias;
        negative error never raises it above bias."""
        controller = PIDController(
            kp, 0.0, 0.0, setpoint=0.0, sample_time=1.0,
            output_limits=(-100.0, 100.0), bias=0.0,
        )
        output = controller.update(-error)  # measurement = -error
        if error > 0:
            assert output >= 0.0
        elif error < 0:
            assert output <= 0.0
