"""Tests for the synthetic instruction-stream generator."""

import itertools

from repro.isa.instructions import OpClass
from repro.workloads.generator import instruction_stream
from repro.workloads.profiles import get_profile


def take(profile_name, count, seed=0, start=0):
    stream = instruction_stream(get_profile(profile_name), seed=seed,
                                start_instruction=start)
    return list(itertools.islice(stream, count))


class TestDeterminism:
    def test_same_seed_same_stream(self):
        a = take("gcc", 2000, seed=7)
        b = take("gcc", 2000, seed=7)
        assert a == b

    def test_different_seed_different_stream(self):
        a = take("gcc", 2000, seed=1)
        b = take("gcc", 2000, seed=2)
        assert a != b

    def test_different_benchmarks_differ(self):
        assert take("gcc", 500) != take("gzip", 500)


class TestMixStatistics:
    def test_branch_fraction_near_target(self):
        instructions = take("gcc", 30_000)
        target = get_profile("gcc").phases[0].stream.branch_fraction
        measured = sum(i.is_branch for i in instructions) / len(instructions)
        assert abs(measured - target) < 0.03

    def test_load_store_fraction_near_target(self):
        instructions = take("gcc", 30_000)
        stream = get_profile("gcc").phases[0].stream
        loads = sum(i.op is OpClass.LOAD for i in instructions) / len(instructions)
        stores = sum(i.op is OpClass.STORE for i in instructions) / len(instructions)
        assert abs(loads - stream.load_fraction) < 0.03
        assert abs(stores - stream.store_fraction) < 0.03

    def test_fp_benchmark_generates_fp_ops(self):
        instructions = take("equake", 20_000)
        fp = sum(i.op.is_fp for i in instructions) / len(instructions)
        assert fp > 0.25

    def test_int_benchmark_generates_little_fp(self):
        instructions = take("gcc", 20_000)
        fp = sum(i.op.is_fp for i in instructions) / len(instructions)
        assert fp < 0.05


class TestStreamStructure:
    def test_memory_ops_have_addresses_in_working_set(self):
        stream_params = get_profile("gcc").phases[0].stream
        for inst in take("gcc", 10_000):
            if inst.op.is_memory:
                offset = inst.address - 0x1000_0000
                assert 0 <= offset < stream_params.working_set_bytes

    def test_branches_carry_targets(self):
        for inst in take("gcc", 10_000):
            if inst.is_branch and inst.taken:
                assert inst.target != 0

    def test_branch_sites_are_reused(self):
        # Bounded static branch sites: predictors can learn them.
        pcs = {i.pc for i in take("gcc", 20_000) if i.is_branch}
        assert len(pcs) <= get_profile("gcc").phases[0].stream.branch_sites

    def test_branch_bias_is_learnable(self):
        # Per-site outcomes must be strongly biased (predictability).
        outcomes: dict[int, list[bool]] = {}
        for inst in take("gcc", 40_000):
            if inst.is_branch:
                outcomes.setdefault(inst.pc, []).append(inst.taken)
        agreements = []
        for taken_list in outcomes.values():
            if len(taken_list) < 10:
                continue
            majority = sum(taken_list) > len(taken_list) / 2
            agreements.append(
                sum(t == majority for t in taken_list) / len(taken_list)
            )
        mean_agreement = sum(agreements) / len(agreements)
        target = get_profile("gcc").phases[0].stream.branch_predictability
        assert abs(mean_agreement - target) < 0.05

    def test_start_instruction_offsets_phase(self):
        profile = get_profile("art")
        hot_len = profile.phases[0].instructions
        # Starting inside the second phase yields that phase's mix: the
        # 'match' phase is FP-lighter than 'scan'.
        cool = take("art", 5000, start=hot_len + 1000)
        assert len(cool) == 5000

    def test_dest_registers_in_range(self):
        for inst in take("equake", 5000):
            assert -1 <= inst.dest_reg < 64
            for reg in inst.src_regs:
                assert 0 <= reg < 64
