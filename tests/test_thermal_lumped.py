"""Tests for the simplified per-block thermal model (Figure 3C, Eq. 5)."""

import numpy as np
import pytest

from repro.errors import ThermalModelError
from repro.thermal.floorplan import Floorplan
from repro.thermal.lumped import LumpedThermalModel


@pytest.fixture
def model(floorplan):
    return LumpedThermalModel(floorplan, heatsink_temperature=100.0)


def peak_powers(floorplan):
    return np.array([block.peak_power for block in floorplan.blocks])


class TestState:
    def test_starts_at_heatsink_temperature(self, model):
        assert np.allclose(model.temperatures, 100.0)

    def test_custom_initial_temperature(self, floorplan):
        model = LumpedThermalModel(floorplan, 100.0, initial_temperature=85.0)
        assert np.allclose(model.temperatures, 85.0)

    def test_reset(self, model, floorplan):
        model.advance(peak_powers(floorplan), 100_000)
        model.reset()
        assert np.allclose(model.temperatures, 100.0)

    def test_named_temperature(self, model):
        assert model.temperature("regfile") == pytest.approx(100.0)

    def test_time_constants_exposed(self, model):
        assert np.allclose(model.time_constants, 175e-6)


class TestStepCycle:
    def test_zero_power_cools_toward_heatsink(self, floorplan):
        model = LumpedThermalModel(floorplan, 100.0, initial_temperature=102.0)
        before = model.temperatures
        after = model.step_cycle(np.zeros(7))
        assert np.all(after < before)

    def test_heating_is_monotonic(self, model, floorplan):
        powers = peak_powers(floorplan)
        previous = model.temperatures
        for _ in range(100):
            current = model.step_cycle(powers)
            assert np.all(current >= previous)
            previous = current

    def test_equilibrium_is_fixed_point(self, floorplan):
        model = LumpedThermalModel(floorplan, 100.0)
        powers = peak_powers(floorplan)
        model._temps = model.steady_state(powers)  # place at equilibrium
        after = model.step_cycle(powers)
        assert np.allclose(after, model.steady_state(powers), atol=1e-9)

    def test_wrong_shape_rejected(self, model):
        with pytest.raises(ThermalModelError):
            model.step_cycle(np.zeros(3))

    def test_euler_unstable_timestep_rejected(self, floorplan):
        """dt >= 2*min(tau) diverges under forward Euler: refuse it."""
        tau = 175e-6  # every default block shares this time constant
        model = LumpedThermalModel(floorplan, 100.0, cycle_time=2.1 * tau)
        with pytest.raises(ThermalModelError, match="unstable"):
            model.step_cycle(np.zeros(7))

    def test_euler_boundary_timestep_rejected(self, floorplan):
        # Exactly dt == 2*min(tau) (computed in float, as the model does)
        # marginally oscillates forever: also rejected.
        tau = min(b.resistance * b.capacitance for b in floorplan.blocks)
        model = LumpedThermalModel(floorplan, 100.0, cycle_time=2.0 * tau)
        with pytest.raises(ThermalModelError):
            model.step_cycle(np.zeros(7))

    def test_advance_accepts_timesteps_euler_cannot(self, floorplan):
        """The exact exponential update is stable at any horizon."""
        model = LumpedThermalModel(floorplan, 100.0, cycle_time=2.1 * 175e-6)
        temps = model.advance(np.full(7, 5.0), 1_000)
        assert np.all(np.isfinite(temps))


class TestAdvance:
    def test_matches_euler_integration(self, floorplan):
        powers = peak_powers(floorplan)
        euler = LumpedThermalModel(floorplan, 100.0)
        exact = LumpedThermalModel(floorplan, 100.0)
        cycles = 50_000
        for _ in range(cycles):
            euler.step_cycle(powers)
        exact.advance(powers, cycles)
        assert np.allclose(euler.temperatures, exact.temperatures, atol=1e-3)

    def test_composable(self, floorplan):
        powers = peak_powers(floorplan)
        one_shot = LumpedThermalModel(floorplan, 100.0)
        split = LumpedThermalModel(floorplan, 100.0)
        one_shot.advance(powers, 100_000)
        split.advance(powers, 60_000)
        split.advance(powers, 40_000)
        assert np.allclose(one_shot.temperatures, split.temperatures)

    def test_long_advance_reaches_steady_state(self, model, floorplan):
        powers = peak_powers(floorplan)
        model.advance(powers, 10_000_000)  # ~38 time constants
        assert np.allclose(model.temperatures, model.steady_state(powers), atol=1e-6)

    def test_regfile_peak_steady_state(self, model, floorplan):
        # regfile: 8 W * 0.4 K/W = 3.2 K over the 100 C heatsink.
        powers = peak_powers(floorplan)
        steady = model.steady_state(powers)
        index = floorplan.index("regfile")
        assert steady[index] == pytest.approx(103.2)

    def test_rejects_nonpositive_cycles(self, model):
        with pytest.raises(ThermalModelError):
            model.advance(np.zeros(7), 0)

    def test_hottest_block_tracking(self, model, floorplan):
        powers = np.zeros(7)
        powers[floorplan.index("bpred")] = 8.0
        model.advance(powers, 500_000)
        assert model.hottest_block == "bpred"
        assert model.max_temperature == model.temperature("bpred")


class TestFractionAbove:
    def test_entirely_below(self, model):
        start = np.full(7, 100.0)
        steady = np.full(7, 101.0)
        frac = model.fraction_above(start, steady, 1e-3, 102.0)
        assert np.all(frac == 0.0)

    def test_entirely_above(self, model):
        start = np.full(7, 103.0)
        steady = np.full(7, 102.5)
        frac = model.fraction_above(start, steady, 1e-3, 102.0)
        assert np.all(frac == 1.0)

    def test_rising_crossing_matches_analytic(self, model):
        # One block rising from 100 toward 103.2 crosses 102 at
        # t* = tau * ln(3.2 / 1.2).
        tau = 175e-6
        duration = 4 * tau
        start = np.full(7, 100.0)
        steady = np.full(7, 103.2)
        frac = model.fraction_above(start, steady, duration, 102.0)
        t_cross = tau * np.log(3.2 / 1.2)
        assert frac[0] == pytest.approx(1 - t_cross / duration, rel=1e-6)

    def test_falling_crossing_matches_analytic(self, model):
        tau = 175e-6
        duration = 4 * tau
        start = np.full(7, 103.0)
        steady = np.full(7, 100.0)
        frac = model.fraction_above(start, steady, duration, 102.0)
        t_cross = tau * np.log(3.0 / 2.0)
        assert frac[0] == pytest.approx(t_cross / duration, rel=1e-6)

    def test_crossing_after_interval_counts_zero(self, model):
        # Steady above threshold but the interval ends before crossing.
        tau = 175e-6
        start = np.full(7, 100.0)
        steady = np.full(7, 103.2)
        frac = model.fraction_above(start, steady, tau / 100, 102.0)
        assert np.all(frac == 0.0)

    def test_asymptotic_approach_never_crosses(self, model):
        start = np.full(7, 100.0)
        steady = np.full(7, 102.0)  # approaches exactly the threshold
        frac = model.fraction_above(start, steady, 1.0, 102.0)
        assert np.all(frac == 0.0)

    def test_start_exactly_at_threshold_rising(self, model):
        # Starting ON the threshold and rising: above for all t > 0, so
        # the whole interval counts (the boundary instant has measure 0).
        start = np.full(7, 102.0)
        steady = np.full(7, 103.0)
        frac = model.fraction_above(start, steady, 1e-3, 102.0)
        assert np.all(frac == 1.0)

    def test_start_exactly_at_threshold_falling(self, model):
        # Starting ON the threshold and falling: never strictly above.
        start = np.full(7, 102.0)
        steady = np.full(7, 100.0)
        frac = model.fraction_above(start, steady, 1e-3, 102.0)
        assert np.all(frac == 0.0)

    def test_steady_exactly_at_threshold_from_above(self, model):
        # Decaying from above toward exactly the threshold: always above.
        start = np.full(7, 103.0)
        steady = np.full(7, 102.0)
        frac = model.fraction_above(start, steady, 1.0, 102.0)
        assert np.all(frac == 1.0)

    def test_zero_duration_is_instantaneous_indicator(self, model):
        start = np.array([101.0, 103.0, 102.0, 100.0, 104.0, 102.5, 99.0])
        steady = np.full(7, 110.0)
        frac = model.fraction_above(start, steady, 0.0, 102.0)
        assert np.array_equal(frac, (start > 102.0).astype(float))

    def test_agrees_with_dense_euler_reference(self, floorplan):
        # Integrate the same constant-power interval with per-cycle
        # forward Euler and count cycles above threshold; the analytic
        # fraction must agree to within one cycle of discretisation.
        model = LumpedThermalModel(floorplan, 100.0)
        powers = peak_powers(floorplan)
        threshold = 102.0
        cycles = 600_000  # ~2.3 time constants
        duration = cycles * model.cycle_time
        start = model.temperatures
        steady = model.steady_state(powers)
        frac = model.fraction_above(start, steady, duration, threshold)
        above = np.zeros(7)
        for _ in range(cycles):
            above += model.step_cycle(powers) > threshold
        assert np.allclose(frac, above / cycles, atol=1e-4)


class TestHelpers:
    def test_power_for_temperature(self, model, floorplan):
        power = model.power_for_temperature("regfile", 101.0)
        assert power == pytest.approx(1.0 / 0.4)

    def test_time_to_temperature_matches_exponential(self, model):
        # regfile at 8 W heads to 103.2; time to 102 = tau*ln(3.2/1.2).
        t = model.time_to_temperature("regfile", 8.0, 102.0)
        assert t == pytest.approx(175e-6 * np.log(3.2 / 1.2), rel=1e-6)

    def test_time_to_unreachable_temperature_is_infinite(self, model):
        assert model.time_to_temperature("regfile", 1.0, 102.0) == float("inf")

    def test_time_to_current_temperature_is_zero(self, model):
        assert model.time_to_temperature("regfile", 8.0, 100.0) == 0.0
