"""Metric primitives: bin semantics, registry rules, merge algebra."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TelemetryError
from repro.telemetry import (
    DUTY_EDGES,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    merge_snapshots,
)


class TestCounter:
    def test_increments(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_rejects_negative(self):
        with pytest.raises(TelemetryError):
            Counter("c").inc(-1)


class TestGauge:
    def test_tracks_max_extreme(self):
        gauge = Gauge("g")
        for value in (3.0, 7.0, 5.0):
            gauge.set(value)
        assert gauge.value == 5.0
        assert gauge.extreme == 7.0
        assert gauge.updates == 3

    def test_min_preference(self):
        gauge = Gauge("g", prefer="min")
        for value in (3.0, 7.0, 1.0, 5.0):
            gauge.set(value)
        assert gauge.extreme == 1.0

    def test_rejects_bad_preference(self):
        with pytest.raises(TelemetryError):
            Gauge("g", prefer="median")


class TestHistogramBinBoundaries:
    """The documented half-open-left semantics ``[e_i, e_{i+1})``."""

    def test_value_on_interior_edge_starts_its_bin(self):
        hist = Histogram("h", edges=(0.0, 1.0, 2.0))
        hist.observe(1.0)
        # Bins: (-inf,0) [0,1) [1,2) [2,+inf)
        assert hist.counts == [0, 0, 1, 0]

    def test_underflow_and_overflow(self):
        hist = Histogram("h", edges=(0.0, 1.0))
        hist.observe(-0.5)  # below edges[0]
        hist.observe(1.0)  # exactly edges[-1] -> overflow bin
        hist.observe(99.0)
        assert hist.counts == [1, 0, 2]

    def test_nan_counted_separately(self):
        hist = Histogram("h", edges=(0.0, 1.0))
        hist.observe(math.nan)
        hist.observe(0.5)
        assert hist.nan_count == 1
        assert hist.count == 1
        assert sum(hist.counts) == 1

    def test_mean_min_max(self):
        hist = Histogram("h", edges=(0.0, 10.0))
        for value in (1.0, 3.0, 8.0):
            hist.observe(value)
        assert hist.mean == pytest.approx(4.0)
        assert hist.min == 1.0
        assert hist.max == 8.0

    def test_quantile_returns_bin_upper_edge(self):
        hist = Histogram("h", edges=(0.0, 1.0, 2.0, 3.0))
        for value in (0.5, 0.6, 1.5, 2.5):
            hist.observe(value)
        assert hist.quantile(0.25) == 1.0  # first bin's upper edge
        assert hist.quantile(1.0) == 3.0  # last occupied bin's upper edge

    def test_quantile_in_overflow_bin_returns_max(self):
        hist = Histogram("h", edges=(0.0, 1.0))
        hist.observe(5.0)
        assert hist.quantile(1.0) == 5.0

    def test_quantile_range_checked(self):
        with pytest.raises(TelemetryError):
            Histogram("h", edges=(0.0, 1.0)).quantile(1.5)

    def test_bin_labels(self):
        hist = Histogram("h", edges=(0.0, 1.0))
        assert hist.bin_label(0) == "(-inf, 0)"
        assert hist.bin_label(1) == "[0, 1)"
        assert hist.bin_label(2) == "[1, +inf)"

    def test_edges_must_increase(self):
        with pytest.raises(TelemetryError):
            Histogram("h", edges=(1.0, 1.0))

    def test_duty_edges_align_with_toggle_grid(self):
        """Every 8-level quantized duty starts its own bin."""
        hist = Histogram("duty", DUTY_EDGES)
        for level in range(9):
            hist.observe(level / 8)
        # No underflow; one observation per [k/8, (k+1)/8) bin and the
        # 1.0 observation in the overflow bin [1.0, +inf).
        assert hist.counts[0] == 0
        assert all(count == 1 for count in hist.counts[1:])


class TestRegistry:
    def test_get_or_create_idempotent(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")

    def test_kind_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("a")
        with pytest.raises(TelemetryError):
            registry.gauge("a")

    def test_histogram_edge_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.histogram("h", (0.0, 1.0))
        with pytest.raises(TelemetryError):
            registry.histogram("h", (0.0, 2.0))

    def test_contains_and_names(self):
        registry = MetricsRegistry()
        registry.counter("b")
        registry.counter("a")
        assert "a" in registry
        assert registry.names() == ("a", "b")


def _random_registry(counters, gauge_values, observations):
    registry = MetricsRegistry()
    for amount in counters:
        registry.counter("events").inc(amount)
    for value in gauge_values:
        registry.gauge("peak").set(value)
    hist = registry.histogram("temps", (90.0, 100.0, 102.0))
    for value in observations:
        hist.observe(value)
    return registry


amounts = st.lists(
    st.floats(min_value=0.0, max_value=100.0, allow_nan=False), max_size=10
)
values = st.lists(
    st.floats(min_value=-50.0, max_value=150.0, allow_nan=False), max_size=20
)


def _assert_snapshots_equal(left, right):
    """Structural equality; running float sums compare to FP tolerance.

    Counter values and histogram ``sum`` fields are floating-point
    accumulators, so the algebra is associative/commutative only up to
    rounding; counts, bins, and extremes must match exactly.
    """
    assert left.keys() == right.keys()
    for name in left:
        a, b = dict(left[name]), dict(right[name])
        for key in ("sum", "value"):
            if isinstance(a.get(key), float):
                assert a.pop(key) == pytest.approx(
                    b.pop(key), rel=1e-12, abs=1e-9
                ), name
        assert a == b, name


class TestMergeAlgebra:
    @given(a=amounts, b=amounts, c=amounts, va=values, vb=values, vc=values)
    @settings(max_examples=50, deadline=None)
    def test_merge_is_associative(self, a, b, c, va, vb, vc):
        """(A + B) + C == A + (B + C), metric by metric."""
        snaps = [
            _random_registry(x, v, v).snapshot()
            for x, v in ((a, va), (b, vb), (c, vc))
        ]
        left = merge_snapshots(merge_snapshots(snaps[0], snaps[1]), snaps[2])
        right = merge_snapshots(snaps[0], merge_snapshots(snaps[1], snaps[2]))
        _assert_snapshots_equal(left, right)

    @given(a=amounts, b=amounts, va=values, vb=values)
    @settings(max_examples=50, deadline=None)
    def test_merge_is_commutative(self, a, b, va, vb):
        one = _random_registry(a, va, va).snapshot()
        two = _random_registry(b, vb, vb).snapshot()
        _assert_snapshots_equal(
            merge_snapshots(one, two), merge_snapshots(two, one)
        )

    def test_merge_adds_counters_and_bins(self):
        one = _random_registry([2.0], [5.0], [95.0]).snapshot()
        two = _random_registry([3.0], [9.0], [101.0, 103.0]).snapshot()
        merged = merge_snapshots(one, two)
        assert merged["events"]["value"] == 5.0
        assert merged["peak"]["extreme"] == 9.0
        assert merged["temps"]["count"] == 3
        assert sum(merged["temps"]["counts"]) == 3

    def test_merge_rejects_mismatched_edges(self):
        registry = MetricsRegistry()
        registry.histogram("h", (0.0, 1.0))
        other = MetricsRegistry()
        other.histogram("h", (0.0, 2.0))
        with pytest.raises(TelemetryError):
            registry.merge_snapshot(other.snapshot())

    def test_merge_rejects_unknown_kind(self):
        with pytest.raises(TelemetryError):
            MetricsRegistry().merge_snapshot({"x": {"kind": "summary"}})
