"""Tests for the coordinated multicore simulation engine."""

import numpy as np
import pytest

from repro.config import FailsafeConfig, TelemetryConfig
from repro.errors import SimulationError
from repro.faults import FaultSchedule, FaultWindow
from repro.multicore import (
    MulticoreEngine,
    MulticoreFloorplan,
    MulticoreRunResult,
    ThermalBudgetCoordinator,
)
from repro.telemetry import Telemetry

MIX = ("gcc", "gzip", "art", "mesa")
BUDGET = 200_000


class TestConstruction:
    def test_profile_names_accepted(self):
        engine = MulticoreEngine(MIX)
        assert engine.n_cores == 4
        assert [p.name for p in engine.profiles] == list(MIX)

    def test_needs_profiles(self):
        with pytest.raises(SimulationError):
            MulticoreEngine([])

    def test_policy_count_must_match(self):
        with pytest.raises(SimulationError):
            MulticoreEngine(MIX, policy=["pid", "pid"])

    def test_floorplan_core_count_must_match(self):
        tiling = MulticoreFloorplan.tile(n_cores=2)
        with pytest.raises(SimulationError):
            MulticoreEngine(MIX, floorplan=tiling)

    def test_coordinator_core_count_must_match(self):
        with pytest.raises(SimulationError):
            MulticoreEngine(
                MIX, coordinator=ThermalBudgetCoordinator(2)
            )

    def test_per_core_policy_labels(self):
        engine = MulticoreEngine(
            ("gcc", "gzip"), policy=["pid", "agi"]
        )
        assert engine.policy_label == "pid+agi"
        assert engine.policies[0].name == "pid"
        assert engine.policies[1].name == "agi"


class TestRun:
    @pytest.fixture(scope="class")
    def baseline(self):
        return MulticoreEngine(MIX, policy="none").run(
            instructions=BUDGET
        )

    def test_result_shape(self, baseline):
        assert isinstance(baseline, MulticoreRunResult)
        assert baseline.n_cores == 4
        assert baseline.benchmarks == MIX
        assert baseline.coordinator == ""
        assert baseline.cycles > 0
        assert baseline.throughput > 0
        for index, core in enumerate(baseline.cores):
            assert core.core == index
            assert core.instructions >= BUDGET
        assert baseline.core(2).benchmark == "art"
        with pytest.raises(KeyError):
            baseline.core(9)

    def test_unmanaged_runs_full_duty(self, baseline):
        for core in baseline.cores:
            assert core.engaged_fraction == 0.0
            assert core.demoted_samples == 0

    def test_managed_cuts_emergencies(self, baseline):
        managed = MulticoreEngine(MIX, policy="pid").run(
            instructions=BUDGET
        )
        assert (
            managed.emergency_fraction <= baseline.emergency_fraction
        )
        assert 0.0 < managed.relative_throughput(baseline) <= 1.0 + 1e-9

    def test_deterministic(self):
        first = MulticoreEngine(MIX, policy="pid", seed=3).run(
            instructions=BUDGET
        )
        second = MulticoreEngine(MIX, policy="pid", seed=3).run(
            instructions=BUDGET
        )
        assert first.throughput == second.throughput
        assert first.emergency_fraction == second.emergency_fraction
        for a, b in zip(first.cores, second.cores):
            assert a.instructions == b.instructions
            assert a.max_temperature == b.max_temperature

    def test_seed_changes_run(self):
        first = MulticoreEngine(MIX, policy="pid", seed=0).run(
            instructions=BUDGET
        )
        second = MulticoreEngine(MIX, policy="pid", seed=1).run(
            instructions=BUDGET
        )
        assert first.throughput != second.throughput

    def test_bad_instructions_rejected(self):
        engine = MulticoreEngine(("gzip",))
        with pytest.raises(SimulationError):
            engine.run(instructions=0)


class TestCoordinatedRun:
    def test_coordinator_stats_in_extra(self):
        result = MulticoreEngine(
            MIX, policy="pid", coordinator="proportional"
        ).run(instructions=BUDGET)
        assert result.coordinator == "proportional"
        assert "coordinator_demotions" in result.extra
        assert "coordinator_budget_samples" in result.extra

    def test_tight_budget_cuts_throughput(self):
        free = MulticoreEngine(MIX, policy="none").run(
            instructions=BUDGET
        )
        squeezed = MulticoreEngine(
            MIX,
            policy="none",
            coordinator=ThermalBudgetCoordinator(
                4, strategy="proportional", duty_budget=1.0
            ),
        ).run(instructions=BUDGET)
        assert squeezed.relative_throughput(free) < 0.9

    def test_demotion_counts_samples(self):
        # A demotion threshold below the idle temperature demotes
        # every core immediately and keeps them demoted.
        result = MulticoreEngine(
            MIX,
            policy="none",
            coordinator=ThermalBudgetCoordinator(
                4,
                demote_temperature=99.0,
                demote_trigger_samples=1,
                rearm_samples=10_000,
            ),
        ).run(instructions=50_000)
        assert result.extra["coordinator_demotions"] == 4.0
        for core in result.cores:
            assert core.demoted_samples > 0


class TestTelemetryAndFaults:
    def test_disabled_telemetry_bit_identical(self):
        silent = MulticoreEngine(MIX, policy="pid").run(
            instructions=BUDGET
        )
        telemetry = Telemetry(TelemetryConfig())
        observed = MulticoreEngine(
            MIX, policy="pid", telemetry=telemetry
        ).run(instructions=BUDGET)
        assert silent.cycles == observed.cycles
        assert silent.throughput == observed.throughput
        assert silent.emergency_fraction == observed.emergency_fraction
        assert silent.mean_chip_power == observed.mean_chip_power
        for a, b in zip(silent.cores, observed.cores):
            assert a.instructions == b.instructions
            assert a.max_temperature == b.max_temperature
            assert a.mean_temperature == b.mean_temperature

    def test_trace_meta_and_records(self):
        telemetry = Telemetry(TelemetryConfig())
        MulticoreEngine(
            ("gcc", "gzip"), policy="pid", coordinator="hottest",
            telemetry=telemetry,
        ).run(instructions=BUDGET)
        assert telemetry.meta["n_cores"] == 2
        assert telemetry.meta["core_benchmarks"] == ["gcc", "gzip"]
        assert telemetry.meta["coordinator"] == "hottest"
        records = telemetry.trace.records()
        assert records
        assert len(records[0].block_temps) == 2  # per-core maxima

    def test_fault_events_tagged_with_core(self):
        telemetry = Telemetry(TelemetryConfig())
        schedule = FaultSchedule(0, dropout_rate=0.2)
        MulticoreEngine(
            ("gcc", "gzip"),
            policy="pid",
            fault_schedules={1: schedule},
            failsafe=FailsafeConfig(),
            telemetry=telemetry,
        ).run(instructions=100_000)
        faults = [
            e for e in telemetry.trace.events if e.kind == "fault"
        ]
        assert faults
        assert all(e.data["core"] == 1 for e in faults)

    def test_failsafe_guard_tags_core(self):
        telemetry = Telemetry(TelemetryConfig())
        # Rail core 0's sensor high: its watchdog must trip.
        schedule = FaultSchedule(
            0,
            sensor_stuck_windows=(FaultWindow(10, 10_000, value=120.0),),
        )
        result = MulticoreEngine(
            ("gcc", "gzip"),
            policy="pid",
            fault_schedules={0: schedule},
            failsafe=FailsafeConfig(),
            telemetry=telemetry,
        ).run(instructions=100_000)
        transitions = [
            e
            for e in telemetry.trace.events
            if e.kind == "failsafe_transition"
        ]
        assert transitions
        assert all(e.data["core"] == 0 for e in transitions)
        assert result.cores[0].extra["failsafe_engagements"] > 0
        assert "failsafe_engagements" in result.cores[1].extra
