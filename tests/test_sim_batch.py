"""The lane-batched simulation subsystem (:mod:`repro.sim.batch`).

The headline guarantee -- ``batch=B`` is bit-identical to B sequential
fast-engine runs -- is asserted three ways: directly on a
:class:`BatchEngine` over mixed lanes (policies, seeds, faults,
failsafe, ragged budgets, history on/off), through the executor
(``run_specs``/``run_suite``/orchestrator, serial and pooled), and as
a hypothesis property over random matrices and B in {1, 2, 4, 8}.

Cross-backend checkpoint parity: a journal written by a serial sweep
resumes under ``batch=B`` (and vice versa) with results bit-identical
to an uninterrupted serial sweep, because batched runs produce the
same canonical spec fingerprints.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import DTMConfig, FailsafeConfig
from repro.errors import ConfigError, SimulationError
from repro.faults import FaultSchedule
from repro.sim.batch import (
    BatchEngine,
    batch_compatibility_key,
    engine_for_spec,
    plan_batches,
    run_spec_lanes,
    validate_batch,
)
from repro.sim.checkpoint import (
    load_checkpoint,
    result_from_dict,
    result_to_dict,
    spec_fingerprint,
)
from repro.sim.parallel import (
    RetryPolicy,
    SweepOptions,
    WorkSpec,
    get_default_batch,
    matrix_specs,
    resolve_batch,
    resolve_jobs,
    run_outcomes,
    run_specs,
    set_default_batch,
)
from repro.sim.sweep import build_engine, run_suite
from tests.test_sim_parallel import (
    INSTRUCTIONS,
    assert_metrics_match,
    assert_results_equal,
    nan_equal,
    quiet_telemetry,
)


def assert_histories_equal(a, b):
    """Exact (bitwise) equality of two History payloads."""
    assert (a is None) == (b is None)
    if a is None:
        return
    assert a.sample_cycles == b.sample_cycles
    assert a.names == b.names
    for name in (
        "max_temp",
        "duty",
        "chip_power",
        "block_temps",
        "block_powers",
        "block_emergency",
        "block_stress",
    ):
        assert np.array_equal(getattr(a, name), getattr(b, name)), name


def mixed_specs() -> list[WorkSpec]:
    """Compatible specs exercising every per-lane divergence at once."""
    return [
        WorkSpec(
            benchmark="gcc",
            policy="pid",
            instructions=INSTRUCTIONS,
            record_history=True,
        ),
        WorkSpec(
            benchmark="gzip",
            policy="none",
            instructions=60_000,
            seed=7,
        ),
        WorkSpec(
            benchmark="art",
            policy="toggle2",
            instructions=90_000,
            fault_schedule=FaultSchedule(
                seed=3, dropout_rate=0.05, spike_rate=0.05
            ),
        ),
        WorkSpec(
            benchmark="mesa",
            policy="pi",
            instructions=INSTRUCTIONS,
            failsafe=FailsafeConfig(),
        ),
        WorkSpec(
            benchmark="gcc",
            policy="pid",
            instructions=75_000,
            seed=11,
            fault_schedule=FaultSchedule(seed=5, stale_rate=0.1),
            failsafe=FailsafeConfig(),
        ),
    ]


class TestValidation:
    @pytest.mark.parametrize("bad", [True, False, 0, -1, 1.5, "4", None])
    def test_validate_batch_rejects(self, bad):
        with pytest.raises(ConfigError):
            validate_batch(bad)

    @pytest.mark.parametrize("good", [1, 2, 8, 1000])
    def test_validate_batch_accepts(self, good):
        validate_batch(good)

    def test_validate_batch_allow_none(self):
        validate_batch(None, allow_none=True)
        with pytest.raises(ConfigError):
            validate_batch(True, allow_none=True)

    @pytest.mark.parametrize("bad", [True, 0, -3, 2.0])
    def test_sweep_options_rejects_bad_batch(self, bad):
        with pytest.raises(ConfigError):
            SweepOptions(batch=bad)

    def test_sweep_options_accepts_none_and_int(self):
        assert SweepOptions().batch is None
        assert SweepOptions(batch=4).batch == 4

    @pytest.mark.parametrize("bad", [True, 0, -1])
    def test_run_specs_rejects_bad_batch(self, bad):
        spec = WorkSpec(benchmark="gcc", policy="none", instructions=1000)
        with pytest.raises(ConfigError):
            run_specs([spec], jobs=1, batch=bad)

    def test_default_batch_roundtrip(self):
        assert get_default_batch() == 1
        set_default_batch(4)
        try:
            assert get_default_batch() == 4
            assert resolve_batch(None) == 4
            assert resolve_batch(2) == 2
        finally:
            set_default_batch(1)

    @pytest.mark.parametrize("bad", [True, 0, -2])
    def test_set_default_batch_rejects(self, bad):
        with pytest.raises(ConfigError):
            set_default_batch(bad)
        assert get_default_batch() == 1

    def test_resolve_jobs_rejects_bool_and_non_int_tasks(self):
        # The jobs-side audit: task counts are counts, not flags.
        with pytest.raises(ConfigError):
            resolve_jobs(2, True)
        with pytest.raises(ConfigError):
            resolve_jobs(2, 3.0)


class TestPlanner:
    def test_consecutive_compatible_specs_group(self):
        specs = matrix_specs(
            ["gcc", "gzip", "art"], ["none", "pid"], instructions=1000
        )
        assert plan_batches(specs, 4) == [[0, 1, 2, 3], [4, 5]]
        assert plan_batches(specs, 2) == [[0, 1], [2, 3], [4, 5]]

    def test_batch_one_is_all_singletons(self):
        specs = matrix_specs(["gcc", "gzip"], ["none"], instructions=1000)
        assert plan_batches(specs, 1) == [[0], [1]]

    def test_incompatible_environments_split_groups(self):
        base = dict(policy="pid", instructions=1000)
        specs = [
            WorkSpec(benchmark="gcc", **base),
            WorkSpec(benchmark="gzip", dtm_config=DTMConfig(), **base),
            WorkSpec(benchmark="art", **base),
        ]
        # Same benchmark/policy matrix, but lane compatibility keys on
        # the shared environment (floorplan + configs), not the matrix.
        assert batch_compatibility_key(specs[0]) != batch_compatibility_key(
            specs[1]
        )
        assert plan_batches(specs, 4) == [[0], [1], [2]]

    def test_multicore_specs_never_batch(self):
        single = WorkSpec(benchmark="gcc", policy="pid", instructions=1000)
        multi = WorkSpec(
            benchmark="gcc",
            policy="pid",
            instructions=1000,
            core_benchmarks=("gcc", "gzip"),
        )
        assert batch_compatibility_key(multi) is None
        assert plan_batches([single, multi, single], 4) == [[0], [1], [2]]

    def test_engine_for_spec_rejects_multicore(self):
        multi = WorkSpec(
            benchmark="gcc",
            policy="pid",
            instructions=1000,
            core_benchmarks=("gcc", "gzip"),
        )
        with pytest.raises(SimulationError):
            engine_for_spec(multi)


class TestBatchEngineParity:
    def test_single_lane_matches_serial_engine(self):
        serial = build_engine("gcc", "pid", seed=2).run(
            instructions=INSTRUCTIONS
        )
        [batched] = BatchEngine([build_engine("gcc", "pid", seed=2)]).run(
            instructions=INSTRUCTIONS
        )
        assert_results_equal(serial, batched)

    def test_mixed_lanes_bit_identical(self):
        specs = mixed_specs()
        serial = [
            engine_for_spec(spec).run(instructions=spec.instructions)
            for spec in specs
        ]
        outcomes = run_spec_lanes(specs)
        assert all(o.error is None for o in outcomes)
        for a, o in zip(serial, outcomes):
            assert_results_equal(a, o.result)
            assert_histories_equal(a.history, o.result.history)

    def test_warmup_parity(self):
        a = build_engine("gcc", "pid")
        b = build_engine("gcc", "pid")
        warm_serial = a.run(
            instructions=INSTRUCTIONS, warmup_instructions=30_000
        )
        [warm_batched] = BatchEngine([b]).run(
            instructions=INSTRUCTIONS, warmup_instructions=30_000
        )
        assert_results_equal(warm_serial, warm_batched)

    def test_lane_error_is_isolated_in_outcomes(self):
        specs = [
            WorkSpec(benchmark="gcc", policy="none", instructions=60_000),
            WorkSpec(benchmark="gzip", policy="pid", instructions=-1),
            WorkSpec(benchmark="art", policy="pid", instructions=60_000),
        ]
        outcomes = run_spec_lanes(specs)
        assert outcomes[0].error is None and outcomes[0].result is not None
        assert isinstance(outcomes[1].error, SimulationError)
        assert outcomes[2].error is None and outcomes[2].result is not None
        # The surviving lanes match their solo runs exactly.
        solo = engine_for_spec(specs[2]).run(instructions=60_000)
        assert_results_equal(solo, outcomes[2].result)

    def test_run_raises_earliest_lane_error(self):
        specs = [
            WorkSpec(benchmark="gcc", policy="none", instructions=60_000),
            WorkSpec(benchmark="gzip", policy="pid", instructions=-1),
        ]
        engines = [engine_for_spec(specs[0])]
        batch = BatchEngine(engines)
        with pytest.raises(SimulationError):
            batch.run(instructions=[-1])

    def test_rejects_mismatched_environments(self):
        a = build_engine("gcc", "pid")
        b = build_engine(
            "gzip", "pid", dtm_config=DTMConfig(pid_setpoint=99.0)
        )
        with pytest.raises(SimulationError):
            BatchEngine([a, b])

    def test_rejects_empty_batch(self):
        with pytest.raises(SimulationError):
            BatchEngine([])


class TestExecutorBatch:
    def test_run_specs_batched_serial_and_pooled(self):
        specs = matrix_specs(
            ["gcc", "gzip"],
            ["pid", "toggle1"],
            include_baseline=True,
            instructions=INSTRUCTIONS,
        )
        serial = run_specs(specs, jobs=1)
        for jobs, batch in ((1, 4), (2, 3), (2, 8)):
            batched = run_specs(specs, jobs=jobs, batch=batch)
            for a, b in zip(serial, batched):
                assert_results_equal(a, b)

    def test_run_specs_batched_telemetry_parity(self):
        specs = matrix_specs(
            ["gcc", "gzip"], ["pid"], include_baseline=True,
            instructions=INSTRUCTIONS,
        )
        t_serial = quiet_telemetry()
        run_specs(specs, jobs=1, telemetry=t_serial)
        t_batched = quiet_telemetry()
        run_specs(specs, jobs=1, batch=4, telemetry=t_batched)
        assert t_serial.trace.emitted == t_batched.trace.emitted
        for a, b in zip(
            t_serial.trace.records(), t_batched.trace.records()
        ):
            assert nan_equal(a.to_dict(), b.to_dict())
        assert nan_equal(
            [e.to_dict() for e in t_serial.trace.events],
            [e.to_dict() for e in t_batched.trace.events],
        )
        assert_metrics_match(
            t_serial.metrics.snapshot(), t_batched.metrics.snapshot()
        )

    def test_run_suite_batch(self):
        kwargs = dict(
            policies=["pid"],
            benchmarks=["gcc", "art"],
            instructions=INSTRUCTIONS,
            seed=5,
        )
        serial = run_suite(**kwargs)
        batched = run_suite(batch=4, **kwargs)
        assert serial.keys() == batched.keys()
        for key in serial:
            assert_results_equal(serial[key], batched[key])

    def test_multicore_spec_dispatches_inside_batched_sweep(self):
        from repro.multicore.results import MulticoreRunResult

        single = matrix_specs(
            ["gcc", "gzip"], ["pid"], instructions=60_000
        )
        multi = WorkSpec(
            benchmark="gcc",
            policy="pid",
            instructions=60_000,
            core_benchmarks=("gcc", "gzip"),
        )
        specs = [single[0], multi, single[1]]
        results = run_specs(specs, jobs=1, batch=4)
        assert isinstance(results[1], MulticoreRunResult)
        assert results[1].n_cores == 2
        serial = run_specs(single, jobs=1)
        assert_results_equal(serial[0], results[0])
        assert_results_equal(serial[1], results[2])

    def test_orchestrator_batch_matches_serial(self):
        specs = matrix_specs(
            ["gcc", "gzip"], ["none", "pid"], instructions=60_000
        )
        ref = run_outcomes(specs, jobs=1, options=SweepOptions())
        for jobs in (1, 2):
            out = run_outcomes(
                specs, jobs=jobs, options=SweepOptions(batch=4)
            )
            for a, b in zip(ref, out):
                assert_results_equal(a.result, b.result)

    def test_orchestrator_isolates_bad_lane_in_group(self):
        good = matrix_specs(["gcc"], ["none", "pid"], instructions=60_000)
        bad = WorkSpec(benchmark="gcc", policy="pid", instructions=-5)
        specs = [good[0], bad, good[1]]
        for jobs in (1, 2):
            out = run_outcomes(
                specs,
                jobs=jobs,
                options=SweepOptions(
                    retry=RetryPolicy(max_retries=1), batch=4
                ),
            )
            assert out[0].result is not None
            assert out[1].result is None and out[1].error is not None
            assert out[2].result is not None

    def test_fail_fast_raises_through_batch(self):
        specs = [
            WorkSpec(benchmark="gcc", policy="none", instructions=60_000),
            WorkSpec(benchmark="gzip", policy="pid", instructions=-5),
        ]
        for jobs in (1, 2):
            with pytest.raises(SimulationError):
                run_specs(specs, jobs=jobs, batch=4)


class TestCheckpointCrossBackend:
    def _specs(self):
        return matrix_specs(
            ["gcc", "gzip"], ["none", "pid"], instructions=60_000
        )

    def _journal_payload(self, path, specs):
        saved = load_checkpoint(path)
        return {
            fingerprint: [entry["result"] for entry in entries]
            for fingerprint, entries in saved.items()
            if fingerprint in {spec_fingerprint(s) for s in specs}
        }

    @pytest.mark.parametrize(
        "first_batch,second_batch", [(1, 4), (4, 1)]
    )
    def test_interrupted_sweep_resumes_across_backends(
        self, tmp_path, first_batch, second_batch
    ):
        specs = self._specs()
        path = tmp_path / "journal.jsonl"
        ref = run_outcomes(specs, jobs=1, options=SweepOptions())

        # "Interrupt" after half the specs under one backend...
        half = run_outcomes(
            specs[:2],
            jobs=1,
            options=SweepOptions(
                checkpoint_path=path, batch=first_batch
            ),
        )
        assert all(o.result is not None for o in half)

        # ...then resume the full sweep under the other backend.
        resumed = run_outcomes(
            specs,
            jobs=1,
            options=SweepOptions(
                checkpoint_path=path,
                resume=True,
                batch=second_batch,
            ),
        )
        for a, b in zip(ref, resumed):
            assert_results_equal(a.result, b.result)

        # The journal holds one bit-identical entry per spec,
        # regardless of which backend produced it.
        payload = self._journal_payload(path, specs)
        assert sorted(payload) == sorted(
            spec_fingerprint(spec) for spec in specs
        )
        serial_dicts = {
            spec_fingerprint(spec): result_to_dict(outcome.result)
            for spec, outcome in zip(specs, ref)
        }
        for fingerprint, entries in payload.items():
            assert len(entries) == 1
            assert nan_equal(entries[0], serial_dicts[fingerprint])

    def test_batched_journal_fingerprints_match_serial(self, tmp_path):
        specs = self._specs()
        serial_path = tmp_path / "serial.jsonl"
        batched_path = tmp_path / "batched.jsonl"
        run_outcomes(
            specs, jobs=1,
            options=SweepOptions(checkpoint_path=serial_path),
        )
        run_outcomes(
            specs, jobs=1,
            options=SweepOptions(checkpoint_path=batched_path, batch=4),
        )
        a = self._journal_payload(serial_path, specs)
        b = self._journal_payload(batched_path, specs)
        assert sorted(a) == sorted(b)
        for fingerprint in a:
            assert nan_equal(a[fingerprint], b[fingerprint])

    def test_multicore_result_round_trips(self):
        multi = WorkSpec(
            benchmark="gcc",
            policy="pid",
            instructions=60_000,
            core_benchmarks=("gcc", "gzip"),
            coordinator="proportional",
        )
        [result] = run_specs([multi], jobs=1)
        rebuilt = result_from_dict(result_to_dict(result))
        assert rebuilt.policy == result.policy
        assert rebuilt.coordinator == result.coordinator
        assert rebuilt.cycles == result.cycles
        assert rebuilt.emergency_fraction == result.emergency_fraction
        assert rebuilt.mean_chip_power == result.mean_chip_power
        assert rebuilt.energy_joules == result.energy_joules
        assert rebuilt.extra == result.extra
        assert len(rebuilt.cores) == len(result.cores)
        for a, b in zip(result.cores, rebuilt.cores):
            assert a == b

    def test_multicore_resume_from_journal(self, tmp_path):
        from repro.multicore.results import MulticoreRunResult

        multi = WorkSpec(
            benchmark="gcc",
            policy="pid",
            instructions=60_000,
            core_benchmarks=("gcc", "gzip"),
        )
        path = tmp_path / "journal.jsonl"
        first = run_outcomes(
            [multi], jobs=1, options=SweepOptions(checkpoint_path=path)
        )
        resumed = run_outcomes(
            [multi],
            jobs=1,
            options=SweepOptions(checkpoint_path=path, resume=True),
        )
        assert isinstance(resumed[0].result, MulticoreRunResult)
        assert resumed[0].result.cycles == first[0].result.cycles
        for a, b in zip(first[0].result.cores, resumed[0].result.cores):
            assert a == b


class TestBatchProperty:
    @given(
        benchmarks=st.lists(
            st.sampled_from(["gcc", "gzip", "art", "mesa"]),
            min_size=1,
            max_size=2,
            unique=True,
        ),
        policies=st.lists(
            st.sampled_from(["none", "toggle1", "pi", "pid"]),
            min_size=1,
            max_size=2,
            unique=True,
        ),
        seeds=st.lists(
            st.integers(min_value=0, max_value=2**16),
            min_size=1,
            max_size=2,
            unique=True,
        ),
        batch=st.sampled_from([1, 2, 4, 8]),
        ragged=st.booleans(),
        faulty=st.booleans(),
        failsafe=st.booleans(),
    )
    @settings(max_examples=8, deadline=None)
    def test_batched_is_bit_identical_to_serial(
        self, benchmarks, policies, seeds, batch, ragged, faulty, failsafe
    ):
        specs = matrix_specs(
            benchmarks,
            policies,
            seeds=seeds,
            instructions=INSTRUCTIONS,
            record_history=True,
            failsafe=FailsafeConfig() if failsafe else None,
        )
        if ragged:
            # Ragged budgets: lanes complete at different samples.
            specs = [
                dataclasses.replace(
                    spec, instructions=50_000 + 20_000 * (i % 3)
                )
                for i, spec in enumerate(specs)
            ]
        if faulty:
            specs = [
                dataclasses.replace(
                    spec,
                    fault_schedule=FaultSchedule(
                        seed=i, dropout_rate=0.05, spike_rate=0.02
                    ),
                )
                for i, spec in enumerate(specs)
            ]
        t_serial = quiet_telemetry()
        serial = run_specs(specs, jobs=1, telemetry=t_serial)
        t_batched = quiet_telemetry()
        batched = run_specs(
            specs, jobs=1, batch=batch, telemetry=t_batched
        )
        for a, b in zip(serial, batched):
            assert_results_equal(a, b)
            assert_histories_equal(a.history, b.history)
        assert t_serial.trace.emitted == t_batched.trace.emitted
        for a, b in zip(
            t_serial.trace.records(), t_batched.trace.records()
        ):
            assert nan_equal(a.to_dict(), b.to_dict())
        assert_metrics_match(
            t_serial.metrics.snapshot(), t_batched.metrics.snapshot()
        )
