"""End-to-end fault-injection + failsafe integration tests.

The acceptance scenario: a PI-managed run of ``gcc`` under 5% sensor
dropout plus a 50-sample railed-sensor fault (stuck at a cold reading)
must stay within 2x of the fault-free emergency fraction *with* the
failsafe watchdog, while the identical faults *without* the watchdog
measurably breach the emergency threshold.
"""

import math

import numpy as np
import pytest

from repro.config import FailsafeConfig
from repro.errors import SimulationError
from repro.faults import FaultSchedule, FaultWindow
from repro.sim.fast import FastEngine
from repro.sim.sweep import run_one
from repro.workloads.profiles import get_profile

INSTRUCTIONS = 1_500_000
SETPOINT = 101.9
EMERGENCY = 102.0  # ThermalConfig default emergency temperature


def make_schedule(seed: int = 7) -> FaultSchedule:
    """5% dropout + a 50-sample sensor railed cold at 100.5 degC."""
    return FaultSchedule(
        seed,
        dropout_rate=0.05,
        sensor_stuck_windows=[FaultWindow(420, 470, value=100.5)],
    )


def make_failsafe() -> FailsafeConfig:
    return FailsafeConfig(failsafe_temperature=101.97, rearm_margin=0.1)


@pytest.fixture(scope="module")
def clean():
    return run_one(
        "gcc", "pi", instructions=INSTRUCTIONS, seed=0, setpoint=SETPOINT
    )


@pytest.fixture(scope="module")
def naked():
    return run_one(
        "gcc",
        "pi",
        instructions=INSTRUCTIONS,
        seed=0,
        setpoint=SETPOINT,
        fault_schedule=make_schedule(),
    )


@pytest.fixture(scope="module")
def guarded():
    return run_one(
        "gcc",
        "pi",
        instructions=INSTRUCTIONS,
        seed=0,
        setpoint=SETPOINT,
        fault_schedule=make_schedule(),
        failsafe=make_failsafe(),
    )


class TestAcceptanceCriterion:
    def test_faults_without_watchdog_breach(self, clean, naked):
        """The unguarded faulty loop measurably overheats."""
        assert naked.emergency_fraction > clean.emergency_fraction
        assert naked.emergency_fraction > 0.0
        assert naked.max_temperature > EMERGENCY

    def test_watchdog_contains_emergency_fraction(self, clean, guarded):
        """Guarded emergency fraction stays within 2x of fault-free."""
        assert guarded.emergency_fraction <= 2 * clean.emergency_fraction + 1e-3
        assert guarded.max_temperature < EMERGENCY

    def test_watchdog_actually_worked(self, guarded):
        """The guard rejected faulty samples rather than idling."""
        assert guarded.extra["failsafe_rejected_samples"] > 0
        assert guarded.extra["failsafe_engagements"] >= 1

    def test_throughput_cost_is_bounded(self, clean, guarded):
        """Failsafe protection is not a de-facto shutdown."""
        clean_ipc = clean.instructions / clean.cycles
        guarded_ipc = guarded.instructions / guarded.cycles
        assert guarded_ipc > 0.5 * clean_ipc


class TestDeterminism:
    def test_identical_seeds_identical_results(self, guarded):
        """Same schedule seed + engine seed => identical RunResult."""
        replay = run_one(
            "gcc",
            "pi",
            instructions=INSTRUCTIONS,
            seed=0,
            setpoint=SETPOINT,
            fault_schedule=make_schedule(),
            failsafe=make_failsafe(),
        )
        assert replay.emergency_fraction == guarded.emergency_fraction
        assert replay.stress_fraction == guarded.stress_fraction
        assert replay.instructions == guarded.instructions
        assert replay.cycles == guarded.cycles
        assert replay.max_temperature == guarded.max_temperature
        assert replay.mean_chip_power == guarded.mean_chip_power
        assert replay.energy_joules == guarded.energy_joules
        assert replay.extra == guarded.extra

    def test_different_fault_seed_changes_outcome(self, naked):
        other = run_one(
            "gcc",
            "pi",
            instructions=INSTRUCTIONS,
            seed=0,
            setpoint=SETPOINT,
            fault_schedule=FaultSchedule(
                99,
                dropout_rate=0.05,
                sensor_stuck_windows=[FaultWindow(420, 470, value=100.5)],
            ),
        )
        assert other.emergency_fraction != naked.emergency_fraction


class TestEngineGuardRails:
    def test_non_finite_state_raises_structured_error(self):
        engine = FastEngine(get_profile("gcc"))
        engine.thermal._temps[2] = math.inf  # corrupt one block
        with pytest.raises(SimulationError, match="non-finite") as info:
            engine.run(instructions=10_000)
        err = info.value
        assert "gcc" in str(err)
        assert err.diagnostics["block"] == engine.floorplan.names[2]
        assert "duty" in err.diagnostics
        assert "policy" in err.diagnostics

    def test_nan_temperature_also_caught(self):
        engine = FastEngine(get_profile("gcc"))
        engine.thermal._temps[:] = math.nan
        with pytest.raises(SimulationError, match="non-finite"):
            engine.run(instructions=10_000)

    def test_warmup_budget_exceeded_names_profile(self):
        engine = FastEngine(get_profile("gcc"))
        with pytest.raises(SimulationError, match="warmup") as info:
            engine.run(
                instructions=1_000,
                max_cycles=5_000,
                warmup_instructions=1e12,
            )
        err = info.value
        assert "gcc" in str(err)
        assert "5,000" in str(err)
        assert err.diagnostics["warmup_budget"] == 5_000
        assert err.diagnostics["warmup_cycles"] > 0

    def test_warmup_advances_thermal_state(self):
        """Warmup is excluded from metrics but runs full dynamics."""
        warm = FastEngine(get_profile("gcc"))
        cold = FastEngine(get_profile("gcc"))
        warmed = warm.run(instructions=50_000, warmup_instructions=500_000)
        fresh = cold.run(instructions=50_000)
        assert warmed.instructions == pytest.approx(fresh.instructions, rel=0.1)
        # The warmed run starts hot, so its mean temperature is higher.
        warm_mean = np.mean(list(warmed.mean_block_temperature.values()))
        fresh_mean = np.mean(list(fresh.mean_block_temperature.values()))
        assert warm_mean > fresh_mean


class TestActuatorFaultsEndToEnd:
    def test_actuator_ignore_window_flows_through_run_one(self):
        schedule = FaultSchedule(
            3, actuator_ignore_windows=[FaultWindow(0, 10_000)]
        )
        result = run_one(
            "gcc",
            "pi",
            instructions=200_000,
            seed=0,
            setpoint=SETPOINT,
            fault_schedule=schedule,
        )
        # Every command ignored: the duty never leaves its initial 1.0,
        # i.e. the run behaves like the unmanaged baseline.
        unmanaged = run_one("gcc", "none", instructions=200_000, seed=0)
        assert result.engaged_fraction == 0.0
        assert result.max_temperature == pytest.approx(
            unmanaged.max_temperature, abs=1e-9
        )
