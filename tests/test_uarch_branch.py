"""Tests for the branch prediction stack (Table 2 hybrid predictor)."""

import pytest

from repro.errors import ConfigError
from repro.uarch.branch.bimodal import BimodalPredictor
from repro.uarch.branch.btb import BranchTargetBuffer
from repro.uarch.branch.hybrid import HybridPredictor
from repro.uarch.branch.ras import ReturnAddressStack
from repro.uarch.branch.twolevel import GAgPredictor


class TestBimodal:
    def test_learns_taken_bias(self):
        predictor = BimodalPredictor(64)
        for _ in range(4):
            predictor.update(0x100, True)
        assert predictor.predict(0x100)

    def test_learns_not_taken_bias(self):
        predictor = BimodalPredictor(64)
        for _ in range(4):
            predictor.update(0x100, False)
        assert not predictor.predict(0x100)

    def test_hysteresis_survives_one_anomaly(self):
        predictor = BimodalPredictor(64)
        for _ in range(4):
            predictor.update(0x100, True)
        predictor.update(0x100, False)  # single not-taken
        assert predictor.predict(0x100)  # still predicts taken

    def test_counters_saturate(self):
        predictor = BimodalPredictor(64)
        for _ in range(100):
            predictor.update(0x100, True)
        predictor.update(0x100, False)
        predictor.update(0x100, False)
        assert not predictor.predict(0x100)  # 2 updates flip a saturated ctr

    def test_distinct_pcs_use_distinct_counters(self):
        predictor = BimodalPredictor(64)
        for _ in range(4):
            predictor.update(0x100, True)
            predictor.update(0x104, False)
        assert predictor.predict(0x100)
        assert not predictor.predict(0x104)

    def test_aliasing_wraps_table(self):
        predictor = BimodalPredictor(16)
        for _ in range(4):
            predictor.update(0x0, False)
        # PC 64 maps to (64 >> 2) & 15 = 0: same counter as PC 0.
        assert not predictor.predict(64)

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ConfigError):
            BimodalPredictor(100)


class TestGAg:
    def test_learns_alternating_pattern(self):
        # T,N,T,N...: with history, GAg predicts it perfectly; bimodal
        # cannot.  Train by driving history with actual outcomes.
        gag = GAgPredictor(1024, 10)
        outcome = True
        for _ in range(200):
            gag.update(0x100, outcome)
            gag.speculative_update_history(outcome)
            outcome = not outcome
        correct = 0
        for _ in range(100):
            prediction = gag.predict(0x100)
            correct += prediction == outcome
            gag.update(0x100, outcome)
            gag.speculative_update_history(outcome)
            outcome = not outcome
        assert correct >= 95

    def test_history_checkpoint_repair(self):
        gag = GAgPredictor(1024, 8)
        gag.speculative_update_history(True)
        checkpoint = gag.speculative_update_history(True)  # mispredicted
        gag.speculative_update_history(True)  # wrong-path update
        gag.repair_history(checkpoint, actual_taken=False)
        # History = checkpoint with the actual outcome shifted in.
        assert gag.history == ((checkpoint << 1) | 0) & 0xFF

    def test_history_masked_to_width(self):
        gag = GAgPredictor(1024, 4)
        for _ in range(100):
            gag.speculative_update_history(True)
        assert gag.history == 0b1111

    def test_rejects_bad_geometry(self):
        with pytest.raises(ConfigError):
            GAgPredictor(1000, 10)


class TestBTB:
    def test_miss_then_hit(self):
        btb = BranchTargetBuffer(64, 2)
        assert btb.lookup(0x100) is None
        btb.update(0x100, 0x500)
        assert btb.lookup(0x100) == 0x500

    def test_update_replaces_target(self):
        btb = BranchTargetBuffer(64, 2)
        btb.update(0x100, 0x500)
        btb.update(0x100, 0x900)
        assert btb.lookup(0x100) == 0x900

    def test_lru_eviction_within_set(self):
        btb = BranchTargetBuffer(4, 2)  # 2 sets, 2 ways
        set_stride = 4 * 2  # pcs hitting the same set differ by sets*4
        pc_a, pc_b, pc_c = 0x100, 0x100 + set_stride, 0x100 + 2 * set_stride
        btb.update(pc_a, 1)
        btb.update(pc_b, 2)
        btb.lookup(pc_a)  # touch A: B becomes LRU
        btb.update(pc_c, 3)  # evicts B
        assert btb.lookup(pc_a) == 1
        assert btb.lookup(pc_b) is None
        assert btb.lookup(pc_c) == 3

    def test_hit_statistics(self):
        btb = BranchTargetBuffer(64, 2)
        btb.update(0x100, 0x500)
        btb.lookup(0x100)
        btb.lookup(0x104)
        assert btb.hits == 1
        assert btb.lookups == 2

    def test_rejects_bad_geometry(self):
        with pytest.raises(ConfigError):
            BranchTargetBuffer(10, 3)


class TestRAS:
    def test_lifo_order(self):
        ras = ReturnAddressStack(8)
        ras.push(0x100)
        ras.push(0x200)
        assert ras.pop() == 0x200
        assert ras.pop() == 0x100

    def test_underflow_returns_zero(self):
        ras = ReturnAddressStack(8)
        assert ras.pop() == 0
        assert ras.underflows == 1

    def test_overflow_wraps_oldest(self):
        ras = ReturnAddressStack(2)
        ras.push(1)
        ras.push(2)
        ras.push(3)  # overwrites 1; valid entries stay capped at depth
        assert ras.pop() == 3
        assert ras.pop() == 2
        assert ras.pop() == 0  # entry 1 was lost to the wrap: underflow
        assert ras.underflows == 1

    def test_len_tracks_valid_entries(self):
        ras = ReturnAddressStack(4)
        ras.push(1)
        ras.push(2)
        assert len(ras) == 2
        ras.pop()
        assert len(ras) == 1

    def test_rejects_nonpositive_depth(self):
        with pytest.raises(ConfigError):
            ReturnAddressStack(0)


class TestHybrid:
    def test_resolve_detects_direction_mispredict(self):
        hybrid = HybridPredictor()
        prediction = hybrid.predict(0x100)
        mispredicted = hybrid.resolve(
            0x100, prediction, taken=not prediction.taken, target=0x500
        )
        assert mispredicted

    def test_learns_biased_branch(self):
        hybrid = HybridPredictor()
        for _ in range(10):
            prediction = hybrid.predict(0x100)
            hybrid.resolve(0x100, prediction, taken=True, target=0x500)
        prediction = hybrid.predict(0x100)
        assert prediction.taken
        assert prediction.target == 0x500

    def test_btb_miss_counts_target_mispredict(self):
        hybrid = HybridPredictor()
        # Train direction taken but give a fresh target PC each time so
        # the BTB entry is stale exactly once.
        for _ in range(8):
            prediction = hybrid.predict(0x100)
            hybrid.resolve(0x100, prediction, True, 0x500)
        prediction = hybrid.predict(0x100)
        assert prediction.taken
        hybrid.resolve(0x100, prediction, True, 0x900)  # target changed
        assert hybrid.target_mispredicts >= 1

    def test_chooser_prefers_global_for_alternating_pattern(self):
        hybrid = HybridPredictor()
        outcome = True
        for _ in range(400):
            prediction = hybrid.predict(0x100)
            hybrid.resolve(0x100, prediction, outcome, 0x500)
            outcome = not outcome
        # After training, the alternating branch should be predicted well.
        correct = 0
        for _ in range(100):
            prediction = hybrid.predict(0x100)
            correct += prediction.taken == outcome
            hybrid.resolve(0x100, prediction, outcome, 0x500)
            outcome = not outcome
        assert correct >= 90

    def test_mispredict_rate_bounded_on_biased_stream(self):
        hybrid = HybridPredictor()
        import random

        rng = random.Random(3)
        for _ in range(3000):
            pc = 0x100 + 8 * rng.randrange(32)
            prediction = hybrid.predict(pc)
            taken = rng.random() < 0.9  # 90 % biased-taken sites
            hybrid.resolve(pc, prediction, taken, pc + 64)
        assert hybrid.mispredict_rate < 0.25

    def test_history_repaired_after_mispredict(self):
        hybrid = HybridPredictor()
        before = hybrid.gag.history
        prediction = hybrid.predict(0x100)
        hybrid.resolve(0x100, prediction, not prediction.taken, 0x500)
        expected = ((before << 1) | int(not prediction.taken)) & (
            (1 << hybrid.gag.history_bits) - 1
        )
        assert hybrid.gag.history == expected
