"""Tests for the extended benchmark suite and workload interleaving."""

import pytest

from repro.errors import WorkloadError
from repro.sim.fast import FastEngine
from repro.workloads.interleave import interleave_profiles
from repro.workloads.profiles import (
    ALL_BENCHMARKS,
    BENCHMARKS,
    EXTENDED_BENCHMARKS,
    ThermalCategory,
    get_profile,
)


class TestExtendedSuite:
    def test_full_spec2000_count(self):
        assert len(ALL_BENCHMARKS) == 26
        assert len(EXTENDED_BENCHMARKS) == 8
        assert not set(EXTENDED_BENCHMARKS) & set(BENCHMARKS)

    def test_expected_names(self):
        assert set(EXTENDED_BENCHMARKS) == {
            "swim", "mgrid", "applu", "galgel", "ammp", "lucas",
            "sixtrack", "mcf",
        }

    def test_get_profile_reaches_extended(self):
        assert get_profile("mcf").name == "mcf"

    def test_mcf_is_memory_bound_low_ipc(self):
        mcf = get_profile("mcf")
        assert mcf.mean_ipc < 0.5
        assert mcf.category is ThermalCategory.LOW

    def test_extended_seeds_unique_across_all(self):
        seeds = [profile.seed for profile in ALL_BENCHMARKS.values()]
        assert len(set(seeds)) == len(seeds)

    def test_galgel_touches_threshold(self):
        result = FastEngine(get_profile("galgel")).run(
            instructions=1_500_000, warmup_instructions=1_000_000
        )
        assert result.max_temperature > 101.8

    def test_ammp_stays_cool(self):
        result = FastEngine(get_profile("ammp")).run(
            instructions=1_000_000, warmup_instructions=500_000
        )
        assert result.stress_fraction < 0.05


class TestInterleave:
    def test_phase_accounting_preserves_quanta(self):
        mix = interleave_profiles(
            (get_profile("gcc"), get_profile("gzip")),
            quantum_instructions=100_000,
            rounds=3,
        )
        assert mix.total_instructions == 3 * 2 * 100_000

    def test_phases_alternate_between_programs(self):
        mix = interleave_profiles(
            (get_profile("gcc"), get_profile("gzip")),
            quantum_instructions=100_000,
            rounds=2,
        )
        owners = [phase.name.split(":")[0] for phase in mix.phases]
        assert "gcc" in owners and "gzip" in owners
        # First quantum belongs to the first profile.
        assert owners[0] == "gcc"

    def test_phase_slices_carry_source_activity(self):
        mix = interleave_profiles(
            (get_profile("gcc"), get_profile("gzip")),
            quantum_instructions=50_000,
            rounds=1,
        )
        gcc_slices = [p for p in mix.phases if p.name.startswith("gcc:")]
        original = get_profile("gcc").phases[0]
        assert gcc_slices[0].activity == original.activity

    def test_category_is_hottest_member(self):
        mix = interleave_profiles((get_profile("gzip"), get_profile("gcc")))
        assert mix.category is ThermalCategory.EXTREME

    def test_default_rounds_cover_longest_profile(self):
        art = get_profile("art")  # 6.7 M instruction loop
        mix = interleave_profiles((art, get_profile("gzip")),
                                  quantum_instructions=1_000_000)
        assert mix.total_instructions >= art.total_instructions

    def test_rejects_single_profile(self):
        with pytest.raises(WorkloadError):
            interleave_profiles((get_profile("gcc"),))

    def test_rejects_nonpositive_quantum(self):
        with pytest.raises(WorkloadError):
            interleave_profiles(
                (get_profile("gcc"), get_profile("gzip")),
                quantum_instructions=0,
            )

    def test_short_quanta_time_average_the_heat(self):
        # The X2 phenomenon: fine-grained interleaving with a cool
        # program suppresses the hot program's emergencies.
        fine = interleave_profiles(
            (get_profile("gcc"), get_profile("gzip")),
            quantum_instructions=100_000,
        )
        result = FastEngine(fine).run(
            instructions=2_000_000, warmup_instructions=500_000
        )
        assert result.emergency_fraction < 0.01

    def test_coarse_quanta_inherit_the_heat(self):
        coarse = interleave_profiles(
            (get_profile("gcc"), get_profile("gzip")),
            quantum_instructions=2_000_000,
        )
        result = FastEngine(coarse).run(
            instructions=3_000_000, warmup_instructions=500_000
        )
        assert result.emergency_fraction > 0.1


class TestSensorPlacement:
    def test_missing_hot_spot_sensor_breaks_dtm(self):
        from repro.dtm.policies import make_policy

        covered = FastEngine(
            get_profile("gcc"),
            policy=make_policy("pid"),
            monitored_blocks=("regfile",),
        ).run(instructions=1_500_000)
        blind = FastEngine(
            get_profile("gcc"),
            policy=make_policy("pid"),
            monitored_blocks=("lsq", "dcache"),
        ).run(instructions=1_500_000)
        assert covered.emergency_fraction == 0.0
        assert blind.emergency_fraction > 0.1

    def test_empty_monitored_list_rejected(self):
        from repro.errors import SimulationError

        with pytest.raises(SimulationError):
            FastEngine(get_profile("gcc"), monitored_blocks=())

    def test_energy_accounting_positive(self):
        result = FastEngine(get_profile("gzip")).run(instructions=500_000)
        assert result.energy_joules > 0
        assert result.energy_per_instruction > 0
        # Sanity: energy == mean power * time.
        expected = result.mean_chip_power * result.cycles / 1.5e9
        assert result.energy_joules == pytest.approx(expected, rel=1e-6)
