"""Smoke + correctness tests for the experiment drivers.

Static experiments are checked for exact content; dynamic ones run at
quick budgets and are checked for structure and the key qualitative
outcome each one exists to demonstrate.
"""

import pytest

from repro.experiments import ALL_EXPERIMENTS
from repro.experiments import (
    calibration_fast_engine,
    figure1_control_loop,
    figure2_package,
    figure3_network_simplification,
    table1_duality,
    table2_config,
    table3_rc,
)
from repro.experiments.reporting import ExperimentResult, ascii_chart, format_table
from repro.errors import ExperimentError


class TestReporting:
    def test_format_table_alignment(self):
        rows = [{"a": 1.5, "b": "x"}, {"a": 20.25, "b": "yy"}]
        text = format_table(rows, (("a", "A", ".2f"), ("b", "B", None)))
        lines = text.splitlines()
        assert len(lines) == 4  # header, rule, two rows
        assert "20.25" in lines[3]

    def test_format_table_missing_key_dash(self):
        text = format_table([{"a": 1}], (("a", "A", None), ("b", "B", None)))
        assert "-" in text.splitlines()[-1]

    def test_empty_table_rejected(self):
        with pytest.raises(ExperimentError):
            format_table([], (("a", "A", None),))

    def test_ascii_chart_renders_all_series(self):
        chart = ascii_chart({"up": [0, 1, 2, 3], "down": [3, 2, 1, 0]},
                            height=5, width=20)
        assert "*" in chart and "o" in chart
        assert "up" in chart and "down" in chart

    def test_ascii_chart_constant_series(self):
        chart = ascii_chart({"flat": [5.0, 5.0, 5.0]}, height=4, width=10)
        assert "flat" in chart

    def test_ascii_heatmap_shades_gradient(self):
        import numpy as np

        from repro.experiments.reporting import ascii_heatmap

        field = np.linspace(100.0, 102.0, 16).reshape(4, 4)
        rendered = ascii_heatmap(field, low=100.0, high=102.0)
        assert "@" in rendered  # hottest shade present
        assert " " in rendered  # coolest shade present
        assert "100.00" in rendered and "102.00" in rendered

    def test_ascii_heatmap_downsamples_large_fields(self):
        import numpy as np

        from repro.experiments.reporting import ascii_heatmap

        field = np.full((200, 200), 101.0)
        rendered = ascii_heatmap(field, max_size=20, legend=False)
        assert len(rendered.splitlines()) <= 40

    def test_ascii_heatmap_rejects_1d(self):
        from repro.experiments.reporting import ascii_heatmap

        with pytest.raises(ExperimentError):
            ascii_heatmap([1.0, 2.0, 3.0])

    def test_experiment_result_str(self):
        result = ExperimentResult("T0", "demo", [{"a": 1}], "body", notes="n")
        text = str(result)
        assert "T0" in text and "demo" in text and "body" in text and "n" in text


class TestStaticExperiments:
    def test_table1_has_five_rows(self):
        assert len(table1_duality.run().rows) == 5

    def test_table2_mentions_ruu_and_l2(self):
        text = table2_config.run().text
        assert "80-RUU" in text
        assert "2 MB" in text

    def test_table3_chip_row(self):
        rows = table3_rc.run().rows
        assert rows[-1]["structure"] == "chip"
        assert rows[-1]["r_k_per_w"] == pytest.approx(0.34)
        # Block RCs in the paper's range.
        for row in rows[:-1]:
            assert 10e-6 < row["rc_seconds"] < 1000e-6

    def test_figure2_reproduces_worked_example(self):
        result = figure2_package.run(duration_s=400.0)
        row = result.rows[0]
        assert row["steady_die_c"] == pytest.approx(77.0)
        assert row["simulated_die_c"] == pytest.approx(77.0, abs=0.5)

    def test_figure3_simplification_error_small(self):
        result = figure3_network_simplification.run()
        assert result.extras["worst_deviation_k"] < 0.1

    def test_all_experiments_registered(self):
        assert len(ALL_EXPERIMENTS) == 38

    def test_all_experiments_importable_with_run(self):
        import importlib

        for name in ALL_EXPERIMENTS:
            module = importlib.import_module(f"repro.experiments.{name}")
            assert callable(module.run), name


class TestDynamicExperiments:
    def test_figure1_pid_controls_step(self):
        result = figure1_control_loop.run(samples=600)
        row = result.rows[0]
        assert not row["emergency"]
        assert row["overshoot_k"] < 0.1
        assert abs(row["final_temp_c"] - row["setpoint_c"]) < 0.05

    def test_calibration_quick(self):
        # Quick mode uses a short warmup, so the full-duty IPC is still
        # partially cold and the error bound is loose; the benchmark
        # harness asserts the tight full-budget calibration.
        result = calibration_fast_engine.run(quick=True)
        assert result.extras["worst_error"] < 0.35
        for row in result.rows:
            assert 0.0 < row["detailed_relative"] <= 1.0 + 1e-9
