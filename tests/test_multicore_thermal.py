"""Tests for the vectorized N-core thermal model."""

import numpy as np
import pytest

from repro.errors import ThermalModelError
from repro.multicore.floorplan import MulticoreFloorplan
from repro.multicore.thermal import MulticoreThermalModel
from repro.thermal.lumped import LumpedThermalModel


def make_model(n_cores=4, coupling_scale=1.0, **kwargs):
    tiling = MulticoreFloorplan.tile(
        n_cores=n_cores, coupling_scale=coupling_scale
    )
    return MulticoreThermalModel(tiling, **kwargs)


class TestBasics:
    def test_shape_and_start(self):
        model = make_model(4)
        assert model.shape == (4, 7)
        assert np.all(model.temperatures == 100.0)

    def test_initial_temperature_override(self):
        model = make_model(2, initial_temperature=60.0)
        assert np.all(model.temperatures == 60.0)
        model.advance(np.ones(model.shape), 1000)
        model.reset()
        assert np.all(model.temperatures == 60.0)

    def test_wrong_power_shape_rejected(self):
        model = make_model(4)
        with pytest.raises(ThermalModelError):
            model.advance(np.zeros((3, 7)), 1000)
        with pytest.raises(ThermalModelError):
            model.steady_state(np.zeros(7))

    def test_non_positive_cycles_rejected(self):
        model = make_model(2)
        with pytest.raises(ThermalModelError):
            model.advance(np.zeros(model.shape), 0)

    def test_unstable_cycle_time_rejected(self):
        model = make_model(2, cycle_time=1.0)
        with pytest.raises(ThermalModelError, match="unstable"):
            model.step_cycle(np.zeros(model.shape))

    def test_hottest_core_tracking(self):
        model = make_model(4)
        powers = np.zeros(model.shape)
        powers[2] = 8.0
        model.advance(powers, 200_000)
        assert model.hottest_core == 2
        assert model.core_max_temperatures.argmax() == 2
        assert model.max_temperature == pytest.approx(
            model.core_temperatures(2).max()
        )


class TestZeroCoupling:
    def test_bit_identical_to_independent_models(self):
        model = make_model(4, coupling_scale=0.0)
        singles = [
            LumpedThermalModel(model.floorplan.core) for _ in range(4)
        ]
        rng = np.random.default_rng(7)
        for _ in range(10):
            powers = rng.uniform(0.0, 10.0, size=model.shape)
            model.advance(powers, 5_000)
            for core, single in enumerate(singles):
                single.advance(powers[core], 5_000)
        expected = np.stack([s.temperatures for s in singles])
        assert np.array_equal(model.temperatures, expected)

    def test_steady_state_is_single_core_formula(self):
        model = make_model(3, coupling_scale=0.0)
        powers = np.full(model.shape, 4.0)
        steady = model.steady_state(powers)
        resistances = np.array(
            [b.resistance for b in model.floorplan.core.blocks]
        )
        assert np.array_equal(steady, 100.0 + powers * resistances)

    def test_no_lateral_flow(self):
        model = make_model(4, coupling_scale=0.0)
        powers = np.zeros(model.shape)
        powers[0] = 10.0
        model.advance(powers, 500_000)
        assert np.all(model.lateral_core_powers() == 0.0)
        # The unpowered cores never move.
        assert np.all(model.temperatures[1:] == 100.0)


class TestLateralCoupling:
    def test_heat_flows_hot_to_cold(self):
        model = make_model(2)
        powers = np.zeros(model.shape)
        powers[0] = 10.0
        # The lateral term is quasi-static (frozen per interval), so
        # step in sampling-interval-sized chunks as the engine does.
        for _ in range(500):
            model.advance(powers, 1000)
        lateral = model.lateral_core_powers()
        assert lateral[0] < 0.0  # hot core loses heat sideways
        assert lateral[1] > 0.0  # cold core gains it
        assert lateral.sum() == pytest.approx(0.0, abs=1e-12)
        # The unpowered neighbor warms above the heatsink.
        assert model.core_max_temperatures[1] > 100.0

    def test_coupled_hot_core_runs_cooler(self):
        decoupled = make_model(2, coupling_scale=0.0)
        coupled = make_model(2, coupling_scale=1.0)
        powers = np.zeros((2, 7))
        powers[0] = 10.0
        for _ in range(1000):
            decoupled.advance(powers, 1000)
            coupled.advance(powers, 1000)
        assert (
            coupled.core_max_temperatures[0]
            < decoupled.core_max_temperatures[0]
        )

    def test_core_mean_is_capacitance_weighted(self):
        model = make_model(2)
        rng = np.random.default_rng(3)
        model._temps = rng.uniform(100.0, 110.0, size=model.shape)
        shares = model.floorplan.capacitance_shares()
        expected = model._temps @ shares
        assert np.allclose(model.core_mean_temperatures(), expected)

    def test_sample_update_views_consistent(self):
        model = make_model(2)
        powers = np.full(model.shape, 5.0)
        before = model.temperatures
        start, steady, end = model.sample_update(powers, 1000)
        assert np.array_equal(start, before)
        assert np.array_equal(end, model.temperatures)
        # end lies between start and steady elementwise.
        low = np.minimum(start, steady) - 1e-9
        high = np.maximum(start, steady) + 1e-9
        assert np.all(end >= low) and np.all(end <= high)


class TestEquilibrium:
    def test_matches_expanded_rc_network(self):
        tiling = MulticoreFloorplan.tile(n_cores=4, coupling_scale=1.0)
        model = MulticoreThermalModel(tiling)
        rng = np.random.default_rng(0)
        powers = rng.uniform(0.0, 8.0, size=model.shape)
        equilibrium = model.equilibrium(powers)
        network = tiling.to_rc_network(100.0)
        injected = {
            tiling.node_name(core, block.name): powers[core, index]
            for core in range(tiling.n_cores)
            for index, block in enumerate(tiling.core.blocks)
        }
        steady = network.steady_state(injected)
        expanded = np.array(
            [
                [
                    steady[tiling.node_name(core, block.name)]
                    for block in tiling.core.blocks
                ]
                for core in range(tiling.n_cores)
            ]
        )
        assert np.abs(equilibrium - expanded).max() < 0.02

    def test_zero_coupling_equilibrium_is_steady_state(self):
        model = make_model(3, coupling_scale=0.0)
        powers = np.full(model.shape, 6.0)
        assert np.allclose(
            model.equilibrium(powers), model.steady_state(powers)
        )

    def test_long_advance_converges_to_equilibrium(self):
        model = make_model(2)
        powers = np.zeros(model.shape)
        powers[0] = 8.0
        target = model.equilibrium(powers)
        for _ in range(2000):
            model.advance(powers, 100_000)
        assert np.abs(model.temperatures - target).max() < 0.01


class TestFractionAbove:
    def test_bounds_and_endpoint_consistency(self):
        model = make_model(3)
        rng = np.random.default_rng(11)
        powers = rng.uniform(0.0, 12.0, size=model.shape)
        start, steady, end = model.sample_update(powers, 1000)
        duration = 1000 / 1.5e9
        frac = model.fraction_above(start, steady, duration, 100.5)
        assert np.all(frac >= 0.0) and np.all(frac <= 1.0)
        both_above = (start > 100.5) & (end > 100.5)
        both_below = (start <= 100.5) & (end <= 100.5)
        assert np.all(frac[both_above] == 1.0)
        assert np.all(frac[both_below] == 0.0)

    def test_zero_duration_uses_start(self):
        model = make_model(2)
        start = np.full(model.shape, 103.0)
        steady = np.full(model.shape, 100.0)
        frac = model.fraction_above(start, steady, 0.0, 102.0)
        assert np.all(frac == 1.0)
