"""The atomic ``BENCH_sweep.json`` writer shared by every benchmark.

The receipt is a merge-by-section document several bench processes
append to; :mod:`benchmarks._receipt` must merge without dropping
sections it does not know about, survive torn files, and publish each
merge atomically (tempfile + ``os.replace``) so a reader -- or a
``kill -9`` -- never observes a partial document.
"""

from __future__ import annotations

import json
import os
import threading

import pytest

from benchmarks._receipt import receipt_path, update_receipt


def _read(path) -> dict:
    with open(path, encoding="utf-8") as handle:
        return json.load(handle)


class TestReceipt:
    def test_creates_a_fresh_receipt(self, tmp_path):
        path = tmp_path / "BENCH_sweep.json"
        update_receipt("kernel", {"speedup": 1.5}, path=str(path))
        data = _read(path)
        assert data["kernel"]["speedup"] == 1.5
        assert "generated" in data
        meta = data["kernel"]["_meta"]
        assert meta["cpu_count"] == os.cpu_count()
        assert set(meta) == {"measured", "cpu_count", "git_revision"}

    def test_merge_preserves_unknown_sections(self, tmp_path):
        path = tmp_path / "BENCH_sweep.json"
        path.write_text(
            json.dumps(
                {
                    "kernel": {"speedup": 1.4},
                    "some_future_section": {"anything": [1, 2, 3]},
                    "stray_top_level_key": "kept",
                }
            )
        )
        update_receipt("executor", {"speedup": 2.2}, path=str(path))
        data = _read(path)
        assert data["executor"]["speedup"] == 2.2
        # Sections this update did not report are byte-for-byte
        # untouched -- no retroactive _meta stamping.
        assert data["kernel"] == {"speedup": 1.4}
        assert data["some_future_section"] == {"anything": [1, 2, 3]}
        assert data["stray_top_level_key"] == "kept"

    def test_replaces_only_the_reported_section(self, tmp_path):
        path = tmp_path / "BENCH_sweep.json"
        update_receipt("kernel", {"speedup": 1.0}, path=str(path))
        update_receipt("kernel", {"speedup": 9.9}, path=str(path))
        assert _read(path)["kernel"]["speedup"] == 9.9

    def test_torn_receipt_is_tolerated(self, tmp_path):
        path = tmp_path / "BENCH_sweep.json"
        path.write_text('{"kernel": {"speedup"')  # a torn legacy write
        update_receipt("executor", {"speedup": 2.0}, path=str(path))
        assert _read(path)["executor"]["speedup"] == 2.0

    def test_no_partial_state_on_disk_after_update(self, tmp_path):
        """The only artifacts are the receipt and the lock file -- no
        leaked tempfiles, and the receipt parses whole."""
        path = tmp_path / "BENCH_sweep.json"
        update_receipt("a", {"x": 1}, path=str(path))
        update_receipt("b", {"y": 2}, path=str(path))
        assert sorted(p.name for p in tmp_path.iterdir()) == [
            "BENCH_sweep.json",
            "BENCH_sweep.json.lock",
        ]
        assert _read(path).keys() >= {"a", "b"}

    def test_concurrent_writers_never_drop_sections(self, tmp_path):
        path = tmp_path / "BENCH_sweep.json"
        sections = [f"section_{i}" for i in range(16)]
        threads = [
            threading.Thread(
                target=update_receipt, args=(name, {"i": i}, str(path))
            )
            for i, name in enumerate(sections)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        data = _read(path)
        for i, name in enumerate(sections):
            assert data[name]["i"] == i
            assert "_meta" in data[name]

    def test_path_env_override(self, tmp_path, monkeypatch):
        target = tmp_path / "custom.json"
        monkeypatch.setenv("BENCH_SWEEP_OUT", str(target))
        assert receipt_path() == str(target)
        update_receipt("kernel", {"speedup": 1.0})
        assert _read(target)["kernel"]["speedup"] == 1.0

    def test_default_path(self, monkeypatch):
        monkeypatch.delenv("BENCH_SWEEP_OUT", raising=False)
        assert receipt_path() == "BENCH_sweep.json"

    def test_meta_records_measurement_time_provenance(self, tmp_path):
        """Each section's _meta stamps the run that measured *it*, and a
        later merge never rewrites an earlier section's stamp."""
        import benchmarks._receipt as receipt_module

        path = tmp_path / "BENCH_sweep.json"
        update_receipt("kernel", {"speedup": 1.5}, path=str(path))
        first_meta = _read(path)["kernel"]["_meta"]
        assert first_meta["git_revision"] == receipt_module._git_revision()
        update_receipt("executor", {"speedup": 2.0}, path=str(path))
        data = _read(path)
        assert data["kernel"]["_meta"] == first_meta
        assert data["executor"]["_meta"]["measured"] == data["generated"]

    def test_legacy_top_level_cpu_count_is_dropped(self, tmp_path):
        path = tmp_path / "BENCH_sweep.json"
        path.write_text(
            json.dumps({"cpu_count": 999, "kernel": {"speedup": 1.0}})
        )
        update_receipt("executor", {"speedup": 2.0}, path=str(path))
        data = _read(path)
        assert "cpu_count" not in data
        assert data["executor"]["_meta"]["cpu_count"] == os.cpu_count()

    def test_git_revision_tolerates_no_git(self, monkeypatch):
        """Outside a checkout the stamp is None, never an exception."""
        import benchmarks._receipt as receipt_module

        def no_git(*args, **kwargs):
            raise OSError("git not found")

        monkeypatch.setattr(receipt_module.subprocess, "run", no_git)
        receipt_module._git_revision.cache_clear()
        try:
            assert receipt_module._git_revision() is None
        finally:
            receipt_module._git_revision.cache_clear()


@pytest.mark.skipif(os.name != "posix", reason="fork-based crash test")
class TestCrashSafety:
    def test_kill_during_write_leaves_a_parseable_receipt(self, tmp_path):
        """A writer ``os._exit``-ing mid-cycle (the moral equivalent of
        ``kill -9``) can lose its *own* update but never corrupts what
        was already published."""
        import benchmarks._receipt as receipt_module

        path = tmp_path / "BENCH_sweep.json"
        update_receipt("kernel", {"speedup": 1.5}, path=str(path))
        pid = os.fork()
        if pid == 0:  # child: die between merge and publish
            try:

                def exploding_replace(src, dst):
                    os._exit(9)

                receipt_module.os.replace = exploding_replace
                update_receipt("executor", {"speedup": 2.0}, path=str(path))
            finally:
                os._exit(9)
        _, status = os.waitpid(pid, 0)
        assert os.waitstatus_to_exitcode(status) == 9
        data = _read(path)  # parses whole: the old document survived
        assert data["kernel"]["speedup"] == 1.5
        assert "executor" not in data
