"""Trace retention: ring wraparound, decimation determinism, events."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TelemetryError
from repro.telemetry import EventLog, TraceEvent, TraceRecord, TraceRecorder


def _record(index: int) -> TraceRecord:
    return TraceRecord(index=index, cycle=1000 * (index + 1))


def _fill(recorder: TraceRecorder, count: int) -> None:
    for index in range(count):
        recorder.record(_record(index))


class TestRingMode:
    def test_keeps_last_capacity_records(self):
        recorder = TraceRecorder(capacity=8, mode="ring")
        _fill(recorder, 20)
        kept = [record.index for record in recorder.records()]
        assert kept == list(range(12, 20))

    def test_wraparound_preserves_emit_order(self):
        recorder = TraceRecorder(capacity=4, mode="ring")
        _fill(recorder, 7)  # head mid-buffer
        kept = [record.index for record in recorder.records()]
        assert kept == sorted(kept) == [3, 4, 5, 6]

    def test_under_capacity_keeps_everything(self):
        recorder = TraceRecorder(capacity=100, mode="ring")
        _fill(recorder, 5)
        assert len(recorder) == 5
        assert recorder.emitted == 5


class TestDecimateMode:
    def test_never_exceeds_capacity(self):
        recorder = TraceRecorder(capacity=16, mode="decimate")
        _fill(recorder, 1000)
        assert len(recorder) <= 16
        assert recorder.emitted == 1000

    def test_retains_whole_run_span(self):
        recorder = TraceRecorder(capacity=16, mode="decimate")
        _fill(recorder, 1000)
        kept = [record.index for record in recorder.records()]
        assert kept[0] == 0  # the run start survives every compaction
        # The tail is within one stride of the end.
        assert kept[-1] >= 1000 - recorder.stride

    def test_stride_doubles_and_indices_align(self):
        recorder = TraceRecorder(capacity=8, mode="decimate")
        _fill(recorder, 100)
        stride = recorder.stride
        assert stride >= 100 // 8
        assert stride & (stride - 1) == 0  # power of two
        assert all(r.index % stride == 0 for r in recorder.records())

    @given(count=st.integers(min_value=0, max_value=3000))
    @settings(max_examples=40, deadline=None)
    def test_determinism_pure_function_of_emit_sequence(self, count):
        """Two identical emit sequences retain identical records."""
        one = TraceRecorder(capacity=32, mode="decimate")
        two = TraceRecorder(capacity=32, mode="decimate")
        _fill(one, count)
        _fill(two, count)
        assert [r.index for r in one.records()] == [
            r.index for r in two.records()
        ]
        assert one.stride == two.stride

    @given(count=st.integers(min_value=1, max_value=3000))
    @settings(max_examples=40, deadline=None)
    def test_retained_indices_monotone_and_bounded(self, count):
        recorder = TraceRecorder(capacity=32, mode="decimate")
        _fill(recorder, count)
        kept = [record.index for record in recorder.records()]
        assert kept == sorted(set(kept))
        assert len(kept) <= 32


class TestEvents:
    def test_events_survive_decimation(self):
        """Discrete events are never dropped by sample retention."""
        recorder = TraceRecorder(capacity=4, mode="decimate")
        for index in range(500):
            recorder.record(_record(index))
            if index % 50 == 0:
                recorder.event("fault", index, "spike")
        assert len(recorder) <= 4
        assert len(recorder.events) == 10

    def test_event_log_bounded_with_drop_count(self):
        log = EventLog(capacity=3)
        for index in range(5):
            log.append(TraceEvent("fault", index))
        assert len(log) == 3
        assert log.dropped == 2

    def test_of_kind_filters(self):
        log = EventLog()
        log.append(TraceEvent("fault", 0))
        log.append(TraceEvent("failsafe_transition", 1))
        assert len(log.of_kind("fault")) == 1

    def test_clear_restarts_retention(self):
        recorder = TraceRecorder(capacity=8, mode="decimate")
        _fill(recorder, 100)
        recorder.clear()
        assert len(recorder) == 0
        assert recorder.stride == 1
        assert recorder.emitted == 0


class TestValidation:
    def test_capacity_floor(self):
        with pytest.raises(TelemetryError):
            TraceRecorder(capacity=1)

    def test_unknown_mode(self):
        with pytest.raises(TelemetryError):
            TraceRecorder(mode="reservoir")

    def test_event_log_capacity_positive(self):
        with pytest.raises(TelemetryError):
            EventLog(0)
