"""Tests for the suite sweep helpers."""

import pytest

from repro.sim.sweep import run_one, run_suite, suite_summary


class TestRunOne:
    def test_returns_named_result(self):
        result = run_one("gzip", "pid", instructions=300_000)
        assert result.benchmark == "gzip"
        assert result.policy == "pid"

    def test_history_flag(self):
        result = run_one("gzip", "none", instructions=300_000,
                         record_history=True)
        assert result.history is not None


class TestRunSuite:
    @pytest.fixture(scope="class")
    def results(self):
        return run_suite(
            policies=("pid",),
            benchmarks=("gzip", "mesa"),
            instructions=300_000,
        )

    def test_includes_baseline(self, results):
        assert ("gzip", "none") in results
        assert ("mesa", "none") in results

    def test_all_pairs_present(self, results):
        assert set(results) == {
            ("gzip", "none"), ("gzip", "pid"),
            ("mesa", "none"), ("mesa", "pid"),
        }

    def test_baseline_not_duplicated(self):
        results = run_suite(
            policies=("none", "pid"),
            benchmarks=("gzip",),
            instructions=200_000,
        )
        assert len(results) == 2

    def test_summary_statistics(self, results):
        summary = suite_summary(results, "pid")
        assert 0.0 < summary["mean_relative_ipc"] <= 1.0 + 1e-9
        assert summary["mean_emergency_fraction"] == 0.0

    def test_summary_of_absent_policy_is_zero(self, results):
        summary = suite_summary(results, "toggle1")
        assert summary["mean_relative_ipc"] == 0.0
