"""Tests for the suite sweep helpers."""

import pytest

from repro.errors import SimulationError
from repro.sim.sweep import run_one, run_suite, suite_summary


class TestRunOne:
    def test_returns_named_result(self):
        result = run_one("gzip", "pid", instructions=300_000)
        assert result.benchmark == "gzip"
        assert result.policy == "pid"

    def test_history_flag(self):
        result = run_one("gzip", "none", instructions=300_000,
                         record_history=True)
        assert result.history is not None


class TestRunSuite:
    @pytest.fixture(scope="class")
    def results(self):
        return run_suite(
            policies=("pid",),
            benchmarks=("gzip", "mesa"),
            instructions=300_000,
        )

    def test_includes_baseline(self, results):
        assert ("gzip", "none") in results
        assert ("mesa", "none") in results

    def test_all_pairs_present(self, results):
        assert set(results) == {
            ("gzip", "none"), ("gzip", "pid"),
            ("mesa", "none"), ("mesa", "pid"),
        }

    def test_baseline_not_duplicated(self):
        results = run_suite(
            policies=("none", "pid"),
            benchmarks=("gzip",),
            instructions=200_000,
        )
        assert len(results) == 2

    def test_summary_statistics(self, results):
        summary = suite_summary(results, "pid")
        assert 0.0 < summary["mean_relative_ipc"] <= 1.0 + 1e-9
        assert summary["mean_emergency_fraction"] == 0.0

    def test_summary_of_absent_policy_is_zero(self, results):
        summary = suite_summary(results, "toggle1")
        assert summary["mean_relative_ipc"] == 0.0


class TestInstructionValidation:
    """Regression: bad budgets used to reach the engine unchecked."""

    @pytest.mark.parametrize("bad", [0, -1, -2_000_000, 0.0])
    def test_non_positive_rejected(self, bad):
        with pytest.raises(SimulationError, match="positive"):
            run_one("gzip", "none", instructions=bad)

    @pytest.mark.parametrize("bad", [float("nan"), float("inf")])
    def test_non_finite_rejected(self, bad):
        with pytest.raises(SimulationError, match="positive finite"):
            run_one("gzip", "none", instructions=bad)

    def test_fractional_rejected(self):
        with pytest.raises(SimulationError, match="whole number"):
            run_one("gzip", "none", instructions=1000.5)

    def test_non_numeric_rejected(self):
        with pytest.raises(SimulationError, match="number"):
            run_one("gzip", "none", instructions="lots")

    def test_integral_float_accepted(self):
        result = run_one("gzip", "none", instructions=200_000.0)
        assert result.instructions > 0

    def test_run_suite_validates_before_any_run(self):
        with pytest.raises(SimulationError):
            run_suite(policies=("pid",), benchmarks=("gzip",),
                      instructions=-5)

    def test_default_is_an_int(self):
        from repro.sim.sweep import DEFAULT_INSTRUCTIONS
        assert isinstance(DEFAULT_INSTRUCTIONS, int)
