"""Unit tests for the failsafe DTM layer (repro.dtm.failsafe)."""

import math

import pytest

from repro.config import DTMConfig, FailsafeConfig
from repro.dtm.failsafe import FailsafeGuard, FailsafeState
from repro.dtm.manager import DTMManager
from repro.dtm.policies import NoDTMPolicy, OpenLoopDutyPolicy, make_policy
from repro.errors import ConfigError, FailsafeEngaged


def make_guard(**overrides) -> FailsafeGuard:
    defaults = dict(
        max_stale_samples=3,
        stuck_detection_samples=4,
        failsafe_temperature=101.9,
        failsafe_duty=0.0,
        fallback_duty=0.25,
        rearm_margin=0.2,
        rearm_samples=3,
    )
    defaults.update(overrides)
    return FailsafeGuard(FailsafeConfig(**defaults))


class TestFailsafeConfig:
    def test_validation(self):
        with pytest.raises(ConfigError):
            FailsafeConfig(min_plausible=50.0, max_plausible=10.0)
        with pytest.raises(ConfigError):
            FailsafeConfig(stuck_detection_samples=1)
        with pytest.raises(ConfigError):
            FailsafeConfig(max_stale_samples=0)
        with pytest.raises(ConfigError):
            FailsafeConfig(failsafe_duty=1.5)
        with pytest.raises(ConfigError):
            FailsafeConfig(fallback_duty=-0.1)
        with pytest.raises(ConfigError):
            FailsafeConfig(rearm_margin=-1.0)
        with pytest.raises(ConfigError):
            FailsafeConfig(rearm_samples=0)


class TestPlausibilityGate:
    def test_passes_plausible_readings(self):
        guard = make_guard()
        decision = guard.gate(101.0, 0)
        assert decision.measurement == 101.0
        assert decision.forced_duty is None
        assert decision.state is FailsafeState.NOMINAL

    def test_rejects_nan_and_holds_last_good(self):
        guard = make_guard()
        guard.gate(100.5, 0)
        decision = guard.gate(math.nan, 1)
        assert decision.measurement == 100.5
        assert guard.rejected_samples == 1

    def test_rejects_out_of_range(self):
        guard = make_guard(max_stale_samples=10)
        guard.gate(100.0, 0)
        for bad in (math.inf, -math.inf, 200.0, -50.0):
            decision = guard.gate(bad, 1)
            assert decision.measurement == 100.0

    def test_no_reading_before_first_good_sample(self):
        guard = make_guard()
        decision = guard.gate(math.nan, 0)
        assert decision.measurement is None
        assert decision.forced_duty is None

    def test_stuck_repeats_become_implausible(self):
        guard = make_guard(stuck_detection_samples=3, max_stale_samples=100)
        for index in range(10):
            decision = guard.gate(100.0, index)
        # After 3 identical repeats the reading is rejected.
        assert guard.rejected_samples == 10 - 3
        assert decision.measurement == 100.0  # held last-good

    def test_disabled_guard_is_passthrough(self):
        guard = FailsafeGuard(FailsafeConfig(enabled=False))
        decision = guard.gate(math.nan, 0)
        assert math.isnan(decision.measurement)
        assert decision.forced_duty is None
        assert guard.rejected_samples == 0


class TestWatchdog:
    def test_forces_min_duty_above_threshold(self):
        guard = make_guard()
        decision = guard.gate(101.95, 0)
        assert decision.state is FailsafeState.FAILSAFE
        assert decision.forced_duty == 0.0
        assert guard.engagements == 1
        assert guard.events and isinstance(guard.events[0], FailsafeEngaged)

    def test_hysteretic_rearm(self):
        guard = make_guard(rearm_samples=3, rearm_margin=0.2)
        guard.gate(101.95, 0)
        # Cooling but inside the hysteresis band: stays in failsafe.
        decision = guard.gate(101.8, 1)
        assert decision.state is FailsafeState.FAILSAFE
        # Three consecutive samples below threshold - margin re-arm.
        guard.gate(101.6, 2)
        guard.gate(101.6, 3)
        decision = guard.gate(101.6, 4)
        assert decision.state is FailsafeState.NOMINAL
        assert decision.forced_duty is None

    def test_rearm_streak_resets_on_hot_sample(self):
        guard = make_guard(rearm_samples=3, rearm_margin=0.2)
        guard.gate(101.95, 0)
        guard.gate(101.6, 1)
        guard.gate(101.6, 2)
        guard.gate(101.95, 3)  # hot again: streak resets
        guard.gate(101.6, 4)
        decision = guard.gate(101.6, 5)
        assert decision.state is FailsafeState.FAILSAFE


class TestDegradation:
    def test_degrades_after_stale_budget(self):
        guard = make_guard(max_stale_samples=3)
        guard.gate(100.0, 0)
        for index in range(1, 4):
            decision = guard.gate(math.nan, index)
            assert decision.state is FailsafeState.NOMINAL
        decision = guard.gate(math.nan, 4)
        assert decision.state is FailsafeState.DEGRADED
        assert decision.forced_duty == 0.25
        assert decision.measurement is None

    def test_degraded_rearms_after_recovery(self):
        guard = make_guard(max_stale_samples=1, rearm_samples=2)
        guard.gate(math.nan, 0)
        decision = guard.gate(math.nan, 1)
        assert decision.state is FailsafeState.DEGRADED
        guard.gate(100.0, 2)
        decision = guard.gate(100.1, 3)
        assert decision.state is FailsafeState.NOMINAL

    def test_failsafe_degrades_when_readings_die(self):
        guard = make_guard(max_stale_samples=2)
        guard.gate(101.95, 0)
        for index in range(1, 4):
            decision = guard.gate(math.nan, index)
        assert decision.state is FailsafeState.DEGRADED

    def test_event_log_is_bounded(self):
        guard = make_guard(max_stale_samples=1, rearm_samples=1, max_event_log=4)
        for index in range(0, 200, 2):
            guard.gate(math.nan, index)      # degrade
            guard.gate(math.nan, index + 1)
        assert len(guard.events) <= 4

    def test_reset_restores_nominal(self):
        guard = make_guard(max_stale_samples=1)
        guard.gate(math.nan, 0)
        guard.gate(math.nan, 1)
        guard.reset()
        assert guard.state is FailsafeState.NOMINAL
        assert guard.rejected_samples == 0
        assert not guard.events


class TestManagerIntegration:
    def test_manager_accepts_config_or_guard(self):
        manager = DTMManager(NoDTMPolicy(), failsafe=FailsafeConfig())
        assert isinstance(manager.failsafe, FailsafeGuard)
        guard = FailsafeGuard()
        manager = DTMManager(NoDTMPolicy(), failsafe=guard)
        assert manager.failsafe is guard
        assert DTMManager(NoDTMPolicy()).failsafe is None
        assert DTMManager(NoDTMPolicy()).failsafe_state is None

    def test_watchdog_overrides_policy_duty(self):
        config = FailsafeConfig(
            failsafe_temperature=101.5, failsafe_duty=0.0, rearm_samples=5
        )
        manager = DTMManager(NoDTMPolicy(), failsafe=config)
        duty, _ = manager.on_sample(101.9)
        assert duty == 0.0
        assert manager.failsafe_state is FailsafeState.FAILSAFE
        assert manager.failsafe_events

    def test_nan_never_reaches_policy(self):
        seen = []

        class RecordingPolicy(OpenLoopDutyPolicy):
            def decide(self, measurement):
                seen.append(measurement)
                return super().decide(measurement)

        manager = DTMManager(RecordingPolicy(duty=1.0), failsafe=FailsafeConfig())
        manager.on_sample(100.0)
        manager.on_sample(math.nan)
        assert seen == [100.0, 100.0]

    def test_degraded_runs_open_loop(self):
        config = FailsafeConfig(max_stale_samples=2, fallback_duty=0.25)
        manager = DTMManager(NoDTMPolicy(), failsafe=config)
        for _ in range(6):
            duty, _ = manager.on_sample(math.nan)
        assert manager.failsafe_state is FailsafeState.DEGRADED
        # 0.25 lands on a representable duty level (8 levels: 2/7 ~ 0.286).
        assert duty < 1.0

    def test_manager_reset_resets_guard_and_interrupts(self):
        config = FailsafeConfig(max_stale_samples=1)
        manager = DTMManager(
            make_policy("toggle1"), DTMConfig(use_interrupts=True),
            failsafe=config,
        )
        manager.on_sample(math.nan)
        manager.on_sample(math.nan)
        manager.on_sample(math.nan)
        manager.reset()
        assert manager.failsafe_state is FailsafeState.NOMINAL
        assert manager.interrupts.events == 0
        assert manager.interrupts.stall_cycles == 0
        assert manager.samples == 0
