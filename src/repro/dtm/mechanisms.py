"""DTM response mechanisms (paper Section 2).

The paper's evaluation vehicle is **fetch toggling**: every N cycles,
instruction fetch is disabled.  Generalized by the controllers, the
toggling rate becomes a duty cycle in [0, 1] quantized to eight evenly
spaced levels (Section 5.3).  Also provided, for completeness and the
extension experiments, are the other mechanisms Brooks and Martonosi
studied: fetch throttling, speculation control, and voltage/frequency
scaling.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError


class FetchToggling:
    """Quantized-duty fetch gate.

    ``set_output(u)`` maps a controller output in [0, 1] onto the
    nearest of ``levels`` evenly spaced duty values (0, 1/(L-1), ...,
    1).  Output 1 is fetch fully on; 0 is toggle1 (fetch fully off);
    0.5 is toggle2 (fetch every other cycle).  ``allows(cycle)``
    spreads the duty evenly over cycles with an error accumulator, so
    e.g. duty 3/7 admits fetch on 3 of every 7 cycles with no bursts.
    """

    def __init__(self, levels: int = 8) -> None:
        if levels < 2:
            raise ConfigError("need at least two duty levels")
        self.levels = levels
        self._duty = 1.0
        self._accumulator = 0.0

    @property
    def duty(self) -> float:
        """Current quantized duty cycle."""
        return self._duty

    def quantize(self, output: float) -> float:
        """Nearest representable duty for a raw controller output."""
        clamped = min(1.0, max(0.0, output))
        steps = self.levels - 1
        return round(clamped * steps) / steps

    def set_output(self, output: float) -> float:
        """Apply (quantized) controller output; returns the duty used."""
        self._duty = self.quantize(output)
        return self._duty

    def allows(self, cycle: int) -> bool:
        """True if instruction fetch may proceed this cycle."""
        self._accumulator += self._duty
        if self._accumulator >= 1.0 - 1e-12:
            self._accumulator -= 1.0
            return True
        return False

    def reset(self) -> None:
        """Fully re-enable fetch and clear the accumulator."""
        self._duty = 1.0
        self._accumulator = 0.0


class FetchThrottling:
    """Reduce instructions fetched per cycle without skipping cycles.

    The paper notes its weakness: per-*cycle* structures (branch
    predictor, I-cache) are still accessed every cycle, so some hot
    spots are not relieved.  The mechanism maps a duty in [0, 1] to a
    fetch-width limit.
    """

    def __init__(self, full_width: int = 4) -> None:
        if full_width <= 0:
            raise ConfigError("fetch width must be positive")
        self.full_width = full_width
        self.width_limit = full_width

    def set_output(self, output: float) -> int:
        """Apply controller output; returns the new width limit (>= 1)."""
        clamped = min(1.0, max(0.0, output))
        self.width_limit = max(1, round(clamped * self.full_width))
        return self.width_limit


class SpeculationControl:
    """Stop fetching past N unresolved branches (Section 2.1).

    Ineffective for well-predicted programs, as the paper observes --
    with few mispredictions the unresolved-branch count stays low and
    the mechanism rarely engages.
    """

    def __init__(self, max_levels: int = 8) -> None:
        if max_levels <= 0:
            raise ConfigError("max_levels must be positive")
        self.max_levels = max_levels
        self.branch_limit: int | None = None

    def set_output(self, output: float) -> int | None:
        """Map duty to an unresolved-branch limit (duty 1 = unlimited)."""
        clamped = min(1.0, max(0.0, output))
        if clamped >= 1.0:
            self.branch_limit = None
        else:
            self.branch_limit = max(1, round(clamped * self.max_levels))
        return self.branch_limit


@dataclass(frozen=True)
class DVFSOperatingPoint:
    """One voltage/frequency pair."""

    frequency_scale: float
    voltage_scale: float

    @property
    def power_scale(self) -> float:
        """Dynamic power scales as f * V^2."""
        return self.frequency_scale * self.voltage_scale**2

    @property
    def performance_scale(self) -> float:
        """Throughput scales with frequency (memory effects ignored)."""
        return self.frequency_scale


class DVFSScaling:
    """Voltage/frequency scaling with a re-synchronization stall.

    The paper sets these mechanisms aside (the resynchronization stall
    and mandatory policy delay made them inferior to toggling) but they
    are part of the Section 2 taxonomy and are exercised by the
    mechanism-comparison extension experiment.
    """

    DEFAULT_POINTS = (
        DVFSOperatingPoint(1.0, 1.0),
        DVFSOperatingPoint(0.875, 0.95),
        DVFSOperatingPoint(0.75, 0.9),
        DVFSOperatingPoint(0.625, 0.85),
        DVFSOperatingPoint(0.5, 0.8),
    )

    def __init__(
        self,
        points: tuple[DVFSOperatingPoint, ...] = DEFAULT_POINTS,
        resync_cycles: int = 15_000,
    ) -> None:
        if not points:
            raise ConfigError("need at least one operating point")
        if resync_cycles < 0:
            raise ConfigError("resync_cycles must be non-negative")
        self.points = tuple(
            sorted(points, key=lambda p: p.frequency_scale, reverse=True)
        )
        self.resync_cycles = resync_cycles
        self._index = 0
        self.transitions = 0

    @property
    def current(self) -> DVFSOperatingPoint:
        """The active operating point."""
        return self.points[self._index]

    def set_output(self, output: float) -> tuple[DVFSOperatingPoint, int]:
        """Select the point for a duty-like output; returns (point, stall).

        Output 1 selects full speed; lower outputs select slower
        points.  Changing points costs ``resync_cycles`` of stall.
        """
        clamped = min(1.0, max(0.0, output))
        index = min(
            len(self.points) - 1, round((1.0 - clamped) * (len(self.points) - 1))
        )
        stall = 0
        if index != self._index:
            self._index = index
            self.transitions += 1
            stall = self.resync_cycles
        return self.current, stall
