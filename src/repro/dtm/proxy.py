"""Boxcar power-average proxies for temperature (paper Section 6).

Prior work (Brooks & Martonosi) used a moving ("boxcar") average of
power dissipation over the last W cycles as a proxy for temperature.
The paper compares that proxy -- per structure and chip-wide, with
10 K- and 500 K-cycle windows -- against its direct RC temperature
model, counting **missed emergencies** (cycles the RC model says are in
emergency but the proxy is not triggered) and **false triggers**
(cycles the proxy is triggered but the true temperature is below the
trigger level).

For a structure, the equivalent average-power trigger of a temperature
trigger ``T_trig`` is the power that holds the block there in steady
state: ``P_trig = (T_trig - T_sink) / R`` (Section 6); chip-wide, the
paper uses a 47 W trigger.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.errors import ConfigError


class BoxcarPowerProxy:
    """Moving average of power over a window of cycles.

    Updates may carry multi-cycle granularity (the fast engine feeds
    one update per sampling interval): ``update(power, cycles)`` adds a
    constant-power segment; the window is maintained in cycles.
    """

    def __init__(self, window_cycles: int, trigger_power: float) -> None:
        if window_cycles <= 0:
            raise ConfigError("window must be positive")
        self.window_cycles = window_cycles
        self.trigger_power = trigger_power
        self._segments: deque[tuple[int, float]] = deque()  # (cycles, power)
        self._cycles_in_window = 0
        self._weighted_sum = 0.0

    def update(self, power: float, cycles: int = 1) -> float:
        """Add a constant-power segment; returns the new average."""
        if cycles <= 0:
            raise ConfigError("cycles must be positive")
        self._segments.append((cycles, power))
        self._cycles_in_window += cycles
        self._weighted_sum += power * cycles
        while self._cycles_in_window > self.window_cycles and self._segments:
            old_cycles, old_power = self._segments[0]
            excess = self._cycles_in_window - self.window_cycles
            if old_cycles <= excess:
                self._segments.popleft()
                self._cycles_in_window -= old_cycles
                self._weighted_sum -= old_power * old_cycles
            else:
                self._segments[0] = (old_cycles - excess, old_power)
                self._cycles_in_window -= excess
                self._weighted_sum -= old_power * excess
        return self.average

    @property
    def average(self) -> float:
        """Current boxcar average power [W]."""
        if not self._cycles_in_window:
            return 0.0
        return self._weighted_sum / self._cycles_in_window

    @property
    def triggered(self) -> bool:
        """True when the average exceeds the trigger power."""
        return self.average > self.trigger_power

    def reset(self) -> None:
        """Empty the window."""
        self._segments.clear()
        self._cycles_in_window = 0
        self._weighted_sum = 0.0


@dataclass
class ProxyComparison:
    """Accumulates proxy-vs-RC disagreement counts (Tables 9-10)."""

    total_cycles: int = 0
    emergency_cycles: float = 0.0
    proxy_trigger_cycles: float = 0.0
    missed_emergency_cycles: float = 0.0
    false_trigger_cycles: float = 0.0
    _details: dict[str, float] = field(default_factory=dict)

    def record(
        self,
        cycles: int,
        emergency_fraction: float,
        proxy_triggered: bool,
        true_above_trigger_fraction: float,
    ) -> None:
        """Record one constant-conditions segment.

        ``emergency_fraction`` is the fraction of the segment the RC
        model says is in emergency; ``true_above_trigger_fraction`` the
        fraction the true temperature exceeds the proxy's intended
        trigger level.
        """
        self.total_cycles += cycles
        emergency = emergency_fraction * cycles
        self.emergency_cycles += emergency
        if proxy_triggered:
            self.proxy_trigger_cycles += cycles
            self.false_trigger_cycles += (1.0 - true_above_trigger_fraction) * cycles
        else:
            self.missed_emergency_cycles += emergency

    @property
    def missed_emergency_rate(self) -> float:
        """Missed-emergency cycles as a fraction of all cycles."""
        return self.missed_emergency_cycles / self.total_cycles if self.total_cycles else 0.0

    @property
    def false_trigger_rate(self) -> float:
        """False-trigger cycles as a fraction of all cycles."""
        return self.false_trigger_cycles / self.total_cycles if self.total_cycles else 0.0

    @property
    def missed_fraction_of_emergencies(self) -> float:
        """Fraction of true emergency cycles the proxy failed to see."""
        if not self.emergency_cycles:
            return 0.0
        return self.missed_emergency_cycles / self.emergency_cycles
