"""DTM policies: who decides the fetch-toggling duty (Sections 2-3, 5.3).

All policies share one interface: ``decide(measurement)`` maps the
hottest sensed temperature to a fetch duty in [0, 1].  They differ in
*when* they are consulted and *what* they cost:

* **non-CT policies** (toggle1, toggle2) follow Brooks & Martonosi's
  design: a trigger engages a fixed-strength response, which must then
  stay in place for a *policy delay* before the thermal condition is
  re-checked (optionally via a 250-cycle interrupt per transition).
  Their ``check_interval_samples`` is therefore large.
* **M**, the paper's hand-built adaptive scheme, runs in hardware every
  sampling interval and sets the toggling rate to the percentage error
  over the [100, 102] degC band.
* **CT policies** (P / PD / PI / PID) run in dedicated hardware every
  sampling interval (1000 cycles), with gains tuned in the Laplace
  domain against the thermal plant, a clamped sensor range around the
  setpoint, and anti-windup per Section 3.3.
"""

from __future__ import annotations

import math

from repro import units
from repro.config import DTMConfig
from repro.control.pid import AntiWindup, PIDController
from repro.control.plant import dtm_plant
from repro.control.tuning import tune
from repro.dtm.triggers import TriggerComparator
from repro.errors import ConfigError
from repro.thermal.floorplan import Floorplan


class NoDTMPolicy:
    """The baseline: fetch always fully enabled."""

    name = "none"
    check_interval_samples = 1
    is_interrupt_driven = False

    def decide(self, measurement: float) -> float:
        """Always full duty."""
        return 1.0

    def reset(self) -> None:
        """Stateless."""


class FixedTogglePolicy:
    """Brooks & Martonosi's fixed-response toggling (toggle1 / toggle2).

    When the trigger fires, the duty drops to ``engaged_duty`` (0 for
    toggle1, 0.5 for toggle2) and stays there until the next check,
    one policy delay later, finds the temperature back below trigger.
    """

    is_interrupt_driven = True

    def __init__(
        self,
        engaged_duty: float,
        trigger: float,
        check_interval_samples: int,
        name: str | None = None,
    ) -> None:
        if not 0.0 <= engaged_duty < 1.0:
            raise ConfigError("engaged_duty must be in [0, 1)")
        if check_interval_samples <= 0:
            raise ConfigError("check_interval_samples must be positive")
        self.engaged_duty = engaged_duty
        self.comparator = TriggerComparator(trigger)
        self.check_interval_samples = check_interval_samples
        self.name = name if name is not None else f"toggle@{engaged_duty:g}"

    @property
    def engaged(self) -> bool:
        """True while the response is active."""
        return self.comparator.engaged

    def decide(self, measurement: float) -> float:
        """Fixed-strength response while above trigger."""
        engaged = self.comparator.update(measurement)
        return self.engaged_duty if engaged else 1.0

    def reset(self) -> None:
        """Disengage and clear event counters."""
        self.comparator.engaged = False
        self.comparator.engage_events = 0
        self.comparator.disengage_events = 0


class OpenLoopDutyPolicy:
    """A constant-duty open-loop policy (robustness extension).

    Ignores the measurement entirely and always commands ``duty``.
    This is the toggle1-style fallback the failsafe layer degrades to
    when the sensor becomes untrusted (:mod:`repro.dtm.failsafe`); it
    is also a useful worst-case baseline -- the performance an operator
    pays for running blind at a conservative duty.
    """

    is_interrupt_driven = False
    check_interval_samples = 1

    def __init__(self, duty: float = 0.25, name: str | None = None) -> None:
        if not 0.0 <= duty <= 1.0:
            raise ConfigError("open-loop duty must be in [0, 1]")
        self.duty = duty
        self.name = name if name is not None else f"fallback@{duty:g}"

    def decide(self, measurement: float) -> float:
        """Constant duty, whatever the sensor says."""
        return self.duty

    def reset(self) -> None:
        """Stateless."""


class ManualProportionalPolicy:
    """The paper's hand-built scheme M (Section 5.3).

    Sets the toggling rate equal to the percentage error over
    [band_low, band_high]: at or below ``band_low`` fetch runs free; at
    ``(band_low + band_high) / 2`` the pipeline toggles every other
    cycle (toggle2); at or above ``band_high`` fetch stops.
    """

    is_interrupt_driven = False
    check_interval_samples = 1

    def __init__(
        self, band_low: float = 100.0, band_high: float = 102.0, name: str = "m"
    ) -> None:
        if band_high <= band_low:
            raise ConfigError("band_high must exceed band_low")
        self.band_low = band_low
        self.band_high = band_high
        self.name = name

    def decide(self, measurement: float) -> float:
        """Duty = 1 - percentage error over the band."""
        error_fraction = (measurement - self.band_low) / (
            self.band_high - self.band_low
        )
        return 1.0 - min(1.0, max(0.0, error_fraction))

    def reset(self) -> None:
        """Stateless."""


class ControlTheoreticPolicy:
    """P / PD / PI / PID feedback control of the toggling rate.

    The sensor reports temperatures clamped to
    ``setpoint +/- sensor_halfrange`` (the paper's "sensor range"); the
    trigger threshold above which toggling starts to engage is the
    bottom of that range.
    """

    is_interrupt_driven = False
    check_interval_samples = 1

    def __init__(
        self,
        controller: PIDController,
        setpoint: float,
        sensor_halfrange: float,
        name: str,
    ) -> None:
        if sensor_halfrange <= 0:
            raise ConfigError("sensor_halfrange must be positive")
        controller.setpoint = setpoint
        self.controller = controller
        self.setpoint = setpoint
        self.sensor_halfrange = sensor_halfrange
        self.name = name

    @property
    def trigger(self) -> float:
        """Temperature above which toggling starts to engage."""
        return self.setpoint - self.sensor_halfrange

    def decide(self, measurement: float) -> float:
        """One controller update on the range-clamped measurement."""
        low = self.setpoint - self.sensor_halfrange
        high = self.setpoint + self.sensor_halfrange
        clamped = min(high, max(low, measurement))
        return self.controller.update(clamped)

    def reset(self) -> None:
        """Clear controller state (integral, derivative history)."""
        self.controller.reset()


class PredictivePolicy:
    """One-step model-predictive control of the toggling rate (extension).

    Where the PID treats the plant as a black box, this policy *uses*
    the thermal-RC model the paper builds: each sample it

    1. infers the block's current power from the last two temperature
       samples (inverting the exponential update
       ``T1 = S + (T0 - S) * exp(-h/tau)`` for the steady target S and
       hence ``P = (S - T_sink) / R``);
    2. estimates the workload's power-per-duty slope from the duty it
       commanded last sample; and
    3. commands the duty whose steady state is the setpoint,
       ``duty = (P_target - P_idle) / slope``.

    Because tau >> h, aiming at the steady state is an aggressive but
    stable strategy (temperature moves a tiny fraction of the way per
    sample).  The slope estimate is smoothed exponentially so sample
    noise does not whip the actuator.
    """

    is_interrupt_driven = False
    check_interval_samples = 1

    def __init__(
        self,
        setpoint: float,
        resistance: float,
        time_constant: float,
        heatsink_temperature: float = 100.0,
        idle_power: float = 0.0,
        sample_seconds: float = units.SAMPLING_INTERVAL_SECONDS,
        smoothing: float = 0.3,
        name: str = "mpc",
    ) -> None:
        if resistance <= 0 or time_constant <= 0 or sample_seconds <= 0:
            raise ConfigError("plant parameters must be positive")
        if not 0.0 < smoothing <= 1.0:
            raise ConfigError("smoothing must be in (0, 1]")
        self.setpoint = setpoint
        self.resistance = resistance
        self.time_constant = time_constant
        self.heatsink_temperature = heatsink_temperature
        self.idle_power = idle_power
        self.sample_seconds = sample_seconds
        self.smoothing = smoothing
        self.name = name
        self._decay = math.exp(-sample_seconds / time_constant)
        self._previous_temp: float | None = None
        self._previous_duty = 1.0
        self._slope_estimate: float | None = None

    def decide(self, measurement: float) -> float:
        """One predictive step from the newest temperature sample."""
        if self._previous_temp is None:
            self._previous_temp = measurement
            return 1.0
        # 1. Infer the steady target the last interval was heading to.
        e = self._decay
        steady = (measurement - self._previous_temp * e) / (1.0 - e)
        current_power = max(
            0.0, (steady - self.heatsink_temperature) / self.resistance
        )
        # 2. Update the power-per-duty slope estimate.
        if self._previous_duty > 0.05:
            observed = max(
                1e-6, (current_power - self.idle_power) / self._previous_duty
            )
            if self._slope_estimate is None:
                self._slope_estimate = observed
            else:
                self._slope_estimate += self.smoothing * (
                    observed - self._slope_estimate
                )
        slope = self._slope_estimate
        self._previous_temp = measurement
        if slope is None or slope < 1e-6:
            self._previous_duty = 1.0
            return 1.0
        # 3. Aim the steady state at the setpoint.
        target_power = (
            self.setpoint - self.heatsink_temperature
        ) / self.resistance
        duty = (target_power - self.idle_power) / slope
        duty = min(1.0, max(0.0, duty))
        self._previous_duty = duty
        return duty

    def reset(self) -> None:
        """Forget temperature/slope history."""
        self._previous_temp = None
        self._previous_duty = 1.0
        self._slope_estimate = None


class AdjustableGainIntegralPolicy:
    """Integral control with an online-adapted gain (multicore extension).

    The shape of Rao et al.'s chip-level regulator: a pure integrator

    ``duty[k+1] = sat(duty[k] + K[k] * (setpoint - T[k]))``

    whose gain is *re-tuned every sample* against an online estimate of
    the plant's steady-state sensitivity ``S`` [degC of eventual rise
    per unit duty].  A fixed-gain integrator tuned for one workload is
    sluggish on a cool one and oscillatory on a hot one; normalizing
    the gain as ``K = rate / S`` makes the closed loop converge at the
    same fractional ``rate`` per sample regardless of how much heat a
    unit of duty currently buys.

    The sensitivity estimate reuses the thermal-RC inversion of
    :class:`PredictivePolicy`: from two consecutive temperature samples
    the steady target the last interval headed toward is
    ``S_target = (T1 - T0 * e) / (1 - e)`` with ``e = exp(-h / tau)``,
    so the observed sensitivity is ``(S_target - T_sink) /
    duty[k-1]``, smoothed exponentially and seeded from the worst-case
    block's peak temperature rise until real data arrives.
    """

    is_interrupt_driven = False
    check_interval_samples = 1

    def __init__(
        self,
        setpoint: float,
        sensitivity_prior: float,
        time_constant: float,
        heatsink_temperature: float = 100.0,
        rate: float = 0.2,
        gain_limits: tuple[float, float] = (0.01, 1.0),
        sample_seconds: float = units.SAMPLING_INTERVAL_SECONDS,
        smoothing: float = 0.2,
        name: str = "agi",
    ) -> None:
        if sensitivity_prior <= 0:
            raise ConfigError("sensitivity_prior must be positive")
        if time_constant <= 0 or sample_seconds <= 0:
            raise ConfigError("plant parameters must be positive")
        if not 0.0 < rate <= 1.0:
            raise ConfigError("rate must be in (0, 1]")
        if not 0.0 < gain_limits[0] <= gain_limits[1]:
            raise ConfigError("gain_limits must satisfy 0 < low <= high")
        if not 0.0 < smoothing <= 1.0:
            raise ConfigError("smoothing must be in (0, 1]")
        self.setpoint = setpoint
        self.sensitivity_prior = sensitivity_prior
        self.time_constant = time_constant
        self.heatsink_temperature = heatsink_temperature
        self.rate = rate
        self.gain_limits = gain_limits
        self.sample_seconds = sample_seconds
        self.smoothing = smoothing
        self.name = name
        self._decay = math.exp(-sample_seconds / time_constant)
        self.reset()

    @property
    def gain(self) -> float:
        """The adapted integral gain ``K = rate / S`` [duty per degC]."""
        low, high = self.gain_limits
        return min(high, max(low, self.rate / self._sensitivity))

    @property
    def sensitivity(self) -> float:
        """Current sensitivity estimate [degC per unit duty]."""
        return self._sensitivity

    def decide(self, measurement: float) -> float:
        """One adaptive-integral update from the newest sample."""
        if self._previous_temp is not None and self._previous_duty > 0.05:
            # Invert the exponential update for the steady target the
            # last interval was heading toward, then normalize by the
            # duty that produced it.
            e = self._decay
            steady = (measurement - self._previous_temp * e) / (1.0 - e)
            observed = (steady - self.heatsink_temperature) / (
                self._previous_duty
            )
            observed = max(1e-3, observed)
            self._sensitivity += self.smoothing * (
                observed - self._sensitivity
            )
        self._previous_temp = measurement
        error = self.setpoint - measurement
        duty = self._duty + self.gain * error
        duty = min(1.0, max(0.0, duty))
        self._duty = duty
        self._previous_duty = duty
        return duty

    def reset(self) -> None:
        """Full duty, prior sensitivity, no temperature history."""
        self._duty = 1.0
        self._previous_duty = 1.0
        self._previous_temp: float | None = None
        self._sensitivity = self.sensitivity_prior


class HierarchicalPolicy:
    """A realistic deployment: a cheap primary policy plus a last-ditch
    backup (paper Section 2.1: "a low-cost mechanism like toggling
    might be used with a high trigger threshold.  Only when temperature
    gets truly close to emergency would auxiliary mechanisms ... be
    employed").

    The primary policy (typically a CT controller) runs normally; if
    the temperature nevertheless climbs past ``backup_trigger`` the
    backup response (default: stop fetch entirely, standing in for an
    aggressive auxiliary mechanism) overrides it until the temperature
    falls back below ``backup_trigger - release_margin``.
    """

    is_interrupt_driven = False
    check_interval_samples = 1

    def __init__(
        self,
        primary,
        backup_trigger: float = 101.95,
        backup_duty: float = 0.0,
        release_margin: float = 0.15,
        name: str | None = None,
    ) -> None:
        if not 0.0 <= backup_duty < 1.0:
            raise ConfigError("backup_duty must be in [0, 1)")
        if release_margin < 0:
            raise ConfigError("release_margin must be non-negative")
        self.primary = primary
        self.backup = TriggerComparator(backup_trigger, hysteresis=release_margin)
        self.backup_duty = backup_duty
        self.backup_engagements = 0
        self.name = name if name is not None else f"hier({primary.name})"

    @property
    def backup_engaged(self) -> bool:
        """True while the backup response is overriding the primary."""
        return self.backup.engaged

    def decide(self, measurement: float) -> float:
        """Primary decision, overridden by the backup when triggered."""
        primary_duty = self.primary.decide(measurement)
        was_engaged = self.backup.engaged
        if self.backup.update(measurement):
            if not was_engaged:
                self.backup_engagements += 1
            return min(primary_duty, self.backup_duty)
        return primary_duty

    def reset(self) -> None:
        """Reset the primary and release the backup."""
        self.primary.reset()
        self.backup.engaged = False
        self.backup_engagements = 0


#: Names accepted by :func:`make_policy`, in canonical reporting order.
POLICY_NAMES: tuple[str, ...] = (
    "none",
    "toggle1",
    "toggle2",
    "m",
    "p",
    "pd",
    "pi",
    "pid",
    "mpc",
    "agi",
    "fallback",
)


def make_policy(
    kind: str,
    floorplan: Floorplan | None = None,
    dtm_config: DTMConfig | None = None,
    phase_margin_deg: float = 60.0,
    anti_windup: AntiWindup = AntiWindup.CONDITIONAL,
    setpoint: float | None = None,
):
    """Build a ready-to-run policy by name with the paper's parameters.

    ``setpoint`` overrides the configured setpoint for the CT policies
    (used by the setpoint-sweep experiment) and the trigger for the
    non-CT ones.
    """
    kind = kind.lower()
    floorplan = floorplan if floorplan is not None else Floorplan.default()
    config = dtm_config if dtm_config is not None else DTMConfig()
    if kind == "none":
        return NoDTMPolicy()

    check_samples = max(1, config.policy_delay // config.sampling_interval)
    if kind in ("toggle1", "toggle2"):
        duty = 0.0 if kind == "toggle1" else 0.5
        trigger = setpoint if setpoint is not None else config.nonct_trigger
        return FixedTogglePolicy(duty, trigger, check_samples, name=kind)
    if kind == "m":
        return ManualProportionalPolicy()
    if kind == "fallback":
        return OpenLoopDutyPolicy(name="fallback")
    if kind == "mpc":
        # Model-predictive extension: uses the worst-case block's R/tau
        # directly (the same plant knowledge the CT tuning uses).
        chosen_setpoint = setpoint if setpoint is not None else config.pid_setpoint
        worst = max(floorplan.blocks, key=lambda b: b.peak_temperature_rise)
        return PredictivePolicy(
            setpoint=chosen_setpoint,
            resistance=worst.resistance,
            time_constant=floorplan.longest_block_time_constant,
            idle_power=0.15 * worst.peak_power,
            sample_seconds=config.sampling_interval * units.CYCLE_TIME,
        )
    if kind == "agi":
        # Adjustable-gain integral (Rao et al.): seed the sensitivity
        # estimate from the worst-case block's peak temperature rise.
        chosen_setpoint = setpoint if setpoint is not None else config.pid_setpoint
        worst = max(floorplan.blocks, key=lambda b: b.peak_temperature_rise)
        return AdjustableGainIntegralPolicy(
            setpoint=chosen_setpoint,
            sensitivity_prior=worst.peak_temperature_rise,
            time_constant=floorplan.longest_block_time_constant,
            sample_seconds=config.sampling_interval * units.CYCLE_TIME,
        )

    if kind not in ("p", "pd", "pi", "pid"):
        raise ConfigError(f"unknown policy {kind!r}; known: {POLICY_NAMES}")

    plant = dtm_plant(
        floorplan,
        sampling_interval_cycles=config.sampling_interval,
    )
    gains = tune(plant, kind.upper(), phase_margin_deg=phase_margin_deg)
    sample_time = config.sampling_interval * units.CYCLE_TIME
    if kind in ("p", "pd"):
        chosen_setpoint = setpoint if setpoint is not None else config.p_setpoint
        halfrange = config.p_sensor_halfrange
        bias = 0.5  # mid-range output at zero error; no integral to trim
    else:
        chosen_setpoint = setpoint if setpoint is not None else config.pid_setpoint
        halfrange = config.pid_sensor_halfrange
        bias = 0.0
    controller = PIDController(
        kp=gains.kp,
        ki=gains.ki,
        kd=gains.kd,
        setpoint=chosen_setpoint,
        sample_time=sample_time,
        output_limits=(0.0, 1.0),
        bias=bias,
        anti_windup=anti_windup,
        integral_non_negative=True,
    )
    return ControlTheoreticPolicy(controller, chosen_setpoint, halfrange, name=kind)
