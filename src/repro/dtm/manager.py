"""DTM orchestration: sampling, policy checks, quantization, interrupts.

``DTMManager`` is the Figure 1 control loop minus the plant: every
sampling interval it reads the hottest monitored sensor, consults the
policy on the policy's own check cadence, quantizes the commanded duty
through the fetch-toggling actuator, and accounts interrupt stalls for
interrupt-driven policies.

Two optional robustness layers extend the paper's loop:

* a **failsafe guard** (:class:`~repro.dtm.failsafe.FailsafeGuard`)
  between the sensor and the policy -- plausibility gating, a thermal
  watchdog, and graceful degradation to an open-loop fallback duty;
* a pluggable **actuator**, so fault-injection wrappers
  (:class:`~repro.faults.actuator.FaultyActuator`) can corrupt the
  command path without the manager knowing.

When a :class:`~repro.telemetry.core.Telemetry` instance is attached,
the manager stages the controller-side half of each trace record
(gated measurement, error and P/I/D terms, pre/post-saturation output,
quantized duty, failsafe state) via ``record_control``; the engine
completes the record with the plant-side fields.  The default is the
null telemetry, which costs one boolean test per sample.
"""

from __future__ import annotations

import math

from repro.config import DTMConfig, FailsafeConfig
from repro.dtm.failsafe import FailsafeGuard, FailsafeState
from repro.dtm.mechanisms import FetchToggling
from repro.dtm.triggers import InterruptModel
from repro.telemetry.core import ensure_telemetry


class DTMManager:
    """Runs one policy against a stream of temperature samples."""

    def __init__(
        self,
        policy,
        dtm_config: DTMConfig | None = None,
        sensor=None,
        failsafe: FailsafeGuard | FailsafeConfig | None = None,
        actuator=None,
        telemetry=None,
    ) -> None:
        self.policy = policy
        self.config = dtm_config if dtm_config is not None else DTMConfig()
        self.actuator = (
            actuator
            if actuator is not None
            else FetchToggling(self.config.toggle_levels)
        )
        self.interrupts = InterruptModel(
            enabled=self.config.use_interrupts and policy.is_interrupt_driven,
            cost_cycles=self.config.interrupt_cost,
        )
        if isinstance(failsafe, FailsafeConfig):
            failsafe = FailsafeGuard(failsafe)
        self.failsafe = failsafe
        self._telemetry = ensure_telemetry(telemetry)
        if failsafe is not None and self._telemetry.enabled:
            failsafe.attach_telemetry(self._telemetry)
        self._sensor = sensor
        self._sample_index = 0
        self._raw_output = 1.0
        self.samples = 0
        self.engaged_samples = 0

    @property
    def duty(self) -> float:
        """Current quantized fetch duty."""
        return self.actuator.duty

    @property
    def sampling_interval(self) -> int:
        """Cycles between temperature samples."""
        return self.config.sampling_interval

    @property
    def failsafe_state(self) -> FailsafeState | None:
        """Guard state, or ``None`` when no failsafe layer is fitted."""
        return self.failsafe.state if self.failsafe is not None else None

    @property
    def failsafe_events(self) -> tuple:
        """Recorded :class:`~repro.errors.FailsafeEngaged` transitions.

        Returned as a tuple so callers cannot mutate the guard's
        internal log through this accessor (regression-tested).
        """
        return tuple(self.failsafe.events) if self.failsafe is not None else ()

    def _apply_output(self, output: float) -> int:
        """Drive the actuator; returns interrupt stall cycles (if any)."""
        previous_duty = self.actuator.duty
        new_duty = self.actuator.set_output(output)
        if new_duty != previous_duty and (
            (new_duty < 1.0) != (previous_duty < 1.0)
        ):
            return self.interrupts.on_transition()
        return 0

    def on_sample(self, max_temperature: float) -> tuple[float, int]:
        """Process one sampling instant.

        ``max_temperature`` is the hottest monitored block's true
        temperature; the sensor model (if any) perturbs it.  Returns
        ``(duty, stall_cycles)`` where ``stall_cycles`` is interrupt
        overhead to charge against execution.
        """
        measurement = (
            self._sensor.read(max_temperature)
            if self._sensor is not None
            else max_temperature
        )
        stall = 0
        if self.failsafe is not None:
            decision = self.failsafe.gate(measurement, self._sample_index)
            if decision.forced_duty is not None:
                # Watchdog / degraded mode: the guard owns the duty.
                # Keep the policy's state machine ticking on the last
                # good reading (when one exists) so integrators do not
                # restart cold at re-arm, but discard its command.
                if (
                    decision.measurement is not None
                    and self._sample_index % self.policy.check_interval_samples
                    == 0
                ):
                    self._raw_output = self.policy.decide(decision.measurement)
                stall = self._apply_output(decision.forced_duty)
                if self._telemetry.enabled:
                    self._note_control(decision.measurement, stall)
                self._finish_sample()
                return self.actuator.duty, stall
            measurement = decision.measurement
        if (
            measurement is not None
            and self._sample_index % self.policy.check_interval_samples == 0
        ):
            self._raw_output = self.policy.decide(measurement)
            stall = self._apply_output(self._raw_output)
        if self._telemetry.enabled:
            self._note_control(measurement, stall)
        self._finish_sample()
        return self.actuator.duty, stall

    def _note_control(self, measurement: float | None, stall: int) -> None:
        """Stage the controller half of this sample's trace record."""
        nan = math.nan
        controller = getattr(self.policy, "controller", None)
        terms = getattr(controller, "terms", None) if controller else None
        state = self.failsafe.state.value if self.failsafe is not None else ""
        if terms is not None:
            self._telemetry.record_control(
                sample_index=self._sample_index,
                measurement=nan if measurement is None else measurement,
                error=terms["error"],
                p_term=terms["proportional"],
                i_term=terms["integral"],
                d_term=terms["derivative"],
                pre_saturation=terms["unsaturated"],
                post_saturation=terms["output"],
                duty=self.actuator.duty,
                stall_cycles=stall,
                failsafe_state=state,
            )
        else:
            self._telemetry.record_control(
                sample_index=self._sample_index,
                measurement=nan if measurement is None else measurement,
                pre_saturation=self._raw_output,
                post_saturation=min(1.0, max(0.0, self._raw_output)),
                duty=self.actuator.duty,
                stall_cycles=stall,
                failsafe_state=state,
            )

    def _finish_sample(self) -> None:
        self._sample_index += 1
        self.samples += 1
        if self.actuator.duty < 1.0:
            self.engaged_samples += 1

    def reset(self) -> None:
        """Restore the manager, policy, and actuator to initial state."""
        self.policy.reset()
        self.actuator.reset()
        self._sample_index = 0
        self._raw_output = 1.0
        self.samples = 0
        self.engaged_samples = 0
        self.interrupts.reset()
        if self.failsafe is not None:
            self.failsafe.reset()
        if self._sensor is not None and hasattr(self._sensor, "reset"):
            self._sensor.reset()

    @property
    def engaged_fraction(self) -> float:
        """Fraction of samples with any toggling engaged."""
        return self.engaged_samples / self.samples if self.samples else 0.0
