"""DTM orchestration: sampling, policy checks, quantization, interrupts.

``DTMManager`` is the Figure 1 control loop minus the plant: every
sampling interval it reads the hottest monitored sensor, consults the
policy on the policy's own check cadence, quantizes the commanded duty
through the fetch-toggling actuator, and accounts interrupt stalls for
interrupt-driven policies.
"""

from __future__ import annotations

from repro.config import DTMConfig
from repro.dtm.mechanisms import FetchToggling
from repro.dtm.triggers import InterruptModel


class DTMManager:
    """Runs one policy against a stream of temperature samples."""

    def __init__(
        self,
        policy,
        dtm_config: DTMConfig | None = None,
        sensor=None,
    ) -> None:
        self.policy = policy
        self.config = dtm_config if dtm_config is not None else DTMConfig()
        self.actuator = FetchToggling(self.config.toggle_levels)
        self.interrupts = InterruptModel(
            enabled=self.config.use_interrupts and policy.is_interrupt_driven,
            cost_cycles=self.config.interrupt_cost,
        )
        self._sensor = sensor
        self._sample_index = 0
        self._raw_output = 1.0
        self.samples = 0
        self.engaged_samples = 0

    @property
    def duty(self) -> float:
        """Current quantized fetch duty."""
        return self.actuator.duty

    @property
    def sampling_interval(self) -> int:
        """Cycles between temperature samples."""
        return self.config.sampling_interval

    def on_sample(self, max_temperature: float) -> tuple[float, int]:
        """Process one sampling instant.

        ``max_temperature`` is the hottest monitored block's true
        temperature; the sensor model (if any) perturbs it.  Returns
        ``(duty, stall_cycles)`` where ``stall_cycles`` is interrupt
        overhead to charge against execution.
        """
        measurement = (
            self._sensor.read(max_temperature)
            if self._sensor is not None
            else max_temperature
        )
        stall = 0
        if self._sample_index % self.policy.check_interval_samples == 0:
            previous_duty = self.actuator.duty
            self._raw_output = self.policy.decide(measurement)
            new_duty = self.actuator.set_output(self._raw_output)
            if new_duty != previous_duty and (
                (new_duty < 1.0) != (previous_duty < 1.0)
            ):
                stall = self.interrupts.on_transition()
        self._sample_index += 1
        self.samples += 1
        if self.actuator.duty < 1.0:
            self.engaged_samples += 1
        return self.actuator.duty, stall

    def reset(self) -> None:
        """Restore the manager, policy, and actuator to initial state."""
        self.policy.reset()
        self.actuator.reset()
        self._sample_index = 0
        self._raw_output = 1.0
        self.samples = 0
        self.engaged_samples = 0
        self.interrupts.events = 0
        self.interrupts.stall_cycles = 0

    @property
    def engaged_fraction(self) -> float:
        """Fraction of samples with any toggling engaged."""
        return self.engaged_samples / self.samples if self.samples else 0.0
