"""Trigger comparators and the interrupt-cost model (Section 2.1).

A *trigger* fires when a sensed temperature crosses its threshold.
Non-CT policies engage/disengage on trigger state; crossing events can
be signaled either directly in hardware (the paper's assumption,
zero cost) or through OS interrupts (250 cycles per event).
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro import units


class TriggerComparator:
    """Threshold comparator with optional hysteresis.

    Engages when the measurement exceeds ``threshold``; disengages when
    it falls below ``threshold - hysteresis``.  Hysteresis avoids
    chattering right at the trigger level.
    """

    def __init__(self, threshold: float, hysteresis: float = 0.0) -> None:
        if hysteresis < 0:
            raise ConfigError("hysteresis must be non-negative")
        self.threshold = threshold
        self.hysteresis = hysteresis
        self.engaged = False
        self.engage_events = 0
        self.disengage_events = 0

    def update(self, measurement: float) -> bool:
        """Advance the comparator; returns the new engaged state."""
        if not self.engaged and measurement > self.threshold:
            self.engaged = True
            self.engage_events += 1
        elif self.engaged and measurement < self.threshold - self.hysteresis:
            self.engaged = False
            self.disengage_events += 1
        return self.engaged


class InterruptModel:
    """Accounts the pipeline stall cost of interrupt-driven DTM.

    Each engage or disengage event invokes an OS handler costing
    ``cost_cycles`` (250 in the paper).  With ``enabled=False`` (the
    paper's direct microarchitectural signal) every event is free.
    """

    def __init__(
        self,
        enabled: bool = False,
        cost_cycles: int = units.INTERRUPT_COST_CYCLES,
    ) -> None:
        if cost_cycles < 0:
            raise ConfigError("interrupt cost must be non-negative")
        self.enabled = enabled
        self.cost_cycles = cost_cycles
        self.events = 0
        self.stall_cycles = 0

    def on_transition(self) -> int:
        """Record one engage/disengage event; returns its stall cost."""
        self.events += 1
        if not self.enabled:
            return 0
        self.stall_cycles += self.cost_cycles
        return self.cost_cycles

    def reset(self) -> None:
        """Clear the event and stall counters."""
        self.events = 0
        self.stall_cycles = 0
