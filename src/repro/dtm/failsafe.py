"""Failsafe layer between the temperature sensor and the DTM policy.

The paper's control loop trusts its sensor completely.  A deployable
thermal manager cannot: a dropped reading fed into the PI controller
reads as "cold" (the range clamp maps ``NaN`` to the bottom of the
sensor range), driving the duty to 1 precisely when the chip may be
overheating.  :class:`FailsafeGuard` is a small state machine guarding
against that failure mode:

::

                 plausible reading >= T_failsafe
       NOMINAL ----------------------------------> FAILSAFE
         |  ^                                        |   ^
         |  | `rearm_samples` good readings          |   | reading >=
         |  | below T_failsafe - margin              |   | T_failsafe
         |  +----------------------------------------+   | again
         |                                               |
         | implausible (NaN / out-of-range / stuck)      |
         | for > `max_stale_samples` in a row            |
         v                                               |
       DEGRADED -----------------------------------------+
         (open-loop `fallback_duty`; re-arms after
          `rearm_samples` consecutive plausible readings)

* **NOMINAL** -- readings pass the plausibility gate and the policy is
  in control.  Implausible readings are replaced by the last good one
  (bounded hold).
* **FAILSAFE** -- the thermal watchdog saw the last good reading reach
  ``failsafe_temperature``; the duty is forced to ``failsafe_duty``
  until the temperature has stayed ``rearm_margin`` below the
  threshold for ``rearm_samples`` consecutive plausible samples.
* **DEGRADED** -- the sensor is untrusted (implausible past the
  staleness budget); the loop runs open-loop at ``fallback_duty``
  (toggle1-style graceful degradation) until readings recover.

Transitions are recorded on a bounded
:class:`~repro.telemetry.trace.EventLog` of structured
:class:`~repro.telemetry.trace.TraceEvent` entries (kind
``"failsafe_transition"``), and mirrored onto the shared
:class:`~repro.telemetry.core.Telemetry` event stream when one is
attached (see :meth:`FailsafeGuard.attach_telemetry`).  The historical
``events`` property remains as a thin compatibility shim that
materializes :class:`~repro.errors.FailsafeEngaged` objects from the
event log.
"""

from __future__ import annotations

import enum
import math

from repro.config import FailsafeConfig
from repro.errors import FailsafeEngaged
from repro.telemetry.core import NULL_TELEMETRY, ensure_telemetry
from repro.telemetry.trace import EventLog, TraceEvent

#: Two readings closer than this are "identical" for stuck detection.
_STUCK_EPSILON = 1e-9


class FailsafeState(enum.Enum):
    """Operating mode of the guarded DTM loop."""

    NOMINAL = "nominal"
    FAILSAFE = "failsafe"
    DEGRADED = "degraded"


class GateDecision:
    """Outcome of one guard step.

    ``measurement`` is the plausibility-gated reading to feed the
    policy (``None`` when no good reading exists yet); ``forced_duty``
    overrides the policy's command when not ``None``.
    """

    __slots__ = ("measurement", "forced_duty", "state")

    def __init__(
        self,
        measurement: float | None,
        forced_duty: float | None,
        state: FailsafeState,
    ) -> None:
        self.measurement = measurement
        self.forced_duty = forced_duty
        self.state = state


class FailsafeGuard:
    """The sensor plausibility gate + thermal watchdog state machine."""

    #: Core index stamped onto transition events in multicore runs;
    #: ``None`` (single-core) omits the field for old-trace compat.
    core: int | None = None

    def __init__(self, config: FailsafeConfig | None = None) -> None:
        self.config = config if config is not None else FailsafeConfig()
        #: Bounded log of ``"failsafe_transition"`` trace events -- the
        #: canonical record of this guard's state changes.
        self.event_log = EventLog(self.config.max_event_log)
        self._telemetry = NULL_TELEMETRY
        self.reset()

    def attach_telemetry(self, telemetry) -> None:
        """Mirror future transitions onto a shared telemetry stream."""
        self._telemetry = ensure_telemetry(telemetry)

    # -- state ---------------------------------------------------------------
    def reset(self) -> None:
        """Return to NOMINAL with no reading history."""
        self.state = FailsafeState.NOMINAL
        self.last_good: float | None = None
        self._previous_raw: float | None = None
        self._identical_streak = 0
        self._stale = 0
        self._rearm = 0
        self.rejected_samples = 0
        self.degraded_samples = 0
        self.failsafe_samples = 0
        self.engagements = 0
        self.event_log.clear()

    @property
    def events(self) -> list[FailsafeEngaged]:
        """Recorded transitions as :class:`FailsafeEngaged` objects.

        Compatibility shim over :attr:`event_log` (the storage moved to
        the telemetry event stream); the returned list is freshly built
        on every access, so mutating it cannot corrupt the guard.
        """
        return [
            FailsafeEngaged(
                event.reason,
                event.sample_index,
                event.data["state"],
                last_good=event.data.get("last_good"),
                duty=event.data.get("duty"),
            )
            for event in self.event_log
        ]

    # -- helpers -------------------------------------------------------------
    def _plausible(self, measurement: float) -> bool:
        """Physical-range + stuck-repeat plausibility check."""
        config = self.config
        if not math.isfinite(measurement):
            return False
        if not config.min_plausible <= measurement <= config.max_plausible:
            return False
        if (
            self._previous_raw is not None
            and abs(measurement - self._previous_raw) <= _STUCK_EPSILON
        ):
            self._identical_streak += 1
        else:
            self._identical_streak = 0
        return self._identical_streak < config.stuck_detection_samples

    def _record(
        self, reason: str, sample_index: int, duty: float | None = None
    ) -> None:
        data = {
            "state": self.state.value,
            "last_good": self.last_good,
            "duty": duty,
        }
        if self.core is not None:
            data["core"] = self.core
        self.event_log.append(
            TraceEvent(
                "failsafe_transition",
                sample_index,
                reason,
                dict(data),
            )
        )
        if self._telemetry.enabled:
            self._telemetry.event(
                "failsafe_transition",
                sample_index,
                reason,
                **data,
            )

    def _enter(self, state: FailsafeState, reason: str, index: int) -> None:
        self.state = state
        self._rearm = 0
        if state is not FailsafeState.NOMINAL:
            self.engagements += 1
        duty = None
        if state is FailsafeState.FAILSAFE:
            duty = self.config.failsafe_duty
        elif state is FailsafeState.DEGRADED:
            duty = self.config.fallback_duty
        self._record(reason, index, duty=duty)

    # -- the guard step ------------------------------------------------------
    def gate(self, measurement: float, sample_index: int) -> GateDecision:
        """Advance the state machine by one sensor sample."""
        config = self.config
        if not config.enabled:
            return GateDecision(measurement, None, self.state)

        plausible = self._plausible(measurement)
        if math.isfinite(measurement):
            self._previous_raw = measurement
        if plausible:
            self.last_good = measurement
            self._stale = 0
        else:
            self._stale += 1
            self.rejected_samples += 1

        if self.state is FailsafeState.NOMINAL:
            if self._stale > config.max_stale_samples:
                self._enter(
                    FailsafeState.DEGRADED,
                    f"readings implausible for {self._stale} samples",
                    sample_index,
                )
            elif (
                self.last_good is not None
                and self.last_good >= config.failsafe_temperature
            ):
                self._enter(
                    FailsafeState.FAILSAFE,
                    f"last good reading {self.last_good:.3f} degC reached "
                    f"the failsafe threshold",
                    sample_index,
                )

        elif self.state is FailsafeState.FAILSAFE:
            if self._stale > config.max_stale_samples:
                self._enter(
                    FailsafeState.DEGRADED,
                    f"readings implausible for {self._stale} samples "
                    f"while in failsafe",
                    sample_index,
                )
            elif (
                plausible
                and measurement
                < config.failsafe_temperature - config.rearm_margin
            ):
                self._rearm += 1
                if self._rearm >= config.rearm_samples:
                    self._enter(
                        FailsafeState.NOMINAL,
                        f"re-armed after {self._rearm} cool plausible "
                        f"samples",
                        sample_index,
                    )
            else:
                self._rearm = 0

        elif self.state is FailsafeState.DEGRADED:
            if plausible:
                self._rearm += 1
                if self._rearm >= config.rearm_samples:
                    self._enter(
                        FailsafeState.NOMINAL,
                        f"re-armed after {self._rearm} plausible samples",
                        sample_index,
                    )
            else:
                self._rearm = 0

        if self.state is FailsafeState.FAILSAFE:
            self.failsafe_samples += 1
            return GateDecision(
                self.last_good, config.failsafe_duty, self.state
            )
        if self.state is FailsafeState.DEGRADED:
            self.degraded_samples += 1
            return GateDecision(None, config.fallback_duty, self.state)
        return GateDecision(
            measurement if plausible else self.last_good, None, self.state
        )
