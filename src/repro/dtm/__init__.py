"""Dynamic thermal management (paper Sections 2, 3, 5.3, 6).

* :mod:`repro.dtm.mechanisms` -- the response mechanisms: fetch
  toggling (the paper's vehicle, with eight discrete duty levels),
  fetch throttling, speculation control, and voltage/frequency scaling.
* :mod:`repro.dtm.policies` -- who decides the response: fixed
  toggling (toggle1/toggle2), the hand-built proportional scheme M,
  and the control-theoretic P/PI/PD/PID policies.
* :mod:`repro.dtm.triggers` -- trigger thresholds, hysteresis, and the
  interrupt-cost model.
* :mod:`repro.dtm.proxy` -- the boxcar power-average proxy of prior
  work (Section 6 comparison).
* :mod:`repro.dtm.manager` -- orchestration: sampling, policy checks,
  quantization, interrupt accounting.
* :mod:`repro.dtm.failsafe` -- the failsafe layer: sensor plausibility
  gating, thermal watchdog, graceful open-loop degradation.
"""

from repro.dtm.failsafe import FailsafeGuard, FailsafeState
from repro.dtm.manager import DTMManager
from repro.dtm.mechanisms import (
    DVFSScaling,
    FetchThrottling,
    FetchToggling,
    SpeculationControl,
)
from repro.dtm.policies import (
    ControlTheoreticPolicy,
    FixedTogglePolicy,
    HierarchicalPolicy,
    ManualProportionalPolicy,
    NoDTMPolicy,
    OpenLoopDutyPolicy,
    POLICY_NAMES,
    PredictivePolicy,
    make_policy,
)
from repro.dtm.proxy import BoxcarPowerProxy, ProxyComparison
from repro.dtm.triggers import InterruptModel, TriggerComparator

__all__ = [
    "BoxcarPowerProxy",
    "ControlTheoreticPolicy",
    "DTMManager",
    "DVFSScaling",
    "FailsafeGuard",
    "FailsafeState",
    "FetchThrottling",
    "FetchToggling",
    "FixedTogglePolicy",
    "HierarchicalPolicy",
    "InterruptModel",
    "ManualProportionalPolicy",
    "NoDTMPolicy",
    "OpenLoopDutyPolicy",
    "POLICY_NAMES",
    "PredictivePolicy",
    "ProxyComparison",
    "SpeculationControl",
    "TriggerComparator",
    "make_policy",
]
