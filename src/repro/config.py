"""Configuration dataclasses for the simulated machine and the DTM system.

``MachineConfig`` mirrors Table 2 of the paper (an Alpha-21264-like
out-of-order core with the paper's extensions: three extra rename /
enqueue stages between decode and issue, and single-access-per-cycle
fetch).  ``ThermalConfig`` and ``DTMConfig`` carry the thermal operating
point and the DTM policy parameters from Sections 4-5.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import units
from repro.errors import ConfigError


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and latency of one cache (Table 2 memory hierarchy)."""

    name: str
    size_bytes: int
    associativity: int
    block_bytes: int
    hit_latency: int

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.block_bytes <= 0:
            raise ConfigError(f"{self.name}: sizes must be positive")
        if self.associativity <= 0:
            raise ConfigError(f"{self.name}: associativity must be positive")
        if self.size_bytes % (self.block_bytes * self.associativity):
            raise ConfigError(
                f"{self.name}: size must be a multiple of assoc * block size"
            )

    @property
    def num_sets(self) -> int:
        """Number of sets implied by size, associativity, and block size."""
        return self.size_bytes // (self.block_bytes * self.associativity)


@dataclass(frozen=True)
class BranchPredictorConfig:
    """Hybrid predictor of Table 2: bimodal + GAg with a bimodal chooser."""

    bimodal_entries: int = 4096
    global_entries: int = 4096
    global_history_bits: int = 12
    chooser_entries: int = 4096
    btb_entries: int = 1024
    btb_associativity: int = 2
    ras_entries: int = 32

    def __post_init__(self) -> None:
        for name in ("bimodal_entries", "global_entries", "chooser_entries"):
            value = getattr(self, name)
            if value <= 0 or value & (value - 1):
                raise ConfigError(f"{name} must be a positive power of two")
        if self.global_history_bits <= 0:
            raise ConfigError("global_history_bits must be positive")


@dataclass(frozen=True)
class MachineConfig:
    """The simulated processor microarchitecture (paper Table 2).

    The defaults reproduce the paper's configuration exactly; individual
    fields can be overridden for sensitivity studies.
    """

    # Processor core.
    ruu_entries: int = 80
    lsq_entries: int = 40
    fetch_width: int = 4
    decode_width: int = 4
    issue_width: int = 6
    int_issue_width: int = 4
    fp_issue_width: int = 2
    commit_width: int = 6
    #: Extra rename/enqueue stages between decode and issue (paper
    #: Section 5.1 adds three to SimpleScalar's five-stage pipeline).
    extra_pipe_stages: int = 3

    # Functional units (count per type).
    int_alus: int = 4
    int_mult_div: int = 1
    fp_alus: int = 2
    fp_mult_div: int = 1
    mem_ports: int = 2

    # Memory hierarchy.
    l1_dcache: CacheConfig = field(
        default_factory=lambda: CacheConfig("dl1", 64 * 1024, 2, 32, 1)
    )
    l1_icache: CacheConfig = field(
        default_factory=lambda: CacheConfig("il1", 64 * 1024, 2, 32, 1)
    )
    l2_cache: CacheConfig = field(
        default_factory=lambda: CacheConfig("ul2", 2 * 1024 * 1024, 4, 32, 11)
    )
    memory_latency: int = 100
    tlb_entries: int = 128
    tlb_miss_penalty: int = 30

    # Branch prediction.
    branch_predictor: BranchPredictorConfig = field(
        default_factory=BranchPredictorConfig
    )
    branch_mispredict_penalty: int = 10

    # Operating point.
    clock_hz: float = units.CLOCK_HZ
    vdd: float = units.VDD

    def __post_init__(self) -> None:
        if self.ruu_entries <= 0 or self.lsq_entries <= 0:
            raise ConfigError("RUU and LSQ must have positive capacity")
        if self.lsq_entries > self.ruu_entries:
            raise ConfigError("LSQ cannot be larger than the RUU")
        if self.issue_width <= 0 or self.fetch_width <= 0:
            raise ConfigError("widths must be positive")
        if self.clock_hz <= 0:
            raise ConfigError("clock_hz must be positive")

    @property
    def cycle_time(self) -> float:
        """One clock period in seconds."""
        return 1.0 / self.clock_hz


@dataclass(frozen=True)
class ThermalConfig:
    """Thermal operating point (Sections 4-5, reconstructed calibration).

    The heatsink is treated as an isothermal reference over the short
    horizons the block model covers (its time constant is ~5 orders of
    magnitude longer than any block's).
    """

    #: Heatsink / reference temperature under sustained load [degC].
    heatsink_temperature: float = 100.0
    #: Thermal emergency threshold [degC].
    emergency_temperature: float = 102.0
    #: Ambient air temperature [degC] (package model, Table 4 caption).
    ambient_temperature: float = 27.0
    #: Chip-wide lumped thermal resistance with heatsink [K/W].
    chip_thermal_resistance: float = 0.34
    #: Heatsink thermal capacitance [J/K] (Section 4.1 example).
    heatsink_capacitance: float = 60.0
    #: Die thickness [m].
    die_thickness: float = units.DIE_THICKNESS

    def __post_init__(self) -> None:
        if self.emergency_temperature <= self.heatsink_temperature:
            raise ConfigError(
                "emergency threshold must exceed the heatsink temperature"
            )
        if self.chip_thermal_resistance <= 0 or self.heatsink_capacitance <= 0:
            raise ConfigError("chip R and heatsink C must be positive")
        if self.die_thickness <= 0:
            raise ConfigError("die thickness must be positive")

    @property
    def headroom(self) -> float:
        """Temperature headroom between heatsink and emergency [K]."""
        return self.emergency_temperature - self.heatsink_temperature


@dataclass(frozen=True)
class FailsafeConfig:
    """Parameters of the failsafe layer guarding the DTM loop.

    The paper assumes perfect, co-located sensors; a deployable thermal
    manager cannot.  The failsafe layer sits between the (possibly
    faulty) sensor and the policy:

    * a **plausibility gate** rejects ``NaN`` / out-of-physical-range
      readings and readings stuck at exactly the same value for
      ``stuck_detection_samples`` in a row, holding the last good
      reading for up to ``max_stale_samples``;
    * a **thermal watchdog** forces ``failsafe_duty`` whenever the last
      good reading reaches ``failsafe_temperature``;
    * **graceful degradation** drops to the open-loop ``fallback_duty``
      when readings stay implausible past the staleness budget, with a
      hysteretic re-arm (``rearm_samples`` consecutive good readings,
      ``rearm_margin`` below the watchdog threshold) before control is
      handed back to the policy.
    """

    #: Master switch; ``False`` turns the guard into a pass-through.
    enabled: bool = True
    #: Readings outside [min_plausible, max_plausible] degC are rejected.
    min_plausible: float = -20.0
    max_plausible: float = 150.0
    #: Consecutive identical readings before a sensor is declared stuck.
    stuck_detection_samples: int = 8
    #: Implausible-sample budget before degrading to open loop.
    max_stale_samples: int = 10
    #: Last-good temperature that trips the thermal watchdog [degC].
    failsafe_temperature: float = 101.9
    #: Duty forced while the watchdog is engaged (minimum cooling duty).
    failsafe_duty: float = 0.0
    #: Open-loop duty while degraded (toggle1-style conservative duty).
    fallback_duty: float = 0.25
    #: Hysteresis below ``failsafe_temperature`` required to re-arm [K].
    rearm_margin: float = 0.3
    #: Consecutive plausible samples required to re-arm the loop.
    rearm_samples: int = 20
    #: Cap on retained :class:`~repro.errors.FailsafeEngaged` records.
    max_event_log: int = 64

    def __post_init__(self) -> None:
        if self.max_plausible <= self.min_plausible:
            raise ConfigError("max_plausible must exceed min_plausible")
        if self.stuck_detection_samples < 2:
            raise ConfigError("stuck detection needs at least two samples")
        if self.max_stale_samples < 1:
            raise ConfigError("max_stale_samples must be positive")
        if not 0.0 <= self.failsafe_duty <= 1.0:
            raise ConfigError("failsafe_duty must be in [0, 1]")
        if not 0.0 <= self.fallback_duty <= 1.0:
            raise ConfigError("fallback_duty must be in [0, 1]")
        if self.rearm_margin < 0:
            raise ConfigError("rearm_margin must be non-negative")
        if self.rearm_samples < 1:
            raise ConfigError("rearm_samples must be positive")
        if self.max_event_log < 1:
            raise ConfigError("max_event_log must be positive")


@dataclass(frozen=True)
class TelemetryConfig:
    """Parameters of the observability layer (:mod:`repro.telemetry`).

    Telemetry is strictly opt-in: no engine constructs one of these on
    its own, and the disabled default (a null object) adds no
    measurable overhead to the fast engine (guarded by a benchmark,
    ``benchmarks/test_bench_telemetry.py``).
    """

    #: Per-sample trace records retained before the recorder starts
    #: decimating (``"decimate"``) or wrapping (``"ring"``).
    trace_capacity: int = 4096
    #: Retention mode: ``"decimate"`` keeps the whole run at reduced
    #: resolution, ``"ring"`` keeps the most recent samples.
    trace_mode: str = "decimate"
    #: Cap on retained discrete events (failsafe transitions, faults).
    event_capacity: int = 1024
    #: Collect span timings (engine run, DTM sample, thermal stepping).
    profile: bool = True
    #: Time every engine sample individually (feeds the sample-latency
    #: histogram; costs two clock reads per sample when enabled).
    sample_latency: bool = True

    def __post_init__(self) -> None:
        if self.trace_capacity < 2:
            raise ConfigError("trace_capacity must be at least 2")
        if self.trace_mode not in ("ring", "decimate"):
            raise ConfigError("trace_mode must be 'ring' or 'decimate'")
        if self.event_capacity < 1:
            raise ConfigError("event_capacity must be positive")


@dataclass(frozen=True)
class DTMConfig:
    """Parameters shared by all DTM policies (Sections 2, 3, 5.3)."""

    #: Controller / policy sampling interval in cycles.
    sampling_interval: int = units.SAMPLING_INTERVAL_CYCLES
    #: Trigger threshold for the non-CT policies (toggle1, M) [degC].
    nonct_trigger: float = 101.0
    #: Setpoint for the P controller [degC].
    p_setpoint: float = 101.4
    #: Half-width of the P controller's sensor range [K].
    p_sensor_halfrange: float = 0.4
    #: Setpoint for the PI and PID controllers [degC].
    pid_setpoint: float = 101.8
    #: Half-width of the PI/PID sensor range [K].
    pid_sensor_halfrange: float = 0.2
    #: Number of discrete fetch-toggling duty levels (Section 5.3).
    toggle_levels: int = 8
    #: Minimum time a non-CT policy stays engaged once triggered, which
    #: is also its trigger re-check interval [cycles].  Brooks &
    #: Martonosi's interrupt-driven policies re-evaluate the thermal
    #: condition only at this granularity -- the reason their trigger
    #: must sit a full degree below the emergency threshold, while the
    #: CT policies (checked every sampling interval in hardware) can
    #: trigger within 0.2-0.4 degC of it.
    policy_delay: int = 100_000
    #: True to model DTM engagement via OS interrupts (250-cycle stalls);
    #: False for the direct microarchitectural signal the paper assumes.
    use_interrupts: bool = False
    #: Stall cost of one interrupt [cycles].
    interrupt_cost: int = units.INTERRUPT_COST_CYCLES

    def __post_init__(self) -> None:
        if self.sampling_interval <= 0:
            raise ConfigError("sampling_interval must be positive")
        if self.toggle_levels < 2:
            raise ConfigError("need at least two toggle levels (off and on)")
        if self.policy_delay < 0 or self.interrupt_cost < 0:
            raise ConfigError("delays must be non-negative")
