"""Physical constants and unit helpers.

The paper (Section 4.3) derives thermal R and C for each functional
block from the material properties of silicon and the block geometry.
This module centralizes those constants plus the handful of unit
conversions used throughout the library, so every subsystem agrees on
them.

All quantities are SI unless a suffix says otherwise:

* temperatures in degrees Celsius (the paper reports Celsius; only
  temperature *differences* enter the RC equations, so Celsius and
  Kelvin are interchangeable there),
* lengths in meters, areas in square meters,
* power in watts, energy in joules,
* thermal resistance in K/W, thermal capacitance in J/K,
* time in seconds.
"""

from __future__ import annotations

# --- Silicon material properties near 100 degC (Section 4.3) -----------
#: Thermal conductivity of silicon at ~100 degC [W/(m*K)].  Silicon's
#: conductivity falls from ~148 at room temperature to ~100 at the
#: operating temperatures the paper targets.
SILICON_THERMAL_CONDUCTIVITY = 100.0

#: Thermal resistivity of silicon [m*K/W] (reciprocal of conductivity).
SILICON_THERMAL_RESISTIVITY = 1.0 / SILICON_THERMAL_CONDUCTIVITY

#: Volumetric heat capacity of silicon [J/(m^3*K)] (density ~2330 kg/m^3
#: times specific heat ~750 J/(kg*K)).
SILICON_VOLUMETRIC_HEAT_CAPACITY = 1.75e6

# --- Die geometry (Section 5.2) ----------------------------------------
#: Thinned-wafer die thickness assumed by the paper [m] (0.1 mm).
DIE_THICKNESS = 0.1e-3

# --- Machine operating point (Section 5.1) ------------------------------
#: Simulated clock frequency [Hz].
CLOCK_HZ = 1.5e9

#: One clock cycle [s].
CYCLE_TIME = 1.0 / CLOCK_HZ

#: Supply voltage [V] (0.18 um generation in the paper).
VDD = 2.0

#: Feature size [m].
FEATURE_SIZE = 0.18e-6

# --- DTM operating point (Sections 3 and 5.3) ---------------------------
#: Controller sampling interval in cycles (1000 cycles = 667 ns).
SAMPLING_INTERVAL_CYCLES = 1000

#: Controller sampling interval [s].
SAMPLING_INTERVAL_SECONDS = SAMPLING_INTERVAL_CYCLES * CYCLE_TIME

#: Effective loop delay introduced by sampling: half the sample period.
SAMPLING_DELAY_SECONDS = SAMPLING_INTERVAL_SECONDS / 2.0

#: Cost of taking an OS interrupt to engage/disengage a DTM policy
#: [cycles] (Section 2.1).
INTERRUPT_COST_CYCLES = 250


def mm2_to_m2(area_mm2: float) -> float:
    """Convert an area from square millimeters to square meters."""
    return area_mm2 * 1e-6


def m2_to_mm2(area_m2: float) -> float:
    """Convert an area from square meters to square millimeters."""
    return area_m2 * 1e6


def cycles_to_seconds(cycles: float, clock_hz: float = CLOCK_HZ) -> float:
    """Convert a cycle count to seconds at the given clock frequency."""
    return cycles / clock_hz


def seconds_to_cycles(seconds: float, clock_hz: float = CLOCK_HZ) -> float:
    """Convert a duration in seconds to (fractional) clock cycles."""
    return seconds * clock_hz


def celsius_to_kelvin(temp_c: float) -> float:
    """Convert an absolute temperature from Celsius to Kelvin."""
    return temp_c + 273.15


def kelvin_to_celsius(temp_k: float) -> float:
    """Convert an absolute temperature from Kelvin to Celsius."""
    return temp_k - 273.15
