"""Result containers for multicore runs.

A multicore run reports two levels: per-core outcomes (one
:class:`CoreResult` per core -- the paper's two success metrics,
emergency time and retained IPC, now per core) and chip-level
aggregates (:class:`MulticoreRunResult` -- total throughput, chip
power/energy, the union emergency time, and the coordinator's
counters).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class CoreResult:
    """Outcome of one core of a multicore simulation."""

    core: int
    benchmark: str
    policy: str
    cycles: int
    instructions: float
    #: Fraction of cycles any of this core's blocks exceeded the
    #: emergency threshold.
    emergency_fraction: float
    #: Fraction of cycles any of this core's blocks exceeded the stress
    #: (non-CT trigger) threshold.
    stress_fraction: float
    mean_temperature: float
    max_temperature: float
    #: Mean power of this core (blocks + unmonitored share) [W].
    mean_power: float
    engaged_fraction: float = 0.0
    interrupt_stall_cycles: int = 0
    #: Samples this core spent demoted by the coordinator.
    demoted_samples: int = 0
    extra: dict[str, float] = field(default_factory=dict)

    @property
    def ipc(self) -> float:
        """Committed instructions per cycle on this core."""
        return self.instructions / self.cycles if self.cycles else 0.0

    def relative_ipc(self, baseline: "CoreResult") -> float:
        """This core's IPC as a fraction of an unmanaged baseline's."""
        if baseline.ipc == 0:
            return 0.0
        return self.ipc / baseline.ipc


@dataclass
class MulticoreRunResult:
    """Outcome of one multicore (mix, policy, coordinator) simulation."""

    policy: str
    #: Coordinator strategy name, or ``""`` when uncoordinated.
    coordinator: str
    cycles: int
    cores: tuple[CoreResult, ...]
    #: Fraction of cycles *any* core was in thermal emergency (union
    #: lower bound at sample resolution, as in the single-core engine).
    emergency_fraction: float
    stress_fraction: float
    mean_chip_power: float
    max_chip_power: float
    energy_joules: float = 0.0
    extra: dict[str, float] = field(default_factory=dict)

    @property
    def n_cores(self) -> int:
        """Number of cores in the run."""
        return len(self.cores)

    @property
    def total_instructions(self) -> float:
        """Instructions committed across all cores."""
        return sum(core.instructions for core in self.cores)

    @property
    def throughput(self) -> float:
        """Chip throughput: total committed IPC summed over cores."""
        if not self.cycles:
            return 0.0
        return self.total_instructions / self.cycles

    @property
    def max_temperature(self) -> float:
        """Hottest temperature any block on any core reached [degC]."""
        return max(core.max_temperature for core in self.cores)

    @property
    def hottest_core(self) -> int:
        """Index of the core that ran hottest."""
        return max(self.cores, key=lambda core: core.max_temperature).core

    @property
    def benchmarks(self) -> tuple[str, ...]:
        """Per-core benchmark names, in core order."""
        return tuple(core.benchmark for core in self.cores)

    def relative_throughput(self, baseline: "MulticoreRunResult") -> float:
        """Chip throughput as a fraction of an unmanaged baseline's."""
        if baseline.throughput == 0:
            return 0.0
        return self.throughput / baseline.throughput

    def core(self, index: int) -> CoreResult:
        """Look up one core's result by core index."""
        for result in self.cores:
            if result.core == index:
                return result
        raise KeyError(f"no core {index} in this result")
