"""Vectorized N-core thermal-RC model: one stacked numpy update.

State is one ``(n_cores, n_blocks)`` array.  Each block keeps the
paper's vertical path to the isothermal heatsink (exact exponential
update for constant power, as in
:class:`~repro.thermal.lumped.LumpedThermalModel`); cores additionally
exchange heat laterally through the coupling resistances of the
:class:`~repro.multicore.floorplan.MulticoreFloorplan`.

The lateral exchange is applied **quasi-statically** per interval: the
core temperature seen by neighbors is the capacitance-weighted block
mean, the net lateral power into each core is computed once at the
interval start, distributed to blocks by capacitance share, and folded
into the per-block power before the exact vertical update.  This is
accurate because the coupling conductance is weak (the same argument
the paper uses to drop intra-core lateral paths): per 1000-cycle
sample, core-to-core temperature differences move by well under 1 %.

**Zero-coupling guarantee**: with no couplings the lateral term is
skipped entirely and the stacked update performs, row by row, exactly
the same elementwise float64 operations as
:meth:`LumpedThermalModel._advance` -- so the N-core model is
*bit-identical* to N independent single-core models (asserted by unit
and hypothesis tests) while running the update as one numpy call
(>= 3x faster than the N-model loop at N=16, asserted by a benchmark).
"""

from __future__ import annotations

import numpy as np

from repro import units
from repro.errors import ThermalModelError
from repro.multicore.floorplan import MulticoreFloorplan


class MulticoreThermalModel:
    """Stacked per-core block temperatures over a shared heatsink."""

    def __init__(
        self,
        floorplan: MulticoreFloorplan,
        heatsink_temperature: float = 100.0,
        initial_temperature: float | None = None,
        cycle_time: float = units.CYCLE_TIME,
    ) -> None:
        if cycle_time <= 0:
            raise ThermalModelError("cycle_time must be positive")
        self.floorplan = floorplan
        self.heatsink_temperature = float(heatsink_temperature)
        self.cycle_time = float(cycle_time)
        core = floorplan.core
        self._resistance = np.array(
            [block.resistance for block in core.blocks], dtype=float
        )
        self._capacitance = np.array(
            [block.capacitance for block in core.blocks], dtype=float
        )
        self._tau = self._resistance * self._capacitance
        #: (n_cores, n_cores) lateral conductance; zero => decoupled.
        self._coupling = floorplan.coupling_conductance_matrix()
        self._coupling_total = self._coupling.sum(axis=1)
        self._has_coupling = bool(np.any(self._coupling))
        self._share = floorplan.capacitance_shares()
        # Forward-Euler stability: per-block total conductance is the
        # vertical path plus this block's share of the core's lateral
        # conductance (worst core).
        lateral_block = (
            float(self._coupling_total.max()) * self._share
            if self._has_coupling
            else np.zeros_like(self._share)
        )
        total_conductance = 1.0 / self._resistance + lateral_block
        self._euler_limit = 2.0 * float(
            (self._capacitance / total_conductance).min()
        )
        start = (
            self.heatsink_temperature
            if initial_temperature is None
            else float(initial_temperature)
        )
        self._initial = start
        self._temps = np.full(
            (floorplan.n_cores, floorplan.n_blocks), start, dtype=float
        )

    # -- state ---------------------------------------------------------------
    @property
    def n_cores(self) -> int:
        """Number of cores."""
        return self.floorplan.n_cores

    @property
    def shape(self) -> tuple[int, int]:
        """State shape, ``(n_cores, n_blocks)``."""
        return self._temps.shape

    @property
    def time_constants(self) -> np.ndarray:
        """Per-block vertical RC time constants [s] (read-only copy)."""
        return self._tau.copy()

    @property
    def temperatures(self) -> np.ndarray:
        """Current temperatures [degC], shape ``(n_cores, n_blocks)`` (copy)."""
        return self._temps.copy()

    @property
    def core_max_temperatures(self) -> np.ndarray:
        """Hottest block of each core [degC], shape ``(n_cores,)``."""
        return self._temps.max(axis=1)

    @property
    def max_temperature(self) -> float:
        """Hottest block on the whole die [degC]."""
        return float(self._temps.max())

    @property
    def hottest_core(self) -> int:
        """Index of the core holding the hottest block."""
        return int(self._temps.max(axis=1).argmax())

    def core_temperatures(self, core_index: int) -> np.ndarray:
        """One core's block temperatures [degC] (copy)."""
        self.floorplan._check_core(core_index)
        return self._temps[core_index].copy()

    def reset(self) -> None:
        """Return every block of every core to the initial temperature."""
        self._temps.fill(self._initial)

    # -- lateral exchange ----------------------------------------------------
    def core_mean_temperatures(self) -> np.ndarray:
        """Capacitance-weighted core temperatures [degC], ``(n_cores,)``."""
        return self._temps @ self._share

    def lateral_core_powers(self) -> np.ndarray:
        """Net lateral heat into each core [W] at the current state."""
        core_temps = self._temps @ self._share
        return self._coupling @ core_temps - self._coupling_total * core_temps

    def _effective_powers(self, powers: np.ndarray) -> np.ndarray:
        """Validate shape; fold the quasi-static lateral term in.

        Returns ``powers`` itself (not a copy) when there is no
        coupling, so the zero-coupling arithmetic is untouched.
        """
        powers = np.asarray(powers, dtype=float)
        if powers.shape != self._temps.shape:
            raise ThermalModelError(
                f"expected powers of shape {self._temps.shape}, "
                f"got {powers.shape}"
            )
        if not self._has_coupling:
            return powers
        return powers + np.outer(self.lateral_core_powers(), self._share)

    # -- updates -------------------------------------------------------------
    def step_cycle(self, powers: np.ndarray) -> np.ndarray:
        """One clock cycle of forward Euler across all cores.

        Rejected outright when ``cycle_time`` is at or beyond the
        stability bound ``2 * min(C / G_total)`` (vertical plus lateral
        conductance), mirroring the single-core guard.
        """
        if self.cycle_time >= self._euler_limit:
            raise ThermalModelError(
                f"cycle_time {self.cycle_time:g} s is forward-Euler "
                f"unstable: it must stay below 2*min(C/G) = "
                f"{self._euler_limit:g} s; use advance() for long "
                f"constant-power intervals"
            )
        powers = self._effective_powers(powers)
        leak = (self._temps - self.heatsink_temperature) / self._resistance
        self._temps = self._temps + (self.cycle_time / self._capacitance) * (
            powers - leak
        )
        return self._temps.copy()

    def advance(self, powers: np.ndarray, cycles: int) -> np.ndarray:
        """Exact vertical update for ``cycles`` cycles of constant power.

        The lateral term is held at its interval-start value (quasi-
        static); the vertical relaxation toward the effective steady
        state uses the closed-form exponential, one stacked numpy
        expression for all cores.
        """
        if cycles <= 0:
            raise ThermalModelError("cycles must be positive")
        powers = self._effective_powers(powers)
        steady = self.heatsink_temperature + powers * self._resistance
        decay = np.exp(-(cycles * self.cycle_time) / self._tau)
        self._temps = steady + (self._temps - steady) * decay
        return self._temps.copy()

    def sample_update(
        self, powers: np.ndarray, cycles: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Advance one sampling interval; return ``(start, steady, end)``.

        The engine needs the interval's start temperatures and the
        steady target the interval headed toward for the closed-form
        emergency accounting (:meth:`fraction_above`); computing the
        effective powers once here keeps the three views consistent.
        """
        if cycles <= 0:
            raise ThermalModelError("cycles must be positive")
        start = self._temps.copy()
        powers = self._effective_powers(powers)
        steady = self.heatsink_temperature + powers * self._resistance
        decay = np.exp(-(cycles * self.cycle_time) / self._tau)
        self._temps = steady + (start - steady) * decay
        return start, steady, self._temps.copy()

    # -- analysis helpers ----------------------------------------------------
    def steady_state(self, powers: np.ndarray) -> np.ndarray:
        """Quasi-static steady target for the *current* lateral flows.

        This is the target the next constant-power interval relaxes
        toward (the quantity :meth:`fraction_above` needs), not the
        true coupled equilibrium -- see :meth:`equilibrium` for that.
        At zero coupling the two coincide with the single-core formula
        ``T_sink + P * R`` exactly.
        """
        powers = self._effective_powers(powers)
        return self.heatsink_temperature + powers * self._resistance

    def equilibrium(self, powers: np.ndarray) -> np.ndarray:
        """Exact coupled equilibrium temperatures under constant power.

        Solves the linear balance (vertical leak + capacitance-share
        lateral exchange = injected power) over all ``n_cores *
        n_blocks`` unknowns.  Cross-checked against the expanded
        :meth:`~repro.multicore.floorplan.MulticoreFloorplan.to_rc_network`
        steady state by tests.
        """
        powers = np.asarray(powers, dtype=float)
        if powers.shape != self._temps.shape:
            raise ThermalModelError(
                f"expected powers of shape {self._temps.shape}, "
                f"got {powers.shape}"
            )
        n_cores, n_blocks = self._temps.shape
        size = n_cores * n_blocks
        system = np.zeros((size, size), dtype=float)
        rhs = np.zeros(size, dtype=float)

        def flat(core: int, block: int) -> int:
            return core * n_blocks + block

        for core in range(n_cores):
            for block in range(n_blocks):
                row = flat(core, block)
                # Vertical leak to the heatsink.
                g_vertical = 1.0 / self._resistance[block]
                system[row, row] -= g_vertical
                rhs[row] -= (
                    powers[core, block]
                    + g_vertical * self.heatsink_temperature
                )
                # Lateral exchange: this block receives share_b of the
                # core-to-core flow driven by weighted mean temps.
                for other in range(n_cores):
                    g_pair = self._coupling[core, other]
                    if g_pair == 0.0:
                        continue
                    for source in range(n_blocks):
                        weight = (
                            self._share[block] * g_pair * self._share[source]
                        )
                        system[row, flat(other, source)] += weight
                        system[row, flat(core, source)] -= weight
        solution = np.linalg.solve(system, rhs)
        return solution.reshape(n_cores, n_blocks)

    def fraction_above(
        self,
        start: np.ndarray,
        steady: np.ndarray,
        duration_seconds: float,
        threshold: float,
    ) -> np.ndarray:
        """Per-core, per-block fraction of an interval above ``threshold``.

        The stacked form of
        :meth:`~repro.thermal.lumped.LumpedThermalModel.fraction_above`:
        each block moves exponentially and monotonically from ``start``
        toward ``steady``, so the crossing time (if any) is
        ``t* = tau * ln((steady - start) / (steady - threshold))``.
        Shapes are ``(n_cores, n_blocks)``; ``tau`` broadcasts over the
        core axis.
        """
        start = np.asarray(start, dtype=float)
        steady = np.asarray(steady, dtype=float)
        if duration_seconds <= 0:
            return (start > threshold).astype(float)
        tau = self._tau
        with np.errstate(divide="ignore", invalid="ignore"):
            ratio = (steady - start) / (steady - threshold)
            cross = tau * np.log(np.where(ratio > 0, ratio, 1.0))
        cross = np.clip(np.nan_to_num(cross, nan=0.0), 0.0, duration_seconds)
        rising = steady > start
        start_above = start > threshold
        steady_above = steady > threshold
        steady_below = steady < threshold
        fraction = np.zeros_like(start)
        crosses_up = rising & ~start_above & steady_above
        fraction[crosses_up] = 1.0 - cross[crosses_up] / duration_seconds
        crosses_down = ~rising & start_above & steady_below
        fraction[crosses_down] = cross[crosses_down] / duration_seconds
        fraction[start_above & ~steady_below] = 1.0
        return fraction
