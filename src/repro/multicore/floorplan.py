"""Tile N single-core floorplans onto one die, with lateral coupling.

Each core is one copy of the paper's per-block floorplan
(:class:`~repro.thermal.floorplan.Floorplan`), laid out on a near-square
grid.  Adjacent tiles exchange heat sideways through the die: the
core-to-core coupling resistance is derived from the same annular
tangential-conduction formula the paper uses to justify *dropping*
lateral paths within one core (Equation 4,
:func:`~repro.thermal.materials.block_tangential_resistance`) -- two
half-paths in series, from each core's monitored-area footprint out to
its tile boundary.  The resulting resistance (~15 K/W per neighbor
pair with the calibrated constants) is weak next to the ~0.2 K/W
vertical path, which is exactly why the single-core model could ignore
it; across cores it is the only path, so the multicore model keeps it.

:meth:`MulticoreFloorplan.to_rc_network` expands the tiling into an
explicit :class:`~repro.thermal.rc_network.ThermalRCNetwork` (node
``core{i}.{block}``), against which the vectorized
:class:`~repro.multicore.thermal.MulticoreThermalModel` is validated.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ThermalModelError
from repro.thermal import materials
from repro.thermal.floorplan import Floorplan
from repro.thermal.rc_network import ThermalRCNetwork


@dataclass(frozen=True)
class CoreCoupling:
    """One lateral thermal path between two core tiles."""

    core_a: int
    core_b: int
    #: Core-to-core thermal resistance [K/W].
    resistance: float

    def __post_init__(self) -> None:
        if self.core_a == self.core_b:
            raise ThermalModelError("a core cannot couple to itself")
        if self.core_a < 0 or self.core_b < 0:
            raise ThermalModelError("core indices must be non-negative")
        if self.resistance <= 0:
            raise ThermalModelError("coupling resistance must be positive")


def core_coupling_resistance(
    core: Floorplan,
    thickness: float | None = None,
    resistivity: float | None = None,
) -> float:
    """Lateral resistance between two adjacent core tiles [K/W].

    Two tangential half-paths in series: heat spreads from one core's
    monitored footprint (equivalent radius of the summed block areas)
    out to its tile boundary (equivalent radius of the tile die area),
    crosses into the neighbor, and converges again.  Each half-path is
    the paper's Equation 4 integral.
    """
    kwargs = {}
    if thickness is not None:
        kwargs["thickness"] = thickness
    if resistivity is not None:
        kwargs["resistivity"] = resistivity
    monitored_area = sum(block.area_m2 for block in core.blocks)
    half_path = materials.block_tangential_resistance(
        monitored_area, core.die_area_m2, **kwargs
    )
    return 2.0 * half_path


@dataclass(frozen=True)
class MulticoreFloorplan:
    """N copies of one core floorplan on a shared die.

    ``couplings`` lists the lateral core-to-core paths (typically the
    4-neighbor grid adjacency built by :meth:`tile`); an empty tuple
    means thermally independent cores -- the configuration in which the
    vectorized model must match N single-core models bit for bit.
    """

    core: Floorplan
    n_cores: int
    rows: int
    cols: int
    couplings: tuple[CoreCoupling, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.n_cores < 1:
            raise ThermalModelError("need at least one core")
        if self.rows < 1 or self.cols < 1:
            raise ThermalModelError("grid dimensions must be positive")
        if self.rows * self.cols < self.n_cores:
            raise ThermalModelError(
                f"a {self.rows}x{self.cols} grid cannot hold "
                f"{self.n_cores} cores"
            )
        seen = set()
        for coupling in self.couplings:
            if coupling.core_a >= self.n_cores or coupling.core_b >= self.n_cores:
                raise ThermalModelError(
                    f"coupling references core beyond n_cores="
                    f"{self.n_cores}: {coupling}"
                )
            key = frozenset((coupling.core_a, coupling.core_b))
            if key in seen:
                raise ThermalModelError(f"duplicate coupling for pair {key}")
            seen.add(key)

    # -- construction --------------------------------------------------------
    @classmethod
    def tile(
        cls,
        core: Floorplan | None = None,
        n_cores: int = 4,
        coupling_scale: float = 1.0,
    ) -> "MulticoreFloorplan":
        """Lay ``n_cores`` copies of ``core`` on a near-square grid.

        Cores are placed row-major on a ``ceil(sqrt(N))``-wide grid and
        every 4-neighbor pair gets one lateral coupling at the
        material-model resistance (:func:`core_coupling_resistance`)
        divided by ``coupling_scale``.  ``coupling_scale=0`` disables
        coupling entirely (independent cores); larger values model a
        thinner inter-core channel (stronger coupling).
        """
        if n_cores < 1:
            raise ThermalModelError("need at least one core")
        if coupling_scale < 0:
            raise ThermalModelError("coupling_scale must be non-negative")
        core = core if core is not None else Floorplan.default()
        cols = int(math.ceil(math.sqrt(n_cores)))
        rows = int(math.ceil(n_cores / cols))
        couplings: list[CoreCoupling] = []
        if coupling_scale > 0:
            resistance = core_coupling_resistance(core) / coupling_scale
            for index in range(n_cores):
                row, col = divmod(index, cols)
                # Right and down neighbors only: each pair once.
                for d_row, d_col in ((0, 1), (1, 0)):
                    neighbor_row, neighbor_col = row + d_row, col + d_col
                    neighbor = neighbor_row * cols + neighbor_col
                    if (
                        neighbor_row < rows
                        and neighbor_col < cols
                        and neighbor < n_cores
                    ):
                        couplings.append(
                            CoreCoupling(index, neighbor, resistance)
                        )
        return cls(
            core=core,
            n_cores=n_cores,
            rows=rows,
            cols=cols,
            couplings=tuple(couplings),
        )

    # -- geometry ------------------------------------------------------------
    @property
    def n_blocks(self) -> int:
        """Blocks per core."""
        return len(self.core.blocks)

    @property
    def die_area_m2(self) -> float:
        """Total multicore die area [m^2]."""
        return self.n_cores * self.core.die_area_m2

    @property
    def core_names(self) -> tuple[str, ...]:
        """``("core0", "core1", ...)`` in index order."""
        return tuple(f"core{i}" for i in range(self.n_cores))

    def position(self, core_index: int) -> tuple[int, int]:
        """Grid (row, col) of one core."""
        self._check_core(core_index)
        return divmod(core_index, self.cols)

    def node_name(self, core_index: int, block_name: str) -> str:
        """Fully qualified RC-network node name, ``core{i}.{block}``."""
        self._check_core(core_index)
        self.core.block(block_name)  # validates the block name
        return f"core{core_index}.{block_name}"

    def neighbors(self, core_index: int) -> tuple[int, ...]:
        """Indices of the cores laterally coupled to ``core_index``."""
        self._check_core(core_index)
        found = []
        for coupling in self.couplings:
            if coupling.core_a == core_index:
                found.append(coupling.core_b)
            elif coupling.core_b == core_index:
                found.append(coupling.core_a)
        return tuple(sorted(found))

    def _check_core(self, core_index: int) -> None:
        if not 0 <= core_index < self.n_cores:
            raise ThermalModelError(
                f"core index {core_index} out of range [0, {self.n_cores})"
            )

    # -- derived matrices ----------------------------------------------------
    def coupling_conductance_matrix(self) -> np.ndarray:
        """Symmetric ``(n_cores, n_cores)`` lateral conductance [W/K].

        Zero diagonal; entry ``(a, b)`` is ``1 / R_ab`` for coupled
        pairs and 0 otherwise.  The all-zeros matrix (no couplings) is
        the decoupled configuration.
        """
        matrix = np.zeros((self.n_cores, self.n_cores), dtype=float)
        for coupling in self.couplings:
            conductance = 1.0 / coupling.resistance
            matrix[coupling.core_a, coupling.core_b] += conductance
            matrix[coupling.core_b, coupling.core_a] += conductance
        return matrix

    def capacitance_shares(self) -> np.ndarray:
        """Per-block fraction of one core's total thermal capacitance.

        The stacked model treats each core as quasi-isothermal for the
        lateral exchange: the core temperature seen by neighbors is the
        capacitance-weighted block mean, and net lateral heat is
        redistributed to blocks by the same weights.
        """
        capacitance = np.array(
            [block.capacitance for block in self.core.blocks], dtype=float
        )
        return capacitance / capacitance.sum()

    # -- expansion -----------------------------------------------------------
    def to_rc_network(
        self, heatsink_temperature: float = 100.0
    ) -> ThermalRCNetwork:
        """Expand into an explicit per-block thermal RC network.

        Every block of every core becomes one capacitive node
        (``core{i}.{block}``) tied to the isothermal heatsink through
        its normal resistance; each lateral coupling becomes per-block
        edges between same-named blocks of the two cores, splitting the
        core-to-core conductance by capacitance share (so the network's
        aggregate lateral flow matches the stacked model's).  Used to
        validate :class:`~repro.multicore.thermal.MulticoreThermalModel`
        against the general solver.
        """
        network = ThermalRCNetwork()
        for core_index in range(self.n_cores):
            for block in self.core.blocks:
                name = f"core{core_index}.{block.name}"
                network.add_node(name, block.capacitance, heatsink_temperature)
                network.connect_reference(
                    name, heatsink_temperature, block.resistance
                )
        shares = self.capacitance_shares()
        for coupling in self.couplings:
            for block, share in zip(self.core.blocks, shares):
                network.connect(
                    f"core{coupling.core_a}.{block.name}",
                    f"core{coupling.core_b}.{block.name}",
                    coupling.resistance / share,
                )
        return network
