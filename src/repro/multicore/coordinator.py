"""Chip-level arbitration over per-core DTM loops.

Per-core feedback controllers keep each core near its own setpoint,
but they cannot see chip-level constraints: a shared power/cooling
budget, or a neighbor that has been camped at the emergency threshold
for milliseconds.  :class:`ThermalBudgetCoordinator` is the layer above
the per-core loops (the shape of Rao et al.'s chip-level regulator, or
a fleet scheduler over per-worker control loops):

* a **duty budget** caps the sum of granted fetch duties across cores
  (the toggling analogue of a chip power cap).  Three arbitration
  strategies split it: ``"uniform"`` (equal per-core cap),
  ``"hottest"`` (cut the hottest cores first), and ``"proportional"``
  (scale every request by the same factor);
* **demotion**: a core whose temperature stays at or above the
  demotion threshold for ``demote_trigger_samples`` consecutive
  samples is demoted to an open-loop fallback duty (the same graceful-
  degradation posture as :mod:`repro.dtm.failsafe`), re-armed only
  after ``rearm_samples`` consecutive samples a hysteresis margin
  below the threshold.

Decisions are pure functions of the observed temperatures and proposed
duties -- the coordinator never touches controller state, it only caps
the granted duty -- so per-core policies keep their own integrators.
Transitions ride the shared ``repro.trace/v1`` event stream (kinds
``coordinator_demote`` / ``coordinator_rearm`` / ``coordinator_budget``)
with a ``core`` field where applicable.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.telemetry.core import ensure_telemetry

#: Arbitration strategies accepted by :class:`ThermalBudgetCoordinator`.
COORDINATOR_STRATEGIES: tuple[str, ...] = (
    "uniform",
    "hottest",
    "proportional",
)


class ThermalBudgetCoordinator:
    """Arbitrates a global duty budget and demotes runaway cores."""

    def __init__(
        self,
        n_cores: int,
        strategy: str = "proportional",
        duty_budget: float | None = None,
        demote_temperature: float = 102.0,
        demote_trigger_samples: int = 3,
        demote_duty: float = 0.25,
        rearm_margin: float = 0.3,
        rearm_samples: int = 20,
        telemetry=None,
    ) -> None:
        if n_cores < 1:
            raise ConfigError("need at least one core")
        if strategy not in COORDINATOR_STRATEGIES:
            raise ConfigError(
                f"unknown coordinator strategy {strategy!r}; "
                f"known: {COORDINATOR_STRATEGIES}"
            )
        if duty_budget is None:
            duty_budget = 0.75 * n_cores
        if duty_budget <= 0:
            raise ConfigError("duty_budget must be positive")
        if demote_trigger_samples < 1:
            raise ConfigError("demote_trigger_samples must be positive")
        if not 0.0 <= demote_duty <= 1.0:
            raise ConfigError("demote_duty must be in [0, 1]")
        if rearm_margin < 0:
            raise ConfigError("rearm_margin must be non-negative")
        if rearm_samples < 1:
            raise ConfigError("rearm_samples must be positive")
        self.n_cores = n_cores
        self.strategy = strategy
        self.duty_budget = float(duty_budget)
        self.demote_temperature = float(demote_temperature)
        self.demote_trigger_samples = demote_trigger_samples
        self.demote_duty = float(demote_duty)
        self.rearm_margin = float(rearm_margin)
        self.rearm_samples = rearm_samples
        self._telemetry = ensure_telemetry(telemetry)
        self.reset()

    def attach_telemetry(self, telemetry) -> None:
        """Mirror future decisions onto a shared telemetry stream."""
        self._telemetry = ensure_telemetry(telemetry)

    # -- state ---------------------------------------------------------------
    def reset(self) -> None:
        """Forget all demotions, streaks, and counters."""
        self._hot_streak = np.zeros(self.n_cores, dtype=int)
        self._cool_streak = np.zeros(self.n_cores, dtype=int)
        self._demoted = np.zeros(self.n_cores, dtype=bool)
        self._budget_engaged = False
        self.demotions = 0
        self.rearms = 0
        self.budget_engaged_samples = 0
        self.samples = 0

    @property
    def demoted(self) -> tuple[bool, ...]:
        """Per-core demotion flags (read-only snapshot)."""
        return tuple(bool(flag) for flag in self._demoted)

    @property
    def budget_engaged(self) -> bool:
        """True while the last arbitration had to cut duties."""
        return self._budget_engaged

    # -- the arbitration step ------------------------------------------------
    def arbitrate(
        self,
        proposed: np.ndarray,
        core_temperatures: np.ndarray,
        sample_index: int,
    ) -> np.ndarray:
        """Grant per-core duties for one sample.

        ``proposed`` are the duties the per-core loops want;
        ``core_temperatures`` the hottest-block temperature of each
        core.  Returns the granted duties (a new array): demoted cores
        are capped at the fallback duty, then the strategy enforces the
        chip-wide budget.
        """
        proposed = np.asarray(proposed, dtype=float)
        temps = np.asarray(core_temperatures, dtype=float)
        if proposed.shape != (self.n_cores,) or temps.shape != (self.n_cores,):
            raise ConfigError(
                f"expected {self.n_cores} proposed duties and temperatures"
            )
        self.samples += 1
        self._update_demotions(temps, sample_index)
        granted = np.clip(proposed, 0.0, 1.0)
        granted[self._demoted] = np.minimum(
            granted[self._demoted], self.demote_duty
        )
        granted = self._enforce_budget(granted, temps, sample_index)
        return granted

    # -- demotion ------------------------------------------------------------
    def _update_demotions(self, temps: np.ndarray, sample_index: int) -> None:
        hot = temps >= self.demote_temperature
        cool = temps < self.demote_temperature - self.rearm_margin
        self._hot_streak = np.where(hot, self._hot_streak + 1, 0)
        self._cool_streak = np.where(cool, self._cool_streak + 1, 0)
        trip = (
            ~self._demoted
            & (self._hot_streak >= self.demote_trigger_samples)
        )
        release = self._demoted & (self._cool_streak >= self.rearm_samples)
        for core in np.flatnonzero(trip):
            self._demoted[core] = True
            self._cool_streak[core] = 0
            self.demotions += 1
            self._telemetry.event(
                "coordinator_demote",
                sample_index,
                f"core {core} at or above "
                f"{self.demote_temperature:g} degC for "
                f"{int(self._hot_streak[core])} samples",
                core=int(core),
                temperature=float(temps[core]),
                duty=self.demote_duty,
            )
        for core in np.flatnonzero(release):
            self._demoted[core] = False
            self._hot_streak[core] = 0
            self._cool_streak[core] = 0
            self.rearms += 1
            self._telemetry.event(
                "coordinator_rearm",
                sample_index,
                f"core {core} cool for {self.rearm_samples} samples",
                core=int(core),
                temperature=float(temps[core]),
            )

    # -- budget --------------------------------------------------------------
    def _enforce_budget(
        self, granted: np.ndarray, temps: np.ndarray, sample_index: int
    ) -> np.ndarray:
        total = float(granted.sum())
        over = total > self.duty_budget + 1e-12
        if over:
            if self.strategy == "uniform":
                granted = np.minimum(granted, self.duty_budget / self.n_cores)
            elif self.strategy == "proportional":
                granted = granted * (self.duty_budget / total)
            else:  # hottest-first cuts
                excess = total - self.duty_budget
                for core in np.argsort(-temps):
                    cut = min(excess, float(granted[core]))
                    granted[core] -= cut
                    excess -= cut
                    if excess <= 1e-12:
                        break
            self.budget_engaged_samples += 1
        if over != self._budget_engaged:
            self._budget_engaged = over
            self._telemetry.event(
                "coordinator_budget",
                sample_index,
                (
                    f"duty demand {total:.3f} exceeds budget "
                    f"{self.duty_budget:g} ({self.strategy})"
                    if over
                    else f"duty demand {total:.3f} back within budget "
                    f"{self.duty_budget:g}"
                ),
                engaged=over,
                demand=total,
                budget=self.duty_budget,
                strategy=self.strategy,
            )
        return granted

    # -- reporting -----------------------------------------------------------
    def stats(self) -> dict[str, float]:
        """Counters for experiment tables and ``RunResult.extra``."""
        return {
            "coordinator_demotions": float(self.demotions),
            "coordinator_rearms": float(self.rearms),
            "coordinator_budget_samples": float(self.budget_engaged_samples),
            "coordinator_demoted_now": float(int(self._demoted.sum())),
        }
