"""Sample-granularity N-core simulation with coordinated per-core DTM.

One iteration covers one controller sampling interval, exactly like the
single-core :class:`~repro.sim.fast.FastEngine`, replicated per core
and stacked where it pays:

1. each core looks up *its own* workload phase (migration-free
   multiprogram mix: one :class:`~repro.workloads.profiles.
   BenchmarkProfile` per core, each with its own jitter stream seeded
   ``[profile.seed, run_seed, core_index]``);
2. each core's DTM loop (sensor -> optional failsafe guard -> policy ->
   quantized actuator) proposes a fetch duty from its own hottest
   block;
3. the optional :class:`~repro.multicore.coordinator.
   ThermalBudgetCoordinator` arbitrates the proposals against the
   chip-wide duty budget and any active demotions, overriding the
   per-core actuators where it cuts;
4. per-core throughput and Wattch CC3 block powers follow the
   single-core formulas; the **thermal step is one stacked numpy
   update** over all ``(n_cores, n_blocks)`` temperatures
   (:class:`~repro.multicore.thermal.MulticoreThermalModel`), including
   quasi-static core-to-core lateral coupling;
5. emergency/stress time is accounted per core with the same
   closed-form sub-sample accuracy as the single-core engine.

Telemetry is opt-in and purely observational: per-core DTM managers run
without a telemetry hook (the chip emits one trace record per sample
with per-core max temperatures instead), while failsafe guards, fault
injectors, and the coordinator tag their events with a ``core`` field
on the shared ``repro.trace/v1`` event stream.  Disabled-telemetry runs
are bit-identical to enabled ones (asserted by tests).
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.config import (
    DTMConfig,
    FailsafeConfig,
    MachineConfig,
    ThermalConfig,
)
from repro.dtm.failsafe import FailsafeGuard
from repro.dtm.manager import DTMManager
from repro.dtm.policies import make_policy
from repro.errors import SimulationError
from repro.faults.schedule import FaultSchedule
from repro.faults.sensor import FaultySensor
from repro.multicore.coordinator import ThermalBudgetCoordinator
from repro.multicore.floorplan import MulticoreFloorplan
from repro.multicore.results import CoreResult, MulticoreRunResult
from repro.multicore.thermal import MulticoreThermalModel
from repro.power.clock_gating import ClockGatingStyle
from repro.power.wattch import PowerModel
from repro.sim.fast import DEFAULT_SUPPLY_EFFICIENCY
from repro.telemetry.core import ensure_telemetry
from repro.thermal.sensors import IdealSensor
from repro.workloads.profiles import BenchmarkProfile, get_profile


class MulticoreEngine:
    """N per-core DTM loops over one stacked thermal model."""

    def __init__(
        self,
        profiles: Sequence[BenchmarkProfile | str],
        policy: str | Sequence = "pid",
        floorplan: MulticoreFloorplan | None = None,
        coordinator: ThermalBudgetCoordinator | str | None = None,
        machine: MachineConfig | None = None,
        thermal_config: ThermalConfig | None = None,
        dtm_config: DTMConfig | None = None,
        seed: int = 0,
        gating: ClockGatingStyle = ClockGatingStyle.CC3,
        supply_efficiency: float = DEFAULT_SUPPLY_EFFICIENCY,
        fault_schedules: Mapping[int, FaultSchedule] | None = None,
        failsafe: FailsafeConfig | None = None,
        telemetry=None,
    ) -> None:
        if not profiles:
            raise SimulationError("need at least one per-core profile")
        if not 0.0 < supply_efficiency <= 1.0:
            raise SimulationError("supply_efficiency must be in (0, 1]")
        self.profiles = tuple(
            get_profile(item) if isinstance(item, str) else item
            for item in profiles
        )
        n_cores = len(self.profiles)
        self.floorplan = (
            floorplan
            if floorplan is not None
            else MulticoreFloorplan.tile(n_cores=n_cores)
        )
        if self.floorplan.n_cores != n_cores:
            raise SimulationError(
                f"floorplan has {self.floorplan.n_cores} cores but "
                f"{n_cores} profiles were given"
            )
        self.machine = machine if machine is not None else MachineConfig()
        self.thermal_config = (
            thermal_config if thermal_config is not None else ThermalConfig()
        )
        self.dtm_config = dtm_config if dtm_config is not None else DTMConfig()
        self.seed = seed
        self.supply_efficiency = supply_efficiency
        self.telemetry = ensure_telemetry(telemetry)

        # -- per-core policies (shared name, per-core list, or objects).
        if isinstance(policy, str):
            requested = [policy] * n_cores
            self.policy_label = policy
        else:
            requested = list(policy)
            if len(requested) != n_cores:
                raise SimulationError(
                    f"got {len(requested)} policies for {n_cores} cores"
                )
            labels = []
            for item in requested:
                label = item if isinstance(item, str) else item.name
                if label not in labels:
                    labels.append(label)
            self.policy_label = "+".join(labels)
        core_floorplan = self.floorplan.core
        self.policies = [
            make_policy(item, core_floorplan, self.dtm_config)
            if isinstance(item, str)
            else item
            for item in requested
        ]

        # -- chip-level coordinator (strategy name or prebuilt).
        if isinstance(coordinator, str):
            coordinator = ThermalBudgetCoordinator(
                n_cores,
                strategy=coordinator,
                demote_temperature=self.thermal_config.emergency_temperature,
            )
        if coordinator is not None and coordinator.n_cores != n_cores:
            raise SimulationError(
                f"coordinator arbitrates {coordinator.n_cores} cores "
                f"but the chip has {n_cores}"
            )
        self.coordinator = coordinator
        if coordinator is not None and self.telemetry.enabled:
            coordinator.attach_telemetry(self.telemetry)

        # -- per-core DTM managers.  The managers run *without* a
        # telemetry hook: the chip emits one trace record per sample
        # (per-core controller staging would collide on the shared
        # pending slot); guards and fault injectors still tag their
        # events with this core's index.
        fault_schedules = fault_schedules or {}
        self.managers: list[DTMManager] = []
        self.guards: list[FailsafeGuard | None] = []
        for core_index in range(n_cores):
            sensor = None
            schedule = fault_schedules.get(core_index)
            if schedule is not None:
                sensor = FaultySensor(
                    IdealSensor(),
                    schedule,
                    telemetry=telemetry,
                    core=core_index,
                )
            guard = None
            if failsafe is not None:
                guard = FailsafeGuard(failsafe)
                guard.core = core_index
                if self.telemetry.enabled:
                    guard.attach_telemetry(self.telemetry)
            self.managers.append(
                DTMManager(
                    self.policies[core_index],
                    self.dtm_config,
                    sensor=sensor,
                    failsafe=guard,
                )
            )
            self.guards.append(guard)

        self.power_model = PowerModel(core_floorplan, gating=gating)
        self.thermal = MulticoreThermalModel(
            self.floorplan,
            heatsink_temperature=self.thermal_config.heatsink_temperature,
            cycle_time=self.machine.cycle_time,
        )

    @property
    def n_cores(self) -> int:
        """Number of cores on the chip."""
        return len(self.profiles)

    def run(
        self,
        instructions: float = 1_000_000,
        max_cycles: int | None = None,
    ) -> MulticoreRunResult:
        """Simulate until every core commits ``instructions``.

        All cores tick in lockstep (one shared sampling clock); cores
        that finish their budget early keep executing -- there is no
        migration and no idling, as in a throughput-mode multiprogram
        measurement -- so every reported metric covers the full run.
        """
        with self.telemetry.span("multicore.run"):
            return self._run(instructions, max_cycles)

    def _run(
        self, instructions: float, max_cycles: int | None
    ) -> MulticoreRunResult:
        if instructions <= 0:
            raise SimulationError("instructions must be positive")
        n_cores = self.n_cores
        sample = self.dtm_config.sampling_interval
        sample_seconds = sample * self.machine.cycle_time
        if max_cycles is None:
            slowest = min(
                max(0.1, profile.mean_ipc) for profile in self.profiles
            )
            max_cycles = int(40 * instructions / slowest)
        emergency_level = self.thermal_config.emergency_temperature
        stress_level = self.dtm_config.nonct_trigger
        fetch_supply = self.machine.fetch_width * self.supply_efficiency
        coordinator = self.coordinator

        telemetry = self.telemetry
        recording = telemetry.enabled
        if recording:
            mix = "+".join(profile.name for profile in self.profiles)
            telemetry.set_context(mix, self.policy_label)
            telemetry.meta.update(
                benchmark=mix,
                policy=self.policy_label,
                n_cores=n_cores,
                core_names=list(self.floorplan.core_names),
                core_benchmarks=[p.name for p in self.profiles],
                coordinator=(
                    coordinator.strategy if coordinator is not None else ""
                ),
                # Trace block_temps carry per-core max temperatures.
                block_names=list(self.floorplan.core_names),
                sample_cycles=sample,
                seed=self.seed,
                supply_efficiency=self.supply_efficiency,
            )

        rngs = [
            np.random.default_rng(
                np.random.SeedSequence([profile.seed, self.seed, core_index])
            )
            for core_index, profile in enumerate(self.profiles)
        ]
        names = self.floorplan.core.names
        block_count = len(names)

        committed = np.zeros(n_cores)
        total_committed = np.zeros(n_cores)
        cycles = 0
        samples = 0
        emergency_cycles = np.zeros(n_cores)
        stress_cycles = np.zeros(n_cores)
        chip_emergency_cycles = 0.0
        chip_stress_cycles = 0.0
        temp_sum = np.zeros(n_cores)
        temp_max = np.full(n_cores, -np.inf)
        core_power_sum = np.zeros(n_cores)
        power_sum = 0.0
        power_max = 0.0
        energy_joules = 0.0
        stall_cycles = np.zeros(n_cores, dtype=int)
        demoted_samples = np.zeros(n_cores, dtype=int)

        duties = np.empty(n_cores)
        demand = np.empty(n_cores)
        stalls = np.zeros(n_cores, dtype=int)
        activities = np.empty((n_cores, block_count))
        powers_stack = np.empty((n_cores, block_count))
        core_powers = np.empty(n_cores)
        sample_committed = np.empty(n_cores)

        while committed.min() < instructions and cycles < max_cycles:
            core_max = self.thermal.core_max_temperatures
            for core_index in range(n_cores):
                profile = self.profiles[core_index]
                phase = profile.phase_at(int(total_committed[core_index]))
                activity = np.array(
                    phase.activity_vector(names), dtype=float
                )
                if phase.jitter:
                    rng = rngs[core_index]
                    activity *= 1.0 + rng.normal(
                        0.0, phase.jitter, block_count
                    )
                    np.clip(activity, 0.0, 1.0, out=activity)
                    demand_ipc = phase.ipc * (
                        1.0 + rng.normal(0.0, 0.5 * phase.jitter)
                    )
                else:
                    demand_ipc = phase.ipc
                demand[core_index] = max(0.05, demand_ipc)
                activities[core_index] = activity
                duty, stall = self.managers[core_index].on_sample(
                    float(core_max[core_index])
                )
                duties[core_index] = duty
                stalls[core_index] = stall

            if coordinator is not None:
                granted = coordinator.arbitrate(duties, core_max, samples)
                for core_index in range(n_cores):
                    if granted[core_index] < duties[core_index] - 1e-12:
                        actuator = self.managers[core_index].actuator
                        actuator.set_output(granted[core_index])
                        duties[core_index] = actuator.duty
                demoted_samples += np.asarray(
                    coordinator.demoted, dtype=int
                )

            for core_index in range(n_cores):
                supply_ipc = duties[core_index] * fetch_supply
                effective_ipc = min(demand[core_index], supply_ipc)
                ratio = effective_ipc / demand[core_index]
                utilization = activities[core_index] * ratio
                powers = self.power_model.block_powers(utilization)
                powers_stack[core_index] = powers
                core_powers[core_index] = float(
                    powers.sum()
                ) + self.power_model.unmonitored_power(
                    float(utilization.mean())
                )
                sample_committed[core_index] = effective_ipc * max(
                    0, sample - stalls[core_index]
                )

            chip_power = float(core_powers.sum())
            start, steady, end = self.thermal.sample_update(
                powers_stack, sample
            )

            if not np.isfinite(chip_power) or not np.all(np.isfinite(end)):
                finite = np.isfinite(end)
                if not np.all(finite):
                    bad_core, bad_block = np.unravel_index(
                        int(np.argmin(finite)), end.shape
                    )
                    bad = f"core{bad_core}.{names[bad_block]}"
                else:
                    bad_core = self.thermal.hottest_core
                    bad = f"core{bad_core}"
                raise SimulationError(
                    "non-finite simulation state in multicore run",
                    sample_index=samples,
                    block=bad,
                    benchmark=self.profiles[int(bad_core)].name,
                    duty=float(duties[int(bad_core)]),
                    chip_power=chip_power,
                    policy=self.policy_label,
                )

            em_frac = self.thermal.fraction_above(
                start, steady, sample_seconds, emergency_level
            )
            st_frac = self.thermal.fraction_above(
                start, steady, sample_seconds, stress_level
            )
            em_core = em_frac.max(axis=1)
            st_core = st_frac.max(axis=1)

            total_committed += sample_committed
            committed += sample_committed
            cycles += sample
            samples += 1
            emergency_cycles += em_core * sample
            stress_cycles += st_core * sample
            chip_emergency_cycles += float(em_core.max()) * sample
            chip_stress_cycles += float(st_core.max()) * sample
            end_core_max = end.max(axis=1)
            temp_sum += end_core_max
            np.maximum(temp_max, end_core_max, out=temp_max)
            core_power_sum += core_powers
            power_sum += chip_power
            power_max = max(power_max, chip_power)
            energy_joules += chip_power * sample_seconds
            stall_cycles += stalls

            if recording:
                telemetry.record_sample(
                    index=samples - 1,
                    cycle=cycles,
                    sensed=float(core_max.max()),
                    max_temp=float(end_core_max.max()),
                    block_temps=end_core_max,
                    chip_power=chip_power,
                    ipc=float(sample_committed.sum()) / sample,
                    duty=float(duties.mean()),
                    emergency_fraction=float(em_core.max()),
                    stress_fraction=float(st_core.max()),
                )

        if samples == 0:
            raise SimulationError(
                "multicore run produced no samples",
                policy=self.policy_label,
                max_cycles=max_cycles,
            )

        cores = []
        for core_index in range(n_cores):
            extra: dict[str, float] = {}
            guard = self.guards[core_index]
            if guard is not None:
                extra["failsafe_engagements"] = float(guard.engagements)
                extra["failsafe_rejected_samples"] = float(
                    guard.rejected_samples
                )
                extra["failsafe_degraded_samples"] = float(
                    guard.degraded_samples
                )
                extra["failsafe_forced_samples"] = float(
                    guard.failsafe_samples
                )
            manager = self.managers[core_index]
            cores.append(
                CoreResult(
                    core=core_index,
                    benchmark=self.profiles[core_index].name,
                    policy=self.policies[core_index].name,
                    cycles=cycles,
                    instructions=float(committed[core_index]),
                    emergency_fraction=float(emergency_cycles[core_index])
                    / cycles,
                    stress_fraction=float(stress_cycles[core_index]) / cycles,
                    mean_temperature=float(temp_sum[core_index]) / samples,
                    max_temperature=float(temp_max[core_index]),
                    mean_power=float(core_power_sum[core_index]) / samples,
                    engaged_fraction=manager.engaged_fraction,
                    interrupt_stall_cycles=int(stall_cycles[core_index]),
                    demoted_samples=int(demoted_samples[core_index]),
                    extra=extra,
                )
            )

        chip_extra: dict[str, float] = {}
        if coordinator is not None:
            chip_extra.update(coordinator.stats())

        return MulticoreRunResult(
            policy=self.policy_label,
            coordinator=(
                coordinator.strategy if coordinator is not None else ""
            ),
            cycles=cycles,
            cores=tuple(cores),
            emergency_fraction=chip_emergency_cycles / cycles,
            stress_fraction=chip_stress_cycles / cycles,
            mean_chip_power=power_sum / samples,
            max_chip_power=power_max,
            energy_joules=energy_joules,
            extra=chip_extra,
        )
