"""Multicore extension: N thermally coupled cores under coordinated DTM.

The paper's thermal-RC model and CT-DTM controllers are single-chip,
per-block (Sections 3-4).  This package scales them out:

* :class:`~repro.multicore.floorplan.MulticoreFloorplan` tiles N copies
  of the single-core :class:`~repro.thermal.floorplan.Floorplan` onto
  one die and derives core-to-core lateral coupling resistances from
  the material model (:mod:`repro.thermal.materials`);
* :class:`~repro.multicore.thermal.MulticoreThermalModel` steps every
  core's block temperatures in one stacked ``(n_cores, n_blocks)``
  numpy update -- bit-identical to N independent
  :class:`~repro.thermal.lumped.LumpedThermalModel` instances at zero
  coupling (asserted by tests) and >= 3x faster at N=16 (asserted by a
  benchmark);
* each core runs its own DTM loop (any policy from
  :func:`~repro.dtm.policies.make_policy`, including the
  adjustable-gain integral mode ``"agi"`` after Rao et al.);
* :class:`~repro.multicore.coordinator.ThermalBudgetCoordinator`
  arbitrates a chip-level duty budget across cores (uniform /
  hottest-first / proportional-share) and demotes persistently hot
  cores to a failsafe fallback duty;
* :class:`~repro.multicore.engine.MulticoreEngine` drives migration-free
  multiprogram mixes from :mod:`repro.workloads.profiles` through the
  whole stack, wired into :mod:`repro.telemetry` (per-core event tags,
  coordinator decisions) and :mod:`repro.faults` (per-core sensor
  faults).

See ``docs/multicore.md`` for the model derivation and CLI usage, and
:mod:`repro.experiments.extension_multicore` for the headline
per-core-vs-coordinated table.
"""

from repro.multicore.coordinator import (
    COORDINATOR_STRATEGIES,
    ThermalBudgetCoordinator,
)
from repro.multicore.engine import MulticoreEngine
from repro.multicore.floorplan import CoreCoupling, MulticoreFloorplan
from repro.multicore.results import CoreResult, MulticoreRunResult
from repro.multicore.thermal import MulticoreThermalModel

__all__ = [
    "COORDINATOR_STRATEGIES",
    "CoreCoupling",
    "CoreResult",
    "MulticoreEngine",
    "MulticoreFloorplan",
    "MulticoreRunResult",
    "MulticoreThermalModel",
    "ThermalBudgetCoordinator",
]
