"""repro: control-theoretic dynamic thermal management with localized
thermal-RC modeling.

A full reproduction of Skadron, Abdelzaher & Stan, "Control-Theoretic
Techniques and Thermal-RC Modeling for Accurate and Localized Dynamic
Thermal Management" (HPCA 2002), including the microarchitectural,
power, and thermal substrates the paper builds on.

Quick start::

    from repro import FastEngine, get_profile, make_policy

    policy = make_policy("pid")
    result = FastEngine(get_profile("gcc"), policy=policy).run()
    print(result.ipc, result.emergency_fraction)
"""

from repro.config import (
    BranchPredictorConfig,
    CacheConfig,
    DTMConfig,
    MachineConfig,
    TelemetryConfig,
    ThermalConfig,
)
from repro.control import PIDController, dtm_plant, simulate_step_response, tune
from repro.dtm import DTMManager, FetchToggling, make_policy
from repro.errors import ReproError
from repro.power import PowerModel
from repro.sim import DetailedSimulator, FastEngine, RunResult, run_suite
from repro.telemetry import Telemetry
from repro.thermal import Floorplan, LumpedThermalModel, PackageModel
from repro.workloads import BENCHMARKS, get_profile

__version__ = "1.0.0"

__all__ = [
    "BENCHMARKS",
    "BranchPredictorConfig",
    "CacheConfig",
    "DTMConfig",
    "DTMManager",
    "DetailedSimulator",
    "FastEngine",
    "FetchToggling",
    "Floorplan",
    "LumpedThermalModel",
    "MachineConfig",
    "PIDController",
    "PackageModel",
    "PowerModel",
    "ReproError",
    "RunResult",
    "Telemetry",
    "TelemetryConfig",
    "ThermalConfig",
    "dtm_plant",
    "get_profile",
    "make_policy",
    "run_suite",
    "simulate_step_response",
    "tune",
    "__version__",
]
