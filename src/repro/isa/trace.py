"""Trace serialization: the EIO-trace stand-in.

The paper uses SimpleScalar EIO traces "to ensure reproducible results
for each benchmark across multiple simulations".  Our workloads are
seeded generators and therefore already reproducible, but experiments
sometimes want to snapshot a generated stream (e.g. to replay the exact
same instructions through two differently-configured cores).  This
module writes/reads a compact text format, one instruction per line:

    pc op dest src1,src2 address taken target
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Iterator

from repro.errors import WorkloadError
from repro.isa.instructions import Instruction, OpClass

_OP_BY_VALUE = {op.value: op for op in OpClass}


class TraceWriter:
    """Streams instructions to a trace file."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._handle = self.path.open("w", encoding="ascii")
        self.count = 0

    def write(self, instruction: Instruction) -> None:
        """Append one instruction to the trace."""
        sources = ",".join(str(reg) for reg in instruction.src_regs) or "-"
        self._handle.write(
            f"{instruction.pc:x} {instruction.op.value} {instruction.dest_reg} "
            f"{sources} {instruction.address:x} {int(instruction.taken)} "
            f"{instruction.target:x}\n"
        )
        self.count += 1

    def close(self) -> None:
        """Flush and close the underlying file."""
        self._handle.close()

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class TraceReader:
    """Iterates instructions from a trace file."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        if not self.path.exists():
            raise WorkloadError(f"trace file not found: {self.path}")

    def __iter__(self) -> Iterator[Instruction]:
        with self.path.open("r", encoding="ascii") as handle:
            for line_number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line or line.startswith("#"):
                    continue
                yield _parse_line(line, line_number, self.path)


def _parse_line(line: str, line_number: int, path: Path) -> Instruction:
    parts = line.split()
    if len(parts) != 7:
        raise WorkloadError(f"{path}:{line_number}: expected 7 fields, got {len(parts)}")
    pc_text, op_text, dest_text, srcs_text, addr_text, taken_text, target_text = parts
    op = _OP_BY_VALUE.get(op_text)
    if op is None:
        raise WorkloadError(f"{path}:{line_number}: unknown op {op_text!r}")
    sources: tuple[int, ...]
    if srcs_text == "-":
        sources = ()
    else:
        sources = tuple(int(reg) for reg in srcs_text.split(","))
    return Instruction(
        pc=int(pc_text, 16),
        op=op,
        dest_reg=int(dest_text),
        src_regs=sources,
        address=int(addr_text, 16),
        taken=bool(int(taken_text)),
        target=int(target_text, 16),
    )


def save_trace(path: str | Path, instructions: Iterable[Instruction]) -> int:
    """Write an instruction stream to ``path``; returns the count."""
    with TraceWriter(path) as writer:
        for instruction in instructions:
            writer.write(instruction)
        return writer.count


def load_trace(path: str | Path) -> list[Instruction]:
    """Read an entire trace into memory."""
    return list(TraceReader(path))
