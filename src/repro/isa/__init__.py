"""A small synthetic ISA for trace-driven simulation.

Stands in for the Alpha ISA + SimpleScalar EIO traces of the paper:
instructions carry exactly the information the timing and power models
need (operation class, register dependences, memory address, branch
outcome), and traces are produced by seeded generators so every run is
bit-reproducible, which is the property EIO traces provided the paper.
"""

from repro.isa.instructions import Instruction, OpClass
from repro.isa.trace import TraceReader, TraceWriter, load_trace, save_trace

__all__ = [
    "Instruction",
    "OpClass",
    "TraceReader",
    "TraceWriter",
    "load_trace",
    "save_trace",
]
