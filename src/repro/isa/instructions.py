"""Instruction representation for the synthetic ISA."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class OpClass(enum.Enum):
    """Operation classes, matching the simulated functional units."""

    INT_ALU = "int_alu"
    INT_MULT = "int_mult"
    FP_ALU = "fp_alu"
    FP_MULT = "fp_mult"
    LOAD = "load"
    STORE = "store"
    BRANCH = "branch"
    NOP = "nop"

    @property
    def is_memory(self) -> bool:
        """True for loads and stores."""
        return self in (OpClass.LOAD, OpClass.STORE)

    @property
    def is_fp(self) -> bool:
        """True for floating-point operations."""
        return self in (OpClass.FP_ALU, OpClass.FP_MULT)


#: Execution latency [cycles] of each operation class once issued.
EXECUTION_LATENCY: dict[OpClass, int] = {
    OpClass.INT_ALU: 1,
    OpClass.INT_MULT: 7,
    OpClass.FP_ALU: 4,
    OpClass.FP_MULT: 12,
    OpClass.LOAD: 1,  # plus cache latency, resolved by the memory system
    OpClass.STORE: 1,
    OpClass.BRANCH: 1,
    OpClass.NOP: 1,
}


@dataclass
class Instruction:
    """One dynamic instruction in a trace.

    ``src_regs``/``dest_reg`` encode true data dependences; the
    generator chooses register numbers so the dependence distance
    distribution realizes a profile's ILP.  ``address`` is the effective
    address for memory operations.  ``taken``/``target`` record the
    architectural branch outcome (trace-driven simulation knows the
    right path; the predictor decides whether the pipeline does).
    """

    pc: int
    op: OpClass
    dest_reg: int = -1
    src_regs: tuple[int, ...] = field(default=())
    address: int = 0
    taken: bool = False
    target: int = 0

    @property
    def latency(self) -> int:
        """Base execution latency of this instruction [cycles]."""
        return EXECUTION_LATENCY[self.op]

    @property
    def is_branch(self) -> bool:
        """True if the instruction is a control transfer."""
        return self.op is OpClass.BRANCH
