"""Command-line interface: run benchmarks under DTM policies.

Examples::

    python -m repro run gcc --policy pid
    python -m repro run mesa --policy toggle1 --instructions 3000000
    python -m repro run gcc --policy pi --dropout 0.05 --watchdog
    python -m repro run gcc --policy pi --stuck-window 420 470 \
        --stuck-value 100.5 --watchdog
    python -m repro compare gcc --policies toggle1 m pid
    python -m repro list
"""

from __future__ import annotations

import argparse
import sys

from repro.config import FailsafeConfig
from repro.dtm.policies import POLICY_NAMES
from repro.faults import FaultSchedule, FaultWindow
from repro.sim.sweep import run_one
from repro.workloads.profiles import BENCHMARKS, get_profile


def _print_result(result, baseline=None) -> None:
    print(f"benchmark:        {result.benchmark}")
    print(f"policy:           {result.policy}")
    print(f"cycles:           {result.cycles:,}")
    print(f"instructions:     {result.instructions:,.0f}")
    print(f"IPC:              {result.ipc:.3f}")
    if baseline is not None:
        print(f"% of non-DTM IPC: {100 * result.relative_ipc(baseline):.1f}")
    print(f"mean chip power:  {result.mean_chip_power:.1f} W")
    print(f"max temperature:  {result.max_temperature:.3f} C")
    print(f"emergency cycles: {100 * result.emergency_fraction:.3f} %")
    print(f"stress cycles:    {100 * result.stress_fraction:.3f} %")
    if result.extra:
        width = max(len(key) for key in result.extra) + 2
        for key, value in sorted(result.extra.items()):
            print(f"{key + ':':<{width}}{value:g}")


def cmd_list(_args) -> int:
    print("benchmarks (thermal category):")
    for name, profile in BENCHMARKS.items():
        print(f"  {name:10s} {profile.category.value:8s} "
              f"mean IPC {profile.mean_ipc:.2f}")
    print("\npolicies:", ", ".join(POLICY_NAMES))
    return 0


def _fault_schedule(args) -> FaultSchedule | None:
    """Build a fault schedule from CLI flags (``None`` when fault-free)."""
    windows = []
    if args.stuck_window is not None:
        start, end = args.stuck_window
        windows.append(FaultWindow(start, end, value=args.stuck_value))
    if not (args.dropout or args.spike_rate or args.drift or windows):
        return None
    return FaultSchedule(
        args.fault_seed,
        dropout_rate=args.dropout,
        spike_rate=args.spike_rate,
        drift_per_sample=args.drift,
        sensor_stuck_windows=windows,
    )


def cmd_run(args) -> int:
    get_profile(args.benchmark)  # validate early, friendly error
    baseline = None
    if args.policy != "none":
        baseline = run_one(
            args.benchmark, "none", instructions=args.instructions,
            seed=args.seed,
        )
    result = run_one(
        args.benchmark,
        args.policy,
        instructions=args.instructions,
        seed=args.seed,
        setpoint=args.setpoint,
        fault_schedule=_fault_schedule(args),
        failsafe=FailsafeConfig() if args.watchdog else None,
    )
    _print_result(result, baseline)
    return 0


def cmd_compare(args) -> int:
    baseline = run_one(
        args.benchmark, "none", instructions=args.instructions, seed=args.seed
    )
    print(f"{args.benchmark}: baseline IPC {baseline.ipc:.3f}, "
          f"{100 * baseline.emergency_fraction:.2f}% emergency")
    header = f"{'policy':>8} {'%IPC':>7} {'em%':>8} {'maxT':>9}"
    print(header)
    print("-" * len(header))
    for policy in args.policies:
        result = run_one(
            args.benchmark, policy, instructions=args.instructions,
            seed=args.seed,
        )
        print(
            f"{policy:>8} {100 * result.relative_ipc(baseline):7.1f} "
            f"{100 * result.emergency_fraction:8.3f} "
            f"{result.max_temperature:9.3f}"
        )
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``python -m repro``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Control-theoretic DTM with localized thermal-RC modeling.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list benchmarks and policies")

    run_parser = sub.add_parser("run", help="run one benchmark under one policy")
    run_parser.add_argument("benchmark")
    run_parser.add_argument("--policy", default="pid", choices=POLICY_NAMES)
    run_parser.add_argument("--instructions", type=float, default=2_000_000)
    run_parser.add_argument("--setpoint", type=float, default=None)
    run_parser.add_argument("--seed", type=int, default=0)
    faults = run_parser.add_argument_group(
        "fault injection (see docs/robustness.md)"
    )
    faults.add_argument(
        "--dropout", type=float, default=0.0, metavar="RATE",
        help="per-sample probability of a lost (NaN) sensor reading",
    )
    faults.add_argument(
        "--spike-rate", type=float, default=0.0, metavar="RATE",
        help="per-sample probability of a +/-5K sensor spike",
    )
    faults.add_argument(
        "--drift", type=float, default=0.0, metavar="K_PER_SAMPLE",
        help="additive sensor drift per sample",
    )
    faults.add_argument(
        "--stuck-window", type=int, nargs=2, default=None,
        metavar=("START", "END"),
        help="sample interval [START, END) with a stuck sensor",
    )
    faults.add_argument(
        "--stuck-value", type=float, default=None, metavar="DEGC",
        help="rail the stuck sensor at this reading "
        "(default: hold the last pre-window value)",
    )
    faults.add_argument(
        "--fault-seed", type=int, default=0,
        help="seed of the deterministic fault schedule",
    )
    faults.add_argument(
        "--watchdog", action="store_true",
        help="enable the failsafe DTM layer (plausibility gate, "
        "thermal watchdog, open-loop fallback)",
    )

    compare_parser = sub.add_parser(
        "compare", help="compare several policies on one benchmark"
    )
    compare_parser.add_argument("benchmark")
    compare_parser.add_argument(
        "--policies", nargs="+", default=["toggle1", "m", "pid"],
        choices=[p for p in POLICY_NAMES if p != "none"],
    )
    compare_parser.add_argument("--instructions", type=float, default=2_000_000)
    compare_parser.add_argument("--seed", type=int, default=0)

    args = parser.parse_args(argv)
    commands = {"list": cmd_list, "run": cmd_run, "compare": cmd_compare}
    return commands[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
