"""Command-line interface: run benchmarks under DTM policies.

Examples::

    python -m repro run gcc --policy pid
    python -m repro run mesa --policy toggle1 --instructions 3000000
    python -m repro compare gcc --policies toggle1 m pid
    python -m repro list
"""

from __future__ import annotations

import argparse
import sys

from repro.dtm.policies import POLICY_NAMES
from repro.sim.sweep import run_one
from repro.workloads.profiles import BENCHMARKS, get_profile


def _print_result(result, baseline=None) -> None:
    print(f"benchmark:        {result.benchmark}")
    print(f"policy:           {result.policy}")
    print(f"cycles:           {result.cycles:,}")
    print(f"instructions:     {result.instructions:,.0f}")
    print(f"IPC:              {result.ipc:.3f}")
    if baseline is not None:
        print(f"% of non-DTM IPC: {100 * result.relative_ipc(baseline):.1f}")
    print(f"mean chip power:  {result.mean_chip_power:.1f} W")
    print(f"max temperature:  {result.max_temperature:.3f} C")
    print(f"emergency cycles: {100 * result.emergency_fraction:.3f} %")
    print(f"stress cycles:    {100 * result.stress_fraction:.3f} %")


def cmd_list(_args) -> int:
    print("benchmarks (thermal category):")
    for name, profile in BENCHMARKS.items():
        print(f"  {name:10s} {profile.category.value:8s} "
              f"mean IPC {profile.mean_ipc:.2f}")
    print("\npolicies:", ", ".join(POLICY_NAMES))
    return 0


def cmd_run(args) -> int:
    get_profile(args.benchmark)  # validate early, friendly error
    baseline = None
    if args.policy != "none":
        baseline = run_one(
            args.benchmark, "none", instructions=args.instructions,
            seed=args.seed,
        )
    result = run_one(
        args.benchmark,
        args.policy,
        instructions=args.instructions,
        seed=args.seed,
        setpoint=args.setpoint,
    )
    _print_result(result, baseline)
    return 0


def cmd_compare(args) -> int:
    baseline = run_one(
        args.benchmark, "none", instructions=args.instructions, seed=args.seed
    )
    print(f"{args.benchmark}: baseline IPC {baseline.ipc:.3f}, "
          f"{100 * baseline.emergency_fraction:.2f}% emergency")
    header = f"{'policy':>8} {'%IPC':>7} {'em%':>8} {'maxT':>9}"
    print(header)
    print("-" * len(header))
    for policy in args.policies:
        result = run_one(
            args.benchmark, policy, instructions=args.instructions,
            seed=args.seed,
        )
        print(
            f"{policy:>8} {100 * result.relative_ipc(baseline):7.1f} "
            f"{100 * result.emergency_fraction:8.3f} "
            f"{result.max_temperature:9.3f}"
        )
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``python -m repro``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Control-theoretic DTM with localized thermal-RC modeling.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list benchmarks and policies")

    run_parser = sub.add_parser("run", help="run one benchmark under one policy")
    run_parser.add_argument("benchmark")
    run_parser.add_argument("--policy", default="pid", choices=POLICY_NAMES)
    run_parser.add_argument("--instructions", type=float, default=2_000_000)
    run_parser.add_argument("--setpoint", type=float, default=None)
    run_parser.add_argument("--seed", type=int, default=0)

    compare_parser = sub.add_parser(
        "compare", help="compare several policies on one benchmark"
    )
    compare_parser.add_argument("benchmark")
    compare_parser.add_argument(
        "--policies", nargs="+", default=["toggle1", "m", "pid"],
        choices=[p for p in POLICY_NAMES if p != "none"],
    )
    compare_parser.add_argument("--instructions", type=float, default=2_000_000)
    compare_parser.add_argument("--seed", type=int, default=0)

    args = parser.parse_args(argv)
    commands = {"list": cmd_list, "run": cmd_run, "compare": cmd_compare}
    return commands[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
