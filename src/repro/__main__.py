"""Command-line interface: run benchmarks under DTM policies.

Examples::

    python -m repro run gcc --policy pid
    python -m repro run mesa --policy toggle1 --instructions 3000000
    python -m repro run gcc --policy pi --dropout 0.05 --watchdog
    python -m repro run gcc --policy pi --stuck-window 420 470 \
        --stuck-value 100.5 --watchdog
    python -m repro run gcc --policy pid --trace-out trace.jsonl \
        --metrics-out metrics.json
    python -m repro run gcc,gzip,art,mesa --cores 4 --policy pid \
        --coordinator proportional
    python -m repro trace trace.jsonl --top 5
    python -m repro compare gcc --policies toggle1 m pid
    python -m repro compare gcc --policies pid --cache
    python -m repro cache stats
    python -m repro list

With ``--cores N`` (N > 1) the benchmark argument is a comma-separated
mix assigned to cores round-robin and the run uses the multicore engine
(:mod:`repro.multicore`); ``--coordinator`` adds chip-level arbitration
above the per-core loops.
"""

from __future__ import annotations

import argparse
import sys

from repro.config import FailsafeConfig, TelemetryConfig
from repro.dtm.policies import POLICY_NAMES
from repro.faults import FaultSchedule, FaultWindow
from repro.sim.sweep import run_one
from repro.workloads.profiles import BENCHMARKS, get_profile


def _print_result(result, baseline=None) -> None:
    print(f"benchmark:        {result.benchmark}")
    print(f"policy:           {result.policy}")
    print(f"cycles:           {result.cycles:,}")
    print(f"instructions:     {result.instructions:,.0f}")
    print(f"IPC:              {result.ipc:.3f}")
    if baseline is not None:
        print(f"% of non-DTM IPC: {100 * result.relative_ipc(baseline):.1f}")
    print(f"mean chip power:  {result.mean_chip_power:.1f} W")
    print(f"max temperature:  {result.max_temperature:.3f} C")
    print(f"emergency cycles: {100 * result.emergency_fraction:.3f} %")
    print(f"stress cycles:    {100 * result.stress_fraction:.3f} %")
    if result.extra:
        width = max(len(key) for key in result.extra) + 2
        for key, value in sorted(result.extra.items()):
            print(f"{key + ':':<{width}}{value:g}")


def cmd_list(_args) -> int:
    print("benchmarks (thermal category):")
    for name, profile in BENCHMARKS.items():
        print(f"  {name:10s} {profile.category.value:8s} "
              f"mean IPC {profile.mean_ipc:.2f}")
    print("\npolicies:", ", ".join(POLICY_NAMES))
    return 0


def _fault_schedule(args) -> FaultSchedule | None:
    """Build a fault schedule from CLI flags (``None`` when fault-free)."""
    windows = []
    if args.stuck_window is not None:
        start, end = args.stuck_window
        windows.append(FaultWindow(start, end, value=args.stuck_value))
    if not (args.dropout or args.spike_rate or args.drift or windows):
        return None
    return FaultSchedule(
        args.fault_seed,
        dropout_rate=args.dropout,
        spike_rate=args.spike_rate,
        drift_per_sample=args.drift,
        sensor_stuck_windows=windows,
    )


def _build_telemetry(args):
    """A live :class:`Telemetry` when any observability flag asks for one."""
    if not (args.telemetry or args.trace_out or args.metrics_out):
        return None
    from repro.telemetry import Telemetry

    return Telemetry(TelemetryConfig(trace_mode=args.trace_mode))


def _export_telemetry(telemetry, args) -> None:
    """Write the requested trace/metrics files and a one-line receipt."""
    from repro.telemetry import (
        write_metrics_json,
        write_trace_csv,
        write_trace_jsonl,
    )

    if args.trace_out:
        if args.trace_out.endswith(".csv"):
            rows = write_trace_csv(
                telemetry.trace,
                args.trace_out,
                block_names=telemetry.meta.get("block_names"),
            )
            print(f"trace:            {args.trace_out} ({rows} samples, CSV)")
        else:
            lines = write_trace_jsonl(
                telemetry.trace, args.trace_out, meta=telemetry.meta
            )
            print(f"trace:            {args.trace_out} ({lines} lines, JSONL)")
    if args.metrics_out:
        write_metrics_json(telemetry.snapshot(), args.metrics_out)
        print(f"metrics:          {args.metrics_out}")


def _print_telemetry_summary(telemetry) -> None:
    snapshot = telemetry.snapshot()
    trace = snapshot["trace"]
    print(
        f"trace retained:   {trace['retained']} of {trace['emitted']} "
        f"samples (mode={trace['mode']}, stride={trace['stride']}), "
        f"{trace['events']} events"
    )
    if snapshot["spans"]:
        print(telemetry.profiler.report())


def _print_multicore_result(result, baseline=None) -> None:
    print(f"benchmarks:       {','.join(result.benchmarks)}")
    print(f"policy:           {result.policy}")
    print(f"coordinator:      {result.coordinator or '(none)'}")
    print(f"cores:            {result.n_cores}")
    print(f"cycles:           {result.cycles:,}")
    print(f"throughput:       {result.throughput:.3f} IPC")
    if baseline is not None:
        print(
            f"% of non-DTM thr: "
            f"{100 * result.relative_throughput(baseline):.1f}"
        )
    print(f"mean chip power:  {result.mean_chip_power:.1f} W")
    print(f"max temperature:  {result.max_temperature:.3f} C "
          f"(core {result.hottest_core})")
    print(f"emergency cycles: {100 * result.emergency_fraction:.3f} %")
    print(f"stress cycles:    {100 * result.stress_fraction:.3f} %")
    if result.extra:
        width = max(len(key) for key in result.extra) + 2
        for key, value in sorted(result.extra.items()):
            print(f"{key + ':':<{width}}{value:g}")
    header = (
        f"{'core':>4} {'benchmark':>10} {'IPC':>7} {'em%':>8} "
        f"{'maxT':>9} {'demoted':>8}"
    )
    print(header)
    print("-" * len(header))
    for core in result.cores:
        print(
            f"{core.core:>4} {core.benchmark:>10} {core.ipc:7.3f} "
            f"{100 * core.emergency_fraction:8.3f} "
            f"{core.max_temperature:9.3f} {core.demoted_samples:8d}"
        )


def _run_multicore(args) -> int:
    """The ``run --cores N`` branch: one multiprogram multicore run."""
    from repro.multicore import MulticoreEngine

    names = [name.strip() for name in args.benchmark.split(",") if name.strip()]
    for name in names:
        get_profile(name)  # validate early, friendly error
    benchmarks = tuple(names[i % len(names)] for i in range(args.cores))
    schedule = _fault_schedule(args)
    # Faults target core 0 (the engine supports arbitrary per-core
    # schedules; the CLI exposes the single-victim case).
    fault_schedules = {0: schedule} if schedule is not None else None
    failsafe = FailsafeConfig() if args.watchdog else None

    baseline = None
    if args.policy != "none":
        baseline = MulticoreEngine(
            benchmarks, policy="none", seed=args.seed
        ).run(instructions=args.instructions)
    telemetry = _build_telemetry(args)
    engine = MulticoreEngine(
        benchmarks,
        policy=args.policy,
        coordinator=args.coordinator,
        seed=args.seed,
        fault_schedules=fault_schedules,
        failsafe=failsafe,
        telemetry=telemetry,
    )
    result = engine.run(instructions=args.instructions)
    _print_multicore_result(result, baseline)
    if telemetry is not None:
        _print_telemetry_summary(telemetry)
        _export_telemetry(telemetry, args)
    return 0


def cmd_run(args) -> int:
    if args.cores < 1:
        print("error: --cores must be at least 1", file=sys.stderr)
        return 2
    if args.cores > 1:
        if args.setpoint is not None:
            print(
                "error: --setpoint is not supported with --cores > 1",
                file=sys.stderr,
            )
            return 2
        return _run_multicore(args)
    if args.coordinator is not None:
        print(
            "error: --coordinator requires --cores > 1", file=sys.stderr
        )
        return 2
    get_profile(args.benchmark)  # validate early, friendly error
    baseline = None
    if args.policy != "none":
        baseline = run_one(
            args.benchmark, "none", instructions=args.instructions,
            seed=args.seed,
        )
    telemetry = _build_telemetry(args)
    result = run_one(
        args.benchmark,
        args.policy,
        instructions=args.instructions,
        seed=args.seed,
        setpoint=args.setpoint,
        fault_schedule=_fault_schedule(args),
        failsafe=FailsafeConfig() if args.watchdog else None,
        telemetry=telemetry,
    )
    _print_result(result, baseline)
    if telemetry is not None:
        _print_telemetry_summary(telemetry)
        _export_telemetry(telemetry, args)
    return 0


def cmd_trace(args) -> int:
    """Render the offline report for an exported JSONL trace."""
    from repro.telemetry import read_trace_jsonl, render_report

    trace = read_trace_jsonl(args.trace_file)
    print(
        render_report(
            trace.records,
            trace.events,
            threshold=args.threshold,
            top=args.top,
            meta=trace.meta,
        )
    )
    return 0


def _sweep_options(args):
    """Build SweepOptions from CLI flags, or None if none were given.

    Returning ``None`` when no resilience flag is set keeps the default
    path on the legacy (bit-identical, option-free) executor.
    """
    from repro.sim.parallel import RetryPolicy, SweepOptions

    if not (
        args.retries
        or args.timeout is not None
        or args.checkpoint is not None
        or args.resume
        or args.strict
    ):
        return None
    return SweepOptions(
        retry=RetryPolicy(
            max_retries=args.retries,
            backoff_seconds=args.retry_backoff,
        ),
        timeout_seconds=args.timeout,
        checkpoint_path=args.checkpoint,
        resume=args.resume,
        strict=args.strict,
    )


def _install_signal_handlers() -> None:
    """Convert SIGTERM into KeyboardInterrupt for clean shutdown.

    The coordinator and worker loops both handle KeyboardInterrupt by
    flushing the checkpoint journal and closing their sockets, so a
    ``kill``/``systemctl stop`` gets the same orderly teardown as
    Ctrl-C.  Signal handlers only install from the main thread (the
    interpreter forbids anything else; CLI tests drive these commands
    from worker threads).
    """
    import signal
    import threading

    if threading.current_thread() is not threading.main_thread():
        return

    def _handler(signum, frame):
        raise KeyboardInterrupt

    signal.signal(signal.SIGTERM, _handler)


def _cluster_config(endpoint: str, token, allow_ephemeral: bool = False):
    """Validated :class:`ClusterConfig` from ``--cluster``/``--bind`` flags."""
    from repro.sim.distributed import ClusterConfig, parse_endpoint

    host, port = parse_endpoint(endpoint, allow_ephemeral=allow_ephemeral)
    return ClusterConfig(host, port, token if token is not None else "")


def _compare_specs(args):
    from repro.sim.parallel import matrix_specs

    return matrix_specs(
        [args.benchmark],
        ["none", *args.policies],
        seeds=(args.seed,),
        instructions=args.instructions,
    )


def _print_compare_table(args, results, failures) -> int:
    baseline, policy_results = results[0], results[1:]
    if baseline is None:
        error = failures.get(0)
        print(
            f"error: baseline run failed "
            f"({error.kind}: {error.message})",
            file=sys.stderr,
        )
        return 1
    print(f"{args.benchmark}: baseline IPC {baseline.ipc:.3f}, "
          f"{100 * baseline.emergency_fraction:.2f}% emergency")
    header = f"{'policy':>8} {'%IPC':>7} {'em%':>8} {'maxT':>9}"
    print(header)
    print("-" * len(header))
    for position, (policy, result) in enumerate(
        zip(args.policies, policy_results), start=1
    ):
        if result is None:
            error = failures[position]
            print(f"{policy:>8}  FAILED ({error.kind}: {error.exc_type})")
            continue
        print(
            f"{policy:>8} {100 * result.relative_ipc(baseline):7.1f} "
            f"{100 * result.emergency_fraction:8.3f} "
            f"{result.max_temperature:9.3f}"
        )
    return 2 if failures else 0


def cmd_compare(args) -> int:
    from repro.errors import CacheError, ConfigError, ShardError, SweepError
    from repro.sim.parallel import run_outcomes, run_specs

    cluster = None
    if getattr(args, "cluster", None):
        try:
            cluster = _cluster_config(args.cluster, args.token)
        except ConfigError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        _install_signal_handlers()
    try:
        cache = _cache_store(args)
    except CacheError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    specs = _compare_specs(args)
    options = _sweep_options(args)
    failures: dict[int, object] = {}
    if options is None and cluster is None:
        results = run_specs(
            specs, jobs=args.jobs, batch=args.batch, cache=cache
        )
    else:
        try:
            outcomes = run_outcomes(
                specs,
                jobs=args.jobs,
                options=options,
                batch=args.batch,
                cluster=cluster,
                cache=cache,
            )
        except (SweepError, ShardError) as error:
            print(f"error: {error}", file=sys.stderr)
            return 1
        results = [outcome.result for outcome in outcomes]
        failures = {
            outcome.index: outcome.error
            for outcome in outcomes
            if outcome.error is not None
        }
    return _print_compare_table(args, results, failures)


def cmd_serve(args) -> int:
    """Coordinate a distributed compare sweep (``serve-sweep``)."""
    from repro.errors import CacheError, ConfigError, ShardError, SweepError
    from repro.sim.distributed import ShardCoordinator

    try:
        cluster = _cluster_config(
            args.bind, args.token, allow_ephemeral=True
        )
    except ConfigError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    try:
        cache = _cache_store(args)
    except CacheError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    _install_signal_handlers()
    specs = _compare_specs(args)
    coordinator = ShardCoordinator(
        specs, cluster, options=_sweep_options(args), cache=cache
    )
    try:
        coordinator.start()
        print(
            f"serving {len(specs)} specs on "
            f"{cluster.host}:{coordinator.port} "
            f"(connect workers with: python -m repro work "
            f"--connect {cluster.host}:{coordinator.port} --token ...)",
            flush=True,
        )
        outcomes = coordinator.wait()
    except KeyboardInterrupt:
        stats = coordinator.stats()
        print(
            f"interrupted: {stats['settled']} of {stats['total']} specs "
            f"settled; the checkpoint journal (if any) holds them for "
            f"--resume",
            file=sys.stderr,
        )
        return 130
    except SweepError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except ShardError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    results = [outcome.result for outcome in outcomes]
    failures = {
        outcome.index: outcome.error
        for outcome in outcomes
        if outcome.error is not None
    }
    return _print_compare_table(args, results, failures)


def cmd_work(args) -> int:
    """Serve a shard coordinator as a worker (``work``)."""
    from repro.errors import ConfigError, ShardError
    from repro.sim.distributed import run_worker

    try:
        cluster = _cluster_config(args.connect, args.token)
    except ConfigError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.idle_timeout is not None and args.idle_timeout < 0:
        print("error: --idle-timeout must be >= 0", file=sys.stderr)
        return 2
    _install_signal_handlers()
    try:
        stats = run_worker(
            cluster,
            jobs=args.jobs,
            batch=args.batch,
            once=args.once,
            idle_timeout=args.idle_timeout,
        )
    except KeyboardInterrupt:
        print("worker interrupted; connection closed", file=sys.stderr)
        return 130
    except ShardError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    print(
        f"worker done: {stats['executed']} spec(s) executed across "
        f"{stats['sweeps']} sweep(s), {stats['failures']} failure(s)"
    )
    return 0


def _cache_store(args):
    """The result-cache handle requested by ``--cache``/``--no-cache``.

    Returns a :class:`~repro.sim.cache.ResultCache` for an explicit
    ``--cache``, ``False`` for ``--no-cache`` (which also overrides the
    process default and ``REPRO_CACHE``), or ``None`` to defer to
    :func:`~repro.sim.parallel.resolve_cache` downstream.  Raises
    :class:`~repro.errors.CacheError` for an unusable directory.
    """
    if getattr(args, "no_cache", False):
        return False
    if getattr(args, "cache", None) is None:
        return None
    from repro.sim.cache import ResultCache

    return ResultCache(args.cache)


def cmd_cache(args) -> int:
    """Inspect or compact a result cache (``cache stats|verify|gc``)."""
    import os

    from repro.errors import CacheError
    from repro.sim.cache import DEFAULT_CACHE_DIR, ResultCache, cache_metrics

    directory = args.cache
    if directory is None:
        directory = os.environ.get("REPRO_CACHE") or DEFAULT_CACHE_DIR
    try:
        store = ResultCache(directory, max_bytes=args.max_bytes)
    except CacheError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.action == "stats":
        stats = store.stats()
        registry = cache_metrics()
        print(f"cache:            {stats['path']}")
        print(f"entries:          {stats['entries']}")
        print(
            f"log bytes:        {stats['bytes']:,} "
            f"(gc budget {stats['max_bytes']:,})"
        )
        print(f"corrupt lines:    {stats['corrupt_lines']}")
        for name in ("hits", "misses", "evictions"):
            live = int(registry.counter(f"cache.{name}").value)
            print(f"{name + ':':<18}{stats[name]} lifetime, {live} live")
        return 0
    if args.action == "verify":
        report = store.verify()
        print(f"cache:                {report['path']}")
        print(f"schema ok:            {report['schema_ok']}")
        print(f"entries:              {report['entries']}")
        print(f"touch lines:          {report['touches']}")
        print(f"counter lines:        {report['counter_lines']}")
        print(f"corrupt lines:        {report['corrupt_lines']}")
        print(f"undecodable entries:  {report['undecodable_entries']}")
        print(f"torn tail:            {report['torn_tail']}")
        print(f"log bytes:            {report['bytes']:,}")
        for problem in report["errors"]:
            print(f"  {problem}", file=sys.stderr)
        healthy = (
            report["schema_ok"]
            and not report["corrupt_lines"]
            and not report["undecodable_entries"]
        )
        return 0 if healthy else 1
    try:
        summary = store.gc()
    except CacheError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(
        f"gc: kept {summary['kept']} entr(y/ies), evicted "
        f"{summary['evicted']}, log now {summary['bytes']:,} bytes"
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``python -m repro``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Control-theoretic DTM with localized thermal-RC modeling.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list benchmarks and policies")

    run_parser = sub.add_parser("run", help="run one benchmark under one policy")
    run_parser.add_argument(
        "benchmark",
        help="benchmark name; with --cores, a comma-separated mix "
        "assigned to cores round-robin",
    )
    run_parser.add_argument("--policy", default="pid", choices=POLICY_NAMES)
    run_parser.add_argument("--instructions", type=float, default=2_000_000)
    run_parser.add_argument("--setpoint", type=float, default=None)
    run_parser.add_argument("--seed", type=int, default=0)
    multicore = run_parser.add_argument_group(
        "multicore (see docs/multicore.md)"
    )
    multicore.add_argument(
        "--cores", type=int, default=1, metavar="N",
        help="number of cores; N > 1 uses the multicore engine with "
        "one per-core DTM loop each (default: 1, single-core)",
    )
    multicore.add_argument(
        "--coordinator", default=None,
        choices=("uniform", "hottest", "proportional"),
        help="chip-level duty-budget arbitration above the per-core "
        "loops (multicore only; default: uncoordinated)",
    )
    faults = run_parser.add_argument_group(
        "fault injection (see docs/robustness.md)"
    )
    faults.add_argument(
        "--dropout", type=float, default=0.0, metavar="RATE",
        help="per-sample probability of a lost (NaN) sensor reading",
    )
    faults.add_argument(
        "--spike-rate", type=float, default=0.0, metavar="RATE",
        help="per-sample probability of a +/-5K sensor spike",
    )
    faults.add_argument(
        "--drift", type=float, default=0.0, metavar="K_PER_SAMPLE",
        help="additive sensor drift per sample",
    )
    faults.add_argument(
        "--stuck-window", type=int, nargs=2, default=None,
        metavar=("START", "END"),
        help="sample interval [START, END) with a stuck sensor",
    )
    faults.add_argument(
        "--stuck-value", type=float, default=None, metavar="DEGC",
        help="rail the stuck sensor at this reading "
        "(default: hold the last pre-window value)",
    )
    faults.add_argument(
        "--fault-seed", type=int, default=0,
        help="seed of the deterministic fault schedule",
    )
    faults.add_argument(
        "--watchdog", action="store_true",
        help="enable the failsafe DTM layer (plausibility gate, "
        "thermal watchdog, open-loop fallback)",
    )
    observability = run_parser.add_argument_group(
        "observability (see docs/observability.md)"
    )
    observability.add_argument(
        "--telemetry", action="store_true",
        help="collect metrics, a DTM decision trace, and span timings; "
        "print a summary after the run",
    )
    observability.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="write the per-sample trace (JSONL, or CSV if PATH ends "
        "in .csv); implies --telemetry",
    )
    observability.add_argument(
        "--metrics-out", default=None, metavar="PATH",
        help="write the metrics/profiler snapshot as JSON; "
        "implies --telemetry",
    )
    observability.add_argument(
        "--trace-mode", default="decimate", choices=("decimate", "ring"),
        help="trace retention: whole run at decreasing resolution "
        "(decimate) or the last N samples (ring)",
    )

    trace_parser = sub.add_parser(
        "trace", help="report on an exported JSONL trace"
    )
    trace_parser.add_argument(
        "trace_file", help="a trace written by --trace-out"
    )
    trace_parser.add_argument(
        "--top", type=int, default=10,
        help="number of hottest samples to list",
    )
    trace_parser.add_argument(
        "--threshold", type=float, default=102.0, metavar="DEGC",
        help="emergency threshold for episode detection",
    )

    def add_matrix_args(target) -> None:
        target.add_argument("benchmark")
        target.add_argument(
            "--policies", nargs="+", default=["toggle1", "m", "pid"],
            choices=[p for p in POLICY_NAMES if p != "none"],
        )
        target.add_argument(
            "--instructions", type=float, default=2_000_000
        )
        target.add_argument("--seed", type=int, default=0)

    def add_resilience_args(target) -> None:
        resilience = target.add_argument_group(
            "fault tolerance (see docs/robustness.md)"
        )
        resilience.add_argument(
            "--retries", type=int, default=0, metavar="N",
            help="re-run a failed/crashed/timed-out spec up to N times",
        )
        resilience.add_argument(
            "--retry-backoff", type=float, default=0.0, metavar="SECONDS",
            help="deterministic backoff before the first retry "
            "(doubles per further retry)",
        )
        resilience.add_argument(
            "--timeout", type=float, default=None, metavar="SECONDS",
            help="per-spec wall-clock timeout; a hung worker is "
            "terminated and the spec charged one attempt",
        )
        resilience.add_argument(
            "--checkpoint", default=None, metavar="PATH",
            help="append each completed spec to a crash-safe JSONL "
            "journal",
        )
        resilience.add_argument(
            "--resume", action="store_true",
            help="skip specs already completed in the --checkpoint "
            "journal (results bit-identical to an uninterrupted sweep)",
        )
        resilience.add_argument(
            "--strict", action="store_true",
            help="raise one aggregated error at the end if any spec "
            "failed permanently (default: print FAILED rows, exit 2)",
        )

    def add_cache_args(target) -> None:
        from repro.sim.cache import DEFAULT_CACHE_DIR

        caching = target.add_argument_group(
            "result caching (see docs/performance.md, Level 5)"
        )
        caching.add_argument(
            "--cache", nargs="?", const=DEFAULT_CACHE_DIR, default=None,
            metavar="DIR",
            help="replay previously completed specs from the persistent "
            f"result cache in DIR (default {DEFAULT_CACHE_DIR}) and "
            "store fresh ones; warm results and telemetry are "
            "bit-identical to a cold sweep",
        )
        caching.add_argument(
            "--no-cache", action="store_true",
            help="disable the result cache even when REPRO_CACHE or a "
            "process-wide default is set",
        )

    compare_parser = sub.add_parser(
        "compare", help="compare several policies on one benchmark"
    )
    add_matrix_args(compare_parser)
    compare_parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for the policy matrix (0 = all cores; "
        "results are bit-identical to --jobs 1)",
    )
    compare_parser.add_argument(
        "--batch", type=int, default=1, metavar="B",
        help="lane-batch width: advance up to B compatible runs through "
        "one vectorized kernel (composes with --jobs; results are "
        "bit-identical to --batch 1)",
    )
    add_resilience_args(compare_parser)
    add_cache_args(compare_parser)
    distributed = compare_parser.add_argument_group(
        "distributed sharding (see docs/performance.md, Level 4)"
    )
    distributed.add_argument(
        "--cluster", default=None, metavar="HOST:PORT",
        help="coordinate the sweep for distributed workers bound to "
        "this endpoint instead of executing locally (results are "
        "bit-identical; requires --token)",
    )
    distributed.add_argument(
        "--token", default=None, metavar="SECRET",
        help="shared worker-authentication token for --cluster",
    )

    serve_parser = sub.add_parser(
        "serve-sweep",
        help="coordinate a distributed compare sweep for remote workers",
    )
    add_matrix_args(serve_parser)
    serve_parser.add_argument(
        "--bind", required=True, metavar="HOST:PORT",
        help="endpoint to listen on (port 0 picks a free port, printed "
        "on startup)",
    )
    serve_parser.add_argument(
        "--token", required=True, metavar="SECRET",
        help="shared token workers must present to authenticate",
    )
    add_resilience_args(serve_parser)
    add_cache_args(serve_parser)

    cache_parser = sub.add_parser(
        "cache",
        help="inspect or compact the persistent result cache",
    )
    cache_parser.add_argument(
        "action", choices=("stats", "verify", "gc"),
        help="stats: entry count, sizes, lifetime hit/miss/eviction "
        "counters; verify: full structural + codec scan; gc: compact "
        "the log, evicting least-recently-used entries past the budget",
    )
    cache_parser.add_argument(
        "--cache", default=None, metavar="DIR",
        help="cache directory (default: REPRO_CACHE, else "
        "~/.cache/repro)",
    )
    cache_parser.add_argument(
        "--max-bytes", type=int, default=None, metavar="N",
        help="GC budget for entry payload bytes (default: "
        "REPRO_CACHE_MAX_BYTES, else 256 MiB)",
    )

    work_parser = sub.add_parser(
        "work", help="execute sweep specs leased from a coordinator"
    )
    work_parser.add_argument(
        "--connect", required=True, metavar="HOST:PORT",
        help="the coordinator endpoint (serve-sweep or compare "
        "--cluster)",
    )
    work_parser.add_argument(
        "--token", required=True, metavar="SECRET",
        help="shared authentication token",
    )
    work_parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="local worker processes per lease batch (0 = all cores)",
    )
    work_parser.add_argument(
        "--batch", type=int, default=1, metavar="B",
        help="local lane-batch width (composes with --jobs)",
    )
    work_parser.add_argument(
        "--once", action="store_true",
        help="exit after the first completed sweep instead of "
        "reconnecting for the next one",
    )
    work_parser.add_argument(
        "--idle-timeout", type=float, default=None, metavar="SECONDS",
        help="exit after this long with no coordinator answering "
        "(default: keep retrying until signalled)",
    )

    args = parser.parse_args(argv)
    if args.command in ("compare", "serve-sweep"):
        if args.resume and args.checkpoint is None:
            parser.error("--resume requires --checkpoint")
        if args.cache is not None and args.no_cache:
            parser.error("--cache conflicts with --no-cache")
    if args.command == "compare" and args.cluster and not args.token:
        parser.error("--cluster requires --token")
    commands = {
        "list": cmd_list,
        "run": cmd_run,
        "compare": cmd_compare,
        "serve-sweep": cmd_serve,
        "trace": cmd_trace,
        "work": cmd_work,
        "cache": cmd_cache,
    }
    return commands[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
