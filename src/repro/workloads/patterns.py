"""Synthetic stress patterns for controller characterization.

Benchmarks exercise the DTM loop with whatever their phases happen to
do; patterns exercise it *systematically*: power steps, square waves,
ramps, and worst-case bursts, built as ordinary
:class:`~repro.workloads.profiles.BenchmarkProfile` objects so every
engine and experiment can consume them.  Used by controller
characterization tests and available to users tuning their own
controllers.
"""

from __future__ import annotations

from repro.errors import WorkloadError
from repro.workloads.phases import Phase, uniform_activity
from repro.workloads.profiles import BenchmarkProfile, ThermalCategory


def step_profile(
    level: float = 0.9,
    idle_instructions: int = 200_000,
    active_instructions: int = 2_000_000,
    ipc: float = 2.0,
    hot_structure: str = "regfile",
) -> BenchmarkProfile:
    """Idle, then a sustained activity step -- the classic plant probe."""
    if not 0.0 < level <= 1.0:
        raise WorkloadError("level must be in (0, 1]")
    return BenchmarkProfile(
        name=f"step-{hot_structure}-{level:g}",
        category=ThermalCategory.EXTREME,
        phases=(
            Phase("idle", idle_instructions, ipc,
                  activity=uniform_activity(0.05), jitter=0.0),
            Phase(
                "active",
                active_instructions,
                ipc,
                activity=uniform_activity(0.3, **{hot_structure: level}),
                jitter=0.0,
            ),
        ),
        seed=901,
    )


def square_wave_profile(
    high: float = 0.9,
    low: float = 0.1,
    half_period_instructions: int = 600_000,
    ipc: float = 1.8,
    hot_structure: str = "regfile",
) -> BenchmarkProfile:
    """Alternating hot/cool phases -- periodic disturbance rejection."""
    if not 0.0 <= low < high <= 1.0:
        raise WorkloadError("need 0 <= low < high <= 1")
    return BenchmarkProfile(
        name=f"square-{hot_structure}",
        category=ThermalCategory.HIGH,
        phases=(
            Phase("high", half_period_instructions, ipc,
                  activity=uniform_activity(0.3, **{hot_structure: high}),
                  jitter=0.0),
            Phase("low", half_period_instructions, ipc,
                  activity=uniform_activity(0.1, **{hot_structure: low}),
                  jitter=0.0),
        ),
        seed=902,
    )


def ramp_profile(
    steps: int = 8,
    peak: float = 0.95,
    instructions_per_step: int = 300_000,
    ipc: float = 1.8,
    hot_structure: str = "regfile",
) -> BenchmarkProfile:
    """A staircase ramp up to peak activity -- tracking behaviour."""
    if steps < 2:
        raise WorkloadError("need at least two ramp steps")
    if not 0.0 < peak <= 1.0:
        raise WorkloadError("peak must be in (0, 1]")
    phases = tuple(
        Phase(
            f"ramp{i}",
            instructions_per_step,
            ipc,
            activity=uniform_activity(
                0.2, **{hot_structure: peak * (i + 1) / steps}
            ),
            jitter=0.0,
        )
        for i in range(steps)
    )
    return BenchmarkProfile(
        name=f"ramp-{hot_structure}",
        category=ThermalCategory.HIGH,
        phases=phases,
        seed=903,
    )


def worst_case_burst_profile(
    burst_instructions: int = 1_200_000,
    gap_instructions: int = 8_000_000,
    ipc: float = 1.8,
) -> BenchmarkProfile:
    """Everything at peak at once, after a long idle -- max overshoot probe.

    This is the adversarial input for setpoint selection: the longest
    cool-down (integral windup pressure) followed by the steepest
    possible heating ramp on every structure simultaneously.
    """
    return BenchmarkProfile(
        name="worst-case-burst",
        category=ThermalCategory.HIGH,
        phases=(
            Phase("gap", gap_instructions, ipc,
                  activity=uniform_activity(0.05), jitter=0.0),
            Phase("burst", burst_instructions, ipc,
                  activity=uniform_activity(1.0), jitter=0.0),
        ),
        seed=904,
    )
