"""Synthetic instruction-stream generation for the detailed core.

``instruction_stream`` turns a :class:`BenchmarkProfile` into an
endless, seeded, deterministic stream of :class:`Instruction` objects
whose statistics follow the active phase's :class:`StreamParameters`:

* instruction mix (branches, loads, stores, FP, integer multiply),
* register dependence distances (controls extractable ILP),
* branch-site population and per-site outcome bias (controls what a
  real predictor can learn, and hence the achieved prediction rate),
* memory address streams mixing sequential walks with random accesses
  over the phase's working set (controls cache miss rates).

Determinism: the same ``(profile, seed)`` pair always yields the same
stream -- the reproducibility property the paper gets from EIO traces.
"""

from __future__ import annotations

import random
from typing import Iterator

from repro.isa.instructions import Instruction, OpClass
from repro.workloads.phases import Phase, StreamParameters
from repro.workloads.profiles import BenchmarkProfile

#: Number of architectural registers the generator allocates across.
_NUM_REGS = 64

#: Base of the synthetic code segment.
_CODE_BASE = 0x0040_0000

#: Base of the synthetic data segment.
_DATA_BASE = 0x1000_0000


class _PhaseState:
    """Mutable generator state for one phase's stream parameters."""

    def __init__(self, phase: Phase, rng: random.Random) -> None:
        self.params: StreamParameters = phase.stream
        sites = self.params.branch_sites
        # Each static branch site has a dominant direction; the dominant
        # direction is followed with the phase's predictability, so a
        # predictor that learns per-site bias approaches that rate.
        self.site_pcs = [_CODE_BASE + 8 * index for index in range(sites)]
        self.site_taken = [rng.random() < 0.6 for _ in range(sites)]
        self.next_site = rng.randrange(sites)
        self.pointer = _DATA_BASE + rng.randrange(self.params.working_set_bytes)


def instruction_stream(
    profile: BenchmarkProfile,
    seed: int = 0,
    start_instruction: int = 0,
) -> Iterator[Instruction]:
    """Yield the dynamic instruction stream of ``profile`` forever.

    ``start_instruction`` selects where in the (looping) phase sequence
    the stream begins, mirroring the paper's fast-forward past program
    startup.
    """
    rng = random.Random((profile.seed << 20) ^ seed ^ 0x5EED)
    states: dict[str, _PhaseState] = {}
    recent_dests: list[int] = []
    pc = _CODE_BASE
    index = start_instruction
    while True:
        phase = profile.phase_at(index)
        state = states.get(phase.name)
        if state is None:
            state = _PhaseState(phase, rng)
            states[phase.name] = state
        instruction, pc = _generate_one(state, rng, pc, recent_dests)
        yield instruction
        index += 1


def _generate_one(
    state: _PhaseState,
    rng: random.Random,
    pc: int,
    recent_dests: list[int],
) -> tuple[Instruction, int]:
    params = state.params
    draw = rng.random()
    branch_cut = params.branch_fraction
    load_cut = branch_cut + params.load_fraction
    store_cut = load_cut + params.store_fraction

    if draw < branch_cut:
        instruction = _generate_branch(state, rng, recent_dests)
        next_pc = instruction.target if instruction.taken else instruction.pc + 4
        return instruction, next_pc
    if draw < load_cut:
        op = OpClass.LOAD
    elif draw < store_cut:
        op = OpClass.STORE
    elif rng.random() < params.fp_fraction:
        op = OpClass.FP_MULT if rng.random() < 0.3 else OpClass.FP_ALU
    elif rng.random() < params.int_mult_fraction:
        op = OpClass.INT_MULT
    else:
        op = OpClass.INT_ALU

    sources = _pick_sources(params, rng, recent_dests, count=2)
    dest = -1 if op is OpClass.STORE else rng.randrange(_NUM_REGS)
    address = _next_address(state, rng) if op.is_memory else 0
    instruction = Instruction(
        pc=pc, op=op, dest_reg=dest, src_regs=sources, address=address
    )
    if dest >= 0:
        recent_dests.append(dest)
        if len(recent_dests) > 256:
            del recent_dests[:128]
    return instruction, pc + 4


def _generate_branch(
    state: _PhaseState, rng: random.Random, recent_dests: list[int]
) -> Instruction:
    params = state.params
    sites = len(state.site_pcs)
    # Walk branch sites mostly in order (loop structure) with occasional
    # jumps to a random site (calls / data-dependent control).
    if rng.random() < 0.9:
        state.next_site = (state.next_site + 1) % sites
    else:
        state.next_site = rng.randrange(sites)
    site = state.next_site
    follows_bias = rng.random() < params.branch_predictability
    taken = state.site_taken[site] if follows_bias else not state.site_taken[site]
    site_pc = state.site_pcs[site]
    target = state.site_pcs[(site + 1) % sites] if taken else site_pc + 4
    # A branch tests a recently-computed condition, so its source
    # follows the dependence-distance profile like any other consumer;
    # otherwise mispredict recovery waits on arbitrarily old producers.
    sources = _pick_sources(params, rng, recent_dests, count=1)
    return Instruction(
        pc=site_pc,
        op=OpClass.BRANCH,
        src_regs=sources,
        taken=taken,
        target=target,
    )


def _pick_sources(
    params: StreamParameters,
    rng: random.Random,
    recent_dests: list[int],
    count: int,
) -> tuple[int, ...]:
    """Choose source registers realizing the dependence-distance profile.

    Each source reaches back a geometrically-distributed number of
    recently-written registers; the mean of that distance is the
    phase's ``dependency_distance``.  Larger distances mean a scheduler
    can overlap more instructions (more ILP).
    """
    sources = []
    mean = params.dependency_distance
    success = 1.0 / mean
    for _ in range(count):
        if not recent_dests:
            sources.append(rng.randrange(_NUM_REGS))
            continue
        distance = 1
        while rng.random() > success and distance < len(recent_dests):
            distance += 1
        sources.append(recent_dests[-distance])
    return tuple(sources)


def _next_address(state: _PhaseState, rng: random.Random) -> int:
    """Advance the phase's data-access stream one reference."""
    params = state.params
    if rng.random() < params.spatial_locality:
        state.pointer += 8
        if state.pointer >= _DATA_BASE + params.working_set_bytes:
            state.pointer = _DATA_BASE
    else:
        state.pointer = _DATA_BASE + 8 * rng.randrange(
            params.working_set_bytes // 8
        )
    return state.pointer
