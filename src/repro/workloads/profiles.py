"""The SPEC CPU2000-like benchmark profiles (paper Tables 4-5).

``BENCHMARKS`` holds the paper's 18; ``EXTENDED_BENCHMARKS`` adds the
8 programs the paper omitted, for the full 26-benchmark suite.

Each profile is a looped phase sequence calibrated against the
steady-state thermal map ``deltaT = peak_rise * (0.15 + 0.85 * u)``
(15 % idle power per Wattch-style conditional clocking) so the suite
reproduces the paper's thermal taxonomy:

* **extreme** -- sustained operation beyond the 102 degC emergency
  threshold without DTM (gcc, equake, fma3d, perlbmk);
* **high** -- benchmarks that cross the threshold briefly or burstily;
  includes the paper's bursty ``art`` (little time above the stress
  trigger, but over half of it in actual emergency) (mesa is the
  sustained-near-threshold member, plus art, parser, bzip2);
* **medium** -- long stretches above the 101 degC stress trigger but
  (essentially) never in emergency -- the ``mesa``/``facerec``/``eon``/
  ``vortex``-style programs the paper says a good DTM scheme must not
  penalize (facerec, eon, vortex, crafty, apsi);
* **low** -- rarely above the stress trigger (gzip, wupwise, vpr,
  twolf, gap).

The assignment of benchmarks to categories follows the paper's Table 5
(the OCR makes the exact column layout of Table 5 ambiguous; the
reconstruction here keeps the paper's explicitly-named examples in the
behaviours the prose describes and gives eight benchmarks with real
emergencies, as the paper states).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import WorkloadError
from repro.workloads.phases import Phase, StreamParameters


class ThermalCategory(enum.Enum):
    """Thermal-behaviour categories of paper Table 5."""

    EXTREME = "extreme"
    HIGH = "high"
    MEDIUM = "medium"
    LOW = "low"


@dataclass(frozen=True)
class BenchmarkProfile:
    """A named, seeded synthetic benchmark."""

    name: str
    category: ThermalCategory
    phases: tuple[Phase, ...]
    #: Suite membership: integer or floating-point (SPECint / SPECfp).
    is_fp: bool = False
    #: Base seed mixed into every stream derived from this profile.
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.phases:
            raise WorkloadError(f"{self.name}: needs at least one phase")

    @property
    def total_instructions(self) -> int:
        """Instructions in one full pass over the phase sequence."""
        return sum(phase.instructions for phase in self.phases)

    @property
    def mean_ipc(self) -> float:
        """Instruction-weighted mean baseline IPC."""
        weighted = sum(phase.ipc * phase.instructions for phase in self.phases)
        return weighted / self.total_instructions

    def phase_at(self, instruction_index: int) -> Phase:
        """The phase containing a committed-instruction position.

        The phase sequence loops, standing in for the repetitive outer
        loop of a long-running benchmark.
        """
        if instruction_index < 0:
            raise WorkloadError("instruction_index must be non-negative")
        position = instruction_index % self.total_instructions
        for phase in self.phases:
            if position < phase.instructions:
                return phase
            position -= phase.instructions
        raise AssertionError("unreachable: phase lookup fell off the end")


def _phase(
    name: str,
    instructions: int,
    ipc: float,
    jitter: float = 0.05,
    stream: StreamParameters | None = None,
    **activity: float,
) -> Phase:
    return Phase(
        name=name,
        instructions=instructions,
        ipc=ipc,
        activity=activity,
        jitter=jitter,
        stream=stream if stream is not None else StreamParameters(),
    )


_INT_STREAM = StreamParameters(
    branch_fraction=0.15,
    branch_predictability=0.92,
    load_fraction=0.24,
    store_fraction=0.10,
    fp_fraction=0.01,
    dependency_distance=5.0,
    working_set_bytes=32 * 1024,
    spatial_locality=0.92,
)
_FP_STREAM = StreamParameters(
    branch_fraction=0.06,
    branch_predictability=0.97,
    load_fraction=0.28,
    store_fraction=0.10,
    fp_fraction=0.70,
    dependency_distance=8.0,
    working_set_bytes=128 * 1024,
    spatial_locality=0.96,
    branch_sites=64,
)


def _profiles() -> tuple[BenchmarkProfile, ...]:
    extreme = ThermalCategory.EXTREME
    high = ThermalCategory.HIGH
    medium = ThermalCategory.MEDIUM
    low = ThermalCategory.LOW
    return (
        # ---------------- extreme ------------------------------------------
        BenchmarkProfile(
            "gcc",
            extreme,
            phases=(
                _phase(
                    "optimize", 300_000, 1.7, stream=_INT_STREAM,
                    lsq=0.55, window=0.80, regfile=0.82, bpred=0.86,
                    dcache=0.60, int_exec=0.72, fp_exec=0.02,
                ),
                _phase(
                    "parse", 150_000, 1.3, stream=_INT_STREAM,
                    lsq=0.50, window=0.60, regfile=0.60, bpred=0.75,
                    dcache=0.65, int_exec=0.55, fp_exec=0.01,
                ),
                _phase(
                    "regalloc", 200_000, 1.9, stream=_INT_STREAM,
                    lsq=0.55, window=0.85, regfile=0.90, bpred=0.80,
                    dcache=0.55, int_exec=0.80, fp_exec=0.01,
                ),
            ),
            seed=101,
        ),
        BenchmarkProfile(
            "equake",
            extreme,
            is_fp=True,
            phases=(
                _phase(
                    "solve", 400_000, 1.9, stream=_FP_STREAM,
                    lsq=0.70, window=0.78, regfile=0.75, bpred=0.30,
                    dcache=0.75, int_exec=0.35, fp_exec=0.88,
                ),
                _phase(
                    "assemble", 100_000, 1.4, stream=_FP_STREAM,
                    lsq=0.75, window=0.60, regfile=0.55, bpred=0.25,
                    dcache=0.80, int_exec=0.30, fp_exec=0.50,
                ),
            ),
            seed=102,
        ),
        BenchmarkProfile(
            "fma3d",
            extreme,
            is_fp=True,
            phases=(
                _phase(
                    "element", 350_000, 1.7, stream=_FP_STREAM,
                    lsq=0.55, window=0.90, regfile=0.72, bpred=0.35,
                    dcache=0.60, int_exec=0.40, fp_exec=0.85,
                ),
                _phase(
                    "update", 150_000, 1.4, stream=_FP_STREAM,
                    lsq=0.50, window=0.70, regfile=0.60, bpred=0.30,
                    dcache=0.55, int_exec=0.35, fp_exec=0.60,
                ),
            ),
            seed=103,
        ),
        BenchmarkProfile(
            "perlbmk",
            extreme,
            phases=(
                _phase(
                    "interp", 400_000, 1.8, stream=_INT_STREAM,
                    lsq=0.50, window=0.80, regfile=0.80, bpred=0.90,
                    dcache=0.55, int_exec=0.85, fp_exec=0.0,
                ),
                _phase(
                    "gc", 100_000, 1.1, stream=_INT_STREAM,
                    lsq=0.55, window=0.55, regfile=0.55, bpred=0.60,
                    dcache=0.70, int_exec=0.45, fp_exec=0.0,
                ),
            ),
            seed=104,
        ),
        # ---------------- high ----------------------------------------------
        BenchmarkProfile(
            "mesa",
            high,
            phases=(
                _phase(
                    "render", 500_000, 2.0, jitter=0.02, stream=_INT_STREAM,
                    lsq=0.45, window=0.65, regfile=0.50, bpred=0.55,
                    dcache=0.50, int_exec=0.60, fp_exec=0.45,
                ),
            ),
            seed=105,
        ),
        BenchmarkProfile(
            "art",
            high,
            is_fp=True,
            phases=(
                # Bursty: scans long enough to heat through the ~175 us
                # block time constant into emergency, separated by long
                # cool matching phases -- little total time above the
                # stress trigger, but much of it in actual emergency.
                _phase(
                    "scan", 700_000, 1.8, jitter=0.03, stream=_FP_STREAM,
                    lsq=0.70, window=0.75, regfile=0.90, bpred=0.50,
                    dcache=0.75, int_exec=0.70, fp_exec=0.55,
                ),
                _phase(
                    "match", 6_000_000, 0.9, jitter=0.03, stream=_FP_STREAM,
                    lsq=0.40, window=0.30, regfile=0.10, bpred=0.20,
                    dcache=0.45, int_exec=0.25, fp_exec=0.15,
                ),
            ),
            seed=106,
        ),
        BenchmarkProfile(
            "parser",
            high,
            phases=(
                _phase(
                    "parse", 300_000, 1.2, jitter=0.06, stream=_INT_STREAM,
                    lsq=0.50, window=0.55, regfile=0.60, bpred=0.78,
                    dcache=0.55, int_exec=0.60, fp_exec=0.0,
                ),
                _phase(
                    "dict", 200_000, 0.9, jitter=0.05, stream=_INT_STREAM,
                    lsq=0.45, window=0.45, regfile=0.45, bpred=0.60,
                    dcache=0.60, int_exec=0.45, fp_exec=0.0,
                ),
            ),
            seed=107,
        ),
        BenchmarkProfile(
            "bzip2",
            high,
            phases=(
                _phase(
                    "compress", 500_000, 1.6, jitter=0.06, stream=_INT_STREAM,
                    lsq=0.55, window=0.70, regfile=0.63, bpred=0.60,
                    dcache=0.60, int_exec=0.75, fp_exec=0.0,
                ),
                _phase(
                    "io", 350_000, 1.1, stream=_INT_STREAM,
                    lsq=0.45, window=0.40, regfile=0.30, bpred=0.45,
                    dcache=0.50, int_exec=0.35, fp_exec=0.0,
                ),
            ),
            seed=108,
        ),
        # ---------------- medium --------------------------------------------
        BenchmarkProfile(
            "facerec",
            medium,
            is_fp=True,
            phases=(
                _phase(
                    "correlate", 400_000, 1.8, jitter=0.03, stream=_FP_STREAM,
                    lsq=0.50, window=0.60, regfile=0.48, bpred=0.30,
                    dcache=0.55, int_exec=0.40, fp_exec=0.55,
                ),
            ),
            seed=109,
        ),
        BenchmarkProfile(
            "eon",
            medium,
            phases=(
                _phase(
                    "trace", 450_000, 2.2, jitter=0.03, stream=_INT_STREAM,
                    lsq=0.40, window=0.62, regfile=0.46, bpred=0.62,
                    dcache=0.45, int_exec=0.62, fp_exec=0.25,
                ),
            ),
            seed=110,
        ),
        BenchmarkProfile(
            "vortex",
            medium,
            phases=(
                _phase(
                    "db", 400_000, 1.6, jitter=0.03, stream=_INT_STREAM,
                    lsq=0.62, window=0.55, regfile=0.45, bpred=0.65,
                    dcache=0.62, int_exec=0.50, fp_exec=0.0,
                ),
            ),
            seed=111,
        ),
        BenchmarkProfile(
            "crafty",
            medium,
            phases=(
                _phase(
                    "search", 350_000, 1.9, jitter=0.04, stream=_INT_STREAM,
                    lsq=0.35, window=0.65, regfile=0.44, bpred=0.72,
                    dcache=0.40, int_exec=0.68, fp_exec=0.0,
                ),
            ),
            seed=112,
        ),
        BenchmarkProfile(
            "apsi",
            medium,
            is_fp=True,
            phases=(
                _phase(
                    "mesh", 300_000, 1.6, jitter=0.04, stream=_FP_STREAM,
                    lsq=0.45, window=0.55, regfile=0.42, bpred=0.25,
                    dcache=0.50, int_exec=0.35, fp_exec=0.60,
                ),
                _phase(
                    "fft", 200_000, 1.3, jitter=0.04, stream=_FP_STREAM,
                    lsq=0.40, window=0.45, regfile=0.35, bpred=0.20,
                    dcache=0.45, int_exec=0.30, fp_exec=0.45,
                ),
            ),
            seed=113,
        ),
        # ---------------- low -----------------------------------------------
        BenchmarkProfile(
            "gzip",
            low,
            phases=(
                _phase(
                    "deflate", 300_000, 1.3, jitter=0.03, stream=_INT_STREAM,
                    lsq=0.40, window=0.30, regfile=0.16, bpred=0.30,
                    dcache=0.45, int_exec=0.28, fp_exec=0.0,
                ),
            ),
            seed=114,
        ),
        BenchmarkProfile(
            "wupwise",
            low,
            is_fp=True,
            phases=(
                _phase(
                    "zgemm", 350_000, 1.4, jitter=0.03, stream=_FP_STREAM,
                    lsq=0.35, window=0.30, regfile=0.15, bpred=0.15,
                    dcache=0.40, int_exec=0.20, fp_exec=0.30,
                ),
            ),
            seed=115,
        ),
        BenchmarkProfile(
            "vpr",
            low,
            phases=(
                _phase(
                    "route", 300_000, 1.0, jitter=0.04, stream=_INT_STREAM,
                    lsq=0.35, window=0.28, regfile=0.14, bpred=0.30,
                    dcache=0.45, int_exec=0.25, fp_exec=0.02,
                ),
            ),
            seed=116,
        ),
        BenchmarkProfile(
            "twolf",
            low,
            phases=(
                _phase(
                    "anneal", 300_000, 0.9, jitter=0.04, stream=_INT_STREAM,
                    lsq=0.40, window=0.25, regfile=0.13, bpred=0.28,
                    dcache=0.45, int_exec=0.22, fp_exec=0.01,
                ),
            ),
            seed=117,
        ),
        BenchmarkProfile(
            "gap",
            low,
            phases=(
                _phase(
                    "groups", 350_000, 1.5, jitter=0.03, stream=_INT_STREAM,
                    lsq=0.35, window=0.30, regfile=0.17, bpred=0.30,
                    dcache=0.40, int_exec=0.26, fp_exec=0.0,
                ),
            ),
            seed=118,
        ),
    )


def _extended_profiles() -> tuple[BenchmarkProfile, ...]:
    """The 8 SPEC CPU2000 benchmarks the paper left out.

    "Due to the extensive number of simulations required for this
    study, we used only 18 of the total 26 SPEC2k benchmarks."  We can
    afford all 26; these profiles follow the known character of each
    program (swim/mgrid/applu: streaming FP stencils; galgel:
    cache-resident high-IPC FP; ammp/mcf: memory-bound low IPC;
    lucas: FFT-ish FP; sixtrack: compute-dense FP).
    """
    high = ThermalCategory.HIGH
    medium = ThermalCategory.MEDIUM
    low = ThermalCategory.LOW
    return (
        BenchmarkProfile(
            "swim", medium, is_fp=True, seed=119,
            phases=(
                _phase(
                    "stencil", 400_000, 0.9, jitter=0.03, stream=_FP_STREAM,
                    lsq=0.55, window=0.45, regfile=0.30, bpred=0.15,
                    dcache=0.60, int_exec=0.25, fp_exec=0.45,
                ),
            ),
        ),
        BenchmarkProfile(
            "mgrid", medium, is_fp=True, seed=120,
            phases=(
                _phase(
                    "relax", 400_000, 1.3, jitter=0.03, stream=_FP_STREAM,
                    lsq=0.50, window=0.50, regfile=0.35, bpred=0.15,
                    dcache=0.55, int_exec=0.30, fp_exec=0.55,
                ),
            ),
        ),
        BenchmarkProfile(
            "applu", medium, is_fp=True, seed=121,
            phases=(
                _phase(
                    "sweep", 350_000, 1.2, jitter=0.04, stream=_FP_STREAM,
                    lsq=0.50, window=0.50, regfile=0.32, bpred=0.15,
                    dcache=0.55, int_exec=0.30, fp_exec=0.50,
                ),
            ),
        ),
        BenchmarkProfile(
            "galgel", high, is_fp=True, seed=122,
            phases=(
                _phase(
                    "eigen", 450_000, 2.3, jitter=0.04, stream=_FP_STREAM,
                    lsq=0.50, window=0.75, regfile=0.55, bpred=0.25,
                    dcache=0.50, int_exec=0.45, fp_exec=0.75,
                ),
            ),
        ),
        BenchmarkProfile(
            "ammp", low, is_fp=True, seed=123,
            phases=(
                _phase(
                    "mm_fv", 350_000, 0.8, jitter=0.03, stream=_FP_STREAM,
                    lsq=0.40, window=0.30, regfile=0.15, bpred=0.15,
                    dcache=0.45, int_exec=0.20, fp_exec=0.28,
                ),
            ),
        ),
        BenchmarkProfile(
            "lucas", medium, is_fp=True, seed=124,
            phases=(
                _phase(
                    "fft", 350_000, 1.1, jitter=0.03, stream=_FP_STREAM,
                    lsq=0.45, window=0.45, regfile=0.28, bpred=0.12,
                    dcache=0.50, int_exec=0.25, fp_exec=0.48,
                ),
            ),
        ),
        BenchmarkProfile(
            "sixtrack", medium, is_fp=True, seed=125,
            phases=(
                _phase(
                    "track", 400_000, 1.9, jitter=0.03, stream=_FP_STREAM,
                    lsq=0.40, window=0.60, regfile=0.45, bpred=0.20,
                    dcache=0.45, int_exec=0.40, fp_exec=0.62,
                ),
            ),
        ),
        BenchmarkProfile(
            "mcf", low, seed=126,
            phases=(
                _phase(
                    "simplex", 300_000, 0.35, jitter=0.04, stream=_INT_STREAM,
                    lsq=0.35, window=0.25, regfile=0.10, bpred=0.25,
                    dcache=0.50, int_exec=0.15, fp_exec=0.0,
                ),
            ),
        ),
    )


#: The paper's 18 profiles, keyed by benchmark name.
BENCHMARKS: dict[str, BenchmarkProfile] = {
    profile.name: profile for profile in _profiles()
}

#: The 8 SPEC2000 benchmarks the paper omitted (full-suite extension).
EXTENDED_BENCHMARKS: dict[str, BenchmarkProfile] = {
    profile.name: profile for profile in _extended_profiles()
}

#: All 26 SPEC2000 profiles.
ALL_BENCHMARKS: dict[str, BenchmarkProfile] = {
    **BENCHMARKS,
    **EXTENDED_BENCHMARKS,
}


def get_profile(name: str) -> BenchmarkProfile:
    """Look up a benchmark profile by name (paper or extended suite)."""
    try:
        return ALL_BENCHMARKS[name]
    except KeyError:
        known = ", ".join(sorted(ALL_BENCHMARKS))
        raise WorkloadError(f"unknown benchmark {name!r}; known: {known}") from None


def profiles_by_category(
    category: ThermalCategory,
) -> tuple[BenchmarkProfile, ...]:
    """All profiles in one thermal category, in registry order."""
    return tuple(p for p in BENCHMARKS.values() if p.category is category)
