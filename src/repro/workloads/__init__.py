"""Synthetic SPEC CPU2000 stand-in workloads.

The paper evaluates 18 SPEC2000 benchmarks chosen to span "low,
intermediate, and extreme thermal demands" (Tables 4-5).  We have no
Alpha binaries or SPEC inputs, so each benchmark becomes a seeded,
deterministic profile: a sequence of phases, each with a target IPC,
per-structure activity levels, and instruction-stream statistics for
the detailed core.  Profiles are calibrated so the suite reproduces the
paper's thermal taxonomy (extreme / high / medium / low) and the
behaviours the paper calls out by name (bursty ``art``,
near-threshold-but-never-emergency ``mesa``/``facerec``/``eon``/
``vortex``).
"""

from repro.workloads.generator import instruction_stream
from repro.workloads.interleave import interleave_profiles
from repro.workloads.patterns import (
    ramp_profile,
    square_wave_profile,
    step_profile,
    worst_case_burst_profile,
)
from repro.workloads.phases import Phase, StreamParameters
from repro.workloads.profiles import (
    ALL_BENCHMARKS,
    BENCHMARKS,
    EXTENDED_BENCHMARKS,
    BenchmarkProfile,
    ThermalCategory,
    get_profile,
    profiles_by_category,
)

__all__ = [
    "ALL_BENCHMARKS",
    "BENCHMARKS",
    "EXTENDED_BENCHMARKS",
    "BenchmarkProfile",
    "Phase",
    "StreamParameters",
    "ThermalCategory",
    "get_profile",
    "instruction_stream",
    "interleave_profiles",
    "profiles_by_category",
    "ramp_profile",
    "square_wave_profile",
    "step_profile",
    "worst_case_burst_profile",
]
