"""Workload interleaving: time-sliced multiprogramming.

The paper runs one benchmark at a time, but thermal state persists
across OS context switches: a cool process inherits the hot spots of
its predecessor.  ``interleave_profiles`` builds a multiprogrammed
profile by alternating fixed instruction quanta from two (or more)
profiles, slicing their phase sequences at quantum boundaries.  The
result is an ordinary :class:`BenchmarkProfile`, so every engine and
experiment works on it unchanged.
"""

from __future__ import annotations

from dataclasses import replace

from repro.errors import WorkloadError
from repro.workloads.phases import Phase
from repro.workloads.profiles import BenchmarkProfile, ThermalCategory


class _Cursor:
    """Walks one profile's (looping) phase sequence in instruction steps."""

    def __init__(self, profile: BenchmarkProfile) -> None:
        self.profile = profile
        self.position = 0  # instruction offset within the looping sequence

    def take(self, quantum: int) -> list[Phase]:
        """Consume ``quantum`` instructions, returning sliced phases."""
        slices: list[Phase] = []
        remaining = quantum
        while remaining > 0:
            phase = self.profile.phase_at(self.position)
            offset = self._offset_within(phase)
            available = phase.instructions - offset
            taken = min(available, remaining)
            slices.append(replace(phase, instructions=taken))
            self.position += taken
            remaining -= taken
        return slices

    def _offset_within(self, phase: Phase) -> int:
        position = self.position % self.profile.total_instructions
        for candidate in self.profile.phases:
            if candidate is phase:
                return position
            position -= candidate.instructions
        raise AssertionError("phase not found in its own profile")


def interleave_profiles(
    profiles: tuple[BenchmarkProfile, ...],
    quantum_instructions: int = 250_000,
    rounds: int | None = None,
    name: str | None = None,
) -> BenchmarkProfile:
    """Alternate fixed quanta of several profiles into one workload.

    ``rounds`` is how many times the scheduler cycles through all
    profiles; by default, enough rounds that the *longest* profile
    completes one full pass over its phase sequence.
    """
    if len(profiles) < 2:
        raise WorkloadError("need at least two profiles to interleave")
    if quantum_instructions <= 0:
        raise WorkloadError("quantum must be positive")
    if rounds is None:
        longest = max(profile.total_instructions for profile in profiles)
        rounds = max(2, -(-longest // quantum_instructions))  # ceil division

    cursors = [_Cursor(profile) for profile in profiles]
    phases: list[Phase] = []
    for _ in range(rounds):
        for cursor in cursors:
            for sliced in cursor.take(quantum_instructions):
                phases.append(
                    replace(sliced, name=f"{cursor.profile.name}:{sliced.name}")
                )

    categories = [profile.category for profile in profiles]
    hottest = min(categories, key=_category_rank)  # EXTREME ranks first
    return BenchmarkProfile(
        name=name
        if name is not None
        else "+".join(profile.name for profile in profiles),
        category=hottest,
        phases=tuple(phases),
        is_fp=any(profile.is_fp for profile in profiles),
        seed=sum(profile.seed for profile in profiles) % (1 << 20),
    )


def _category_rank(category: ThermalCategory) -> int:
    order = (
        ThermalCategory.EXTREME,
        ThermalCategory.HIGH,
        ThermalCategory.MEDIUM,
        ThermalCategory.LOW,
    )
    return order.index(category)
