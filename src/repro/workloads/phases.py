"""Phase descriptions for synthetic workloads.

Programs exhibit phase behaviour -- the paper leans on it ("temporal
non-uniformity in power density as many structures go from idle mode to
full active mode and vice-versa").  A workload is a looped sequence of
:class:`Phase` objects.  Each phase carries two coordinated views:

* **activity view** (fast engine): a target IPC and a per-structure
  activity level in [0, 1] (fraction of the structure's peak access
  rate), plus a jitter amplitude for sample-to-sample variation;
* **stream view** (detailed core): :class:`StreamParameters` describing
  the instruction mix, branch predictability, dependence distances, and
  memory locality that the trace generator uses to synthesize an
  instruction stream whose pipeline behaviour approximates the activity
  view.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import WorkloadError
from repro.thermal.floorplan import STRUCTURES


@dataclass(frozen=True)
class StreamParameters:
    """Statistics of the synthetic instruction stream for one phase."""

    #: Fraction of instructions that are conditional branches.
    branch_fraction: float = 0.15
    #: Probability the hybrid predictor ultimately gets a branch right.
    branch_predictability: float = 0.92
    #: Fractions of loads / stores among all instructions.
    load_fraction: float = 0.25
    store_fraction: float = 0.10
    #: Fraction of compute instructions that are floating point.
    fp_fraction: float = 0.05
    #: Fraction of integer compute that uses the multiplier/divider.
    int_mult_fraction: float = 0.03
    #: Mean register dependence distance (larger = more ILP).
    dependency_distance: float = 6.0
    #: Data working-set size [bytes] -- drives cache miss rates.
    working_set_bytes: int = 32 * 1024
    #: Probability a memory access continues a sequential stream.
    spatial_locality: float = 0.7
    #: Number of distinct static branch sites (predictor pressure).
    branch_sites: int = 256

    def __post_init__(self) -> None:
        fractions = {
            "branch_fraction": self.branch_fraction,
            "branch_predictability": self.branch_predictability,
            "load_fraction": self.load_fraction,
            "store_fraction": self.store_fraction,
            "fp_fraction": self.fp_fraction,
            "int_mult_fraction": self.int_mult_fraction,
            "spatial_locality": self.spatial_locality,
        }
        for name, value in fractions.items():
            if not 0.0 <= value <= 1.0:
                raise WorkloadError(f"{name} must be in [0, 1], got {value}")
        if self.branch_fraction + self.load_fraction + self.store_fraction > 0.9:
            raise WorkloadError("branch+load+store fractions leave no compute")
        if self.dependency_distance < 1.0:
            raise WorkloadError("dependency_distance must be >= 1")
        if self.working_set_bytes <= 0 or self.branch_sites <= 0:
            raise WorkloadError("working set and branch sites must be positive")


@dataclass(frozen=True)
class Phase:
    """One phase of a workload."""

    name: str
    #: Phase length in committed instructions.
    instructions: int
    #: Baseline (no-DTM) IPC the phase sustains.
    ipc: float
    #: Per-structure activity in [0, 1], keyed by floorplan block name.
    activity: dict[str, float] = field(default_factory=dict)
    #: Std-dev of per-sample activity jitter (fraction of activity).
    jitter: float = 0.05
    #: Instruction-stream statistics for the detailed core.
    stream: StreamParameters = field(default_factory=StreamParameters)

    def __post_init__(self) -> None:
        if self.instructions <= 0:
            raise WorkloadError(f"{self.name}: phase length must be positive")
        if not 0.0 < self.ipc <= 6.0:
            raise WorkloadError(f"{self.name}: ipc must be in (0, 6]")
        if not 0.0 <= self.jitter <= 0.5:
            raise WorkloadError(f"{self.name}: jitter must be in [0, 0.5]")
        unknown = set(self.activity) - set(STRUCTURES)
        if unknown:
            raise WorkloadError(f"{self.name}: unknown structures {sorted(unknown)}")
        for structure, level in self.activity.items():
            if not 0.0 <= level <= 1.0:
                raise WorkloadError(
                    f"{self.name}: activity[{structure}] must be in [0, 1], got {level}"
                )

    def activity_vector(self, order: tuple[str, ...] = STRUCTURES) -> tuple[float, ...]:
        """Activity levels in floorplan order (missing structures are 0)."""
        return tuple(self.activity.get(name, 0.0) for name in order)


def uniform_activity(level: float, **overrides: float) -> dict[str, float]:
    """A convenience builder: every structure at ``level`` except overrides."""
    if not 0.0 <= level <= 1.0:
        raise WorkloadError("level must be in [0, 1]")
    activity = {name: level for name in STRUCTURES}
    for name, value in overrides.items():
        if name not in activity:
            raise WorkloadError(f"unknown structure {name!r}")
        activity[name] = value
    return activity
