"""Exception hierarchy for the repro package.

Every error raised deliberately by this library derives from
:class:`ReproError`, so callers can catch library problems without also
swallowing programming errors such as :class:`TypeError`.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError):
    """A configuration value is missing, inconsistent, or out of range."""


class ThermalModelError(ReproError):
    """The thermal network is malformed (unknown node, bad R/C value...)."""


class ControllerError(ReproError):
    """A controller was constructed or tuned with invalid parameters."""


class SimulationError(ReproError):
    """The simulator reached an inconsistent state or bad input.

    ``diagnostics`` optionally carries structured engine state at the
    moment of failure (sample index, hottest block, last commanded
    duty, ...) so callers can triage a blown-up run without parsing
    the message string.
    """

    def __init__(self, message: str, **diagnostics) -> None:
        super().__init__(message)
        self.diagnostics: dict = diagnostics

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        base = super().__str__()
        if not self.diagnostics:
            return base
        detail = ", ".join(
            f"{key}={value!r}" for key, value in sorted(self.diagnostics.items())
        )
        return f"{base} [{detail}]"


class FaultError(ReproError):
    """A fault schedule or fault injector is misconfigured."""


class FailsafeEngaged(ReproError):
    """Informational record of one failsafe state transition.

    The :class:`~repro.dtm.failsafe.FailsafeGuard` *records* these
    (``DTMManager.failsafe_events``) rather than raising them -- a
    watchdog that crashed the control loop would defeat its purpose --
    but they are exceptions so callers who want fail-fast semantics can
    ``raise`` them directly.
    """

    def __init__(
        self,
        reason: str,
        sample_index: int,
        state: str,
        last_good: float | None = None,
        duty: float | None = None,
    ) -> None:
        super().__init__(
            f"failsafe {state} at sample {sample_index}: {reason}"
        )
        self.reason = reason
        self.sample_index = sample_index
        self.state = state
        self.last_good = last_good
        self.duty = duty


class SweepError(ReproError):
    """One or more specs of a strict sweep failed permanently.

    Raised at the *end* of a fault-tolerant sweep (never mid-flight):
    the orchestrator isolates each failure as a
    :class:`~repro.sim.parallel.SpecOutcome` and keeps going, then
    aggregates the permanent failures into one exception so a strict
    caller sees every problem at once instead of the first.
    ``failures`` carries the failing outcomes (spec, captured error,
    attempt count) for programmatic triage.
    """

    def __init__(self, message: str, failures: list | None = None) -> None:
        super().__init__(message)
        self.failures: list = failures if failures is not None else []


class CheckpointError(ReproError):
    """A sweep checkpoint journal is unreadable or inconsistent."""


class CacheError(ReproError):
    """The cross-sweep result cache is unusable or misconfigured.

    Covers an invalid cache directory (relative, uncreatable, or not
    writable), a store whose schema header does not match
    ``repro.cache/v1``, and entries that fail to decode during an
    explicit ``verify``.  Ordinary lookups never raise: a corrupt or
    torn entry is simply a miss, because a cache that can abort the
    sweep it is meant to accelerate would be worse than no cache.
    """


class CodecError(ReproError):
    """A sweep payload cannot be encoded to, or decoded from, wire JSON.

    Raised by :mod:`repro.sim.codec` when a spec carries an unregistered
    type, or when an incoming payload is malformed or names a type
    outside the closed decode registry (decoding never constructs
    arbitrary classes).
    """


class ShardError(ReproError):
    """A distributed-sweep coordinator or worker hit a protocol failure.

    Covers authentication rejections, schema mismatches between
    coordinator and worker, malformed shard-protocol messages, and a
    coordinator that shut down before the sweep completed.
    """


class TelemetryError(ReproError):
    """A telemetry component (metric, trace, profiler) was misused."""


class WorkloadError(ReproError):
    """A workload profile or trace is malformed."""


class ExperimentError(ReproError):
    """An experiment driver was invoked with unusable parameters."""
