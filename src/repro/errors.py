"""Exception hierarchy for the repro package.

Every error raised deliberately by this library derives from
:class:`ReproError`, so callers can catch library problems without also
swallowing programming errors such as :class:`TypeError`.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError):
    """A configuration value is missing, inconsistent, or out of range."""


class ThermalModelError(ReproError):
    """The thermal network is malformed (unknown node, bad R/C value...)."""


class ControllerError(ReproError):
    """A controller was constructed or tuned with invalid parameters."""


class SimulationError(ReproError):
    """The simulator reached an inconsistent state or bad input."""


class WorkloadError(ReproError):
    """A workload profile or trace is malformed."""


class ExperimentError(ReproError):
    """An experiment driver was invoked with unusable parameters."""
