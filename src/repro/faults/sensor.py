"""Sensor fault injection.

:class:`FaultySensor` wraps any object with the sensor protocol
(``read(true_temperature) -> float``; see :mod:`repro.thermal.sensors`)
and corrupts its readings according to a :class:`~repro.faults.schedule.
FaultSchedule`.  Faults compose in a fixed, physically motivated order:

1. the wrapped sensor produces its (possibly noisy/quantized) reading;
2. **staleness** replaces it with the reading from ``stale_depth``
   samples ago (a latent sensor bus);
3. **stuck-at** freezes the output at the last pre-window value
   (a dead ADC holding its register);
4. **drift** adds a slowly accumulating bias (aging / self-heating);
5. **spikes** add large transient glitches (coupling noise);
6. **dropout** loses the sample entirely and reports ``NaN``.

With every rate at zero and no windows the wrapper is byte-identical
to the wrapped sensor (a property test asserts this).

When a :class:`~repro.telemetry.core.Telemetry` instance is attached,
each injection emits a ``"fault"`` event onto its trace event stream
(``channel`` one of ``sensor.stale``, ``sensor.stuck``,
``sensor.spike``, ``sensor.dropout``); stuck-at windows report one
event at window entry rather than one per held sample.  In multicore
runs each core's wrapper is built with a ``core`` index, which rides
every fault event as a ``core`` data field so ``python -m repro trace``
can attribute injections to cores; single-core traces simply omit the
field.
"""

from __future__ import annotations

import math
from collections import deque

from repro.faults.schedule import FaultSchedule
from repro.telemetry.core import ensure_telemetry


class FaultySensor:
    """Wrap ``inner`` and inject the faults driven by ``schedule``."""

    def __init__(
        self,
        inner,
        schedule: FaultSchedule,
        telemetry=None,
        core: int | None = None,
    ) -> None:
        self.inner = inner
        self.schedule = schedule
        #: Core index stamped onto fault events (``None`` single-core).
        self.core = core
        self._telemetry = ensure_telemetry(telemetry)
        self._index = 0
        #: Recent *pre-fault* readings, newest last, for staleness.
        self._recent: deque[float] = deque(maxlen=schedule.stale_depth + 1)
        #: Value held while a stuck-at window is active.
        self._stuck_value: float | None = None
        # Injection counters (introspection / experiment reporting).
        self.dropouts = 0
        self.spikes = 0
        self.stale_reads = 0
        self.stuck_reads = 0

    @property
    def sample_index(self) -> int:
        """Index of the next sample to be read."""
        return self._index

    def read(self, true_temperature: float) -> float:
        """Return the (possibly corrupted) measurement [degC]."""
        index = self._index
        self._index += 1
        schedule = self.schedule
        reading = self.inner.read(true_temperature)
        self._recent.append(reading)

        if schedule.is_trivial:
            return reading

        if schedule.stale(index) and len(self._recent) > 1:
            # Oldest retained reading = `stale_depth` samples back
            # (or the oldest available early in the run).
            reading = self._recent[0]
            self.stale_reads += 1
            self._note("sensor.stale", index, reading=reading)

        window = schedule.sensor_stuck(index)
        if window is not None:
            if self._stuck_value is None:
                # A window with an explicit value rails the sensor at
                # that reading (stuck ADC code); otherwise freeze at
                # the last value reported *before* the window.
                if window.value is not None:
                    self._stuck_value = window.value
                else:
                    self._stuck_value = (
                        self._recent[-2] if len(self._recent) > 1 else reading
                    )
                self._note(
                    "sensor.stuck", index, value=self._stuck_value
                )
            reading = self._stuck_value
            self.stuck_reads += 1
        else:
            self._stuck_value = None

        drift = schedule.drift(index)
        if drift:
            reading += drift

        spike = schedule.spike(index)
        if spike:
            reading += spike
            self.spikes += 1
            self._note("sensor.spike", index, magnitude=spike)

        if schedule.dropout(index):
            self.dropouts += 1
            self._note("sensor.dropout", index)
            return math.nan
        return reading

    def _note(self, channel: str, index: int, **data) -> None:
        """Emit one fault event when telemetry is attached."""
        if self._telemetry.enabled:
            if self.core is not None:
                data["core"] = self.core
            self._telemetry.event(
                "fault", index, channel, channel=channel, **data
            )

    def reset(self) -> None:
        """Restart the fault stream (same schedule, sample 0)."""
        self._index = 0
        self._recent.clear()
        self._stuck_value = None
        self.dropouts = 0
        self.spikes = 0
        self.stale_reads = 0
        self.stuck_reads = 0
