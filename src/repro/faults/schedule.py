"""Deterministic, seeded fault schedules.

A :class:`FaultSchedule` decides, for every sample index, which faults
are active.  Two kinds of faults coexist:

* **stochastic** faults (dropout, spikes, stale readings) drawn from a
  counter-based PRNG -- each ``(seed, channel, index)`` triple maps to
  one pseudo-random draw, so the schedule is *stateless*: queries are
  order-independent, repeatable, and bit-reproducible for a fixed seed;
* **scheduled** faults (stuck-at windows, ignored-command windows)
  given explicitly as half-open sample intervals ``[start, end)``.

Statelessness matters because the sensor and the actuator consult the
same schedule at slightly different times; a shared mutable RNG would
make fault patterns depend on call interleaving and break the
reproducibility contract (two runs with the same seeds must produce
identical :class:`~repro.sim.results.RunResult` metrics).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import FaultError

#: Channel tags keeping the per-fault random streams independent.
_CH_DROPOUT = 1
_CH_SPIKE = 2
_CH_SPIKE_SIGN = 3
_CH_STALE = 4


@dataclass(frozen=True)
class FaultWindow:
    """One scheduled fault interval over samples ``[start, end)``.

    ``value`` is fault-specific: the forced duty for an actuator
    stuck-at window (``None`` = freeze at the pre-window duty), unused
    for ignored-command and sensor stuck-at windows.
    """

    start: int
    end: int
    value: float | None = None

    def __post_init__(self) -> None:
        if self.start < 0:
            raise FaultError("fault window cannot start before sample 0")
        if self.end <= self.start:
            raise FaultError("fault window must have positive length")

    def active(self, index: int) -> bool:
        """True if sample ``index`` falls inside this window."""
        return self.start <= index < self.end


def _windows(spec) -> tuple[FaultWindow, ...]:
    """Normalize ``(start, end)`` pairs / FaultWindows to a tuple."""
    out = []
    for item in spec:
        if isinstance(item, FaultWindow):
            out.append(item)
        else:
            out.append(FaultWindow(*item))
    return tuple(out)


class FaultSchedule:
    """Seeded per-sample fault event source (see module docstring).

    Rates are per-sample probabilities in [0, 1].  ``drift_per_sample``
    is a deterministic additive sensor drift in K/sample.  Window
    arguments accept ``(start, end)`` tuples or :class:`FaultWindow`
    instances.
    """

    def __init__(
        self,
        seed: int = 0,
        *,
        dropout_rate: float = 0.0,
        spike_rate: float = 0.0,
        spike_magnitude: float = 5.0,
        stale_rate: float = 0.0,
        stale_depth: int = 4,
        drift_per_sample: float = 0.0,
        sensor_stuck_windows=(),
        actuator_stuck_windows=(),
        actuator_ignore_windows=(),
    ) -> None:
        for name, rate in (
            ("dropout_rate", dropout_rate),
            ("spike_rate", spike_rate),
            ("stale_rate", stale_rate),
        ):
            if not 0.0 <= rate <= 1.0:
                raise FaultError(f"{name} must be a probability in [0, 1]")
        if spike_magnitude < 0:
            raise FaultError("spike_magnitude must be non-negative")
        if stale_depth < 1:
            raise FaultError("stale_depth must be at least one sample")
        self.seed = int(seed)
        self.dropout_rate = dropout_rate
        self.spike_rate = spike_rate
        self.spike_magnitude = spike_magnitude
        self.stale_rate = stale_rate
        self.stale_depth = stale_depth
        self.drift_per_sample = drift_per_sample
        self.sensor_stuck_windows = _windows(sensor_stuck_windows)
        self.actuator_stuck_windows = _windows(actuator_stuck_windows)
        self.actuator_ignore_windows = _windows(actuator_ignore_windows)

    # -- counter-based randomness -------------------------------------------
    def _draw(self, channel: int, index: int) -> float:
        """One uniform draw in [0, 1) for ``(seed, channel, index)``.

        A SplitMix64-style finalizer over the mixed counter gives a
        platform-independent, bit-reproducible stream with no mutable
        state -- the same triple always yields the same draw, whatever
        the query order.
        """
        mask = 0xFFFFFFFFFFFFFFFF
        x = (
            self.seed * 0x9E3779B97F4A7C15
            + channel * 0xBF58476D1CE4E5B9
            + index * 0x94D049BB133111EB
            + 0x2545F4914F6CDD1D
        ) & mask
        x ^= x >> 30
        x = (x * 0xBF58476D1CE4E5B9) & mask
        x ^= x >> 27
        x = (x * 0x94D049BB133111EB) & mask
        x ^= x >> 31
        return x / 2.0**64

    # -- stochastic sensor faults -------------------------------------------
    def dropout(self, index: int) -> bool:
        """True if the reading at ``index`` is lost (reported ``NaN``)."""
        if not self.dropout_rate:
            return False
        return self._draw(_CH_DROPOUT, index) < self.dropout_rate

    def spike(self, index: int) -> float:
        """Additive spike [K] at ``index`` (0.0 when no spike fires)."""
        if not self.spike_rate:
            return 0.0
        if self._draw(_CH_SPIKE, index) >= self.spike_rate:
            return 0.0
        sign = 1.0 if self._draw(_CH_SPIKE_SIGN, index) < 0.5 else -1.0
        return sign * self.spike_magnitude

    def stale(self, index: int) -> bool:
        """True if the reading at ``index`` is a stale (latent) sample."""
        if not self.stale_rate:
            return False
        return self._draw(_CH_STALE, index) < self.stale_rate

    def drift(self, index: int) -> float:
        """Accumulated additive drift [K] at ``index``."""
        return self.drift_per_sample * index

    # -- scheduled faults ---------------------------------------------------
    def sensor_stuck(self, index: int) -> FaultWindow | None:
        """The active sensor stuck-at window, if any.

        A window with ``value=None`` freezes the sensor at its last
        pre-window reading; a window with an explicit ``value`` rails
        the sensor at that fixed reading (a stuck ADC code).
        """
        for window in self.sensor_stuck_windows:
            if window.active(index):
                return window
        return None

    def actuator_stuck(self, index: int) -> FaultWindow | None:
        """The active actuator stuck-at window, if any."""
        for window in self.actuator_stuck_windows:
            if window.active(index):
                return window
        return None

    def actuator_ignores(self, index: int) -> bool:
        """True while the actuator silently drops commands."""
        return any(w.active(index) for w in self.actuator_ignore_windows)

    @property
    def is_trivial(self) -> bool:
        """True when the schedule can never produce a fault."""
        return (
            not self.dropout_rate
            and not self.spike_rate
            and not self.stale_rate
            and not self.drift_per_sample
            and not self.sensor_stuck_windows
            and not self.actuator_stuck_windows
            and not self.actuator_ignore_windows
        )
