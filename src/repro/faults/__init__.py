"""Fault injection for sensors and actuators (robustness extension).

The paper assumes ideal, co-located sensors and a perfectly obedient
toggling actuator, flagging realistic sensing as future work.  This
package supplies the missing stress machinery:

* :mod:`repro.faults.schedule` -- :class:`FaultSchedule`, a seeded,
  stateless (counter-based) per-sample fault event source, plus
  :class:`FaultWindow` for scheduled stuck-at / ignored-command
  intervals;
* :mod:`repro.faults.sensor` -- :class:`FaultySensor`, wrapping any
  sensor model with dropout (``NaN``), spikes, drift, staleness, and
  stuck-at faults;
* :mod:`repro.faults.actuator` -- :class:`FaultyActuator`, wrapping
  the fetch-toggling actuator with stuck-duty and ignored-command
  faults.

Everything is deterministic under a fixed seed: two runs built from
identical schedules produce identical metrics.  The failsafe layer
that *defends* against these faults lives in
:mod:`repro.dtm.failsafe`, not here -- injection and mitigation are
deliberately independent subsystems.
"""

from repro.faults.actuator import FaultyActuator
from repro.faults.schedule import FaultSchedule, FaultWindow
from repro.faults.sensor import FaultySensor

__all__ = [
    "FaultSchedule",
    "FaultWindow",
    "FaultySensor",
    "FaultyActuator",
]
