"""Actuator fault injection.

:class:`FaultyActuator` wraps a :class:`~repro.dtm.mechanisms.
FetchToggling` actuator (or anything with its ``duty`` /
``set_output`` / ``reset`` surface) and corrupts *commands* according
to a :class:`~repro.faults.schedule.FaultSchedule`:

* **stuck-at windows** pin the duty -- either at the window's
  configured level or, with ``value=None``, frozen at whatever duty
  was in force when the window opened (a latched toggling controller);
* **ignored-command windows** silently drop ``set_output`` calls, so
  the duty stays at its last accepted level (a wedged command bus).

The controller keeps issuing commands throughout; the wrapper records
how many were overridden or dropped so experiments can report
actuation fidelity alongside thermal outcomes.

With a :class:`~repro.telemetry.core.Telemetry` instance attached the
wrapper emits ``"fault"`` events at window *entry* (``channel`` one of
``actuator.stuck`` / ``actuator.ignored``) rather than per dropped
command, keeping the event stream proportional to the number of fault
windows instead of their length.
"""

from __future__ import annotations

from repro.faults.schedule import FaultSchedule
from repro.telemetry.core import ensure_telemetry


class FaultyActuator:
    """Wrap ``inner`` and inject the actuation faults of ``schedule``."""

    def __init__(
        self, inner, schedule: FaultSchedule, telemetry=None
    ) -> None:
        self.inner = inner
        self.schedule = schedule
        self._telemetry = ensure_telemetry(telemetry)
        self._index = 0
        self._frozen_duty: float | None = None
        self._ignoring = False
        # Injection counters.
        self.ignored_commands = 0
        self.stuck_commands = 0

    @property
    def duty(self) -> float:
        """Duty currently applied by the wrapped actuator."""
        return self.inner.duty

    @property
    def levels(self) -> int:
        """Quantization levels of the wrapped actuator."""
        return self.inner.levels

    def quantize(self, output: float) -> float:
        """Delegate quantization to the wrapped actuator."""
        return self.inner.quantize(output)

    def allows(self, cycle: int) -> bool:
        """Delegate the per-cycle fetch gate to the wrapped actuator."""
        return self.inner.allows(cycle)

    def set_output(self, output: float) -> float:
        """Apply one command through the fault model; returns the duty."""
        index = self._index
        self._index += 1
        schedule = self.schedule

        window = schedule.actuator_stuck(index)
        if window is not None:
            if self._frozen_duty is None:
                self._frozen_duty = (
                    self.inner.duty if window.value is None else window.value
                )
                self._note("actuator.stuck", index, duty=self._frozen_duty)
            self.stuck_commands += 1
            return self.inner.set_output(self._frozen_duty)
        self._frozen_duty = None

        if schedule.actuator_ignores(index):
            if not self._ignoring:
                self._ignoring = True
                self._note("actuator.ignored", index, duty=self.inner.duty)
            self.ignored_commands += 1
            return self.inner.duty
        self._ignoring = False
        return self.inner.set_output(output)

    def _note(self, channel: str, index: int, **data) -> None:
        """Emit one fault event when telemetry is attached."""
        if self._telemetry.enabled:
            self._telemetry.event(
                "fault", index, channel, channel=channel, **data
            )

    def reset(self) -> None:
        """Reset the wrapped actuator and restart the fault stream."""
        self.inner.reset()
        self._index = 0
        self._frozen_duty = None
        self._ignoring = False
        self.ignored_commands = 0
        self.stuck_commands = 0
