"""Set-associative caches and the Table 2 memory hierarchy.

L1 I and D caches (64 KB, 2-way, 32 B blocks, 1-cycle), a unified
write-back L2 (2 MB, 4-way, 32 B blocks, 11-cycle), and a flat
100-cycle memory behind it.  Latencies compose: an L1 miss that hits in
L2 costs ``l1.hit + l2.hit``; an L2 miss adds the memory latency.
"""

from __future__ import annotations

from repro.config import CacheConfig
from repro.errors import ConfigError


class Cache:
    """One set-associative, write-back/write-allocate cache level."""

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        self.num_sets = config.num_sets
        if self.num_sets & (self.num_sets - 1):
            raise ConfigError(f"{config.name}: set count must be a power of two")
        self._offset_bits = config.block_bytes.bit_length() - 1
        self._index_bits = self.num_sets.bit_length() - 1
        self._index_mask = self.num_sets - 1
        # Per set: LRU-ordered list of (tag, dirty), MRU last.
        self._sets: list[list[list[int | bool]]] = [
            [] for _ in range(self.num_sets)
        ]
        self.accesses = 0
        self.hits = 0
        self.misses = 0
        self.writebacks = 0

    def _set_and_tag(self, address: int) -> tuple[int, int]:
        block = address >> self._offset_bits
        return block & self._index_mask, block >> self._index_bits

    def probe(self, address: int) -> bool:
        """True if ``address`` is resident (no state change, no stats)."""
        index, tag = self._set_and_tag(address)
        return any(line[0] == tag for line in self._sets[index])

    def access(self, address: int, is_write: bool = False) -> bool:
        """Access one block; returns True on hit.

        On a miss the block is allocated; an evicted dirty block counts
        a writeback.  The *latency* consequences are composed by
        :class:`MemoryHierarchy`, which knows what sits below.
        """
        self.accesses += 1
        index, tag = self._set_and_tag(address)
        ways = self._sets[index]
        for position, line in enumerate(ways):
            if line[0] == tag:
                ways.append(ways.pop(position))  # move to MRU
                if is_write:
                    line[1] = True
                self.hits += 1
                return True
        self.misses += 1
        if len(ways) >= self.config.associativity:
            victim = ways.pop(0)
            if victim[1]:
                self.writebacks += 1
        ways.append([tag, is_write])
        return False

    @property
    def miss_rate(self) -> float:
        """Fraction of accesses that missed."""
        return self.misses / self.accesses if self.accesses else 0.0


class MemoryHierarchy:
    """L1 I/D + unified L2 + flat memory, with composed latencies."""

    def __init__(
        self,
        l1_icache: CacheConfig,
        l1_dcache: CacheConfig,
        l2_cache: CacheConfig,
        memory_latency: int = 100,
    ) -> None:
        if memory_latency <= 0:
            raise ConfigError("memory latency must be positive")
        self.il1 = Cache(l1_icache)
        self.dl1 = Cache(l1_dcache)
        self.ul2 = Cache(l2_cache)
        self.memory_latency = memory_latency
        self.l2_accesses_data = 0
        self.l2_accesses_inst = 0

    def instruction_fetch(self, address: int) -> int:
        """Latency of an instruction fetch at ``address`` [cycles]."""
        if self.il1.access(address):
            return self.il1.config.hit_latency
        self.l2_accesses_inst += 1
        latency = self.il1.config.hit_latency + self.ul2.config.hit_latency
        if not self.ul2.access(address):
            latency += self.memory_latency
        return latency

    def data_access(self, address: int, is_write: bool = False) -> int:
        """Latency of a data access at ``address`` [cycles]."""
        if self.dl1.access(address, is_write):
            return self.dl1.config.hit_latency
        self.l2_accesses_data += 1
        latency = self.dl1.config.hit_latency + self.ul2.config.hit_latency
        if not self.ul2.access(address, is_write):
            latency += self.memory_latency
        return latency
