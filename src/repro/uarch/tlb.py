"""Data TLB: 128-entry fully-associative, 30-cycle miss penalty (Table 2)."""

from __future__ import annotations

from collections import OrderedDict

from repro.errors import ConfigError

#: Page size used for virtual-to-physical translation [bytes].
PAGE_BYTES = 4096


class TLB:
    """Fully-associative translation buffer with true-LRU replacement."""

    def __init__(self, entries: int = 128, miss_penalty: int = 30) -> None:
        if entries <= 0:
            raise ConfigError("TLB entries must be positive")
        if miss_penalty < 0:
            raise ConfigError("TLB miss penalty must be non-negative")
        self.entries = entries
        self.miss_penalty = miss_penalty
        self._pages: OrderedDict[int, None] = OrderedDict()
        self.accesses = 0
        self.misses = 0

    def access(self, address: int) -> int:
        """Translate ``address``; returns the added latency [cycles]."""
        self.accesses += 1
        page = address // PAGE_BYTES
        if page in self._pages:
            self._pages.move_to_end(page)
            return 0
        self.misses += 1
        if len(self._pages) >= self.entries:
            self._pages.popitem(last=False)
        self._pages[page] = None
        return self.miss_penalty

    @property
    def miss_rate(self) -> float:
        """Fraction of translations that missed."""
        return self.misses / self.accesses if self.accesses else 0.0
