"""Load-store queue with store-to-load forwarding.

The Table 2 machine has a 40-entry LSQ.  Beyond bounding the number of
in-flight memory operations, the LSQ's architectural job is memory
disambiguation: a load whose address matches an older in-flight store
receives its data by *forwarding* from the queue (one-cycle latency,
no D-cache round trip for the value).  Synthetic streams have enough
address reuse (sequential runs revisit recently-stored locations) for
forwarding to matter.

Addresses are tracked at 8-byte word granularity -- the generator's
access granularity -- so a forwarding hit means a true value match,
not a false block-level conflict.
"""

from __future__ import annotations

from collections import Counter

from repro.errors import SimulationError

#: Address granularity for disambiguation [bytes].
WORD_BYTES = 8


class LoadStoreQueue:
    """Occupancy tracking plus store-address disambiguation."""

    def __init__(self, capacity: int = 40) -> None:
        if capacity <= 0:
            raise SimulationError("LSQ capacity must be positive")
        self.capacity = capacity
        self._occupancy = 0
        self._store_words: Counter[int] = Counter()
        self.forwarded_loads = 0
        self.load_lookups = 0

    @property
    def occupancy(self) -> int:
        """Memory operations currently in flight."""
        return self._occupancy

    @property
    def full(self) -> bool:
        """True when no more memory operations can dispatch."""
        return self._occupancy >= self.capacity

    def dispatch(self, is_store: bool, address: int) -> None:
        """Admit one memory operation (at rename/dispatch)."""
        if self.full:
            raise SimulationError("dispatch into a full LSQ")
        self._occupancy += 1
        if is_store:
            self._store_words[address // WORD_BYTES] += 1

    def load_forwards(self, address: int) -> bool:
        """True if an in-flight store covers this load's word.

        Called at load issue; a hit means the load completes from the
        queue in one cycle instead of going to the D-cache.
        """
        self.load_lookups += 1
        if self._store_words.get(address // WORD_BYTES, 0) > 0:
            self.forwarded_loads += 1
            return True
        return False

    def commit(self, is_store: bool, address: int) -> None:
        """Retire one memory operation (oldest-first, at commit)."""
        if self._occupancy <= 0:
            raise SimulationError("commit from an empty LSQ")
        self._occupancy -= 1
        if is_store:
            word = address // WORD_BYTES
            remaining = self._store_words[word] - 1
            if remaining > 0:
                self._store_words[word] = remaining
            else:
                del self._store_words[word]

    @property
    def forwarding_rate(self) -> float:
        """Fraction of load lookups satisfied by forwarding."""
        if not self.load_lookups:
            return 0.0
        return self.forwarded_loads / self.load_lookups
