"""Per-structure activity counting for the power model.

The paper's flow (Section 5.2): "first the SimpleScalar pipeline model
determines the activity of each structure; then Wattch computes power
dissipation for each of them".  :class:`ActivityCounters` is that
interface -- the core increments per-cycle access counts per monitored
structure; the power model converts them to utilizations against each
structure's maximum access rate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.thermal.floorplan import STRUCTURES


@dataclass
class ActivityCounters:
    """Access counts for one cycle (or one aggregation window)."""

    counts: dict[str, float] = field(
        default_factory=lambda: {name: 0.0 for name in STRUCTURES}
    )

    def add(self, structure: str, amount: float = 1.0) -> None:
        """Record ``amount`` accesses to a structure."""
        self.counts[structure] += amount

    def reset(self) -> None:
        """Zero all counters (start of a new cycle/window)."""
        for name in self.counts:
            self.counts[name] = 0.0

    def utilization(self, max_rates: dict[str, float]) -> dict[str, float]:
        """Counts normalized by each structure's maximum rate, in [0, 1]."""
        result = {}
        for name, count in self.counts.items():
            rate = max_rates.get(name, 1.0)
            result[name] = min(1.0, count / rate) if rate > 0 else 0.0
        return result


@dataclass
class PipelineStats:
    """Aggregate statistics over a detailed-core run."""

    cycles: int = 0
    committed: int = 0
    fetched: int = 0
    dispatched: int = 0
    issued: int = 0
    branches: int = 0
    mispredicts: int = 0
    fetch_gated_cycles: int = 0
    wrong_path_cycles: int = 0
    icache_stall_cycles: int = 0

    @property
    def ipc(self) -> float:
        """Committed instructions per cycle."""
        return self.committed / self.cycles if self.cycles else 0.0

    @property
    def mispredict_rate(self) -> float:
        """Mispredictions per executed branch."""
        return self.mispredicts / self.branches if self.branches else 0.0
