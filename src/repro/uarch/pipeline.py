"""Cycle-level out-of-order core (the sim-outorder stand-in).

Stage model, oldest-first everywhere:

* **fetch** -- up to ``fetch_width`` instructions per cycle in one
  I-cache access of fetch-width granularity (the paper's fixed fetch
  accounting); fetch stops at a predicted-taken branch, stalls on
  I-cache misses, and is *gated* by the DTM actuator (fetch toggling /
  throttling / speculation control).  Branches are predicted by the
  hybrid predictor; on a misprediction the front end stalls until the
  branch executes (trace-driven simulation does not execute wrong-path
  instructions, but it does charge wrong-path fetch *power*).
* **front pipeline** -- fetched instructions spend
  ``2 + extra_pipe_stages`` cycles in decode/rename/enqueue (the paper
  adds three stages to SimpleScalar's baseline) before dispatch.
* **dispatch** -- into the RUU (and LSQ for memory ops) while space
  remains, recording register producers for dependence tracking.
* **issue** -- up to ``issue_width`` ready instructions per cycle,
  limited per functional-unit pool; loads translate through the TLB
  and access the D-cache at issue; execution latencies come from the
  op class plus the memory system.
* **commit** -- in-order, up to ``commit_width`` completed
  instructions per cycle; stores access the D-cache at commit.

Every stage increments :class:`ActivityCounters`, which the Wattch-style
power model converts to per-structure power each cycle.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Iterator

from repro.config import MachineConfig
from repro.errors import SimulationError
from repro.isa.instructions import Instruction, OpClass
from repro.power.activity import MAX_ACCESS_RATES
from repro.uarch.branch.hybrid import HybridPredictor
from repro.uarch.caches import MemoryHierarchy
from repro.uarch.functional_units import FunctionalUnits
from repro.uarch.lsq import LoadStoreQueue
from repro.uarch.stats import ActivityCounters, PipelineStats
from repro.uarch.tlb import TLB

_WAITING = 0
_ISSUED = 1
_DONE = 2


class _Entry:
    """One RUU slot."""

    __slots__ = ("instr", "state", "done_cycle", "producers", "is_mem")

    def __init__(self, instr: Instruction) -> None:
        self.instr = instr
        self.state = _WAITING
        self.done_cycle = -1
        self.producers: list["_Entry"] = []
        self.is_mem = instr.op.is_memory


@dataclass
class CoreResult:
    """Outcome of a detailed-core run."""

    stats: PipelineStats
    #: Mean per-structure utilization over the run (0..1).
    mean_utilization: dict[str, float]

    @property
    def ipc(self) -> float:
        """Committed IPC of the run."""
        return self.stats.ipc


class OutOfOrderCore:
    """The simulated processor.  Drive it with :meth:`step` per cycle."""

    def __init__(
        self,
        config: MachineConfig,
        instructions: Iterator[Instruction],
        fetch_gate: Callable[[int], bool] | None = None,
    ) -> None:
        self.config = config
        self._stream = instructions
        self._fetch_gate = fetch_gate
        bp = config.branch_predictor
        self.predictor = HybridPredictor(
            bimodal_entries=bp.bimodal_entries,
            global_entries=bp.global_entries,
            global_history_bits=bp.global_history_bits,
            chooser_entries=bp.chooser_entries,
            btb_entries=bp.btb_entries,
            btb_associativity=bp.btb_associativity,
        )
        self.memory = MemoryHierarchy(
            config.l1_icache, config.l1_dcache, config.l2_cache,
            config.memory_latency,
        )
        self.tlb = TLB(config.tlb_entries, config.tlb_miss_penalty)
        self.itlb = TLB(config.tlb_entries, config.tlb_miss_penalty)
        self.lsq = LoadStoreQueue(config.lsq_entries)
        self.units = FunctionalUnits(
            config.int_alus, config.int_mult_div, config.fp_alus,
            config.fp_mult_div, config.mem_ports,
        )
        self.stats = PipelineStats()
        self.activity = ActivityCounters()

        self._ruu: deque[_Entry] = deque()
        self._front: deque[tuple[int, _Entry]] = deque()  # (ready_cycle, entry)
        self._front_latency = 2 + config.extra_pipe_stages
        self._reg_producer: dict[int, _Entry] = {}
        self._cycle = 0
        self._fetch_resume = 0  # I-cache miss stall
        self._redirect_entry: _Entry | None = None  # unresolved mispredict
        #: Throttling hook: instructions fetched per fetch cycle
        #: (speculation-control & throttling mechanisms lower this).
        self.fetch_width_limit = config.fetch_width
        #: Speculation-control hook: max unresolved branches in flight.
        self.max_unresolved_branches: int | None = None
        self._unresolved_branches = 0
        self._utilization_sums = {name: 0.0 for name in self.activity.counts}

    # -- public API -----------------------------------------------------------
    @property
    def cycle(self) -> int:
        """Current simulation cycle."""
        return self._cycle

    def step(self) -> ActivityCounters:
        """Simulate one clock cycle; returns this cycle's activity."""
        self.activity.reset()
        self.units.begin_cycle()
        self._commit()
        self._issue()
        self._dispatch()
        self._fetch()
        self.stats.cycles += 1
        self._cycle += 1
        return self.activity

    def run(
        self,
        max_cycles: int,
        max_instructions: int | None = None,
        per_cycle_hook: Callable[[int, ActivityCounters], None] | None = None,
    ) -> CoreResult:
        """Run until a cycle or committed-instruction budget is reached."""
        if max_cycles <= 0:
            raise SimulationError("max_cycles must be positive")
        max_rates = _max_access_rates(self.config)
        for _ in range(max_cycles):
            activity = self.step()
            for name, count in activity.counts.items():
                rate = max_rates[name]
                self._utilization_sums[name] += min(1.0, count / rate)
            if per_cycle_hook is not None:
                per_cycle_hook(self._cycle, activity)
            if max_instructions is not None and self.stats.committed >= max_instructions:
                break
        cycles = max(1, self.stats.cycles)
        mean_utilization = {
            name: total / cycles for name, total in self._utilization_sums.items()
        }
        return CoreResult(stats=self.stats, mean_utilization=mean_utilization)

    # -- commit ------------------------------------------------------------------
    def _commit(self) -> None:
        committed = 0
        while (
            committed < self.config.commit_width
            and self._ruu
            and self._ruu[0].state == _DONE
            and self._ruu[0].done_cycle <= self._cycle
        ):
            entry = self._ruu.popleft()
            instr = entry.instr
            if entry.is_mem:
                self.lsq.commit(instr.op is OpClass.STORE, instr.address)
                self.activity.add("lsq")
                if instr.op is OpClass.STORE:
                    self.memory.data_access(instr.address, is_write=True)
                    self.activity.add("dcache")
            if instr.dest_reg >= 0:
                self.activity.add("regfile")  # architectural write
            if self._reg_producer.get(instr.dest_reg) is entry:
                del self._reg_producer[instr.dest_reg]
            self.activity.add("window")
            self.stats.committed += 1
            committed += 1

    # -- issue ----------------------------------------------------------------------
    def _issue(self) -> None:
        issued = 0
        int_issued = 0
        fp_issued = 0
        for entry in self._ruu:
            if issued >= self.config.issue_width:
                break
            if entry.state != _WAITING:
                continue
            if not _operands_ready(entry, self._cycle):
                continue
            op = entry.instr.op
            pool = self.units.pool_for(op)
            if not pool.can_issue():
                continue
            if op.is_fp:
                if fp_issued >= self.config.fp_issue_width:
                    continue
            elif int_issued >= self.config.int_issue_width:
                continue
            pool.issue()
            latency = entry.instr.latency
            if op is OpClass.LOAD:
                latency += self.tlb.access(entry.instr.address)
                if self.lsq.load_forwards(entry.instr.address):
                    pass  # value supplied by an in-flight store: 1 cycle
                else:
                    latency += self.memory.data_access(entry.instr.address) - 1
                    self.activity.add("dcache")
                self.activity.add("lsq")
            elif op is OpClass.STORE:
                latency += self.tlb.access(entry.instr.address)
                self.activity.add("lsq")  # address calculation + LSQ write
            entry.state = _ISSUED
            entry.done_cycle = self._cycle + max(1, latency)
            entry.producers = []  # help the GC; operands were consumed
            if entry.instr.is_branch:
                self._unresolved_branches -= 1
                if entry is self._redirect_entry:
                    # The mispredicted branch now has a resolution time;
                    # fetch restarts the cycle after it completes.
                    self._fetch_resume = max(
                        self._fetch_resume, entry.done_cycle + 1
                    )
                    self._redirect_entry = None
            self.activity.add("window")  # wakeup/select
            self.activity.add("regfile", 2.0)  # operand reads
            if op.is_fp:
                self.activity.add("fp_exec")
                fp_issued += 1
            else:
                self.activity.add("int_exec")
                int_issued += 1
            self.stats.issued += 1
            issued += 1
        # Completion bookkeeping: mark entries whose latency elapsed.
        for entry in self._ruu:
            if entry.state == _ISSUED and entry.done_cycle <= self._cycle:
                entry.state = _DONE

    # -- dispatch ----------------------------------------------------------------------
    def _dispatch(self) -> None:
        dispatched = 0
        while (
            dispatched < self.config.decode_width
            and self._front
            and self._front[0][0] <= self._cycle
            and len(self._ruu) < self.config.ruu_entries
        ):
            if self._front[0][1].is_mem and self.lsq.full:
                break
            _, entry = self._front.popleft()
            instr = entry.instr
            producers = []
            for reg in instr.src_regs:
                producer = self._reg_producer.get(reg)
                if producer is not None and producer.state != _DONE:
                    producers.append(producer)
            entry.producers = producers
            if instr.dest_reg >= 0:
                self._reg_producer[instr.dest_reg] = entry
            if entry.is_mem:
                self.lsq.dispatch(instr.op is OpClass.STORE, instr.address)
                self.activity.add("lsq")
            self._ruu.append(entry)
            self.activity.add("window")
            self.stats.dispatched += 1
            dispatched += 1

    # -- fetch ----------------------------------------------------------------------------
    def _fetch(self) -> None:
        if self._fetch_gate is not None and not self._fetch_gate(self._cycle):
            self.stats.fetch_gated_cycles += 1
            return
        if self._redirect_entry is not None or self._cycle < self._fetch_resume:
            # Misprediction recovery or I-cache miss: the real machine
            # fetches down the wrong path / replays -- charge front-end
            # power without admitting instructions.
            self.stats.wrong_path_cycles += 1
            if self._cycle < self._fetch_resume:
                self.stats.icache_stall_cycles += 1
            self.activity.add("bpred", 0.5)
            return
        room = 2 * self.config.fetch_width * self._front_latency - len(self._front)
        if room <= 0:
            return
        width = min(self.fetch_width_limit, self.config.fetch_width, room)
        if width <= 0:
            self.stats.fetch_gated_cycles += 1
            return
        first_instruction = True
        ready_at = self._cycle + self._front_latency
        for _ in range(width):
            if (
                self.max_unresolved_branches is not None
                and self._unresolved_branches >= self.max_unresolved_branches
            ):
                break
            instr = next(self._stream)
            if first_instruction:
                # One I-cache access of fetch-width granularity per
                # cycle, translated through the I-TLB.
                latency = self.memory.instruction_fetch(instr.pc)
                latency += self.itlb.access(instr.pc)
                if latency > self.config.l1_icache.hit_latency:
                    self._fetch_resume = self._cycle + latency
                first_instruction = False
            entry = _Entry(instr)
            self._front.append((ready_at, entry))
            self.stats.fetched += 1
            if instr.is_branch:
                self._handle_branch(entry)
                break_fetch = instr.taken or entry is self._redirect_entry
                if break_fetch:
                    break

    def _handle_branch(self, entry: _Entry) -> None:
        instr = entry.instr
        self.stats.branches += 1
        self._unresolved_branches += 1
        self.activity.add("bpred")
        prediction = self.predictor.predict(instr.pc)
        mispredicted = self.predictor.resolve(
            instr.pc, prediction, instr.taken, instr.target
        )
        self.activity.add("bpred")  # update port
        if mispredicted:
            self.stats.mispredicts += 1
            # Fetch goes down the wrong path until this branch executes.
            self._redirect_entry = entry


def _operands_ready(entry: _Entry, cycle: int) -> bool:
    for producer in entry.producers:
        if producer.state != _DONE or producer.done_cycle > cycle:
            return False
    return True


def _max_access_rates(config: MachineConfig) -> dict[str, float]:
    """Reference 'full utilization' access rates per structure."""
    return dict(MAX_ACCESS_RATES)
