"""Hybrid predictor: bimodal + GAg selected by a bimodal-style chooser.

This is SimpleScalar's "slightly simplified" hybrid of McFarling's
combining predictor (paper Table 2): a per-PC chooser of 2-bit counters
picks between the bimodal and the global two-level component.  The
chooser trains toward whichever component was right when they disagree.
Direction tables are updated speculatively at fetch; the global history
is checkpointed per prediction so it can be repaired when a branch
turns out mispredicted.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.uarch.branch.bimodal import BimodalPredictor
from repro.uarch.branch.btb import BranchTargetBuffer
from repro.uarch.branch.twolevel import GAgPredictor

_WEAKLY_GLOBAL = 2
_COUNTER_MAX = 3


@dataclass(frozen=True)
class BranchPrediction:
    """Everything fetch needs to act on (and later repair) a prediction."""

    taken: bool
    target: int | None
    bimodal_taken: bool
    global_taken: bool
    used_global: bool
    history_checkpoint: int
    history_at_predict: int


class HybridPredictor:
    """The paper's hybrid branch predictor with speculative update."""

    def __init__(
        self,
        bimodal_entries: int = 4096,
        global_entries: int = 4096,
        global_history_bits: int = 12,
        chooser_entries: int = 4096,
        btb_entries: int = 1024,
        btb_associativity: int = 2,
    ) -> None:
        if chooser_entries <= 0 or chooser_entries & (chooser_entries - 1):
            raise ConfigError("chooser entries must be a positive power of two")
        self.bimodal = BimodalPredictor(bimodal_entries)
        self.gag = GAgPredictor(global_entries, global_history_bits)
        self.btb = BranchTargetBuffer(btb_entries, btb_associativity)
        self._chooser = [_WEAKLY_GLOBAL] * chooser_entries
        self._chooser_mask = chooser_entries - 1
        self.predictions = 0
        self.direction_mispredicts = 0
        self.target_mispredicts = 0

    # -- prediction ----------------------------------------------------------
    def predict(self, pc: int) -> BranchPrediction:
        """Predict the branch at ``pc`` and speculatively update history."""
        self.predictions += 1
        bimodal_taken = self.bimodal.predict(pc)
        history_at_predict = self.gag.history
        global_taken = self.gag.predict(pc)
        used_global = self._chooser[self._chooser_index(pc)] >= _WEAKLY_GLOBAL
        taken = global_taken if used_global else bimodal_taken
        target = self.btb.lookup(pc) if taken else None
        checkpoint = self.gag.speculative_update_history(taken)
        return BranchPrediction(
            taken=taken,
            target=target,
            bimodal_taken=bimodal_taken,
            global_taken=global_taken,
            used_global=used_global,
            history_checkpoint=checkpoint,
            history_at_predict=history_at_predict,
        )

    # -- resolution -----------------------------------------------------------
    def resolve(
        self,
        pc: int,
        prediction: BranchPrediction,
        taken: bool,
        target: int,
    ) -> bool:
        """Train on the actual outcome; returns True on a misprediction.

        On a direction misprediction the speculative global history is
        repaired from the prediction's checkpoint (the paper: "updated
        speculatively and repaired after a misprediction").
        """
        direction_wrong = prediction.taken != taken
        target_wrong = taken and prediction.taken and prediction.target != target

        self.bimodal.update(pc, taken)
        self.gag.update(pc, taken, history=prediction.history_at_predict)
        self._train_chooser(pc, prediction, taken)
        if taken:
            self.btb.update(pc, target)
        if direction_wrong:
            self.direction_mispredicts += 1
            self.gag.repair_history(prediction.history_checkpoint, taken)
            return True
        if target_wrong:
            self.target_mispredicts += 1
            return True
        return False

    @property
    def mispredict_rate(self) -> float:
        """Fraction of predictions that were wrong (direction or target)."""
        if not self.predictions:
            return 0.0
        wrong = self.direction_mispredicts + self.target_mispredicts
        return wrong / self.predictions

    # -- internals --------------------------------------------------------------
    def _chooser_index(self, pc: int) -> int:
        return (pc >> 2) & self._chooser_mask

    def _train_chooser(
        self, pc: int, prediction: BranchPrediction, taken: bool
    ) -> None:
        bimodal_right = prediction.bimodal_taken == taken
        global_right = prediction.global_taken == taken
        if bimodal_right == global_right:
            return  # both right or both wrong: no preference signal
        index = self._chooser_index(pc)
        counter = self._chooser[index]
        if global_right:
            if counter < _COUNTER_MAX:
                self._chooser[index] = counter + 1
        elif counter > 0:
            self._chooser[index] = counter - 1
