"""Return address stack (32-entry in the paper's configuration).

The synthetic ISA models calls/returns only implicitly, but the RAS is
part of the Table 2 predictor and is exercised directly by tests and
available to extended ISAs.  It behaves like hardware: a fixed-depth
circular stack that silently wraps (overwriting the oldest entry) on
overflow and returns a garbage (zero) prediction on underflow.
"""

from __future__ import annotations

from repro.errors import ConfigError


class ReturnAddressStack:
    """Fixed-depth circular return-address stack."""

    def __init__(self, depth: int = 32) -> None:
        if depth <= 0:
            raise ConfigError("RAS depth must be positive")
        self.depth = depth
        self._entries = [0] * depth
        self._top = 0  # index of the next free slot
        self._valid = 0
        self.pushes = 0
        self.pops = 0
        self.underflows = 0

    def push(self, return_address: int) -> None:
        """Push a return address (a call); wraps on overflow."""
        self.pushes += 1
        self._entries[self._top] = return_address
        self._top = (self._top + 1) % self.depth
        self._valid = min(self._valid + 1, self.depth)

    def pop(self) -> int:
        """Pop the predicted return address; 0 on underflow."""
        self.pops += 1
        if self._valid == 0:
            self.underflows += 1
            return 0
        self._top = (self._top - 1) % self.depth
        self._valid -= 1
        return self._entries[self._top]

    def __len__(self) -> int:
        return self._valid
