"""Branch prediction: the hybrid predictor of paper Table 2.

A 4K-entry bimodal component, a 4K-entry GAg (global two-level)
component with 12 bits of history, a 4K-entry bimodal-style chooser, a
1K-entry 2-way BTB, and a 32-entry return-address stack.  The predictor
is updated speculatively at fetch and its global history is repaired
after a misprediction, as in the paper.
"""

from repro.uarch.branch.bimodal import BimodalPredictor
from repro.uarch.branch.btb import BranchTargetBuffer
from repro.uarch.branch.hybrid import HybridPredictor
from repro.uarch.branch.ras import ReturnAddressStack
from repro.uarch.branch.twolevel import GAgPredictor

__all__ = [
    "BimodalPredictor",
    "BranchTargetBuffer",
    "GAgPredictor",
    "HybridPredictor",
    "ReturnAddressStack",
]
