"""Bimodal (per-PC two-bit saturating counter) branch predictor."""

from __future__ import annotations

from repro.errors import ConfigError

#: Two-bit counter encodings: 0-1 predict not-taken, 2-3 predict taken.
_WEAKLY_TAKEN = 2
_COUNTER_MAX = 3


class BimodalPredictor:
    """A classic table of 2-bit saturating counters indexed by PC."""

    def __init__(self, entries: int = 4096) -> None:
        if entries <= 0 or entries & (entries - 1):
            raise ConfigError("bimodal entries must be a positive power of two")
        self.entries = entries
        self._mask = entries - 1
        self._counters = [_WEAKLY_TAKEN] * entries
        self.lookups = 0
        self.updates = 0

    def _index(self, pc: int) -> int:
        return (pc >> 2) & self._mask

    def predict(self, pc: int) -> bool:
        """Predicted direction for the branch at ``pc``."""
        self.lookups += 1
        return self._counters[self._index(pc)] >= _WEAKLY_TAKEN

    def update(self, pc: int, taken: bool) -> None:
        """Train the counter for the branch at ``pc`` with its outcome."""
        self.updates += 1
        index = self._index(pc)
        counter = self._counters[index]
        if taken:
            if counter < _COUNTER_MAX:
                self._counters[index] = counter + 1
        elif counter > 0:
            self._counters[index] = counter - 1
