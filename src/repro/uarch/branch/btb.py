"""Branch target buffer: set-associative PC -> target cache."""

from __future__ import annotations

from repro.errors import ConfigError


class BranchTargetBuffer:
    """A 2-way (configurable) set-associative BTB with LRU replacement."""

    def __init__(self, entries: int = 1024, associativity: int = 2) -> None:
        if entries <= 0 or entries % associativity:
            raise ConfigError("BTB entries must be a positive multiple of assoc")
        self.entries = entries
        self.associativity = associativity
        self.num_sets = entries // associativity
        if self.num_sets & (self.num_sets - 1):
            raise ConfigError("BTB set count must be a power of two")
        # Each set is an LRU-ordered list of (tag, target), MRU last.
        self._sets: list[list[tuple[int, int]]] = [[] for _ in range(self.num_sets)]
        self.lookups = 0
        self.hits = 0

    def _set_and_tag(self, pc: int) -> tuple[int, int]:
        index = (pc >> 2) & (self.num_sets - 1)
        tag = pc >> 2
        return index, tag

    def lookup(self, pc: int) -> int | None:
        """Predicted target for ``pc``, or None on a BTB miss."""
        self.lookups += 1
        index, tag = self._set_and_tag(pc)
        ways = self._sets[index]
        for position, (stored_tag, target) in enumerate(ways):
            if stored_tag == tag:
                ways.append(ways.pop(position))  # move to MRU
                self.hits += 1
                return target
        return None

    def update(self, pc: int, target: int) -> None:
        """Install or refresh the target for a taken branch."""
        index, tag = self._set_and_tag(pc)
        ways = self._sets[index]
        for position, (stored_tag, _) in enumerate(ways):
            if stored_tag == tag:
                ways.pop(position)
                break
        if len(ways) >= self.associativity:
            ways.pop(0)  # evict LRU
        ways.append((tag, target))
