"""GAg two-level adaptive predictor (global history, global PHT).

The 4K-entry / 12-bit-history component of the paper's hybrid
predictor.  The history register is updated *speculatively* at predict
time (as the paper's predictor is) and can be checkpointed/repaired
after a misprediction.
"""

from __future__ import annotations

from repro.errors import ConfigError

_WEAKLY_TAKEN = 2
_COUNTER_MAX = 3


class GAgPredictor:
    """Global-history two-level predictor with speculative history."""

    def __init__(self, entries: int = 4096, history_bits: int = 12) -> None:
        if entries <= 0 or entries & (entries - 1):
            raise ConfigError("GAg entries must be a positive power of two")
        if history_bits <= 0 or (1 << history_bits) > entries * 16:
            raise ConfigError("history_bits out of range")
        self.entries = entries
        self.history_bits = history_bits
        self._mask = entries - 1
        self._history_mask = (1 << history_bits) - 1
        self._counters = [_WEAKLY_TAKEN] * entries
        self._history = 0
        self.lookups = 0
        self.updates = 0

    @property
    def history(self) -> int:
        """Current (speculative) global history register contents."""
        return self._history

    def _index(self, history: int) -> int:
        return history & self._mask

    def predict(self, pc: int) -> bool:
        """Predicted direction using the current global history."""
        self.lookups += 1
        return self._counters[self._index(self._history)] >= _WEAKLY_TAKEN

    def speculative_update_history(self, taken: bool) -> int:
        """Shift the predicted outcome into the history; returns a
        checkpoint token (the pre-update history) for later repair."""
        checkpoint = self._history
        self._history = ((self._history << 1) | int(taken)) & self._history_mask
        return checkpoint

    def repair_history(self, checkpoint: int, actual_taken: bool) -> None:
        """Restore history after a misprediction, then apply the actual
        outcome of the mispredicted branch."""
        self._history = (
            (checkpoint << 1) | int(actual_taken)
        ) & self._history_mask

    def update(self, pc: int, taken: bool, history: int | None = None) -> None:
        """Train the counter selected by ``history`` (default: current)."""
        self.updates += 1
        selected = self._history if history is None else history
        index = self._index(selected)
        counter = self._counters[index]
        if taken:
            if counter < _COUNTER_MAX:
                self._counters[index] = counter + 1
        elif counter > 0:
            self._counters[index] = counter - 1
