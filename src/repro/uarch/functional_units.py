"""Functional-unit pools (Table 2: 4 IntALU, 1 IntMult/Div, 2 FPALU,
1 FPMult/Div, 2 memory ports).

Units are fully pipelined: a pool limits how many operations of its
class can *begin* in one cycle.  ``begin_cycle`` must be called as
simulation time advances so per-cycle issue counts reset.
"""

from __future__ import annotations

from repro.errors import SimulationError
from repro.isa.instructions import OpClass


class FunctionalUnitPool:
    """Issue-bandwidth limiter for one class of functional units."""

    def __init__(self, name: str, count: int) -> None:
        if count <= 0:
            raise SimulationError(f"{name}: unit count must be positive")
        self.name = name
        self.count = count
        self._issued_this_cycle = 0
        self.total_issued = 0

    def begin_cycle(self) -> None:
        """Reset the per-cycle issue counter."""
        self._issued_this_cycle = 0

    def can_issue(self) -> bool:
        """True if another operation may start this cycle."""
        return self._issued_this_cycle < self.count

    def issue(self) -> None:
        """Consume one issue slot this cycle."""
        if not self.can_issue():
            raise SimulationError(f"{self.name}: issued past capacity")
        self._issued_this_cycle += 1
        self.total_issued += 1


class FunctionalUnits:
    """All pools of Table 2, with op-class dispatch."""

    def __init__(
        self,
        int_alus: int = 4,
        int_mult_div: int = 1,
        fp_alus: int = 2,
        fp_mult_div: int = 1,
        mem_ports: int = 2,
    ) -> None:
        self.int_alu = FunctionalUnitPool("int_alu", int_alus)
        self.int_mult = FunctionalUnitPool("int_mult", int_mult_div)
        self.fp_alu = FunctionalUnitPool("fp_alu", fp_alus)
        self.fp_mult = FunctionalUnitPool("fp_mult", fp_mult_div)
        self.mem_port = FunctionalUnitPool("mem_port", mem_ports)
        self._pools = {
            OpClass.INT_ALU: self.int_alu,
            OpClass.INT_MULT: self.int_mult,
            OpClass.FP_ALU: self.fp_alu,
            OpClass.FP_MULT: self.fp_mult,
            OpClass.LOAD: self.mem_port,
            OpClass.STORE: self.mem_port,
            OpClass.BRANCH: self.int_alu,
            OpClass.NOP: self.int_alu,
        }

    def begin_cycle(self) -> None:
        """Reset every pool's per-cycle counter."""
        self.int_alu.begin_cycle()
        self.int_mult.begin_cycle()
        self.fp_alu.begin_cycle()
        self.fp_mult.begin_cycle()
        self.mem_port.begin_cycle()

    def pool_for(self, op: OpClass) -> FunctionalUnitPool:
        """The pool an operation class issues to."""
        return self._pools[op]
