"""Cycle-level out-of-order core (the SimpleScalar/sim-outorder stand-in).

An Alpha-21264-like machine per the paper's Table 2, with the paper's
extensions: three extra rename/enqueue stages between decode and issue,
fetch accounting of one fetch-width access per cycle, and per-structure
access counting feeding the Wattch-style power model.
"""

from repro.uarch.caches import Cache, MemoryHierarchy
from repro.uarch.pipeline import CoreResult, OutOfOrderCore
from repro.uarch.stats import ActivityCounters

__all__ = [
    "ActivityCounters",
    "Cache",
    "CoreResult",
    "MemoryHierarchy",
    "OutOfOrderCore",
]
