"""Feedback control (paper Section 3).

* :mod:`repro.control.plant` -- first-order-plus-dead-time (FOPDT)
  models of the controlled thermal process.
* :mod:`repro.control.pid` -- the discrete PID controller family with
  saturation and anti-windup.
* :mod:`repro.control.tuning` -- Laplace-domain phase-margin tuning of
  P / PI / PD / PID gains from a plant model.
* :mod:`repro.control.analysis` -- closed-loop step-response simulation
  and stability/overshoot/settling metrics.
"""

from repro.control.analysis import (
    StepResponse,
    max_safe_setpoint,
    simulate_step_response,
)
from repro.control.frequency import LoopMargins, measure_margins, open_loop_response
from repro.control.pid import AntiWindup, PIDController
from repro.control.plant import FirstOrderPlant, dtm_plant
from repro.control.tuning import ControllerGains, tune

__all__ = [
    "AntiWindup",
    "ControllerGains",
    "FirstOrderPlant",
    "LoopMargins",
    "PIDController",
    "StepResponse",
    "dtm_plant",
    "max_safe_setpoint",
    "measure_margins",
    "open_loop_response",
    "simulate_step_response",
    "tune",
]
