"""First-order-plus-dead-time (FOPDT) plant models (paper Eq. 3).

The thermal dynamics of a controlled block are modeled as

    P(s) = K * exp(-s*D) / (1 + s*tau)

where, per the paper:

* ``tau`` is the block's thermal RC time constant (the paper uses the
  *longest* time constant among the monitored blocks),
* ``K`` is the steady-state gain from actuator input to temperature --
  the thermal R times the actuator's power gain (fetch duty -> block
  power, approximated by the block's peak power), and
* ``D`` is the effective loop delay introduced by sampling: half the
  sampling period.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import units
from repro.errors import ControllerError
from repro.thermal.floorplan import Floorplan


@dataclass(frozen=True)
class FirstOrderPlant:
    """A FOPDT process: gain, time constant, and dead time (seconds)."""

    gain: float
    time_constant: float
    dead_time: float = 0.0

    def __post_init__(self) -> None:
        if self.gain == 0:
            raise ControllerError("plant gain must be nonzero")
        if self.time_constant <= 0:
            raise ControllerError("plant time constant must be positive")
        if self.dead_time < 0:
            raise ControllerError("plant dead time must be non-negative")

    def steady_state_output(self, input_value: float) -> float:
        """Output change produced by a sustained input change."""
        return self.gain * input_value


def dtm_plant(
    floorplan: Floorplan,
    block: str | None = None,
    sampling_interval_cycles: int = units.SAMPLING_INTERVAL_CYCLES,
    cycle_time: float = units.CYCLE_TIME,
) -> FirstOrderPlant:
    """The DTM plant seen by a fetch-toggling controller.

    Input is the fetch duty (0..1); output is the block temperature rise
    over the heatsink [K].  With no ``block`` given, a conservative
    worst-case plant is built: the largest steady-state gain
    (peak power * R, i.e. the largest peak temperature rise) combined
    with the longest block time constant, which is what the paper tunes
    against.
    """
    if sampling_interval_cycles <= 0:
        raise ControllerError("sampling interval must be positive")
    dead_time = 0.5 * sampling_interval_cycles * cycle_time
    if block is None:
        gain = max(b.peak_temperature_rise for b in floorplan.blocks)
        tau = floorplan.longest_block_time_constant
    else:
        chosen = floorplan.block(block)
        gain = chosen.peak_temperature_rise
        tau = chosen.time_constant
    return FirstOrderPlant(gain=gain, time_constant=tau, dead_time=dead_time)
