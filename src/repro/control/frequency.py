"""Frequency-domain analysis of the tuned control loop.

The tuning module *designs* for a phase margin; this module *measures*
what the resulting open loop actually has: gain crossover, phase
crossover, gain margin, and phase margin, evaluated from the exact
frequency response

    L(jw) = C(jw) * K * exp(-jwD) / (1 + jw*tau),
    C(jw) = Kp + Ki/(jw) + Kd*(jw).

Used by tests to close the loop on the tuner (the measured phase
margin must equal the designed one) and by the controller-design
example to print a margin report.
"""

from __future__ import annotations

import cmath
import math
from dataclasses import dataclass

from repro.control.plant import FirstOrderPlant
from repro.control.tuning import ControllerGains
from repro.errors import ControllerError


def open_loop_response(
    gains: ControllerGains, plant: FirstOrderPlant, omega: float
) -> complex:
    """The open-loop transfer function L(jw) at one frequency [rad/s]."""
    if omega <= 0:
        raise ControllerError("omega must be positive")
    s = 1j * omega
    controller = gains.kp + (gains.ki / s if gains.ki else 0.0) + gains.kd * s
    plant_tf = (
        plant.gain * cmath.exp(-s * plant.dead_time) / (1.0 + s * plant.time_constant)
    )
    return controller * plant_tf


@dataclass(frozen=True)
class LoopMargins:
    """Measured stability margins of an open loop."""

    gain_crossover_rad_s: float
    phase_margin_deg: float
    phase_crossover_rad_s: float | None
    gain_margin_db: float | None

    @property
    def stable(self) -> bool:
        """Nyquist-style verdict for these (minimum-phase-ish) loops."""
        positive_pm = self.phase_margin_deg > 0
        positive_gm = self.gain_margin_db is None or self.gain_margin_db > 0
        return positive_pm and positive_gm


def _bisect(fn, low: float, high: float, iterations: int = 200) -> float:
    f_low = fn(low)
    for _ in range(iterations):
        mid = math.sqrt(low * high)
        if (fn(mid) > 0) == (f_low > 0):
            low = mid
        else:
            high = mid
    return math.sqrt(low * high)


def open_loop_phase_deg(
    gains: ControllerGains, plant: FirstOrderPlant, omega: float
) -> float:
    """Analytically-unwrapped open-loop phase [degrees].

    The principal value from :func:`cmath.phase` wraps once the
    transport delay exceeds pi; summing the terms analytically keeps
    the phase monotone so crossovers can be bisected:

    ``phase = atan2(Kd*w - Ki/w, Kp) - atan(w*tau) - w*D``.
    """
    if omega <= 0:
        raise ControllerError("omega must be positive")
    controller_phase = math.atan2(
        gains.kd * omega - (gains.ki / omega if gains.ki else 0.0), gains.kp
    )
    plant_phase = -math.atan(omega * plant.time_constant)
    delay_phase = -omega * plant.dead_time
    return math.degrees(controller_phase + plant_phase + delay_phase)


def measure_margins(
    gains: ControllerGains, plant: FirstOrderPlant
) -> LoopMargins:
    """Gain/phase crossovers and margins of the tuned loop.

    Loop gain decreases monotonically over the band of interest and
    the analytically-unwrapped phase decreases monotonically too, so
    bisection on a log-frequency grid finds each crossover.
    """
    w_min = 1e-3 / plant.time_constant
    w_max = (
        50.0 * math.pi / plant.dead_time
        if plant.dead_time > 0
        else 1e6 / plant.time_constant
    )

    def log_magnitude(omega: float) -> float:
        return math.log10(abs(open_loop_response(gains, plant, omega)))

    if log_magnitude(w_min) < 0:
        raise ControllerError("loop gain below unity across the band")
    if log_magnitude(w_max) > 0:
        raise ControllerError("loop gain above unity across the band")
    w_gc = _bisect(log_magnitude, w_min, w_max)
    phase_margin = 180.0 + open_loop_phase_deg(gains, plant, w_gc)

    def phase_plus_180(omega: float) -> float:
        return open_loop_phase_deg(gains, plant, omega) + 180.0

    phase_crossover = None
    gain_margin_db = None
    if plant.dead_time > 0 and phase_plus_180(w_max) < 0 < phase_plus_180(w_gc):
        w_pc = _bisect(phase_plus_180, w_gc, w_max)
        phase_crossover = w_pc
        magnitude = abs(open_loop_response(gains, plant, w_pc))
        gain_margin_db = -20.0 * math.log10(magnitude)

    return LoopMargins(
        gain_crossover_rad_s=w_gc,
        phase_margin_deg=phase_margin,
        phase_crossover_rad_s=phase_crossover,
        gain_margin_db=gain_margin_db,
    )
