"""Discrete PID controller with output saturation and anti-windup.

Paper Section 3.2: the controller output is the weighted sum of a
proportional, an integral, and a derivative action on the error

    u(t) = bias + Kp*e(t) + Ki * integral(e) + Kd * de/dt .

Saturation and integral windup (Section 3.3): when the actuator
saturates (fetch already fully on, or fully off) the integral would
otherwise keep growing without effect and then take a long time to
unwind, during which the processor can run into a thermal emergency.
The paper freezes the integrator at saturation and prevents the
accumulated integral from going negative; both behaviours are
implemented here (``AntiWindup.CONDITIONAL`` plus the non-negative
clamp), and can be disabled for the windup ablation experiment.

The derivative acts on the *measurement* rather than the error by
default, which removes the derivative kick on setpoint changes without
altering disturbance response.
"""

from __future__ import annotations

import enum

from repro.errors import ControllerError


class AntiWindup(enum.Enum):
    """Integral anti-windup strategies."""

    #: No protection -- the ablation baseline.
    NONE = "none"
    #: Freeze the integrator while the output is saturated and the error
    #: would push it further into saturation (the paper's mechanism).
    CONDITIONAL = "conditional"
    #: Clamp the integral term to the output range.
    CLAMP = "clamp"


class PIDController:
    """A sampled PID controller producing a saturated scalar output."""

    def __init__(
        self,
        kp: float,
        ki: float = 0.0,
        kd: float = 0.0,
        setpoint: float = 0.0,
        sample_time: float = 1.0,
        output_limits: tuple[float, float] = (0.0, 1.0),
        bias: float = 0.0,
        anti_windup: AntiWindup = AntiWindup.CONDITIONAL,
        integral_non_negative: bool = True,
        derivative_on_measurement: bool = True,
    ) -> None:
        if sample_time <= 0:
            raise ControllerError("sample_time must be positive")
        low, high = output_limits
        if low >= high:
            raise ControllerError("output_limits must be (low, high) with low < high")
        self.kp = kp
        self.ki = ki
        self.kd = kd
        self.setpoint = setpoint
        self.sample_time = sample_time
        self.output_limits = (low, high)
        self.bias = bias
        self.anti_windup = anti_windup
        self.integral_non_negative = integral_non_negative
        self.derivative_on_measurement = derivative_on_measurement
        self._integral = 0.0
        self._previous_error: float | None = None
        self._previous_measurement: float | None = None
        self._last_output = bias
        # Last-update internals, kept for telemetry/introspection
        # (repro.telemetry traces P/I/D terms and saturation per sample).
        self.last_error = 0.0
        self.last_proportional = 0.0
        self.last_derivative = 0.0
        self.last_unsaturated = bias

    # -- state ------------------------------------------------------------
    @property
    def integral(self) -> float:
        """Current value of the integral term (Ki * accumulated error)."""
        return self._integral

    @property
    def last_output(self) -> float:
        """Most recent saturated output."""
        return self._last_output

    @property
    def terms(self) -> dict[str, float]:
        """P/I/D breakdown of the most recent :meth:`update`.

        ``integral`` is the accumulated integral term *after* the
        update (post anti-windup); ``unsaturated`` is the raw control
        law output before clamping to ``output_limits``; ``output`` is
        the saturated value actually returned.
        """
        return {
            "error": self.last_error,
            "proportional": self.last_proportional,
            "integral": self._integral,
            "derivative": self.last_derivative,
            "unsaturated": self.last_unsaturated,
            "output": self._last_output,
        }

    def reset(self) -> None:
        """Clear accumulated state (integral and derivative history)."""
        self._integral = 0.0
        self._previous_error = None
        self._previous_measurement = None
        self._last_output = self.bias
        self.last_error = 0.0
        self.last_proportional = 0.0
        self.last_derivative = 0.0
        self.last_unsaturated = self.bias

    # -- control law --------------------------------------------------------
    def update(self, measurement: float) -> float:
        """Advance one sample period and return the saturated output."""
        error = self.setpoint - measurement

        proportional = self.kp * error
        derivative = self._derivative_term(error, measurement)

        candidate_integral = self._integral + self.ki * error * self.sample_time
        if self.integral_non_negative:
            candidate_integral = max(0.0, candidate_integral)
        if self.anti_windup is AntiWindup.CLAMP:
            low, high = self.output_limits
            candidate_integral = min(max(candidate_integral, low), high)

        unsaturated = self.bias + proportional + candidate_integral + derivative
        low, high = self.output_limits
        output = min(max(unsaturated, low), high)

        if self.anti_windup is AntiWindup.CONDITIONAL:
            saturated_high = unsaturated > high and error > 0
            saturated_low = unsaturated < low and error < 0
            if not (saturated_high or saturated_low):
                self._integral = candidate_integral
        else:
            self._integral = candidate_integral

        self._previous_error = error
        self._previous_measurement = measurement
        self._last_output = output
        self.last_error = error
        self.last_proportional = proportional
        self.last_derivative = derivative
        self.last_unsaturated = unsaturated
        return output

    def _derivative_term(self, error: float, measurement: float) -> float:
        if not self.kd:
            return 0.0
        if self.derivative_on_measurement:
            if self._previous_measurement is None:
                return 0.0
            slope = (measurement - self._previous_measurement) / self.sample_time
            return -self.kd * slope
        if self._previous_error is None:
            return 0.0
        slope = (error - self._previous_error) / self.sample_time
        return self.kd * slope
