"""Laplace-domain controller tuning against a FOPDT plant.

Paper Section 3.2 derives gains in the Laplace domain from the open
loop

    L(s) = C(s) * K * exp(-s*D) / (1 + s*tau)

and closes the remaining degrees of freedom with conventional phase
constraints ("common values that are known to work well in practice...
successful with no tuning").  We implement the same methodology
explicitly:

* the integral time cancels the plant pole, ``Ti = tau`` (so the slow
  thermal pole does not limit the loop);
* the derivative time absorbs half the dead time, ``Td = D / 2``;
* the proportional gain is then fixed by requiring the gain crossover
  to occur where the open-loop phase leaves the requested **phase
  margin** (default 60 degrees, plus the per-family phase offsets the
  paper mentions: +45 deg for PD, 0 for PID, -45 deg for P).

The resulting loop is provably stable for a true FOPDT plant (positive
phase margin) and, as the paper stresses, robust to the plant being
only approximately first order.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ControllerError
from repro.control.plant import FirstOrderPlant

#: Per-family phase offsets (degrees) added to the base phase margin,
#: mirroring the paper's phase-constant choices: the derivative action
#: buys extra phase (PD), PID is neutral, and pure P gives some back.
PHASE_OFFSETS_DEG: dict[str, float] = {"P": -45.0, "PI": 0.0, "PD": 45.0, "PID": 0.0}


@dataclass(frozen=True)
class ControllerGains:
    """Parallel-form PID gains plus the design's crossover frequency."""

    family: str
    kp: float
    ki: float
    kd: float
    crossover_rad_s: float
    phase_margin_deg: float

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.family}: Kp={self.kp:.4g} Ki={self.ki:.4g} Kd={self.kd:.4g} "
            f"(wc={self.crossover_rad_s:.4g} rad/s, PM={self.phase_margin_deg:.0f} deg)"
        )


def _solve_crossover(phase_fn, target_deg: float, w_max: float) -> float:
    """Find w where the open-loop phase equals ``target_deg`` (bisection).

    ``phase_fn`` must be monotonically decreasing in w, which holds for
    every loop shape used here.
    """
    low, high = 1e-6, w_max
    if phase_fn(high) > target_deg:
        return high
    if phase_fn(low) < target_deg:
        raise ControllerError(
            "requested phase margin unreachable: plant phase already below target"
        )
    for _ in range(200):
        mid = math.sqrt(low * high)
        if phase_fn(mid) > target_deg:
            low = mid
        else:
            high = mid
    return math.sqrt(low * high)


def tune(
    plant: FirstOrderPlant,
    family: str = "PID",
    phase_margin_deg: float = 60.0,
) -> ControllerGains:
    """Tune a P, PI, PD, or PID controller for a FOPDT plant.

    Returns parallel-form gains (Kp, Ki, Kd) such that the open loop
    crosses unity gain with the requested phase margin.
    """
    family = family.upper()
    if family not in PHASE_OFFSETS_DEG:
        raise ControllerError(f"unknown controller family {family!r}")
    if not 5.0 <= phase_margin_deg <= 90.0:
        raise ControllerError("phase margin must be between 5 and 90 degrees")

    gain = abs(plant.gain)
    tau = plant.time_constant
    dead = plant.dead_time
    margin = phase_margin_deg + PHASE_OFFSETS_DEG[family]
    margin = min(max(margin, 5.0), 89.0)
    target_phase = -180.0 + margin
    deg = 180.0 / math.pi
    # Keep the search inside the band where the delay approximation is
    # meaningful (at w = pi/D the delay alone contributes -180 deg).
    w_max = math.pi / dead if dead > 0 else 1e9 / tau

    if family == "P":
        def phase(w: float) -> float:
            return (-math.atan(w * tau) - w * dead) * deg

        wc = _solve_crossover(phase, target_phase, w_max)
        kp = math.hypot(1.0, wc * tau) / gain
        return ControllerGains("P", kp, 0.0, 0.0, wc, margin)

    if family == "PD":
        td = dead / 2.0 if dead > 0 else 0.1 * tau

        def phase(w: float) -> float:
            return (math.atan(w * td) - math.atan(w * tau) - w * dead) * deg

        wc = _solve_crossover(phase, target_phase, w_max)
        kp = math.hypot(1.0, wc * tau) / (gain * math.hypot(1.0, wc * td))
        return ControllerGains("PD", kp, 0.0, kp * td, wc, margin)

    if family == "PI":
        # Ti = tau cancels the plant pole: L(s) = Kp*K*exp(-sD)/(tau*s).
        def phase(w: float) -> float:
            return (-90.0) - w * dead * deg

        wc = _solve_crossover(phase, target_phase, w_max)
        kp = tau * wc / gain
        return ControllerGains("PI", kp, kp / tau, 0.0, wc, margin)

    # PID: Ti = tau (pole cancellation), Td = D/2.
    td = dead / 2.0 if dead > 0 else 0.05 * tau

    def phase(w: float) -> float:
        return (-90.0 + math.atan(w * td) * deg) - w * dead * deg

    wc = _solve_crossover(phase, target_phase, w_max)
    kp = tau * wc / (gain * math.hypot(1.0, wc * td))
    return ControllerGains("PID", kp, kp / tau, kp * td, wc, margin)
