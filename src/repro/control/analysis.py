"""Closed-loop step-response simulation and controller quality metrics.

The paper notes that controllers "can be designed with guaranteed
settling times" and that overshoot analysis "can be used to choose a
setpoint that is as high as possible without risking an actual
emergency".  This module provides exactly that analysis: it closes the
loop between a :class:`~repro.control.pid.PIDController` and a
first-order-plus-dead-time plant, applies a setpoint step, and reports
overshoot, settling time, steady-state error, and a boundedness-based
stability verdict.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass

from repro.control.pid import PIDController
from repro.control.plant import FirstOrderPlant
from repro.errors import ControllerError


def max_safe_setpoint(
    controller: PIDController,
    plant: FirstOrderPlant,
    emergency_level: float,
    reference_level: float,
    margin: float = 0.0,
    probe_step: float | None = None,
) -> float:
    """The highest setpoint that cannot overshoot into emergency.

    The paper: "an analysis of the maximum overshoot can be used to
    choose a setpoint that is as high as possible without risking an
    actual emergency."  We measure the worst-case overshoot with a
    full-range setpoint step (``probe_step`` defaults to the plant's
    whole actuator authority) and back the setpoint off the emergency
    threshold by that overshoot plus ``margin``.

    ``reference_level`` is the temperature at zero plant output (the
    heatsink temperature for the DTM plant).
    """
    if emergency_level <= reference_level:
        raise ControllerError("emergency level must exceed the reference")
    step = probe_step if probe_step is not None else abs(plant.gain)
    response = simulate_step_response(controller, plant, setpoint=step)
    headroom = emergency_level - reference_level
    setpoint_rise = headroom - response.overshoot - margin
    if setpoint_rise <= 0:
        raise ControllerError(
            "controller overshoot exceeds the entire thermal headroom"
        )
    return reference_level + min(setpoint_rise, headroom)


@dataclass(frozen=True)
class StepResponse:
    """Summary of a closed-loop setpoint step."""

    times: tuple[float, ...]
    outputs: tuple[float, ...]
    setpoint: float
    overshoot: float
    overshoot_fraction: float
    settling_time: float
    steady_state_error: float
    stable: bool

    @property
    def final_value(self) -> float:
        """Plant output at the end of the simulation."""
        return self.outputs[-1]


def simulate_step_response(
    controller: PIDController,
    plant: FirstOrderPlant,
    setpoint: float,
    initial_output: float = 0.0,
    duration: float | None = None,
    disturbance: float = 0.0,
    settling_band: float = 0.02,
) -> StepResponse:
    """Drive ``plant`` with ``controller`` toward a stepped setpoint.

    The plant is simulated at the controller's sample time with the
    exact first-order update and the dead time modeled as a delay line
    of whole samples.  ``disturbance`` is a constant additive input
    (e.g. workload power not under the actuator's control).

    The loop "output" here is the plant output (temperature rise); the
    setpoint step is from ``initial_output`` to ``setpoint``.
    """
    h = controller.sample_time
    if duration is None:
        duration = max(20.0 * plant.time_constant, 50.0 * h)
    steps = int(math.ceil(duration / h))
    if steps < 10:
        raise ControllerError("simulation too short to analyze")

    controller.reset()
    controller.setpoint = setpoint

    delay_samples = int(round(plant.dead_time / h))
    pending: deque[float] = deque(
        [initial_output / plant.gain if plant.gain else 0.0] * (delay_samples + 1),
        maxlen=delay_samples + 1,
    )

    output = initial_output
    times: list[float] = []
    outputs: list[float] = []
    decay = math.exp(-h / plant.time_constant)
    for n in range(steps):
        command = controller.update(output)
        pending.append(command)
        effective = pending[0]
        target = plant.gain * effective + disturbance
        output = target + (output - target) * decay
        times.append((n + 1) * h)
        outputs.append(output)

    return _summarize(times, outputs, setpoint, initial_output, settling_band)


def _summarize(
    times: list[float],
    outputs: list[float],
    setpoint: float,
    initial_output: float,
    settling_band: float,
) -> StepResponse:
    step_size = setpoint - initial_output
    span = abs(step_size) if step_size else max(abs(setpoint), 1.0)

    if step_size >= 0:
        peak = max(outputs)
        overshoot = max(0.0, peak - setpoint)
    else:
        trough = min(outputs)
        overshoot = max(0.0, setpoint - trough)
    overshoot_fraction = overshoot / span

    band = settling_band * span
    settling_time = times[-1]
    for index in range(len(outputs) - 1, -1, -1):
        if abs(outputs[index] - setpoint) > band:
            settling_time = times[index + 1] if index + 1 < len(times) else times[-1]
            break
    else:
        settling_time = times[0]

    steady_state_error = setpoint - outputs[-1]

    # Stability heuristic: the last quarter of the response must stay
    # near the setpoint and must not oscillate with a growing envelope.
    tail = outputs[3 * len(outputs) // 4 :]
    tail_dev = [abs(value - setpoint) for value in tail]
    bounded = max(tail_dev) <= max(2.0 * span, 10.0 * band)
    first_half = tail_dev[: len(tail_dev) // 2] or [0.0]
    second_half = tail_dev[len(tail_dev) // 2 :] or [0.0]
    not_growing = max(second_half) <= max(max(first_half), band) * 1.5 + 1e-12
    stable = bool(bounded and not_growing)

    return StepResponse(
        times=tuple(times),
        outputs=tuple(outputs),
        setpoint=setpoint,
        overshoot=overshoot,
        overshoot_fraction=overshoot_fraction,
        settling_time=settling_time,
        steady_state_error=steady_state_error,
        stable=stable,
    )
