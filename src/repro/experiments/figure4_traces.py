"""Section 7 trace figure: temperature and duty over time, per policy.

Runs one hot benchmark under no DTM, toggle1, M, and PID, and charts
the hottest-block temperature and the commanded fetch duty.  This is
the visual form of the paper's core result: the fixed policy bangs
between extremes below a conservative trigger, the CT policy rides
just below the emergency threshold.

The per-sample series come from the shared trace schema
(:class:`~repro.telemetry.trace.TraceRecord`): each policy runs with a
local :class:`~repro.telemetry.core.Telemetry` whose recorder keeps
every sample, and the chart reads ``max_temp`` / ``duty`` straight off
the retained records.  Pass a shared ``telemetry`` sink (e.g. from
``python -m repro.experiments --trace-out``) and the per-run traces,
events, and metrics are folded into it.
"""

from __future__ import annotations

from repro.config import TelemetryConfig
from repro.experiments.reporting import ExperimentResult, ascii_chart, format_table
from repro.sim.sweep import run_one
from repro.telemetry import Telemetry, merge_telemetry


def run(
    benchmark: str = "gcc",
    policies: tuple[str, ...] = ("none", "toggle1", "m", "pid"),
    instructions: float = 1_000_000,
    telemetry=None,
) -> ExperimentResult:
    """Record per-sample traces for several policies on one benchmark."""
    temps: dict[str, list[float]] = {}
    duties: dict[str, list[float]] = {}
    rows = []
    for policy in policies:
        # A ring large enough never to wrap at this budget: the chart
        # needs every sample, not a decimated view.
        local = Telemetry(
            TelemetryConfig(trace_mode="ring", trace_capacity=65_536)
        )
        result = run_one(
            benchmark, policy, instructions=instructions, telemetry=local
        )
        records = local.trace.records()
        assert records, "telemetry-enabled run must retain samples"
        temps[policy] = [record.max_temp for record in records]
        duties[policy] = [record.duty for record in records]
        rows.append(
            {
                "policy": policy,
                "cycles": result.cycles,
                "ipc": result.ipc,
                "pct_emergency": 100.0 * result.emergency_fraction,
                "max_temp_c": result.max_temperature,
                "mean_duty": sum(duties[policy]) / len(duties[policy]),
            }
        )
        merge_telemetry(telemetry, local)
    text = "\n".join(
        [
            format_table(
                rows,
                columns=(
                    ("policy", "policy", None),
                    ("cycles", "cycles", "d"),
                    ("ipc", "IPC", ".3f"),
                    ("pct_emergency", "% emergency", ".3f"),
                    ("max_temp_c", "max T (C)", ".3f"),
                    ("mean_duty", "mean duty", ".3f"),
                ),
            ),
            "",
            ascii_chart(temps, y_label=f"{benchmark}: hottest block temperature (C)"),
            "",
            ascii_chart(duties, height=8, y_label="fetch duty"),
        ]
    )
    return ExperimentResult(
        experiment_id="F4",
        title="Temperature and duty traces under different DTM policies",
        rows=rows,
        text=text,
        extras={"temps": temps, "duties": duties},
    )
