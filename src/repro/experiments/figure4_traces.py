"""Section 7 trace figure: temperature and duty over time, per policy.

Runs one hot benchmark under no DTM, toggle1, M, and PID, and charts
the hottest-block temperature and the commanded fetch duty.  This is
the visual form of the paper's core result: the fixed policy bangs
between extremes below a conservative trigger, the CT policy rides
just below the emergency threshold.
"""

from __future__ import annotations

from repro.experiments.reporting import ExperimentResult, ascii_chart, format_table
from repro.sim.sweep import run_one


def run(
    benchmark: str = "gcc",
    policies: tuple[str, ...] = ("none", "toggle1", "m", "pid"),
    instructions: float = 1_000_000,
) -> ExperimentResult:
    """Record per-sample traces for several policies on one benchmark."""
    temps: dict[str, list[float]] = {}
    duties: dict[str, list[float]] = {}
    rows = []
    for policy in policies:
        result = run_one(
            benchmark, policy, instructions=instructions, record_history=True
        )
        history = result.history
        assert history is not None
        temps[policy] = list(history.max_temp)
        duties[policy] = list(history.duty)
        rows.append(
            {
                "policy": policy,
                "cycles": result.cycles,
                "ipc": result.ipc,
                "pct_emergency": 100.0 * result.emergency_fraction,
                "max_temp_c": result.max_temperature,
                "mean_duty": sum(history.duty) / len(history.duty),
            }
        )
    text = "\n".join(
        [
            format_table(
                rows,
                columns=(
                    ("policy", "policy", None),
                    ("cycles", "cycles", "d"),
                    ("ipc", "IPC", ".3f"),
                    ("pct_emergency", "% emergency", ".3f"),
                    ("max_temp_c", "max T (C)", ".3f"),
                    ("mean_duty", "mean duty", ".3f"),
                ),
            ),
            "",
            ascii_chart(temps, y_label=f"{benchmark}: hottest block temperature (C)"),
            "",
            ascii_chart(duties, height=8, y_label="fetch duty"),
        ]
    )
    return ExperimentResult(
        experiment_id="F4",
        title="Temperature and duty traces under different DTM policies",
        rows=rows,
        text=text,
        extras={"temps": temps, "duties": duties},
    )
