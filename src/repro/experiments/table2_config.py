"""Table 2: configuration of the simulated processor microarchitecture."""

from __future__ import annotations

from repro.config import MachineConfig
from repro.experiments.reporting import ExperimentResult, format_table


def run(machine: MachineConfig | None = None) -> ExperimentResult:
    """Render the simulated machine configuration as the paper's Table 2."""
    m = machine if machine is not None else MachineConfig()
    bp = m.branch_predictor
    rows = [
        {"parameter": "Instruction window", "value": f"{m.ruu_entries}-RUU, {m.lsq_entries}-LSQ"},
        {"parameter": "Issue width", "value": (
            f"{m.issue_width} per cycle ({m.int_issue_width} Int, {m.fp_issue_width} FP)"
        )},
        {"parameter": "Functional units", "value": (
            f"{m.int_alus} IntALU, {m.int_mult_div} IntMult/Div, "
            f"{m.fp_alus} FPALU, {m.fp_mult_div} FPMult/Div, {m.mem_ports} mem ports"
        )},
        {"parameter": "Extra pipe stages", "value": (
            f"{m.extra_pipe_stages} (rename/enqueue, between decode and issue)"
        )},
        {"parameter": "L1 D-cache", "value": _cache_text(m.l1_dcache)},
        {"parameter": "L1 I-cache", "value": _cache_text(m.l1_icache)},
        {"parameter": "L2 cache", "value": (
            _cache_text(m.l2_cache) + f", {m.l2_cache.hit_latency}-cycle latency, WB"
        )},
        {"parameter": "Memory", "value": f"{m.memory_latency} cycles"},
        {"parameter": "TLB", "value": (
            f"{m.tlb_entries}-entry, fully assoc., {m.tlb_miss_penalty}-cycle miss penalty"
        )},
        {"parameter": "Branch predictor", "value": (
            f"Hybrid: {bp.bimodal_entries // 1024}K bimod and "
            f"{bp.global_entries // 1024}K/{bp.global_history_bits}-bit/GAg, "
            f"{bp.chooser_entries // 1024}K bimod-style chooser"
        )},
        {"parameter": "Branch target buffer", "value": (
            f"{bp.btb_entries // 1024}K-entry, {bp.btb_associativity}-way"
        )},
        {"parameter": "Return address stack", "value": f"{bp.ras_entries}-entry"},
        {"parameter": "Clock / Vdd", "value": f"{m.clock_hz / 1e9:.1f} GHz / {m.vdd:.1f} V"},
    ]
    text = format_table(
        rows,
        columns=(("parameter", "Parameter", None), ("value", "Value", None)),
    )
    return ExperimentResult(
        experiment_id="T2",
        title="Configuration of simulated processor microarchitecture",
        rows=rows,
        text=text,
    )


def _cache_text(cache) -> str:
    size_kb = cache.size_bytes // 1024
    size = f"{size_kb // 1024} MB" if size_kb >= 1024 else f"{size_kb} KB"
    return f"{size}, {cache.associativity}-way LRU, {cache.block_bytes} B blocks"
