"""Experiment drivers: one module per paper table/figure (see DESIGN.md).

Every driver exposes ``run(...) -> ExperimentResult`` returning both the
raw data rows and a rendered text table matching the paper's layout.
``python -m repro.experiments`` runs them all.

Index (paper artifact -> module):

=========  ==========================================
Table 1    :mod:`repro.experiments.table1_duality`
Table 2    :mod:`repro.experiments.table2_config`
Table 3    :mod:`repro.experiments.table3_rc`
Table 4    :mod:`repro.experiments.table4_characterization`
Table 5    :mod:`repro.experiments.table5_categories`
Table 6    :mod:`repro.experiments.table6_structure_temps`
Table 7    :mod:`repro.experiments.table7_emergency_breakdown`
Table 8    :mod:`repro.experiments.table8_stress_breakdown`
Table 9    :mod:`repro.experiments.table9_proxy_structure`
Table 10   :mod:`repro.experiments.table10_proxy_chipwide`
Extension  :mod:`repro.experiments.proxy_driven_dtm`
Figure 1   :mod:`repro.experiments.figure1_control_loop`
Figure 2   :mod:`repro.experiments.figure2_package`
Figure 3   :mod:`repro.experiments.figure3_network_simplification`
Sec 7 fig  :mod:`repro.experiments.figure4_traces`
Sec 7 tbl  :mod:`repro.experiments.table11_dtm_performance`
Sec 7 swp  :mod:`repro.experiments.table12_setpoint_sweep`
Ablation   :mod:`repro.experiments.ablation_windup`
Ablation   :mod:`repro.experiments.ablation_sampling`
Ablation   :mod:`repro.experiments.ablation_interrupt`
Ablation   :mod:`repro.experiments.ablation_quantization`
Ablation   :mod:`repro.experiments.ablation_mechanisms`
Ablation   :mod:`repro.experiments.ablation_sensors`
Ablation   :mod:`repro.experiments.ablation_placement`
Ablation   :mod:`repro.experiments.ablation_faults`
Extension  :mod:`repro.experiments.extension_hierarchical`
Extension  :mod:`repro.experiments.extension_leakage`
Extension  :mod:`repro.experiments.extension_full_suite`
Extension  :mod:`repro.experiments.extension_multiprogram`
Extension  :mod:`repro.experiments.extension_predictive`
Extension  :mod:`repro.experiments.extension_heatsink_drift`
Extension  :mod:`repro.experiments.extension_multicore`
Extension  :mod:`repro.experiments.power_breakdown`
Sensitiv.  :mod:`repro.experiments.sensitivity_floorplan`
Valid.     :mod:`repro.experiments.validation_grid`
Valid.     :mod:`repro.experiments.validation_grid_dtm`
Valid.     :mod:`repro.experiments.validation_grid_convergence`
Calibr.    :mod:`repro.experiments.calibration_fast_engine`
=========  ==========================================
"""

from repro.experiments.reporting import ExperimentResult, format_table

__all__ = ["ExperimentResult", "format_table", "ALL_EXPERIMENTS"]

#: Module names of every experiment, in paper order.
ALL_EXPERIMENTS: tuple[str, ...] = (
    "table1_duality",
    "table2_config",
    "table3_rc",
    "table4_characterization",
    "table5_categories",
    "table6_structure_temps",
    "table7_emergency_breakdown",
    "table8_stress_breakdown",
    "table9_proxy_structure",
    "table10_proxy_chipwide",
    "proxy_driven_dtm",
    "figure1_control_loop",
    "figure2_package",
    "figure3_network_simplification",
    "figure4_traces",
    "table11_dtm_performance",
    "table12_setpoint_sweep",
    "ablation_windup",
    "ablation_sampling",
    "ablation_interrupt",
    "ablation_quantization",
    "ablation_mechanisms",
    "ablation_sensors",
    "ablation_placement",
    "ablation_faults",
    "extension_hierarchical",
    "extension_leakage",
    "extension_full_suite",
    "extension_multiprogram",
    "extension_predictive",
    "extension_heatsink_drift",
    "extension_multicore",
    "power_breakdown",
    "sensitivity_floorplan",
    "validation_grid",
    "validation_grid_dtm",
    "validation_grid_convergence",
    "calibration_fast_engine",
)
