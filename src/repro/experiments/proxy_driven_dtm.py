"""Extension B1: DTM *driven by* the power proxy (the prior art, live).

Tables 9-10 compare the boxcar power proxy against the RC model as
*observers*; this experiment lets each one actually drive the DTM
response, reproducing what Brooks & Martonosi's power-triggered
toggling does on this workload suite:

* **temperature-triggered toggle1** -- the paper's baseline;
* **chip-power-triggered toggle1** -- trigger when the chip-wide
  boxcar average exceeds the design threshold;
* **structure-power-triggered toggle1** -- trigger when any
  structure's boxcar average exceeds its (T_trig - T_sink)/R
  equivalent.

The chip-power trigger inherits Table 10's failures as *DTM* failures:
benchmarks whose hot spot never raises chip power past the trigger run
into real emergencies, while busy-but-safe benchmarks get throttled
for nothing.
"""

from __future__ import annotations

import numpy as np

from repro.config import DTMConfig, MachineConfig, ThermalConfig
from repro.dtm.proxy import BoxcarPowerProxy
from repro.experiments.common import benchmark_budget
from repro.experiments.reporting import ExperimentResult, format_table, percent
from repro.experiments.table10_proxy_chipwide import CHIP_TRIGGER_POWER
from repro.power.wattch import PowerModel
from repro.sim.fast import DEFAULT_SUPPLY_EFFICIENCY
from repro.sim.sweep import run_one
from repro.thermal.floorplan import Floorplan
from repro.thermal.lumped import LumpedThermalModel
from repro.workloads.profiles import get_profile

#: The paper's boxcar window for power triggers [cycles].
PROXY_WINDOW = 10_000

DEFAULT_BENCHMARKS = ("gcc", "parser", "art", "mesa", "gzip")


def _run_proxy_toggle(
    benchmark: str,
    mode: str,
    instructions: float,
    seed: int = 0,
) -> dict:
    """toggle1 gated by a boxcar power proxy instead of temperature."""
    profile = get_profile(benchmark)
    floorplan = Floorplan.default()
    machine = MachineConfig()
    thermal_config = ThermalConfig()
    dtm_config = DTMConfig()
    power_model = PowerModel(floorplan)
    thermal = LumpedThermalModel(
        floorplan, heatsink_temperature=thermal_config.heatsink_temperature
    )
    rng = np.random.default_rng(np.random.SeedSequence([profile.seed, seed]))
    names = floorplan.names
    sample = dtm_config.sampling_interval
    sample_seconds = sample * machine.cycle_time
    supply = machine.fetch_width * DEFAULT_SUPPLY_EFFICIENCY
    check_samples = max(1, dtm_config.policy_delay // sample)

    chip_proxy = BoxcarPowerProxy(PROXY_WINDOW, CHIP_TRIGGER_POWER)
    structure_proxies = [
        BoxcarPowerProxy(
            PROXY_WINDOW,
            (dtm_config.nonct_trigger - thermal_config.heatsink_temperature)
            / block.resistance,
        )
        for block in floorplan.blocks
    ]

    committed = 0.0
    cycles = 0
    emergency_cycles = 0.0
    engaged = False
    duty = 1.0
    sample_index = 0
    max_temp = -np.inf
    max_cycles = int(40 * instructions / max(0.1, profile.mean_ipc))
    while committed < instructions and cycles < max_cycles:
        phase = profile.phase_at(int(committed))
        activity = np.array(phase.activity_vector(names))
        if phase.jitter:
            activity = np.clip(
                activity * (1 + rng.normal(0, phase.jitter, len(names))), 0, 1
            )
        demand = max(0.05, phase.ipc)

        # Policy check at policy-delay granularity, like toggle1.
        if sample_index % check_samples == 0:
            if mode == "chip-power":
                engaged = chip_proxy.triggered
            else:
                engaged = any(p.triggered for p in structure_proxies)
            duty = 0.0 if engaged else 1.0

        effective = min(demand, duty * supply)
        utilization = activity * (effective / demand)
        powers = power_model.block_powers(utilization)
        chip_power = float(powers.sum()) + power_model.unmonitored_power(
            float(utilization.mean())
        )
        chip_proxy.update(chip_power, sample)
        for proxy, power in zip(structure_proxies, powers):
            proxy.update(float(power), sample)

        start = thermal.temperatures
        steady = thermal.steady_state(powers)
        end = thermal.advance(powers, sample)
        em = thermal.fraction_above(
            start, steady, sample_seconds, thermal_config.emergency_temperature
        )
        emergency_cycles += float(em.max()) * sample
        max_temp = max(max_temp, float(end.max()))
        committed += effective * sample
        cycles += sample
        sample_index += 1

    return {
        "ipc": committed / cycles,
        "emergency_fraction": emergency_cycles / cycles,
        "max_temperature": max_temp,
    }


def run(
    benchmarks: tuple[str, ...] = DEFAULT_BENCHMARKS,
    quick: bool = False,
) -> ExperimentResult:
    """Temperature- vs power-proxy-triggered toggle1 across benchmarks."""
    rows = []
    for benchmark in benchmarks:
        budget = benchmark_budget(benchmark, quick)
        baseline = run_one(benchmark, "none", instructions=budget)
        temp_toggle = run_one(benchmark, "toggle1", instructions=budget)
        row: dict = {
            "benchmark": benchmark,
            "base_em": percent(baseline.emergency_fraction),
            "ipc_temp": percent(temp_toggle.relative_ipc(baseline)),
            "em_temp": percent(temp_toggle.emergency_fraction),
        }
        for mode, tag in (("chip-power", "chip"), ("structure-power", "struct")):
            outcome = _run_proxy_toggle(benchmark, mode, budget)
            row[f"ipc_{tag}"] = percent(outcome["ipc"] / baseline.ipc)
            row[f"em_{tag}"] = percent(outcome["emergency_fraction"])
        rows.append(row)
    text = format_table(
        rows,
        columns=(
            ("benchmark", "benchmark", None),
            ("base_em", "em%", ".1f"),
            ("ipc_temp", "T-toggle1 %IPC", ".1f"),
            ("em_temp", "em%", ".2f"),
            ("ipc_chip", "chipP-toggle1 %IPC", ".1f"),
            ("em_chip", "em%", ".2f"),
            ("ipc_struct", "structP-toggle1 %IPC", ".1f"),
            ("em_struct", "em%", ".2f"),
        ),
    )
    notes = (
        "Chip-power triggering inherits Table 10's blindness as real DTM\n"
        "failures: parser-class benchmarks (localized hot spot, modest\n"
        "chip power) stay in emergency, while trigger-straddling programs\n"
        "get throttled without need.  Per-structure power triggering fixes\n"
        "the blindness but still lags temperature (Table 9's false\n"
        "triggers become unnecessary throttling)."
    )
    return ExperimentResult(
        experiment_id="B1",
        title="Prior-art DTM: power-proxy-triggered vs temperature-triggered",
        rows=rows,
        text=text,
        notes=notes,
    )
