"""Table 7: percent of cycles each structure spends in thermal emergency.

The per-structure breakdown behind Table 4's chip-level emergency
column: which structures are the hot spots for which benchmarks.

The runs also capture the shared trace schema
(:mod:`repro.telemetry`), from which the ``episodes`` column counts
*contiguous* chip-level emergencies -- the same emergency time split
into many short excursions stresses a package very differently from
one long soak, which per-cycle percentages alone cannot distinguish.
"""

from __future__ import annotations

from repro.experiments.common import characterize_suite_traced
from repro.experiments.reporting import ExperimentResult, format_table, percent
from repro.telemetry import emergency_episodes
from repro.thermal.floorplan import STRUCTURES
from repro.workloads.profiles import BENCHMARKS


def run(quick: bool = False, telemetry=None) -> ExperimentResult:
    """Per-structure emergency-cycle percentages, unmanaged runs.

    ``telemetry`` is an optional shared sink (e.g. from ``python -m
    repro.experiments --trace-out``) the per-benchmark traces fold
    into.
    """
    results, traces = characterize_suite_traced(
        quick=quick, telemetry=telemetry
    )
    rows = []
    for name in BENCHMARKS:
        result = results[name]
        row: dict = {"benchmark": name}
        for structure in STRUCTURES:
            row[structure] = percent(result.block_emergency_fraction[structure])
        row["episodes"] = len(emergency_episodes(traces[name]))
        rows.append(row)
    columns = (
        [("benchmark", "benchmark", None)]
        + [(structure, structure, ".2f") for structure in STRUCTURES]
        + [("episodes", "episodes", "d")]
    )
    text = format_table(rows, columns=tuple(columns))
    return ExperimentResult(
        experiment_id="T7",
        title="Percent of cycles above the emergency threshold, per structure",
        rows=rows,
        text=text,
        notes="episodes = contiguous chip-level emergency intervals "
        "(from the per-sample trace)",
    )
