"""Table 7: percent of cycles each structure spends in thermal emergency.

The per-structure breakdown behind Table 4's chip-level emergency
column: which structures are the hot spots for which benchmarks.
"""

from __future__ import annotations

from repro.experiments.common import characterize_suite
from repro.experiments.reporting import ExperimentResult, format_table, percent
from repro.thermal.floorplan import STRUCTURES
from repro.workloads.profiles import BENCHMARKS


def run(quick: bool = False) -> ExperimentResult:
    """Per-structure emergency-cycle percentages, unmanaged runs."""
    results = characterize_suite(quick=quick)
    rows = []
    for name in BENCHMARKS:
        result = results[name]
        row: dict = {"benchmark": name}
        for structure in STRUCTURES:
            row[structure] = percent(result.block_emergency_fraction[structure])
        rows.append(row)
    columns = [("benchmark", "benchmark", None)] + [
        (structure, structure, ".2f") for structure in STRUCTURES
    ]
    text = format_table(rows, columns=tuple(columns))
    return ExperimentResult(
        experiment_id="T7",
        title="Percent of cycles above the emergency threshold, per structure",
        rows=rows,
        text=text,
    )
