"""Table 10: chip-wide boxcar power averaging vs the localized RC model.

Section 6's second comparison: a single chip-wide boxcar average of
power (trigger: 47 W) against the localized model's per-block
temperatures.  The paper's finding -- "almost all thermal-emergency
events detected with the localized model failed to be observed by the
chip-wide model" -- falls out because localized heating is much faster
(and much more selective) than anything chip-wide power can express.
"""

from __future__ import annotations

from repro.dtm.proxy import BoxcarPowerProxy, ProxyComparison
from repro.experiments.common import characterize_suite
from repro.experiments.reporting import ExperimentResult, format_table, percent
from repro.workloads.profiles import BENCHMARKS

#: Chip-wide average-power trigger [W].  The paper used 47 W on its
#: Wattch power scale; rescaled to this library's calibration (peak
#: 130 W, idle ~50 W) the equivalent design point -- between the
#: "medium" (~74 W) and "extreme" (~85 W) suite averages -- is 78 W.
#: Pass ``trigger_power`` to explore other placements (47 W on our
#: scale is below idle and is permanently triggered).
CHIP_TRIGGER_POWER = 78.0

#: The paper's two boxcar window sizes [cycles].
WINDOWS = (10_000, 500_000)


def run(
    quick: bool = False, trigger_power: float = CHIP_TRIGGER_POWER
) -> ExperimentResult:
    """Regenerate Table 10 (chip-wide proxy disagreement rates)."""
    results = characterize_suite(quick=quick, record_history=True)
    rows = []
    for name in BENCHMARKS:
        history = results[name].history
        assert history is not None
        row: dict = {"benchmark": name}
        for window in WINDOWS:
            proxy = BoxcarPowerProxy(window, trigger_power)
            comparison = ProxyComparison()
            for s in range(history.samples):
                proxy.update(float(history.chip_power[s]), history.sample_cycles)
                comparison.record(
                    history.sample_cycles,
                    float(history.block_emergency[s].max()),
                    proxy.triggered,
                    float(history.block_stress[s].max()),
                )
            label = f"{window // 1000}k"
            row[f"missed_{label}"] = percent(comparison.missed_emergency_rate)
            row[f"false_{label}"] = percent(comparison.false_trigger_rate)
            row[f"missed_of_em_{label}"] = percent(
                comparison.missed_fraction_of_emergencies
            )
        rows.append(row)
    columns = [("benchmark", "benchmark", None)]
    for window in WINDOWS:
        label = f"{window // 1000}k"
        columns.append((f"missed_{label}", f"missed% ({label})", ".3f"))
        columns.append((f"false_{label}", f"false% ({label})", ".3f"))
        columns.append((f"missed_of_em_{label}", f"missed/em% ({label})", ".1f"))
    text = format_table(rows, columns=tuple(columns))
    return ExperimentResult(
        experiment_id="T10",
        title="Chip-wide boxcar power proxy vs localized RC model",
        rows=rows,
        text=text,
        notes=(
            f"Chip-wide trigger: boxcar average power > {trigger_power} W\n"
            "(the paper's 47 W, rescaled to this library's power calibration)."
        ),
    )
