"""Figure 3: detailed (3B) vs simplified (3C) block thermal networks.

The paper simplifies the detailed lumped model -- blocks coupled to
their neighbors through tangential resistances and to the heatsink
through normal resistances -- down to independent per-block RC pairs
over an isothermal heatsink, arguing that (a) tangential resistances
are orders of magnitude larger than normal ones, and (b) the heatsink
is orders of magnitude slower than any block.

This experiment builds *both* networks, drives them with the same peak
per-block powers, and reports the per-block steady-state temperatures
and the worst-case deviation introduced by the simplification.
"""

from __future__ import annotations

import numpy as np

from repro.config import ThermalConfig
from repro.experiments.reporting import ExperimentResult, format_table
from repro.thermal.floorplan import Floorplan
from repro.thermal.lumped import LumpedThermalModel
from repro.thermal.materials import (
    block_tangential_resistance,
    tangential_to_normal_ratio,
)
from repro.thermal.rc_network import ThermalRCNetwork


def build_detailed_network(
    floorplan: Floorplan, heatsink_temperature: float
) -> ThermalRCNetwork:
    """The Figure 3B network: tangential neighbor coupling included.

    Blocks are chained in floorplan order (a 1-D adjacency -- the die
    photo's actual adjacency is unknown; any adjacency demonstrates the
    point since every tangential path is ~100x the normal path).
    """
    network = ThermalRCNetwork()
    for block in floorplan.blocks:
        network.add_node(block.name, block.capacitance, heatsink_temperature)
        network.connect_reference(block.name, heatsink_temperature, block.resistance)
    blocks = floorplan.blocks
    for left, right in zip(blocks, blocks[1:]):
        r_tan = block_tangential_resistance(
            left.area_m2, floorplan.die_area_m2
        ) + block_tangential_resistance(right.area_m2, floorplan.die_area_m2)
        network.connect(left.name, right.name, r_tan)
    return network


def run() -> ExperimentResult:
    """Quantify the error of dropping tangential resistances."""
    floorplan = Floorplan.default()
    thermal_config = ThermalConfig()
    sink = thermal_config.heatsink_temperature
    powers = {block.name: block.peak_power for block in floorplan.blocks}

    detailed = build_detailed_network(floorplan, sink)
    detailed_steady = detailed.steady_state(powers)

    simplified = LumpedThermalModel(floorplan, heatsink_temperature=sink)
    simplified_steady = simplified.steady_state(
        np.array([block.peak_power for block in floorplan.blocks])
    )

    rows = []
    worst = 0.0
    for index, block in enumerate(floorplan.blocks):
        t_detailed = detailed_steady[block.name]
        t_simple = float(simplified_steady[index])
        deviation = t_simple - t_detailed
        worst = max(worst, abs(deviation))
        rows.append(
            {
                "structure": block.name,
                "ratio_tan_normal": tangential_to_normal_ratio(
                    block.area_m2, floorplan.die_area_m2
                ),
                "detailed_c": t_detailed,
                "simplified_c": t_simple,
                "deviation_k": deviation,
            }
        )
    text = format_table(
        rows,
        columns=(
            ("structure", "structure", None),
            ("ratio_tan_normal", "R_tan/R_normal", ".0f"),
            ("detailed_c", "detailed T (C)", ".3f"),
            ("simplified_c", "simplified T (C)", ".3f"),
            ("deviation_k", "deviation (K)", "+.3f"),
        ),
    )
    notes = (
        f"Worst-case steady-state deviation: {worst:.3f} K at peak power --\n"
        "the tangential paths (~100x the normal resistance) carry too\n"
        "little heat to matter, validating the paper's Figure 3C model."
    )
    return ExperimentResult(
        experiment_id="F3",
        title="Detailed vs simplified block thermal network",
        rows=rows,
        text=text,
        notes=notes,
        extras={"worst_deviation_k": worst},
    )
