"""Extension E3: model-predictive DTM vs the paper's PID.

The paper's controllers treat the thermal process as a black box; its
thermal-RC model, however, is an explicit plant model -- so a natural
follow-on is to *use* it: a one-step model-predictive policy that
infers the current power from the temperature trajectory and commands
the duty whose steady state is the setpoint.

This experiment compares PID and MPC across the thermal taxonomy and
under a setpoint pushed right against the threshold, asking whether
model knowledge buys anything beyond well-tuned feedback.
"""

from __future__ import annotations

from repro.experiments.common import benchmark_budget
from repro.experiments.reporting import ExperimentResult, format_table, percent
from repro.sim.sweep import run_one

DEFAULT_BENCHMARKS = ("gcc", "art", "eon", "gzip")


def run(
    benchmarks: tuple[str, ...] = DEFAULT_BENCHMARKS,
    setpoints: tuple[float, ...] = (101.8, 101.95),
    quick: bool = False,
) -> ExperimentResult:
    """PID vs one-step MPC across benchmarks and setpoints."""
    rows = []
    for benchmark in benchmarks:
        budget = benchmark_budget(benchmark, quick)
        baseline = run_one(benchmark, "none", instructions=budget)
        for setpoint in setpoints:
            row: dict = {"benchmark": benchmark, "setpoint": setpoint}
            for policy in ("pid", "mpc"):
                result = run_one(
                    benchmark, policy, instructions=budget, setpoint=setpoint
                )
                row[f"ipc_{policy}"] = percent(result.relative_ipc(baseline))
                row[f"em_{policy}"] = percent(result.emergency_fraction)
                row[f"max_{policy}"] = result.max_temperature
            rows.append(row)
    text = format_table(
        rows,
        columns=(
            ("benchmark", "benchmark", None),
            ("setpoint", "setpoint", ".2f"),
            ("ipc_pid", "pid %IPC", ".1f"),
            ("em_pid", "pid em%", ".3f"),
            ("max_pid", "pid maxT", ".3f"),
            ("ipc_mpc", "mpc %IPC", ".1f"),
            ("em_mpc", "mpc em%", ".3f"),
            ("max_mpc", "mpc maxT", ".3f"),
        ),
    )
    notes = (
        "Both policies hold their setpoints without emergencies; the\n"
        "black-box PID extracts slightly more throughput (its integral\n"
        "rides the quantized actuator more finely than the MPC's\n"
        "smoothed slope estimate).  Well-tuned feedback captures nearly\n"
        "all the value of full model knowledge here -- the paper's bet\n"
        "on a 'commonly used industrial controller' was the right one."
    )
    return ExperimentResult(
        experiment_id="E3",
        title="Model-predictive DTM vs PID",
        rows=rows,
        text=text,
        notes=notes,
    )
