"""Extension X2: multiprogrammed workloads (thermal state across
context switches).

The paper evaluates one program at a time, but thermal state persists
across OS context switches: a process scheduled after a hot one starts
on hot silicon, and a 175 us block time constant spans several
millisecond-scale quanta's worth of history at 1.5 GHz only if the
quantum is short -- at realistic quanta the temperature largely
resets per program, but at fine-grained (SMT-migration-scale) quanta
it does not.  This experiment interleaves a hot and a cool benchmark
at several quanta and measures how the mix's thermal behaviour and the
PID policy's cost differ from the standalone runs.
"""

from __future__ import annotations

from repro.dtm.policies import make_policy
from repro.experiments.common import benchmark_budget
from repro.experiments.reporting import ExperimentResult, format_table, percent
from repro.sim.fast import FastEngine
from repro.workloads.interleave import interleave_profiles
from repro.workloads.profiles import get_profile

DEFAULT_QUANTA = (100_000, 500_000, 2_000_000)


def run(
    hot: str = "gcc",
    cool: str = "gzip",
    quanta: tuple[int, ...] = DEFAULT_QUANTA,
    quick: bool = False,
) -> ExperimentResult:
    """Interleave a hot and a cool benchmark at several quanta."""
    budget = max(
        benchmark_budget(hot, quick), benchmark_budget(cool, quick)
    )
    rows = []
    for label, profile in (
        (f"{hot} alone", get_profile(hot)),
        (f"{cool} alone", get_profile(cool)),
    ):
        baseline = FastEngine(profile).run(instructions=budget)
        managed = FastEngine(profile, policy=make_policy("pid")).run(
            instructions=budget
        )
        rows.append(
            {
                "workload": label,
                "quantum": None,
                "base_em": percent(baseline.emergency_fraction),
                "base_max_c": baseline.max_temperature,
                "pid_ipc": percent(managed.relative_ipc(baseline)),
                "pid_em": percent(managed.emergency_fraction),
            }
        )
    for quantum in quanta:
        mix = interleave_profiles(
            (get_profile(hot), get_profile(cool)), quantum_instructions=quantum
        )
        baseline = FastEngine(mix).run(instructions=budget)
        managed = FastEngine(mix, policy=make_policy("pid")).run(
            instructions=budget
        )
        rows.append(
            {
                "workload": mix.name,
                "quantum": quantum,
                "base_em": percent(baseline.emergency_fraction),
                "base_max_c": baseline.max_temperature,
                "pid_ipc": percent(managed.relative_ipc(baseline)),
                "pid_em": percent(managed.emergency_fraction),
            }
        )
    text = format_table(
        rows,
        columns=(
            ("workload", "workload", None),
            ("quantum", "quantum (instr)", "d"),
            ("base_em", "unmanaged em%", ".2f"),
            ("base_max_c", "unmanaged max T", ".2f"),
            ("pid_ipc", "pid %IPC", ".1f"),
            ("pid_em", "pid em%", ".3f"),
        ),
    )
    notes = (
        "Short quanta time-average the hot program's power through the\n"
        "~175 us thermal constant: the cool program acts as built-in\n"
        "toggling and the mix barely needs DTM.  Long quanta let each\n"
        "slice reach its own steady state: the mix inherits the hot\n"
        "program's emergencies and the PID cost returns."
    )
    return ExperimentResult(
        experiment_id="X2",
        title="Multiprogrammed workloads: thermal state across context switches",
        rows=rows,
        text=text,
        notes=notes,
    )
