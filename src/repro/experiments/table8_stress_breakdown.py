"""Table 8: percent of cycles each structure spends above the stress
trigger (the non-CT trigger level, 101 degC)."""

from __future__ import annotations

from repro.experiments.common import characterize_suite
from repro.experiments.reporting import ExperimentResult, format_table, percent
from repro.thermal.floorplan import STRUCTURES
from repro.workloads.profiles import BENCHMARKS


def run(quick: bool = False) -> ExperimentResult:
    """Per-structure stress-cycle percentages, unmanaged runs."""
    results = characterize_suite(quick=quick)
    rows = []
    for name in BENCHMARKS:
        result = results[name]
        row: dict = {"benchmark": name}
        for structure in STRUCTURES:
            row[structure] = percent(result.block_stress_fraction[structure])
        rows.append(row)
    columns = [("benchmark", "benchmark", None)] + [
        (structure, structure, ".2f") for structure in STRUCTURES
    ]
    text = format_table(rows, columns=tuple(columns))
    return ExperimentResult(
        experiment_id="T8",
        title="Percent of cycles above the stress trigger, per structure",
        rows=rows,
        text=text,
    )
