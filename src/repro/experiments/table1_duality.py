"""Table 1: equivalence between thermal and electrical quantities."""

from __future__ import annotations

from repro.experiments.reporting import ExperimentResult, format_table
from repro.thermal.duality import EQUIVALENCE_TABLE


def run() -> ExperimentResult:
    """Render the paper's Table 1 from the library's duality data."""
    rows = [
        {
            "thermal": row.thermal_quantity,
            "t_unit": row.thermal_unit,
            "electrical": row.electrical_quantity,
            "e_unit": row.electrical_unit,
        }
        for row in EQUIVALENCE_TABLE
    ]
    text = format_table(
        rows,
        columns=(
            ("thermal", "Thermal quantity", None),
            ("t_unit", "unit", None),
            ("electrical", "Electrical quantity", None),
            ("e_unit", "unit", None),
        ),
    )
    return ExperimentResult(
        experiment_id="T1",
        title="Equivalence between thermal and electrical quantities",
        rows=rows,
        text=text,
    )
