"""Extension L1: heatsink drift over seconds (two-time-scale coupling).

The block model holds the heatsink at a constant 100 degC because its
time constant (~20 s) dwarfs the blocks' (~175 us).  But over seconds
of sustained load the heatsink itself drifts, and every block rides on
top of it: a workload that is safely "medium" against a 100 degC
heatsink becomes an emergency case when the heatsink creeps to 101.

This experiment exploits the time-scale separation the paper
identifies: within one heatsink epoch (0.25 s) the blocks are in
quasi-steady state, so the epoch's behaviour is computed from the
block model at the current heatsink temperature, the epoch's mean chip
power heats the package model, and the loop repeats.  It reports the
heatsink trajectory, the hottest block, and the PID duty over ~20
simulated seconds -- showing the controller throttling progressively
harder as its headroom erodes from below.
"""

from __future__ import annotations

import numpy as np

from repro.config import DTMConfig, MachineConfig
from repro.dtm.manager import DTMManager
from repro.dtm.policies import make_policy
from repro.experiments.reporting import (
    ExperimentResult,
    ascii_chart,
    format_table,
    percent,
)
from repro.power.wattch import PowerModel
from repro.sim.fast import DEFAULT_SUPPLY_EFFICIENCY
from repro.thermal.floorplan import Floorplan
from repro.thermal.lumped import LumpedThermalModel
from repro.thermal.package import PackageModel
from repro.workloads.profiles import get_profile


def _epoch(
    profile,
    manager,
    thermal,
    power_model,
    machine,
    dtm_config,
    rng,
    committed_start: float,
    samples: int,
) -> dict:
    """Run `samples` controller intervals at the current heatsink temp."""
    names = thermal.floorplan.names
    sample = dtm_config.sampling_interval
    supply = machine.fetch_width * DEFAULT_SUPPLY_EFFICIENCY
    committed = committed_start
    power_sum = 0.0
    duty_sum = 0.0
    emergency = 0.0
    sample_seconds = sample * machine.cycle_time
    for _ in range(samples):
        phase = profile.phase_at(int(committed))
        activity = np.array(phase.activity_vector(names))
        if phase.jitter:
            activity = np.clip(
                activity * (1 + rng.normal(0, phase.jitter, len(names))), 0, 1
            )
        demand = max(0.05, phase.ipc)
        duty, _ = manager.on_sample(thermal.max_temperature)
        effective = min(demand, duty * supply)
        powers = power_model.block_powers(activity * (effective / demand))
        chip_power = float(powers.sum()) + power_model.unmonitored_power(
            float(activity.mean() * (effective / demand))
        )
        start = thermal.temperatures
        steady = thermal.steady_state(powers)
        thermal.advance(powers, sample)
        em = thermal.fraction_above(start, steady, sample_seconds, 102.0)
        emergency += float(em.max())
        committed += effective * sample
        power_sum += chip_power
        duty_sum += duty
    return {
        "committed": committed,
        "mean_power": power_sum / samples,
        "mean_duty": duty_sum / samples,
        "emergency_fraction": emergency / samples,
        "max_temp": thermal.max_temperature,
    }


def run(
    benchmark: str = "mesa",
    simulated_seconds: float = 25.0,
    epoch_seconds: float = 0.25,
    samples_per_epoch: int = 400,
    initial_heatsink: float = 99.0,
) -> ExperimentResult:
    """Couple the block model to a drifting heatsink over seconds."""
    profile = get_profile(benchmark)
    floorplan = Floorplan.default()
    machine = MachineConfig()
    dtm_config = DTMConfig()
    policy = make_policy("pid", floorplan, dtm_config)
    manager = DTMManager(policy, dtm_config)
    power_model = PowerModel(floorplan)
    thermal = LumpedThermalModel(
        floorplan, heatsink_temperature=initial_heatsink
    )
    # Package calibrated to the paper's operating premise: under
    # sustained load the heatsink sits around 100 degC (SIA-roadmap
    # conditions -- a hot enclosure and a high sink-to-air resistance),
    # so the equilibrium at this workload's ~79 W is ~100.8 degC and a
    # 99 degC start *drifts upward*.  A lighter heatsink (30 J/K,
    # tau ~ 20 s) keeps the transient visible within the horizon.
    package = PackageModel(
        r_die_case=0.05, r_heatsink=0.65, c_die=0.5, c_heatsink=30.0,
        ambient=49.5,
    )
    package.heatsink_temperature = initial_heatsink
    package.die_temperature = initial_heatsink

    rng = np.random.default_rng(np.random.SeedSequence([profile.seed, 13]))
    epochs = int(simulated_seconds / epoch_seconds)
    committed = 0.0
    sink_trace: list[float] = []
    temp_trace: list[float] = []
    duty_trace: list[float] = []
    rows = []
    for index in range(epochs):
        outcome = _epoch(
            profile, manager, thermal, power_model, machine, dtm_config,
            rng, committed, samples_per_epoch,
        )
        committed = outcome["committed"]
        # The epoch's mean power heats the package for the full epoch
        # duration (the blocks only ever see the last 400 samples, but
        # they are in quasi-steady state, so that is representative).
        package.step(outcome["mean_power"], epoch_seconds)
        thermal.heatsink_temperature = package.heatsink_temperature
        sink_trace.append(package.heatsink_temperature)
        temp_trace.append(outcome["max_temp"])
        duty_trace.append(outcome["mean_duty"])
        if index % max(1, epochs // 8) == 0 or index == epochs - 1:
            rows.append(
                {
                    "time_s": (index + 1) * epoch_seconds,
                    "heatsink_c": package.heatsink_temperature,
                    "hottest_block_c": outcome["max_temp"],
                    "mean_duty": outcome["mean_duty"],
                    "pct_emergency": percent(outcome["emergency_fraction"]),
                }
            )

    text = "\n".join(
        [
            format_table(
                rows,
                columns=(
                    ("time_s", "time (s)", ".2f"),
                    ("heatsink_c", "heatsink (C)", ".2f"),
                    ("hottest_block_c", "hottest block (C)", ".3f"),
                    ("mean_duty", "mean duty", ".3f"),
                    ("pct_emergency", "em%", ".3f"),
                ),
            ),
            "",
            ascii_chart(
                {"heatsink": sink_trace, "hottest block": temp_trace},
                y_label="temperature (C) over simulated seconds",
            ),
            "",
            ascii_chart({"mean duty": duty_trace}, height=6,
                        y_label="PID duty"),
        ]
    )
    notes = (
        "As the heatsink drifts up, the PID sacrifices duty to keep the\n"
        "hottest block pinned at the setpoint -- per-block DTM degrades\n"
        "gracefully, but headroom lost at the package must eventually be\n"
        "recovered by the package (fan speed, ambient), not the pipeline."
    )
    return ExperimentResult(
        experiment_id="L1",
        title="Heatsink drift over seconds under sustained load",
        rows=rows,
        text=text,
        notes=notes,
        extras={
            "sink_trace": sink_trace,
            "temp_trace": temp_trace,
            "duty_trace": duty_trace,
        },
    )
