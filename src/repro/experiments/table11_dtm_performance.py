"""Section 7 main result: per-benchmark DTM performance and emergencies.

For every benchmark and every policy, the two paper metrics: percent of
the non-DTM IPC retained and percent of cycles in thermal emergency.
The summary row carries the headline claim -- the PI/PID controllers
cut the suite-mean performance loss relative to toggle1 by well over
half while never entering thermal emergency.
"""

from __future__ import annotations

from repro.experiments.common import benchmark_budget
from repro.experiments.reporting import ExperimentResult, format_table, percent
from repro.sim.parallel import WorkSpec, run_specs
from repro.workloads.profiles import BENCHMARKS

#: Policies reported, in the paper's comparison order.
DEFAULT_POLICIES = ("toggle1", "toggle2", "m", "p", "pd", "pi", "pid")


def run(
    policies: tuple[str, ...] = DEFAULT_POLICIES,
    benchmarks: tuple[str, ...] | None = None,
    quick: bool = False,
    jobs: int | None = None,
) -> ExperimentResult:
    """Regenerate the Section 7 performance table.

    The (benchmark x policy) matrix -- the single biggest serial
    hot-spot in a full reproduction -- is expressed as
    :class:`~repro.sim.parallel.WorkSpec` entries with per-benchmark
    budgets and executed by :func:`~repro.sim.parallel.run_specs`;
    ``--jobs`` (or an explicit ``jobs=``) fans it out over worker
    processes with bit-identical results.
    """
    chosen = benchmarks if benchmarks is not None else tuple(BENCHMARKS)
    specs = [
        WorkSpec(
            benchmark=benchmark,
            policy=policy,
            instructions=benchmark_budget(benchmark, quick),
        )
        for benchmark in chosen
        for policy in ("none", *policies)
    ]
    results = dict(
        zip(((s.benchmark, s.policy) for s in specs), run_specs(specs, jobs=jobs))
    )

    rows = []
    losses: dict[str, list[float]] = {policy: [] for policy in policies}
    emergencies: dict[str, list[float]] = {policy: [] for policy in policies}
    for benchmark in chosen:
        baseline = results[(benchmark, "none")]
        row: dict = {
            "benchmark": benchmark,
            "base_ipc": baseline.ipc,
            "base_em": percent(baseline.emergency_fraction),
        }
        for policy in policies:
            result = results[(benchmark, policy)]
            relative = result.relative_ipc(baseline)
            row[f"ipc_{policy}"] = percent(relative)
            row[f"em_{policy}"] = percent(result.emergency_fraction)
            losses[policy].append(1.0 - relative)
            emergencies[policy].append(result.emergency_fraction)
        rows.append(row)

    mean_row: dict = {"benchmark": "MEAN", "base_ipc": None, "base_em": None}
    for policy in policies:
        mean_loss = sum(losses[policy]) / len(losses[policy])
        mean_row[f"ipc_{policy}"] = percent(1.0 - mean_loss)
        mean_row[f"em_{policy}"] = percent(
            max(emergencies[policy])
        )  # worst-case emergency exposure
    rows.append(mean_row)

    toggle1_loss = sum(losses["toggle1"]) / len(losses["toggle1"])
    reductions = {}
    for policy in policies:
        if policy == "toggle1" or toggle1_loss == 0:
            continue
        mean_loss = sum(losses[policy]) / len(losses[policy])
        reductions[policy] = 1.0 - mean_loss / toggle1_loss

    columns = [("benchmark", "benchmark", None), ("base_ipc", "IPC", ".2f"),
               ("base_em", "em%", ".1f")]
    for policy in policies:
        columns.append((f"ipc_{policy}", f"{policy} %IPC", ".1f"))
        columns.append((f"em_{policy}", f"{policy} em%", ".2f"))
    text = format_table(rows, columns=tuple(columns))
    summary = ", ".join(
        f"{policy}: {100 * value:.0f}%" for policy, value in reductions.items()
    )
    notes = (
        "%IPC = percent of the non-DTM IPC retained (higher is better);\n"
        "em% = percent of cycles in thermal emergency (must be 0).\n"
        f"Mean performance-loss reduction vs toggle1: {summary}.\n"
        "(Paper headline: 65% for the PI/PID controllers, with no emergencies.)"
    )
    return ExperimentResult(
        experiment_id="T11",
        title="DTM performance: percent of non-DTM IPC and emergency cycles",
        rows=rows,
        text=text,
        notes=notes,
        extras={"loss_reduction_vs_toggle1": reductions},
    )
