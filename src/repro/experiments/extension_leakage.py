"""Extension E2: temperature-dependent leakage and the limits of DTM.

Leakage power grows exponentially with temperature, so hot spots feed
themselves.  This sweep raises the leakage fraction and asks two
questions the dynamic-only model cannot:

1. how much hotter does the unmanaged chip run, and
2. at what leakage level does fetch-side DTM *lose authority* -- the
   fully-throttled floor (idle dynamic + leakage) itself crossing the
   emergency threshold, so no toggling policy can prevent emergencies?

The analytic authority limit (``LeakageModel.throttled_floor_temperature``)
is printed next to the simulated outcome so the two can be checked
against each other.
"""

from __future__ import annotations

from repro.dtm.policies import make_policy
from repro.experiments.common import benchmark_budget
from repro.experiments.reporting import ExperimentResult, format_table, percent
from repro.power.leakage import LeakageModel
from repro.sim.fast import FastEngine
from repro.thermal.floorplan import Floorplan
from repro.workloads.profiles import get_profile

DEFAULT_FRACTIONS = (0.0, 0.1, 0.2, 0.35, 0.5)


def run(
    benchmark: str = "gcc",
    fractions: tuple[float, ...] = DEFAULT_FRACTIONS,
    quick: bool = False,
) -> ExperimentResult:
    """Sweep leakage aggressiveness under no DTM and under PID."""
    budget = benchmark_budget(benchmark, quick)
    floorplan = Floorplan.default()
    hottest = floorplan.block("regfile")
    rows = []
    for fraction in fractions:
        leakage = LeakageModel(fraction_of_peak=fraction) if fraction else None
        floor = (
            LeakageModel(fraction_of_peak=fraction).throttled_floor_temperature(
                hottest, 100.0
            )
            if fraction
            else 100.0 + 0.15 * hottest.peak_power * hottest.resistance
        )
        unmanaged = FastEngine(
            get_profile(benchmark), leakage=leakage
        ).run(instructions=budget)
        managed = FastEngine(
            get_profile(benchmark), policy=make_policy("pid"), leakage=leakage
        ).run(instructions=budget)
        rows.append(
            {
                "fraction": fraction,
                "floor_c": floor,
                "unmanaged_max_c": unmanaged.max_temperature,
                "unmanaged_em": percent(unmanaged.emergency_fraction),
                "pid_max_c": managed.max_temperature,
                "pid_em": percent(managed.emergency_fraction),
                "pid_ipc_pct": percent(managed.relative_ipc(unmanaged)),
                "dtm_has_authority": "yes" if floor < 102.0 else "NO",
            }
        )
    text = format_table(
        rows,
        columns=(
            ("fraction", "leak frac", ".2f"),
            ("floor_c", "throttled floor (C)", ".2f"),
            ("unmanaged_max_c", "none max T", ".2f"),
            ("unmanaged_em", "none em%", ".1f"),
            ("pid_max_c", "pid max T", ".3f"),
            ("pid_em", "pid em%", ".3f"),
            ("pid_ipc_pct", "pid %IPC", ".1f"),
            ("dtm_has_authority", "authority", None),
        ),
    )
    notes = (
        "'Throttled floor' = analytic equilibrium of the hottest block\n"
        "with fetch fully off (idle dynamic + leakage).  Once the floor\n"
        "crosses 102 C, fetch-side DTM cannot prevent emergencies no\n"
        "matter the policy -- the case for voltage scaling or better\n"
        "packaging as leakage grows."
    )
    return ExperimentResult(
        experiment_id="E2",
        title="Temperature-dependent leakage and DTM authority",
        rows=rows,
        text=text,
        notes=notes,
    )
