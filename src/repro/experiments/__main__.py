"""Run all (or selected) experiments from the command line.

Usage::

    python -m repro.experiments                # everything, full budgets
    python -m repro.experiments --quick        # reduced budgets
    python -m repro.experiments table3_rc table11_dtm_performance
    python -m repro.experiments --jobs 8        # fan sweeps out over 8 cores
    python -m repro.experiments figure4_traces table7_emergency_breakdown \
        --trace-out suite.jsonl --metrics-out suite-metrics.json

``--jobs N`` sets the process-wide default worker count
(:func:`repro.sim.parallel.set_default_jobs`), so every ``run_suite`` /
``run_specs`` call inside the experiment modules fans out over worker
processes; results are bit-identical to the serial run.  ``--batch B``
likewise sets the default lane-batch width
(:func:`repro.sim.parallel.set_default_batch`): groups of up to B
compatible runs advance through one vectorized
:class:`~repro.sim.batch.BatchEngine` kernel, inside each worker when
combined with ``--jobs``.  ``--cluster HOST:PORT --token SECRET``
installs a process-wide :class:`~repro.sim.distributed.ClusterConfig`
(:func:`repro.sim.parallel.set_default_cluster`), so every sweep is
coordinated for distributed ``python -m repro work`` workers instead
of executing locally -- still bit-identical.  ``--cache [DIR]``
installs a process-wide result-cache default
(:func:`repro.sim.parallel.set_default_cache`), so every sweep replays
previously completed specs from the persistent store instead of
re-running them -- bit-identical results and telemetry, see
docs/performance.md, "Level 5"; ``--no-cache`` disables caching even
when ``REPRO_CACHE`` is set.

``--grid-solver {spectral,euler}`` / ``--resolution N`` select the
time integrator and mesh for the experiments built on the 2D grid
model (``validation_grid``, ``validation_grid_dtm``,
``validation_grid_convergence``); the spectral default advances each
interval in one exact closed-form step (docs/thermal_model.md).

``--trace-out`` / ``--metrics-out`` build one shared
:class:`~repro.telemetry.core.Telemetry` sink, hand it to every
experiment whose ``run`` accepts a ``telemetry`` keyword (currently
``figure4_traces`` and ``table7_emergency_breakdown``), and export the
accumulated trace / metrics afterwards.
"""

from __future__ import annotations

import argparse
import importlib
import inspect
import sys
import time

from repro.experiments import ALL_EXPERIMENTS


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``python -m repro.experiments``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        help="experiment module names (default: all)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="use reduced instruction budgets",
    )
    parser.add_argument(
        "--list", action="store_true", help="list experiment names and exit"
    )
    parser.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="export the shared DTM trace (JSONL) accumulated by "
        "telemetry-aware experiments",
    )
    parser.add_argument(
        "--metrics-out", default=None, metavar="PATH",
        help="export the shared metrics snapshot (JSON)",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for every sweep inside the experiments "
        "(0 = all cores; results are bit-identical to --jobs 1, see "
        "docs/performance.md)",
    )
    parser.add_argument(
        "--batch", type=int, default=1, metavar="B",
        help="lane-batch width for every sweep: up to B compatible runs "
        "advance through one vectorized kernel (composes with --jobs; "
        "results are bit-identical to --batch 1)",
    )
    grid = parser.add_argument_group(
        "grid experiments (see docs/thermal_model.md)"
    )
    grid.add_argument(
        "--grid-solver", choices=("spectral", "euler"), default=None,
        help="time integrator for experiments built on the 2D grid "
        "model (validation_grid, validation_grid_dtm, "
        "validation_grid_convergence): 'spectral' (default) is the "
        "exact-exponential eigenbasis solver, 'euler' the original "
        "pinned sub-stepped integrator",
    )
    grid.add_argument(
        "--resolution", type=int, default=None, metavar="N",
        help="grid resolution (N x N cells) for the grid experiments",
    )
    resilience = parser.add_argument_group(
        "fault tolerance (see docs/robustness.md)"
    )
    resilience.add_argument(
        "--retries", type=int, default=0, metavar="N",
        help="re-run a failed/crashed/timed-out spec up to N times",
    )
    resilience.add_argument(
        "--retry-backoff", type=float, default=0.0, metavar="SECONDS",
        help="deterministic backoff before the first retry "
        "(doubles per further retry)",
    )
    resilience.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-spec wall-clock timeout (pool execution only)",
    )
    resilience.add_argument(
        "--checkpoint", default=None, metavar="PATH",
        help="append each completed spec to a crash-safe JSONL journal "
        "shared by every sweep in the selected experiments; implies "
        "--resume (specs are deterministic, so journal reuse is "
        "bit-identical by construction)",
    )
    resilience.add_argument(
        "--resume", action="store_true",
        help="skip specs already completed in the --checkpoint journal",
    )
    resilience.add_argument(
        "--strict", action="store_true",
        help="abort with an aggregated error if any spec fails "
        "permanently",
    )
    from repro.sim.cache import DEFAULT_CACHE_DIR

    caching = parser.add_argument_group(
        "result caching (see docs/performance.md, Level 5)"
    )
    caching.add_argument(
        "--cache", nargs="?", const=DEFAULT_CACHE_DIR, default=None,
        metavar="DIR",
        help="replay previously completed specs from the persistent "
        f"result cache in DIR (default {DEFAULT_CACHE_DIR}) and store "
        "fresh ones; warm results and telemetry are bit-identical",
    )
    caching.add_argument(
        "--no-cache", action="store_true",
        help="disable the result cache even when REPRO_CACHE is set",
    )
    distributed = parser.add_argument_group(
        "distributed sharding (see docs/performance.md, Level 4)"
    )
    distributed.add_argument(
        "--cluster", default=None, metavar="HOST:PORT",
        help="coordinate every sweep for distributed workers bound to "
        "this endpoint instead of executing locally (results are "
        "bit-identical; requires --token)",
    )
    distributed.add_argument(
        "--token", default=None, metavar="SECRET",
        help="shared worker-authentication token for --cluster",
    )
    args = parser.parse_args(argv)

    if args.resume and args.checkpoint is None:
        parser.error("--resume requires --checkpoint")
    if args.resolution is not None and args.resolution < 4:
        parser.error("--resolution must be at least 4")
    if args.cluster and not args.token:
        parser.error("--cluster requires --token")
    if args.cache is not None and args.no_cache:
        parser.error("--cache conflicts with --no-cache")

    if args.no_cache or args.cache is not None:
        from repro.errors import CacheError, ConfigError
        from repro.sim.parallel import set_default_cache

        try:
            set_default_cache(False if args.no_cache else args.cache)
        except (CacheError, ConfigError) as error:
            parser.error(str(error))

    if args.jobs != 1:
        from repro.sim.parallel import set_default_jobs

        set_default_jobs(args.jobs)

    if args.batch != 1:
        from repro.sim.parallel import set_default_batch

        set_default_batch(args.batch)

    if (
        args.retries
        or args.timeout is not None
        or args.checkpoint is not None
        or args.resume
        or args.strict
    ):
        from repro.sim.parallel import (
            RetryPolicy,
            SweepOptions,
            set_default_sweep_options,
        )

        set_default_sweep_options(
            SweepOptions(
                retry=RetryPolicy(
                    max_retries=args.retries,
                    backoff_seconds=args.retry_backoff,
                ),
                timeout_seconds=args.timeout,
                checkpoint_path=args.checkpoint,
                # Each experiment's sweep opens the shared journal; only
                # append semantics keep earlier sweeps' entries alive.
                resume=args.checkpoint is not None,
                strict=args.strict,
            )
        )

    if args.cluster:
        from repro.errors import ConfigError
        from repro.sim.distributed.protocol import (
            ClusterConfig,
            parse_endpoint,
        )
        from repro.sim.parallel import set_default_cluster

        try:
            host, port = parse_endpoint(args.cluster)
            set_default_cluster(
                ClusterConfig(host=host, port=port, token=args.token)
            )
        except ConfigError as error:
            parser.error(str(error))

    if args.list:
        for name in ALL_EXPERIMENTS:
            print(name)
        return 0

    chosen = args.experiments or list(ALL_EXPERIMENTS)
    unknown = [name for name in chosen if name not in ALL_EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiments: {', '.join(unknown)}")

    telemetry = None
    if args.trace_out or args.metrics_out:
        from repro.telemetry import Telemetry

        telemetry = Telemetry()

    for name in chosen:
        module = importlib.import_module(f"repro.experiments.{name}")
        parameters = inspect.signature(module.run).parameters
        kwargs = {}
        if args.quick and "quick" in parameters:
            kwargs["quick"] = True
        if telemetry is not None and "telemetry" in parameters:
            kwargs["telemetry"] = telemetry
        if args.grid_solver is not None and "solver" in parameters:
            kwargs["solver"] = args.grid_solver
        if args.resolution is not None and "resolution" in parameters:
            kwargs["resolution"] = args.resolution
        started = time.time()
        result = module.run(**kwargs)
        elapsed = time.time() - started
        print(result)
        print(f"[{name}: {elapsed:.1f}s]")
        print()

    if telemetry is not None:
        from repro.telemetry import write_metrics_json, write_trace_jsonl

        if args.trace_out:
            lines = write_trace_jsonl(
                telemetry.trace, args.trace_out, meta=telemetry.meta
            )
            print(f"trace: {args.trace_out} ({lines} lines)")
        if args.metrics_out:
            write_metrics_json(telemetry.snapshot(), args.metrics_out)
            print(f"metrics: {args.metrics_out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
