"""Run all (or selected) experiments from the command line.

Usage::

    python -m repro.experiments                # everything, full budgets
    python -m repro.experiments --quick        # reduced budgets
    python -m repro.experiments table3_rc table11_dtm_performance
"""

from __future__ import annotations

import argparse
import importlib
import inspect
import sys
import time

from repro.experiments import ALL_EXPERIMENTS


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``python -m repro.experiments``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        help="experiment module names (default: all)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="use reduced instruction budgets",
    )
    parser.add_argument(
        "--list", action="store_true", help="list experiment names and exit"
    )
    args = parser.parse_args(argv)

    if args.list:
        for name in ALL_EXPERIMENTS:
            print(name)
        return 0

    chosen = args.experiments or list(ALL_EXPERIMENTS)
    unknown = [name for name in chosen if name not in ALL_EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiments: {', '.join(unknown)}")

    for name in chosen:
        module = importlib.import_module(f"repro.experiments.{name}")
        kwargs = {}
        if args.quick and "quick" in inspect.signature(module.run).parameters:
            kwargs["quick"] = True
        started = time.time()
        result = module.run(**kwargs)
        elapsed = time.time() - started
        print(result)
        print(f"[{name}: {elapsed:.1f}s]")
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
