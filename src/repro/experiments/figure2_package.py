"""Figure 2: the IC package model and the Section 4.1 worked example.

A die dissipating 25 W through 1 K/W die-to-case plus 1 K/W heatsink
resistance above a 27 degC ambient must settle at 77 degC, with the
heating transient dominated by the 60 J/K heatsink capacitance (a time
constant on the order of a minute).  This experiment integrates the
package model through the power-on transient and reports both.
"""

from __future__ import annotations

from repro.experiments.reporting import ExperimentResult, ascii_chart, format_table
from repro.thermal.package import PackageModel


def run(power_w: float = 25.0, duration_s: float = 600.0) -> ExperimentResult:
    """Power-on transient of the package model."""
    package = PackageModel()
    expected_die, expected_sink = package.steady_state(power_w)
    dt = 0.5
    steps = int(duration_s / dt)
    die_trace: list[float] = []
    sink_trace: list[float] = []
    reached_63pct_at = None
    # The slow pole is the heatsink: measure its 63% rise time.
    target_63 = package.ambient + (expected_sink - package.ambient) * (
        1 - 2.718281828**-1
    )
    for step in range(steps):
        die, sink = package.step(power_w, dt)
        die_trace.append(die)
        sink_trace.append(sink)
        if reached_63pct_at is None and sink >= target_63:
            reached_63pct_at = (step + 1) * dt
    rows = [
        {
            "power_w": power_w,
            "steady_die_c": expected_die,
            "steady_sink_c": expected_sink,
            "simulated_die_c": die_trace[-1],
            "time_constant_s": package.dominant_time_constant,
            "measured_63pct_s": reached_63pct_at,
        }
    ]
    text = "\n".join(
        [
            format_table(
                rows,
                columns=(
                    ("power_w", "power (W)", ".0f"),
                    ("steady_die_c", "steady die (C)", ".1f"),
                    ("steady_sink_c", "steady sink (C)", ".1f"),
                    ("simulated_die_c", "simulated die (C)", ".1f"),
                    ("time_constant_s", "RC tau (s)", ".0f"),
                    ("measured_63pct_s", "sink 63% rise (s)", ".0f"),
                ),
            ),
            "",
            ascii_chart(
                {"die": die_trace, "heatsink": sink_trace},
                y_label="temperature (C) during power-on transient",
            ),
        ]
    )
    notes = (
        "Paper Section 4.1: 25 W * 2 K/W over 27 C ambient -> 77 C steady\n"
        "state; 60 J/K * 2 K/W -> transient on the order of a minute."
    )
    return ExperimentResult(
        experiment_id="F2",
        title="IC package with heatsink: steady state and transient",
        rows=rows,
        text=text,
        notes=notes,
    )
