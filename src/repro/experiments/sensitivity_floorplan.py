"""Sensitivity S1: robustness to floorplan area/power assumptions.

The paper's per-structure areas come from an R10000 die photo scaled
across two process generations -- "clearly unsatisfactory" by its own
admission -- but it argues that "different ratios and areas of
structure sizes would not materially affect the main conclusions."
This experiment re-runs the core comparison (toggle1 vs PID on a hot
benchmark) under scaled floorplans and checks that the conclusions
survive: all policies stay emergency-free and the CT policy keeps its
advantage.

Note that controllers are *re-tuned* for each floorplan (the plant
model changes with it) -- exactly the design-methodology benefit the
paper advertises.
"""

from __future__ import annotations

from repro.experiments.common import benchmark_budget
from repro.experiments.reporting import ExperimentResult, format_table, percent
from repro.sim.sweep import run_one
from repro.thermal.floorplan import scaled_floorplan

#: (area scale, power scale) pairs: smaller/denser, nominal, larger.
DEFAULT_SCALES = ((0.7, 1.0), (1.0, 1.0), (1.5, 1.0), (1.0, 1.15))


def run(
    benchmark: str = "gcc",
    scales: tuple[tuple[float, float], ...] = DEFAULT_SCALES,
    quick: bool = False,
) -> ExperimentResult:
    """Re-run toggle1 vs PID under scaled floorplans."""
    budget = benchmark_budget(benchmark, quick)
    rows = []
    for area_scale, power_scale in scales:
        floorplan = scaled_floorplan(area_scale, power_scale)
        baseline = run_one(
            benchmark, "none", instructions=budget, floorplan=floorplan
        )
        row: dict = {
            "area_scale": area_scale,
            "power_scale": power_scale,
            "peak_rise_k": max(
                block.peak_temperature_rise for block in floorplan.blocks
            ),
            "base_em": percent(baseline.emergency_fraction),
        }
        for policy in ("toggle1", "pid"):
            result = run_one(
                benchmark, policy, instructions=budget, floorplan=floorplan
            )
            row[f"ipc_{policy}"] = percent(result.relative_ipc(baseline))
            row[f"em_{policy}"] = percent(result.emergency_fraction)
        row["ct_wins"] = "yes" if row["ipc_pid"] >= row["ipc_toggle1"] else "NO"
        rows.append(row)
    text = format_table(
        rows,
        columns=(
            ("area_scale", "area x", ".2f"),
            ("power_scale", "power x", ".2f"),
            ("peak_rise_k", "peak rise (K)", ".2f"),
            ("base_em", "unmanaged em%", ".1f"),
            ("ipc_toggle1", "toggle1 %IPC", ".1f"),
            ("em_toggle1", "t1 em%", ".3f"),
            ("ipc_pid", "pid %IPC", ".1f"),
            ("em_pid", "pid em%", ".3f"),
            ("ct_wins", "CT wins", None),
        ),
    )
    notes = (
        "Smaller areas raise R (hotter spots); larger areas cool them.\n"
        "Controllers are retuned per floorplan.  The paper's conclusion\n"
        "holds: the CT policy stays emergency-free and ahead of toggle1 on\n"
        "every floorplan.  Bonus finding: on the hottest floorplan (0.7x\n"
        "area) toggle1's fixed 1 K guard band is no longer sufficient --\n"
        "its check interval exceeds the faster heating time, so only the\n"
        "fast-sampling CT policy remains safe."
    )
    return ExperimentResult(
        experiment_id="S1",
        title="Floorplan area/power sensitivity of the main conclusion",
        rows=rows,
        text=text,
        notes=notes,
    )
