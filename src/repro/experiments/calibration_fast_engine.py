"""Calibration C1: fast-engine duty response vs the detailed core.

The fast engine models toggling as a fetch-supply cap,
``supply = duty * fetch_width * efficiency``.  This experiment measures
the *actual* duty -> relative-IPC response of the cycle-level core
(with warm caches and predictor) and compares it against the fast
engine's prediction, reporting the per-duty error.  The shipped
``DEFAULT_SUPPLY_EFFICIENCY`` was chosen from this measurement.
"""

from __future__ import annotations

from repro.config import MachineConfig
from repro.dtm.mechanisms import FetchToggling
from repro.experiments.reporting import ExperimentResult, format_table
from repro.sim.fast import DEFAULT_SUPPLY_EFFICIENCY
from repro.uarch.pipeline import OutOfOrderCore
from repro.workloads.generator import instruction_stream
from repro.workloads.profiles import get_profile

DEFAULT_DUTIES = (1.0, 5 / 7, 4 / 7, 3 / 7, 2 / 7, 1 / 7)


#: Cycles of warmup before measuring (cold caches and predictor tables
#: otherwise depress the full-duty IPC and hide the supply bound).
WARMUP_CYCLES = 150_000


def _detailed_ipc(
    benchmark: str,
    duty: float,
    cycles: int,
    seed: int = 1,
    warmup_cycles: int = WARMUP_CYCLES,
) -> float:
    """Warm-measure the detailed core's IPC at a fixed toggling duty."""
    toggling = FetchToggling()
    toggling.set_output(duty)
    machine = MachineConfig()
    core = OutOfOrderCore(
        machine,
        instruction_stream(get_profile(benchmark), seed=seed),
        fetch_gate=toggling.allows,
    )
    core.run(max_cycles=warmup_cycles)  # warmup: caches, predictor, window
    warm_cycles = core.stats.cycles
    warm_committed = core.stats.committed
    core.run(max_cycles=cycles)
    return (core.stats.committed - warm_committed) / (
        core.stats.cycles - warm_cycles
    )


def run(
    benchmark: str = "gcc",
    duties: tuple[float, ...] = DEFAULT_DUTIES,
    cycles_per_point: int = 100_000,
    quick: bool = False,
) -> ExperimentResult:
    """Measure and compare the duty -> throughput response."""
    warmup_cycles = WARMUP_CYCLES
    if quick:
        cycles_per_point = 40_000
        warmup_cycles = 60_000
        duties = (1.0, 3 / 7, 1 / 7)
    machine = MachineConfig()
    base_ipc = _detailed_ipc(
        benchmark, 1.0, cycles_per_point, warmup_cycles=warmup_cycles
    )
    rows = []
    for duty in duties:
        measured = _detailed_ipc(
            benchmark, duty, cycles_per_point, warmup_cycles=warmup_cycles
        )
        supply = duty * machine.fetch_width * DEFAULT_SUPPLY_EFFICIENCY
        predicted = min(base_ipc, supply)
        rows.append(
            {
                "duty": duty,
                "detailed_ipc": measured,
                "detailed_relative": measured / base_ipc,
                "fast_relative": predicted / base_ipc,
                "error": predicted / base_ipc - measured / base_ipc,
            }
        )
    text = format_table(
        rows,
        columns=(
            ("duty", "duty", ".3f"),
            ("detailed_ipc", "detailed IPC", ".3f"),
            ("detailed_relative", "detailed rel", ".3f"),
            ("fast_relative", "fast rel", ".3f"),
            ("error", "error", "+.3f"),
        ),
    )
    worst = max(abs(row["error"]) for row in rows)
    notes = (
        f"Workload {benchmark}; supply efficiency "
        f"{DEFAULT_SUPPLY_EFFICIENCY:.2f}; worst relative-IPC error "
        f"{worst:.3f}."
    )
    return ExperimentResult(
        experiment_id="C1",
        title="Fast-engine duty response calibration vs detailed core",
        rows=rows,
        text=text,
        notes=notes,
        extras={"worst_error": worst},
    )
