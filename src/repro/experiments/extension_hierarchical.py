"""Extension E1: a hierarchical DTM deployment (paper Section 2.1).

"A realistic implementation might employ a hierarchy of DTM
techniques: a low-cost mechanism like toggling might be used with a
high trigger threshold.  Only when temperature gets truly close to
emergency would auxiliary mechanisms ... be employed."

We run the PID policy at an *aggressive* setpoint (101.9 C, beyond
what the paper dared alone) under an adversarial low-reading sensor,
backed by an emergency full-stop.  The backup converts the aggressive
configuration from unsafe-in-the-tail back to emergency-free.
"""

from __future__ import annotations

from repro.dtm.policies import HierarchicalPolicy, make_policy
from repro.experiments.common import benchmark_budget
from repro.experiments.reporting import ExperimentResult, format_table, percent
from repro.sim.sweep import run_one
from repro.thermal.sensors import NoisySensor

DEFAULT_BENCHMARKS = ("gcc", "equake")


def run(
    benchmarks: tuple[str, ...] = DEFAULT_BENCHMARKS,
    quick: bool = False,
) -> ExperimentResult:
    """Compare plain vs hierarchical PID at an aggressive setpoint.

    A slightly low-reading sensor (-0.1 K offset) stresses the guard
    band, which is where the backup earns its keep.
    """
    rows = []
    sensor = NoisySensor(noise_sigma=0.03, offset=-0.1, seed=2)
    for benchmark in benchmarks:
        budget = benchmark_budget(benchmark, quick)
        baseline = run_one(benchmark, "none", instructions=budget)
        for label, build in (
            ("pid@101.8", lambda: make_policy("pid", setpoint=101.8)),
            ("pid@101.9", lambda: make_policy("pid", setpoint=101.9)),
            (
                "hier(pid@101.9)",
                # The backup trigger is placed below the emergency
                # threshold by more than the worst-case sensor error,
                # so a low-reading sensor cannot hide a real crossing.
                lambda: HierarchicalPolicy(
                    make_policy("pid", setpoint=101.9), backup_trigger=101.85
                ),
            ),
        ):
            policy = build()
            result = run_one(
                benchmark,
                "",  # name ignored: policy object supplied
                instructions=budget,
                policy=policy,
                sensor=sensor,
            )
            backup_engagements = getattr(policy, "backup_engagements", 0)
            rows.append(
                {
                    "benchmark": benchmark,
                    "policy": label,
                    "pct_ipc": percent(result.relative_ipc(baseline)),
                    "pct_emergency": percent(result.emergency_fraction),
                    "max_temp_c": result.max_temperature,
                    "backup_engaged": backup_engagements,
                }
            )
    text = format_table(
        rows,
        columns=(
            ("benchmark", "benchmark", None),
            ("policy", "policy", None),
            ("pct_ipc", "%IPC", ".2f"),
            ("pct_emergency", "em%", ".4f"),
            ("max_temp_c", "max T (C)", ".3f"),
            ("backup_engaged", "backup hits", "d"),
        ),
    )
    notes = (
        "Sensor reads 0.1 K low (plus noise), eroding the guard band.\n"
        "The aggressive setpoint alone is unsafe under sensor error; the\n"
        "backup restores zero emergencies at roughly the conservative\n"
        "setpoint's throughput.  Its value is insurance: workloads or\n"
        "sensors that behave get the aggressive setpoint's speed, and the\n"
        "ones that do not are contained automatically."
    )
    return ExperimentResult(
        experiment_id="E1",
        title="Hierarchical DTM: aggressive PID + emergency backup",
        rows=rows,
        text=text,
        notes=notes,
    )
