"""Validation V2: the DTM loop closed around the continuum plant.

The controllers are tuned against the simplified lumped model; the
real die is a continuum.  This experiment closes the Figure 1 loop
with the 2D finite-difference grid as the *plant*: sensors read each
block's hottest cell, the PID commands duty, and powers heat the grid
(with lateral spreading the lumped model ignores).  If the paper's
design methodology is sound, the lumped-tuned controller must hold
even the hottest *cell* below the emergency threshold.

A rendered heat map of the managed steady-state field shows the hot
spots the controller is containing.
"""

from __future__ import annotations

import numpy as np

from repro.config import DTMConfig, MachineConfig, ThermalConfig
from repro.dtm.manager import DTMManager
from repro.dtm.policies import make_policy
from repro.experiments.reporting import (
    ExperimentResult,
    ascii_heatmap,
    format_table,
    percent,
)
from repro.power.wattch import PowerModel
from repro.sim.fast import DEFAULT_SUPPLY_EFFICIENCY
from repro.thermal.floorplan import Floorplan
from repro.thermal.grid import GridThermalModel
from repro.workloads.profiles import get_profile


def _run_on_grid(
    benchmark: str,
    policy_name: str,
    instructions: float,
    resolution: int,
    solver: str = "spectral",
) -> dict:
    """A fast-engine-style loop with the grid model as the plant."""
    profile = get_profile(benchmark)
    floorplan = Floorplan.default()
    machine = MachineConfig()
    thermal_config = ThermalConfig()
    dtm_config = DTMConfig()
    policy = make_policy(policy_name, floorplan, dtm_config)
    manager = DTMManager(policy, dtm_config)
    power_model = PowerModel(floorplan)
    grid = GridThermalModel(
        floorplan,
        resolution=resolution,
        heatsink_temperature=thermal_config.heatsink_temperature,
        solver=solver,
    )
    rng = np.random.default_rng(np.random.SeedSequence([profile.seed, 7]))
    names = floorplan.names
    sample = dtm_config.sampling_interval
    sample_seconds = sample * machine.cycle_time
    supply = machine.fetch_width * DEFAULT_SUPPLY_EFFICIENCY

    committed = 0.0
    cycles = 0
    emergency_samples = 0
    samples = 0
    max_cell = -np.inf
    max_cycles = int(40 * instructions / max(0.1, profile.mean_ipc))
    while committed < instructions and cycles < max_cycles:
        phase = profile.phase_at(int(committed))
        activity = np.array(phase.activity_vector(names))
        if phase.jitter:
            activity = np.clip(
                activity * (1 + rng.normal(0, phase.jitter, len(names))), 0, 1
            )
        demand = max(0.05, phase.ipc)
        # Sensors read each block's hottest cell on the real die.
        sensed = float(grid.block_temperatures("max").max())
        duty, stall = manager.on_sample(sensed)
        effective = min(demand, duty * supply)
        powers = power_model.block_powers(activity * (effective / demand))
        grid.advance(powers, sample_seconds)
        peak = grid.max_temperature
        max_cell = max(max_cell, peak)
        if peak > thermal_config.emergency_temperature:
            emergency_samples += 1
        committed += effective * max(0, sample - stall)
        cycles += sample
        samples += 1

    return {
        "ipc": committed / cycles,
        "emergency_fraction": emergency_samples / samples,
        "max_cell_temperature": max_cell,
        "field": grid.temperatures,
    }


def run(
    benchmark: str = "gcc",
    instructions: float = 1_000_000,
    resolution: int = 24,
    solver: str = "spectral",
    quick: bool = False,
) -> ExperimentResult:
    """Close the DTM loop around the finite-difference plant."""
    if quick:
        instructions = min(instructions, 300_000)
    unmanaged = _run_on_grid(benchmark, "none", instructions, resolution, solver)
    managed = _run_on_grid(benchmark, "pid", instructions, resolution, solver)
    rows = [
        {
            "policy": "none",
            "ipc": unmanaged["ipc"],
            "pct_emergency": percent(unmanaged["emergency_fraction"]),
            "max_cell_c": unmanaged["max_cell_temperature"],
        },
        {
            "policy": "pid (lumped-tuned)",
            "ipc": managed["ipc"],
            "pct_emergency": percent(managed["emergency_fraction"]),
            "max_cell_c": managed["max_cell_temperature"],
        },
    ]
    text = "\n".join(
        [
            format_table(
                rows,
                columns=(
                    ("policy", "policy", None),
                    ("ipc", "IPC", ".3f"),
                    ("pct_emergency", "em% (cell-level)", ".2f"),
                    ("max_cell_c", "hottest cell (C)", ".3f"),
                ),
            ),
            "",
            "managed die temperature field (end of run):",
            ascii_heatmap(managed["field"], low=100.0, high=102.0),
        ]
    )
    notes = (
        "The plant here is the 2D heat equation, not the model the\n"
        "controller was tuned on; emergencies are counted on the hottest\n"
        "individual cell.  The lumped-tuned PID still holds the die below\n"
        "the threshold -- the design methodology survives the model gap.\n"
        f"Grid: {resolution}x{resolution}, {solver} solver (each sampling\n"
        "interval is one exact closed-form step under 'spectral')."
    )
    return ExperimentResult(
        experiment_id="V2",
        title="DTM loop closed around the finite-difference plant",
        rows=rows,
        text=text,
        notes=notes,
        extras={
            "managed_max_cell": managed["max_cell_temperature"],
            "unmanaged_max_cell": unmanaged["max_cell_temperature"],
        },
    )
