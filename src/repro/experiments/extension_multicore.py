"""Extension X6: multicore scaling of per-core vs coordinated DTM.

The paper manages one core; this experiment tiles N copies of its
floorplan onto a shared die (:mod:`repro.multicore`) and runs a
migration-free multiprogram mix -- one benchmark pinned per core,
assigned round-robin from a hot/cool list -- under three regimes:

* **unmanaged** -- no DTM anywhere (the baseline both success metrics
  are measured against);
* **per-core** -- each core runs its own feedback loop (the paper's
  policy, replicated), blind to its neighbors;
* **coordinated** -- the same per-core loops underneath a chip-level
  :class:`~repro.multicore.coordinator.ThermalBudgetCoordinator` that
  arbitrates a shared duty budget and demotes cores camped at the
  emergency threshold.

For each core count the table reports the unmanaged union emergency
time, then throughput retained (vs unmanaged) and residual emergency
time for the per-core and coordinated regimes, plus the coordinator's
demotion/budget activity.  Because lateral core-to-core coupling is
weak (~15 K/W vs the ~0.2 K/W vertical path), per-core control already
removes most emergencies; what coordination buys is bounded *chip*
behaviour -- the duty budget caps total toggling demand the way a
package power limit would.
"""

from __future__ import annotations

from repro.errors import SimulationError
from repro.experiments.common import benchmark_budget
from repro.experiments.reporting import ExperimentResult, format_table, percent
from repro.sim.parallel import WorkSpec, run_specs

#: Chip sizes swept, as in the acceptance criteria.
DEFAULT_CORE_COUNTS: tuple[int, ...] = (2, 4, 8, 16)

#: Round-robin per-core benchmark assignment: alternating hot (gcc,
#: art) and cool (gzip, mesa) programs so every chip size mixes both.
DEFAULT_MIX: tuple[str, ...] = ("gcc", "gzip", "art", "mesa")

#: The three management regimes swept per chip size, in report order.
_REGIMES: tuple[str, ...] = ("unmanaged", "percore", "coordinated")


def _mix_for(n_cores: int, mix: tuple[str, ...]) -> tuple[str, ...]:
    """Assign benchmarks to cores round-robin from ``mix``."""
    return tuple(mix[i % len(mix)] for i in range(n_cores))


def build_specs(
    core_counts: tuple[int, ...] = DEFAULT_CORE_COUNTS,
    policy: str = "pid",
    coordinator: str = "proportional",
    mix: tuple[str, ...] = DEFAULT_MIX,
    quick: bool = False,
    seed: int = 0,
) -> list[WorkSpec]:
    """The experiment's runs as multicore :class:`WorkSpec`\\ s.

    Three specs per chip size (unmanaged / per-core / coordinated),
    each tagged ``(n_cores, regime)`` so :func:`run` can rebuild its
    table rows from executor results in any grouping.
    """
    specs = []
    for n_cores in core_counts:
        benchmarks = _mix_for(n_cores, mix)
        budget = max(benchmark_budget(name, quick) for name in benchmarks)
        if quick:
            # Multicore cost scales with N; keep quick mode quick.
            budget = min(budget, 400_000)
        for regime, run_policy, run_coordinator in (
            ("unmanaged", "none", None),
            ("percore", policy, None),
            ("coordinated", policy, coordinator),
        ):
            specs.append(
                WorkSpec(
                    benchmark=benchmarks[0],
                    policy=run_policy,
                    instructions=budget,
                    seed=seed,
                    core_benchmarks=benchmarks,
                    coordinator=run_coordinator,
                    tag=(n_cores, regime),
                )
            )
    return specs


def run(
    core_counts: tuple[int, ...] = DEFAULT_CORE_COUNTS,
    policy: str = "pid",
    coordinator: str = "proportional",
    mix: tuple[str, ...] = DEFAULT_MIX,
    quick: bool = False,
    seed: int = 0,
    telemetry=None,
    jobs: int | None = None,
) -> ExperimentResult:
    """Sweep chip sizes; compare unmanaged / per-core / coordinated.

    The N x regime matrix runs through the orchestrated executor
    (:func:`~repro.sim.parallel.run_specs`), so ``jobs`` fans chip
    sizes out over worker processes and the process-wide sweep options
    (retries, timeouts, checkpointing) apply.  Multicore specs never
    lane-batch -- each is a singleton group -- but they share the same
    journal format as single-core sweeps.
    """
    specs = build_specs(
        core_counts,
        policy=policy,
        coordinator=coordinator,
        mix=mix,
        quick=quick,
        seed=seed,
    )
    results = run_specs(specs, jobs=jobs, telemetry=telemetry)
    by_tag = {}
    for spec, result in zip(specs, results):
        if result is None:
            raise SimulationError(
                f"multicore spec {spec.tag!r} failed permanently; "
                "see the sweep.spec_failed telemetry event for details"
            )
        by_tag[spec.tag] = result
    rows = []
    for n_cores in core_counts:
        baseline = by_tag[(n_cores, "unmanaged")]
        percore = by_tag[(n_cores, "percore")]
        coordinated = by_tag[(n_cores, "coordinated")]
        rows.append(
            {
                "cores": n_cores,
                "base_em": percent(baseline.emergency_fraction),
                "percore_thr": percent(
                    percore.relative_throughput(baseline)
                ),
                "percore_em": percent(percore.emergency_fraction),
                "coord_thr": percent(
                    coordinated.relative_throughput(baseline)
                ),
                "coord_em": percent(coordinated.emergency_fraction),
                "demotions": int(
                    coordinated.extra.get("coordinator_demotions", 0)
                ),
                "budget_samples": int(
                    coordinated.extra.get("coordinator_budget_samples", 0)
                ),
            }
        )
    text = format_table(
        rows,
        columns=(
            ("cores", "cores", "d"),
            ("base_em", "unmanaged em%", ".2f"),
            ("percore_thr", f"{policy} %thr", ".1f"),
            ("percore_em", f"{policy} em%", ".3f"),
            ("coord_thr", f"+{coordinator} %thr", ".1f"),
            ("coord_em", f"+{coordinator} em%", ".3f"),
            ("demotions", "demotions", "d"),
            ("budget_samples", "budget hits", "d"),
        ),
        title=(
            f"Multicore DTM scaling ({'+'.join(mix)} round-robin, "
            f"policy={policy}, coordinator={coordinator})"
        ),
    )
    notes = (
        "Per-core loops replicate the paper's single-core result at\n"
        "every chip size: emergencies vanish at a few percent of\n"
        "throughput.  The coordinator adds chip-level guarantees on\n"
        "top -- the duty budget caps aggregate fetch demand and the\n"
        "demotion watchdog removes cores that camp at the emergency\n"
        "threshold -- at a small extra throughput cost that grows\n"
        "with core count as the shared budget tightens."
    )
    return ExperimentResult(
        experiment_id="X6",
        title="Multicore scaling: per-core vs coordinated DTM",
        rows=rows,
        text=text,
        notes=notes,
    )
