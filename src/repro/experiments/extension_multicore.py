"""Extension X6: multicore scaling of per-core vs coordinated DTM.

The paper manages one core; this experiment tiles N copies of its
floorplan onto a shared die (:mod:`repro.multicore`) and runs a
migration-free multiprogram mix -- one benchmark pinned per core,
assigned round-robin from a hot/cool list -- under three regimes:

* **unmanaged** -- no DTM anywhere (the baseline both success metrics
  are measured against);
* **per-core** -- each core runs its own feedback loop (the paper's
  policy, replicated), blind to its neighbors;
* **coordinated** -- the same per-core loops underneath a chip-level
  :class:`~repro.multicore.coordinator.ThermalBudgetCoordinator` that
  arbitrates a shared duty budget and demotes cores camped at the
  emergency threshold.

For each core count the table reports the unmanaged union emergency
time, then throughput retained (vs unmanaged) and residual emergency
time for the per-core and coordinated regimes, plus the coordinator's
demotion/budget activity.  Because lateral core-to-core coupling is
weak (~15 K/W vs the ~0.2 K/W vertical path), per-core control already
removes most emergencies; what coordination buys is bounded *chip*
behaviour -- the duty budget caps total toggling demand the way a
package power limit would.
"""

from __future__ import annotations

from repro.experiments.common import benchmark_budget
from repro.experiments.reporting import ExperimentResult, format_table, percent
from repro.multicore.engine import MulticoreEngine

#: Chip sizes swept, as in the acceptance criteria.
DEFAULT_CORE_COUNTS: tuple[int, ...] = (2, 4, 8, 16)

#: Round-robin per-core benchmark assignment: alternating hot (gcc,
#: art) and cool (gzip, mesa) programs so every chip size mixes both.
DEFAULT_MIX: tuple[str, ...] = ("gcc", "gzip", "art", "mesa")


def _mix_for(n_cores: int, mix: tuple[str, ...]) -> tuple[str, ...]:
    """Assign benchmarks to cores round-robin from ``mix``."""
    return tuple(mix[i % len(mix)] for i in range(n_cores))


def run(
    core_counts: tuple[int, ...] = DEFAULT_CORE_COUNTS,
    policy: str = "pid",
    coordinator: str = "proportional",
    mix: tuple[str, ...] = DEFAULT_MIX,
    quick: bool = False,
    seed: int = 0,
    telemetry=None,
) -> ExperimentResult:
    """Sweep chip sizes; compare unmanaged / per-core / coordinated."""
    rows = []
    for n_cores in core_counts:
        benchmarks = _mix_for(n_cores, mix)
        budget = max(benchmark_budget(name, quick) for name in benchmarks)
        if quick:
            # Multicore cost scales with N; keep quick mode quick.
            budget = min(budget, 400_000)

        def simulate(run_policy: str, run_coordinator: str | None):
            engine = MulticoreEngine(
                benchmarks,
                policy=run_policy,
                coordinator=run_coordinator,
                seed=seed,
                telemetry=telemetry,
            )
            return engine.run(instructions=budget)

        baseline = simulate("none", None)
        percore = simulate(policy, None)
        coordinated = simulate(policy, coordinator)
        rows.append(
            {
                "cores": n_cores,
                "base_em": percent(baseline.emergency_fraction),
                "percore_thr": percent(
                    percore.relative_throughput(baseline)
                ),
                "percore_em": percent(percore.emergency_fraction),
                "coord_thr": percent(
                    coordinated.relative_throughput(baseline)
                ),
                "coord_em": percent(coordinated.emergency_fraction),
                "demotions": int(
                    coordinated.extra.get("coordinator_demotions", 0)
                ),
                "budget_samples": int(
                    coordinated.extra.get("coordinator_budget_samples", 0)
                ),
            }
        )
    text = format_table(
        rows,
        columns=(
            ("cores", "cores", "d"),
            ("base_em", "unmanaged em%", ".2f"),
            ("percore_thr", f"{policy} %thr", ".1f"),
            ("percore_em", f"{policy} em%", ".3f"),
            ("coord_thr", f"+{coordinator} %thr", ".1f"),
            ("coord_em", f"+{coordinator} em%", ".3f"),
            ("demotions", "demotions", "d"),
            ("budget_samples", "budget hits", "d"),
        ),
        title=(
            f"Multicore DTM scaling ({'+'.join(mix)} round-robin, "
            f"policy={policy}, coordinator={coordinator})"
        ),
    )
    notes = (
        "Per-core loops replicate the paper's single-core result at\n"
        "every chip size: emergencies vanish at a few percent of\n"
        "throughput.  The coordinator adds chip-level guarantees on\n"
        "top -- the duty budget caps aggregate fetch demand and the\n"
        "demotion watchdog removes cores that camp at the emergency\n"
        "threshold -- at a small extra throughput cost that grows\n"
        "with core count as the shared budget tightens."
    )
    return ExperimentResult(
        experiment_id="X6",
        title="Multicore scaling: per-core vs coordinated DTM",
        rows=rows,
        text=text,
        notes=notes,
    )
