"""Validation V1: the lumped block model vs a 2D finite-difference grid.

The paper validates its Figure 3C simplification analytically (R_tan is
~100x R_normal).  This experiment validates it numerically against the
continuum: a finite-difference solution of the heat equation over the
placed die (lateral conduction between cells, vertical conduction to
the isothermal heatsink) -- the approach HotSpot later standardized.

Reported per block: steady-state temperature at peak power from the
lumped model and from the grid (mean and max over the block's cells),
plus the transient deviation at several points along the heating curve,
plus the resolution-convergence table (with wall-clock per row) that
shows the measured gap is a continuum property, not a mesh artifact.

The grid integrates with the spectral exact-exponential solver by
default (``solver="euler"`` selects the original pinned sub-stepped
integrator; see docs/thermal_model.md).
"""

from __future__ import annotations

import numpy as np

from repro.experiments.reporting import ExperimentResult, format_table
from repro.experiments.validation_grid_convergence import (
    CONVERGENCE_COLUMNS,
    DEFAULT_RESOLUTIONS,
    convergence_rows,
)
from repro.thermal.floorplan import Floorplan
from repro.thermal.grid import GridThermalModel
from repro.thermal.lumped import LumpedThermalModel


def run(
    resolution: int = 48,
    solver: str = "spectral",
    convergence: tuple[int, ...] = DEFAULT_RESOLUTIONS,
    quick: bool = False,
) -> ExperimentResult:
    """Compare lumped vs grid steady states and transients."""
    if quick:
        convergence = tuple(r for r in convergence if r <= 48) or convergence
    floorplan = Floorplan.default()
    powers = np.array([block.peak_power for block in floorplan.blocks])
    lumped = LumpedThermalModel(floorplan, heatsink_temperature=100.0)
    grid = GridThermalModel(floorplan, resolution=resolution, solver=solver)

    grid_steady = grid.steady_state(powers)
    lumped_steady = lumped.steady_state(powers)

    rows = []
    worst_steady = 0.0
    for index, block in enumerate(floorplan.blocks):
        deviation = float(grid_steady[index] - lumped_steady[index])
        worst_steady = max(worst_steady, abs(deviation))
        rows.append(
            {
                "structure": block.name,
                "lumped_c": float(lumped_steady[index]),
                "grid_mean_c": float(grid_steady[index]),
                "grid_max_c": grid.block_temperature(block.name, "max"),
                "deviation_k": deviation,
            }
        )

    # Transient agreement along the heating curve.
    grid.reset()
    lumped.reset()
    transient_devs = []
    for _ in range(4):  # 4 x 50 us = ~1.1 block time constants
        grid_temps = grid.advance(powers, 50e-6)
        lumped_temps = lumped.advance(powers, int(50e-6 * 1.5e9))
        transient_devs.append(float(np.max(np.abs(grid_temps - lumped_temps))))

    # Resolution convergence (satellite of the spectral-solver work):
    # the same comparison swept over the mesh, with wall-clock per row.
    convergence_table = convergence_rows(convergence, solver=solver)

    text = "\n".join(
        [
            format_table(
                rows,
                columns=(
                    ("structure", "structure", None),
                    ("lumped_c", "lumped T (C)", ".3f"),
                    ("grid_mean_c", "grid mean (C)", ".3f"),
                    ("grid_max_c", "grid max (C)", ".3f"),
                    ("deviation_k", "deviation (K)", "+.3f"),
                ),
            ),
            "",
            "resolution convergence:",
            format_table(convergence_table, columns=CONVERGENCE_COLUMNS),
        ]
    )
    notes = (
        f"Grid: {resolution}x{resolution} cells, lateral + vertical "
        f"conduction, adiabatic edges, {solver} solver.\n"
        f"Worst steady-state |deviation|: {worst_steady:.3f} K; worst "
        f"transient |deviation| over the heating curve: "
        f"{max(transient_devs):.3f} K.\n"
        "Both are small against the 2 K emergency headroom: the paper's\n"
        "per-block RC simplification tracks the continuum solution, and\n"
        "the convergence table shows the gap is mesh-stable."
    )
    return ExperimentResult(
        experiment_id="V1",
        title="Lumped block model vs 2D finite-difference grid",
        rows=rows,
        text=text,
        notes=notes,
        extras={
            "worst_steady_deviation_k": worst_steady,
            "transient_deviations_k": transient_devs,
            "solver": solver,
            "convergence": convergence_table,
        },
    )
