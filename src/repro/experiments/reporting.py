"""Rendering helpers for experiment output: text tables and ASCII charts."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.errors import ExperimentError


@dataclass
class ExperimentResult:
    """The outcome of one experiment driver."""

    experiment_id: str
    title: str
    rows: list[dict]
    text: str
    notes: str = ""
    extras: dict = field(default_factory=dict)

    def __str__(self) -> str:
        parts = [f"== {self.experiment_id}: {self.title} ==", self.text]
        if self.notes:
            parts.append(self.notes)
        return "\n".join(parts)


def _format_cell(value, spec: str | None) -> str:
    if value is None:
        return "-"
    if spec is None:
        return str(value)
    return format(value, spec)


def format_table(
    rows: Sequence[dict],
    columns: Sequence[tuple[str, str, str | None]],
    title: str = "",
) -> str:
    """Render rows as an aligned text table.

    ``columns`` is a sequence of ``(key, header, format_spec)`` tuples;
    the format spec is applied with :func:`format` (``None`` = str).
    """
    if not rows:
        raise ExperimentError("cannot format an empty table")
    headers = [header for _, header, _ in columns]
    body = [
        [_format_cell(row.get(key), spec) for key, _, spec in columns]
        for row in rows
    ]
    widths = [
        max(len(headers[i]), max(len(line[i]) for line in body))
        for i in range(len(columns))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for line in body:
        lines.append("  ".join(cell.rjust(w) for cell, w in zip(line, widths)))
    return "\n".join(lines)


def ascii_chart(
    series: dict[str, Sequence[float]],
    height: int = 12,
    width: int = 72,
    y_label: str = "",
) -> str:
    """Render one or more numeric series as a compact ASCII line chart.

    Each series gets its own marker character; all share the y-axis.
    Series are resampled to the chart width.
    """
    if not series:
        raise ExperimentError("no series to chart")
    markers = "*o+x#@%&"
    all_values = [v for values in series.values() for v in values]
    lo, hi = min(all_values), max(all_values)
    if hi == lo:
        hi = lo + 1.0
    grid = [[" "] * width for _ in range(height)]

    for index, (name, values) in enumerate(series.items()):
        marker = markers[index % len(markers)]
        count = len(values)
        for col in range(width):
            src = min(count - 1, int(col * count / width))
            level = (values[src] - lo) / (hi - lo)
            row = height - 1 - int(level * (height - 1))
            grid[row][col] = marker

    lines = []
    if y_label:
        lines.append(y_label)
    lines.append(f"{hi:10.3f} +" + "".join(grid[0]))
    for row in grid[1:-1]:
        lines.append(" " * 10 + " |" + "".join(row))
    lines.append(f"{lo:10.3f} +" + "".join(grid[-1]))
    legend = "   ".join(
        f"{markers[i % len(markers)]} = {name}" for i, name in enumerate(series)
    )
    lines.append(" " * 12 + legend)
    return "\n".join(lines)


#: Heat-map shading ramp, coolest to hottest.
_HEAT_RAMP = " .:-=+*#%@"


def ascii_heatmap(
    field,
    low: float | None = None,
    high: float | None = None,
    max_size: int = 40,
    legend: bool = True,
) -> str:
    """Render a 2D temperature field as an ASCII heat map.

    ``field`` is a 2D array-like (row 0 printed last, so y increases
    upward like a floorplan).  Cells map onto a ten-step shading ramp
    between ``low`` and ``high`` (defaulting to the field's extremes).
    Large fields are downsampled to at most ``max_size`` per side.
    """
    import numpy as _np

    data = _np.asarray(field, dtype=float)
    if data.ndim != 2:
        raise ExperimentError("heat map needs a 2D field")
    lo = float(data.min()) if low is None else low
    hi = float(data.max()) if high is None else high
    if hi <= lo:
        hi = lo + 1.0
    step = max(1, int(_np.ceil(max(data.shape) / max_size)))
    sampled = data[::step, ::step]
    levels = _np.clip(
        ((sampled - lo) / (hi - lo) * (len(_HEAT_RAMP) - 1)).astype(int),
        0,
        len(_HEAT_RAMP) - 1,
    )
    lines = [
        "".join(_HEAT_RAMP[value] * 2 for value in row)
        for row in levels[::-1]  # print top row first
    ]
    if legend:
        lines.append(
            f"[{_HEAT_RAMP[0]!r}={lo:.2f}  ...  {_HEAT_RAMP[-1]!r}={hi:.2f}]"
        )
    return "\n".join(lines)


def percent(value: float) -> float:
    """Fraction -> percentage (kept explicit for readability in drivers)."""
    return 100.0 * value
