"""Extension X1: the full 26-benchmark SPEC2000 suite.

"Due to the extensive number of simulations required for this study,
we used only 18 of the total 26 SPEC2k benchmarks."  The fast engine
can afford all 26, so this experiment re-runs the Section 7 comparison
(toggle1 vs PID) over the complete suite, including the 8 benchmarks
the paper skipped (swim, mgrid, applu, galgel, ammp, lucas, sixtrack,
mcf), and checks that nothing about the conclusions changes.
"""

from __future__ import annotations

from repro.experiments.common import benchmark_budget
from repro.experiments.reporting import ExperimentResult, format_table, percent
from repro.sim.parallel import WorkSpec, run_specs
from repro.workloads.profiles import ALL_BENCHMARKS, EXTENDED_BENCHMARKS


def run(
    policies: tuple[str, ...] = ("toggle1", "pid"),
    quick: bool = False,
    jobs: int | None = None,
) -> ExperimentResult:
    """toggle1 vs PID over all 26 SPEC2000-like benchmarks.

    The 26 x (1 + len(policies)) matrix is built as
    :class:`~repro.sim.parallel.WorkSpec` entries (per-benchmark
    budgets) and handed to :func:`~repro.sim.parallel.run_specs`, so
    ``--jobs`` fans the whole experiment out over worker processes with
    bit-identical results.
    """
    specs = [
        WorkSpec(
            benchmark=benchmark,
            policy=policy,
            instructions=benchmark_budget(benchmark, quick),
        )
        for benchmark in ALL_BENCHMARKS
        for policy in ("none", *policies)
    ]
    results = dict(
        zip(((s.benchmark, s.policy) for s in specs), run_specs(specs, jobs=jobs))
    )

    rows = []
    losses: dict[str, list[float]] = {policy: [] for policy in policies}
    for benchmark in ALL_BENCHMARKS:
        baseline = results[(benchmark, "none")]
        row: dict = {
            "benchmark": benchmark,
            "suite": "extended" if benchmark in EXTENDED_BENCHMARKS else "paper",
            "base_em": percent(baseline.emergency_fraction),
        }
        for policy in policies:
            result = results[(benchmark, policy)]
            relative = result.relative_ipc(baseline)
            row[f"ipc_{policy}"] = percent(relative)
            row[f"em_{policy}"] = percent(result.emergency_fraction)
            losses[policy].append(1.0 - relative)
        rows.append(row)

    mean_row: dict = {"benchmark": "MEAN(26)", "suite": "", "base_em": None}
    for policy in policies:
        mean_loss = sum(losses[policy]) / len(losses[policy])
        mean_row[f"ipc_{policy}"] = percent(1.0 - mean_loss)
        mean_row[f"em_{policy}"] = None
    rows.append(mean_row)

    columns = [
        ("benchmark", "benchmark", None),
        ("suite", "suite", None),
        ("base_em", "em%", ".1f"),
    ]
    for policy in policies:
        columns.append((f"ipc_{policy}", f"{policy} %IPC", ".1f"))
        columns.append((f"em_{policy}", f"{policy} em%", ".2f"))
    text = format_table(rows, columns=tuple(columns))

    toggle_loss = sum(losses[policies[0]]) / len(losses[policies[0]])
    pid_loss = sum(losses[policies[-1]]) / len(losses[policies[-1]])
    reduction = 1.0 - pid_loss / toggle_loss if toggle_loss else 0.0
    notes = (
        f"Full-suite loss reduction ({policies[-1]} vs {policies[0]}): "
        f"{100 * reduction:.0f}%.\n"
        "The 8 added benchmarks are mostly medium/low thermal demand\n"
        "(streaming FP and memory-bound codes), so they dilute the mean\n"
        "loss but do not change any conclusion."
    )
    return ExperimentResult(
        experiment_id="X1",
        title="Full 26-benchmark suite: toggle1 vs PID",
        rows=rows,
        text=text,
        notes=notes,
        extras={"loss_reduction": reduction},
    )
