"""Figure 1: the DTM feedback control loop, exercised in isolation.

The paper's Figure 1 is a block diagram (target temperature -> error ->
controller -> actuator -> thermal dynamics -> sensor).  We regenerate
it as a live trace: a single hot block under a power-step disturbance,
closed-loop with the PID policy, showing temperature pulled back to the
setpoint and the duty the controller commands.
"""

from __future__ import annotations

import numpy as np

from repro.config import DTMConfig, ThermalConfig
from repro.dtm.manager import DTMManager
from repro.dtm.policies import make_policy
from repro.experiments.reporting import ExperimentResult, ascii_chart, format_table
from repro.power.wattch import PowerModel
from repro.thermal.floorplan import Floorplan
from repro.thermal.lumped import LumpedThermalModel


def run(samples: int = 1200, policy_name: str = "pid") -> ExperimentResult:
    """Closed-loop step-disturbance trace (the Figure 1 loop, live)."""
    floorplan = Floorplan.default()
    thermal_config = ThermalConfig()
    dtm_config = DTMConfig()
    policy = make_policy(policy_name, floorplan, dtm_config)
    manager = DTMManager(policy, dtm_config)
    power_model = PowerModel(floorplan)
    thermal = LumpedThermalModel(
        floorplan, heatsink_temperature=thermal_config.heatsink_temperature
    )
    hot_utilization = np.zeros(len(floorplan.blocks))
    hot_utilization[floorplan.index("regfile")] = 0.9

    temps: list[float] = []
    duties: list[float] = []
    for sample in range(samples):
        # Power-step disturbance: idle for the first 10 %, then hot.
        utilization = hot_utilization if sample >= samples // 10 else hot_utilization * 0
        duty, _ = manager.on_sample(thermal.max_temperature)
        # A fully-saturated workload's activity scales directly with duty.
        powers = power_model.block_powers(utilization * duty)
        thermal.advance(powers, dtm_config.sampling_interval)
        temps.append(thermal.max_temperature)
        duties.append(duty)

    setpoint = policy.setpoint if hasattr(policy, "setpoint") else None
    overshoot = max(temps) - setpoint if setpoint is not None else 0.0
    rows = [
        {
            "policy": policy.name,
            "setpoint_c": setpoint,
            "peak_temp_c": max(temps),
            "overshoot_k": overshoot,
            "final_temp_c": temps[-1],
            "final_duty": duties[-1],
            "emergency": max(temps) > thermal_config.emergency_temperature,
        }
    ]
    chart = ascii_chart(
        {"temperature (C)": temps}, y_label="hottest block temperature"
    )
    duty_chart = ascii_chart({"duty": duties}, height=6, y_label="fetch duty")
    text = "\n".join(
        [
            format_table(
                rows,
                columns=(
                    ("policy", "policy", None),
                    ("setpoint_c", "setpoint (C)", ".1f"),
                    ("peak_temp_c", "peak T (C)", ".3f"),
                    ("overshoot_k", "overshoot (K)", ".3f"),
                    ("final_temp_c", "final T (C)", ".3f"),
                    ("final_duty", "final duty", ".3f"),
                ),
            ),
            "",
            chart,
            "",
            duty_chart,
        ]
    )
    return ExperimentResult(
        experiment_id="F1",
        title="The feedback control loop under a power-step disturbance",
        rows=rows,
        text=text,
        extras={"temps": temps, "duties": duties},
    )
