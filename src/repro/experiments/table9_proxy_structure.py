"""Table 9: per-structure boxcar power averaging vs the RC thermal model.

Section 6: for each structure, a power-proxy trigger fires when the
boxcar average of that structure's power over the last W cycles exceeds
``P_trig = (T_trig - T_sink) / R``.  Running the proxy alongside the
reference RC model counts, per benchmark and window size (10 K and
500 K cycles):

* **missed emergencies** -- cycles the RC model puts a structure above
  the 102 degC emergency threshold while its proxy is not triggered;
* **false triggers** -- cycles a proxy is triggered while the
  structure's true temperature is below the 101 degC trigger level.
"""

from __future__ import annotations

from repro.config import DTMConfig, ThermalConfig
from repro.dtm.proxy import BoxcarPowerProxy, ProxyComparison
from repro.experiments.common import characterize_suite
from repro.experiments.reporting import ExperimentResult, format_table, percent
from repro.thermal.floorplan import Floorplan
from repro.workloads.profiles import BENCHMARKS

#: The paper's two boxcar window sizes [cycles].
WINDOWS = (10_000, 500_000)


def run(quick: bool = False) -> ExperimentResult:
    """Regenerate Table 9 (per-structure proxy disagreement rates)."""
    thermal = ThermalConfig()
    dtm = DTMConfig()
    floorplan = Floorplan.default()
    results = characterize_suite(quick=quick, record_history=True)
    rows = []
    for name in BENCHMARKS:
        history = results[name].history
        assert history is not None
        row: dict = {"benchmark": name}
        for window in WINDOWS:
            comparison = ProxyComparison()
            for b, block in enumerate(floorplan.blocks):
                trigger_power = (
                    dtm.nonct_trigger - thermal.heatsink_temperature
                ) / block.resistance
                proxy = BoxcarPowerProxy(window, trigger_power)
                powers = history.block_powers[:, b]
                emergencies = history.block_emergency[:, b]
                stresses = history.block_stress[:, b]
                for s in range(history.samples):
                    proxy.update(float(powers[s]), history.sample_cycles)
                    comparison.record(
                        history.sample_cycles,
                        float(emergencies[s]),
                        proxy.triggered,
                        float(stresses[s]),
                    )
            label = f"{window // 1000}k"
            row[f"missed_{label}"] = percent(comparison.missed_emergency_rate)
            row[f"false_{label}"] = percent(comparison.false_trigger_rate)
            row[f"missed_of_em_{label}"] = percent(
                comparison.missed_fraction_of_emergencies
            )
        rows.append(row)
    columns = [("benchmark", "benchmark", None)]
    for window in WINDOWS:
        label = f"{window // 1000}k"
        columns.append((f"missed_{label}", f"missed% ({label})", ".3f"))
        columns.append((f"false_{label}", f"false% ({label})", ".3f"))
        columns.append((f"missed_of_em_{label}", f"missed/em% ({label})", ".1f"))
    text = format_table(rows, columns=tuple(columns))
    notes = (
        "missed% = missed-emergency cycles / all structure-cycles;\n"
        "false% = false-trigger cycles / all structure-cycles;\n"
        "missed/em% = fraction of true emergency cycles the proxy missed."
    )
    return ExperimentResult(
        experiment_id="T9",
        title="Per-structure boxcar power proxy vs RC temperature model",
        rows=rows,
        text=text,
        notes=notes,
    )
