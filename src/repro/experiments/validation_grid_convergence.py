"""Validation V3: grid-resolution convergence of the continuum check.

Experiment V1 validates the lumped RC simplification against one 2D
finite-difference grid (48 x 48 by default).  A single resolution
leaves a question open: is the measured lumped-vs-grid gap a property
of the *continuum*, or an artifact of the mesh?  This experiment
answers it by sweeping the resolution (24 -> 128 by default) and
watching both the lumped-vs-grid deviation and the grid's
*self*-convergence (how much the per-block means move when the mesh is
refined) settle.

This sweep was previously infeasible: the explicit-Euler integrator's
stability bound shrinks as ``1/N^2`` while the cell count grows as
``N^2``, so its cost scales as ``N^4`` -- a 128-grid steady state
costs ~50x a 48-grid one.  The spectral solver's cost is the ``N^3``
of two dense projections, and its ``steady_state`` is a direct solve,
which is what makes the 96/128 rows (and the wall-clock column) cheap.
"""

from __future__ import annotations

import time

import numpy as np

from repro.experiments.reporting import ExperimentResult, format_table
from repro.thermal.floorplan import Floorplan
from repro.thermal.grid import GridThermalModel
from repro.thermal.lumped import LumpedThermalModel

#: The default resolution sweep; 96 and 128 are the rows the spectral
#: solver newly opened.
DEFAULT_RESOLUTIONS = (24, 48, 96, 128)

#: Transient-agreement probe: intervals of this length are advanced
#: from reset and compared against the lumped exact update.
TRANSIENT_SECONDS = 50e-6
TRANSIENT_INTERVALS = 4

#: Long-horizon probe: one heatsink-scale advance from reset, compared
#: against the direct steady solve.  This is the interval length the
#: heatsink-drift experiments need, and the regime where the Euler
#: integrator's cost explodes (~27k sub-steps at 48x48, ~N^2 more as
#: the mesh refines) while the spectral solver still takes one step.
LONG_SECONDS = 1.0


def convergence_rows(
    resolutions: tuple[int, ...] = DEFAULT_RESOLUTIONS,
    solver: str = "spectral",
    floorplan: Floorplan | None = None,
) -> list[dict]:
    """One row per resolution: deviations vs lumped, self-convergence,
    and the measured wall-clock of (steady state + transient probe).

    Shared by this experiment and ``validation_grid`` (satellite: V1
    gains the convergence table).  ``vs_prev_k`` is the largest
    per-block mean shift relative to the previous (coarser) row -- the
    mesh-convergence signal; it has no value on the first row.
    """
    floorplan = Floorplan.default() if floorplan is None else floorplan
    powers = np.array([block.peak_power for block in floorplan.blocks])
    lumped = LumpedThermalModel(floorplan, heatsink_temperature=100.0)
    lumped_steady = lumped.steady_state(powers)

    rows: list[dict] = []
    previous_means: np.ndarray | None = None
    for resolution in resolutions:
        started = time.perf_counter()
        grid = GridThermalModel(floorplan, resolution=resolution, solver=solver)
        grid_steady = grid.steady_state(powers)
        max_cell = grid.max_temperature

        grid.reset()
        lumped.reset()
        transient_dev = 0.0
        for _ in range(TRANSIENT_INTERVALS):
            grid_temps = grid.advance(powers, TRANSIENT_SECONDS)
            lumped_temps = lumped.advance(
                powers, int(TRANSIENT_SECONDS / lumped.cycle_time)
            )
            transient_dev = max(
                transient_dev, float(np.max(np.abs(grid_temps - lumped_temps)))
            )

        # One heatsink-scale advance from reset must land on the steady
        # state (5700 vertical time constants in): exact for spectral,
        # an integration-error probe for Euler -- and the row's main
        # wall-clock cost for Euler, which sub-steps the whole second.
        grid.reset()
        long_temps = grid.advance(powers, LONG_SECONDS)
        long_dev = float(np.max(np.abs(long_temps - grid_steady)))
        elapsed = time.perf_counter() - started

        row = {
            "resolution": f"{resolution}x{resolution}",
            "steady_dev_k": float(np.max(np.abs(grid_steady - lumped_steady))),
            "transient_dev_k": transient_dev,
            "long_dev_k": long_dev,
            "max_cell_c": max_cell,
            "wall_s": elapsed,
        }
        if previous_means is not None:
            row["vs_prev_k"] = float(
                np.max(np.abs(grid_steady - previous_means))
            )
        previous_means = grid_steady
        rows.append(row)
    return rows


CONVERGENCE_COLUMNS = (
    ("resolution", "grid", None),
    ("steady_dev_k", "vs lumped ss (K)", ".4f"),
    ("transient_dev_k", "vs lumped tr (K)", ".4f"),
    ("vs_prev_k", "vs prev grid (K)", ".4f"),
    ("long_dev_k", "1s-adv vs ss (K)", ".2e"),
    ("max_cell_c", "max cell (C)", ".3f"),
    ("wall_s", "wall (s)", ".3f"),
)


def run(
    solver: str = "spectral",
    resolutions: tuple[int, ...] = DEFAULT_RESOLUTIONS,
    quick: bool = False,
) -> ExperimentResult:
    """Sweep the grid resolution and report convergence with wall-clock."""
    if quick:
        resolutions = tuple(r for r in resolutions if r <= 96) or resolutions
    rows = convergence_rows(resolutions, solver=solver)
    text = format_table(rows, columns=CONVERGENCE_COLUMNS)
    finest = rows[-1]
    notes = (
        f"Solver: {solver}.  The lumped-vs-grid gap stabilizes as the "
        f"mesh refines\n(finest grid: steady {finest['steady_dev_k']:.4f} K, "
        f"transient {finest['transient_dev_k']:.4f} K), and the\n"
        "per-block means move less per refinement ('vs prev grid'), so "
        "the V1\ndeviation measures the continuum, not the mesh.  Each "
        "row includes a 1 s\nheatsink-scale advance -- the regime the "
        "spectral solver opened at fine\nmeshes: explicit Euler "
        "sub-steps it at cost ~N^4 (stability bound ~1/N^2\nx N^2 "
        "cells; ~30 s of wall-clock per row at 128x128), the spectral "
        "solver\ntakes one N^3 projection step and lands on the direct "
        "steady solve to\nfloat rounding ('1s-adv vs ss')."
    )
    return ExperimentResult(
        experiment_id="V3",
        title="Grid-resolution convergence of the continuum validation",
        rows=rows,
        text=text,
        notes=notes,
        extras={
            "solver": solver,
            "finest_steady_dev_k": finest["steady_dev_k"],
            "wall_seconds": [row["wall_s"] for row in rows],
        },
    )
