"""Table 5: categories of thermal behavior (extreme/high/medium/low).

The category is both declared in the profile (the reconstruction of the
paper's Table 5) and *measured* from the unmanaged run, so the table
doubles as a calibration check: a benchmark whose measured behaviour
lands outside its declared category is flagged.
"""

from __future__ import annotations

from repro.experiments.common import characterize_suite
from repro.experiments.reporting import ExperimentResult, format_table, percent
from repro.workloads.profiles import BENCHMARKS, ThermalCategory


def classify(
    emergency_fraction: float,
    stress_fraction: float,
    max_temperature: float,
    emergency_level: float = 102.0,
) -> ThermalCategory:
    """Measured taxonomy: mirrors how the paper binned its benchmarks.

    * extreme -- sustained operation in actual emergency (> 20 % of
      steady-state cycles);
    * high    -- measurable emergency time (bursty crossings), or
      running within 0.2 degC of the threshold (the mesa case: nearly
      always above the stress trigger, touching but not crossing);
    * medium  -- substantial time above the stress trigger, safely
      below emergency;
    * low     -- rarely above the stress trigger.
    """
    if emergency_fraction > 0.20:
        return ThermalCategory.EXTREME
    if emergency_fraction > 0.0005 or max_temperature >= emergency_level - 0.2:
        return ThermalCategory.HIGH
    if stress_fraction > 0.30:
        return ThermalCategory.MEDIUM
    return ThermalCategory.LOW


def run(quick: bool = False) -> ExperimentResult:
    """Regenerate Table 5 and verify measured vs declared categories."""
    results = characterize_suite(quick=quick)
    rows = []
    for name, profile in BENCHMARKS.items():
        result = results[name]
        measured = classify(
            result.emergency_fraction,
            result.stress_fraction,
            result.max_temperature,
        )
        rows.append(
            {
                "benchmark": name,
                "declared": profile.category.value,
                "measured": measured.value,
                "pct_emergency": percent(result.emergency_fraction),
                "pct_stress": percent(result.stress_fraction),
                "max_temp": result.max_temperature,
                "match": "ok" if measured is profile.category else "MISMATCH",
            }
        )
    rows.sort(key=lambda row: ("extreme", "high", "medium", "low").index(row["declared"]))
    text = format_table(
        rows,
        columns=(
            ("benchmark", "benchmark", None),
            ("declared", "declared", None),
            ("measured", "measured", None),
            ("pct_emergency", "% emergency", ".2f"),
            ("pct_stress", "% stress", ".2f"),
            ("max_temp", "max T (C)", ".2f"),
            ("match", "check", None),
        ),
    )
    return ExperimentResult(
        experiment_id="T5",
        title="Categories of thermal behavior",
        rows=rows,
        text=text,
    )
