"""Extension A8: DTM robustness under sensor/actuator faults.

The paper claims feedback DTM "remains effective when the plant or
sensing is imperfectly modeled" but never stresses the loop beyond
ideal sensing.  This sweep injects faults the paper never tested --
dropout (``NaN`` readings), spike bursts, a railed (stuck-at) sensor,
and an actuator that ignores commands -- across fault rates and
policies (PI vs toggle1 vs M), each with and without the failsafe
watchdog layer (:mod:`repro.dtm.failsafe`).

Reported per case: emergency fraction, slowdown relative to the same
policy's fault-free run, and the watchdog's engagement counters.  The
headline result: without the watchdog a dropped reading reads as
"cold" (the clamp maps ``NaN`` to the bottom of the sensor range), so
dropout *raises* the duty exactly when the chip runs hot; the
plausibility gate removes that failure mode for a small performance
premium.
"""

from __future__ import annotations

from repro.config import FailsafeConfig
from repro.experiments.common import benchmark_budget
from repro.experiments.reporting import ExperimentResult, format_table, percent
from repro.faults import FaultSchedule, FaultWindow
from repro.sim.sweep import run_one

#: The aggressive operating point of the Table 12 sweep: holding 0.1 K
#: below emergency makes fault consequences visible within one window.
SETPOINT = 101.9

#: Watchdog tuned for the aggressive setpoint (trip above the hold
#: point, re-arm just below it).
FAILSAFE = FailsafeConfig(failsafe_temperature=101.97, rearm_margin=0.1)


def _schedules(seed: int) -> list[tuple[str, "FaultSchedule"]]:
    """The fault scenarios, mildest first (fresh schedules per call)."""
    return [
        ("dropout 2%", FaultSchedule(seed, dropout_rate=0.02)),
        ("dropout 10%", FaultSchedule(seed, dropout_rate=0.10)),
        ("spikes 5% +/-5K", FaultSchedule(seed, spike_rate=0.05)),
        (
            "stuck 50 + drop 5%",
            FaultSchedule(
                seed,
                dropout_rate=0.05,
                sensor_stuck_windows=[FaultWindow(420, 470, value=100.5)],
            ),
        ),
        (
            "actuator ignore 100",
            FaultSchedule(seed, actuator_ignore_windows=[(300, 400)]),
        ),
    ]


def run(
    benchmark: str = "gcc",
    policies: tuple[str, ...] = ("pi", "toggle1", "m"),
    seed: int = 7,
    quick: bool = False,
) -> ExperimentResult:
    """Sweep fault type x policy x watchdog on one hot benchmark."""
    budget = benchmark_budget(benchmark, quick)
    baseline = run_one(benchmark, "none", instructions=budget)
    rows = []
    for policy in policies:
        clean = run_one(
            benchmark, policy, instructions=budget, setpoint=SETPOINT
        )
        rows.append(
            {
                "policy": policy,
                "fault": "none",
                "watchdog": "-",
                "pct_ipc": percent(clean.relative_ipc(baseline)),
                "pct_emergency": percent(clean.emergency_fraction),
                "max_temp_c": clean.max_temperature,
                "guard_events": None,
            }
        )
        for label, _ in _schedules(seed):
            for watchdog in (False, True):
                schedule = dict(_schedules(seed))[label]
                result = run_one(
                    benchmark,
                    policy,
                    instructions=budget,
                    setpoint=SETPOINT,
                    fault_schedule=schedule,
                    failsafe=FAILSAFE if watchdog else None,
                )
                rows.append(
                    {
                        "policy": policy,
                        "fault": label,
                        "watchdog": "on" if watchdog else "off",
                        "pct_ipc": percent(result.relative_ipc(baseline)),
                        "pct_emergency": percent(result.emergency_fraction),
                        "max_temp_c": result.max_temperature,
                        "guard_events": (
                            int(result.extra.get("failsafe_engagements", 0))
                            if watchdog
                            else None
                        ),
                    }
                )
    text = format_table(
        rows,
        columns=(
            ("policy", "policy", None),
            ("fault", "fault", None),
            ("watchdog", "watchdog", None),
            ("pct_ipc", "%IPC", ".2f"),
            ("pct_emergency", "em%", ".4f"),
            ("max_temp_c", "max T (C)", ".3f"),
            ("guard_events", "engage", None),
        ),
    )
    notes = (
        "Dropout and a railed-low sensor bias an unguarded feedback loop\n"
        "toward full duty (NaN and low codes read as 'cold'), breaching the\n"
        "emergency threshold; the watchdog's plausibility gate + open-loop\n"
        "fallback holds emergencies near the fault-free level at a modest\n"
        "IPC cost.  Non-CT policies fail the other way: a stuck trigger\n"
        "comparator simply never engages."
    )
    return ExperimentResult(
        experiment_id="A8",
        title="Fault-injection robustness: policies with and without the "
        "failsafe watchdog",
        rows=rows,
        text=text,
        notes=notes,
    )
