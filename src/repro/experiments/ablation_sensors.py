"""Extension A6: sensor imperfection robustness (the paper's future work).

The paper assumes idealized sensors and flags realistic sensor
behaviour as "an important area for future work."  This sweep runs the
PID policy with Gaussian-noisy, offset, and quantized sensors on a hot
benchmark.  The paper's broader claim -- that feedback control remains
effective when the system is imperfectly modeled -- predicts the
controller should tolerate modest sensor error, with safety degrading
only when the error approaches the 0.2 degC guard band.
"""

from __future__ import annotations

from repro.experiments.common import benchmark_budget
from repro.experiments.reporting import ExperimentResult, format_table, percent
from repro.sim.sweep import run_one
from repro.thermal.sensors import IdealSensor, NoisySensor, QuantizedSensor


def run(benchmark: str = "gcc", policy: str = "pid", quick: bool = False) -> ExperimentResult:
    """Sweep sensor imperfections under one CT policy."""
    budget = benchmark_budget(benchmark, quick)
    baseline = run_one(benchmark, "none", instructions=budget)
    cases = [
        ("ideal", IdealSensor()),
        ("noise 0.05K", NoisySensor(noise_sigma=0.05, seed=1)),
        ("noise 0.15K", NoisySensor(noise_sigma=0.15, seed=1)),
        ("offset -0.2K", NoisySensor(noise_sigma=0.0, offset=-0.2)),
        ("offset +0.2K", NoisySensor(noise_sigma=0.0, offset=0.2)),
        ("quantized 0.25K", QuantizedSensor(step=0.25)),
    ]
    rows = []
    for label, sensor in cases:
        result = run_one(
            benchmark, policy, instructions=budget, sensor=sensor
        )
        rows.append(
            {
                "sensor": label,
                "pct_ipc": percent(result.relative_ipc(baseline)),
                "pct_emergency": percent(result.emergency_fraction),
                "max_temp_c": result.max_temperature,
            }
        )
    text = format_table(
        rows,
        columns=(
            ("sensor", "sensor model", None),
            ("pct_ipc", "%IPC", ".2f"),
            ("pct_emergency", "em%", ".4f"),
            ("max_temp_c", "max T (C)", ".3f"),
        ),
    )
    notes = (
        "A sensor that reads LOW (offset -0.2K) lets the true temperature\n"
        "drift above the intended setpoint -- eating the guard band is the\n"
        "dangerous direction; reading high merely costs performance.\n"
        "Zero-mean noise and coarse quantization are absorbed by feedback."
    )
    return ExperimentResult(
        experiment_id="A6",
        title="Sensor-imperfection robustness under the PID policy",
        rows=rows,
        text=text,
        notes=notes,
    )
