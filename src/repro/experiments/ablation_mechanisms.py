"""Extension A5: comparing DTM *mechanisms* under the same PID policy.

The paper picks fetch toggling as its actuator after Brooks & Martonosi
found throttling, speculation control, and scaling inferior
(Section 2.1).  This experiment reproduces that comparison on the fast
model:

* **toggling** -- the standard engine path;
* **throttling** -- fetch width reduced but fetch happens every cycle,
  so per-cycle structures (branch predictor) keep their full activity:
  the mechanism "often cannot prevent certain hot spots";
* **dvfs** -- frequency/voltage scaling: power falls as f*V^2 and
  throughput as f, but every operating-point change stalls the pipeline
  for the resynchronization time, and the policy must be sticky.
"""

from __future__ import annotations

import numpy as np

from repro.config import DTMConfig, MachineConfig, ThermalConfig
from repro.dtm.manager import DTMManager
from repro.dtm.mechanisms import DVFSScaling
from repro.dtm.policies import make_policy
from repro.experiments.common import benchmark_budget
from repro.experiments.reporting import ExperimentResult, format_table, percent
from repro.power.wattch import PowerModel
from repro.sim.sweep import run_one
from repro.thermal.floorplan import Floorplan
from repro.thermal.lumped import LumpedThermalModel
from repro.workloads.profiles import get_profile


def _run_mechanism(
    benchmark: str, mechanism: str, instructions: float, seed: int = 0
) -> dict:
    """A FastEngine-style loop specialized per mechanism."""
    profile = get_profile(benchmark)
    floorplan = Floorplan.default()
    machine = MachineConfig()
    thermal_config = ThermalConfig()
    dtm_config = DTMConfig()
    policy = make_policy("pid", floorplan, dtm_config)
    manager = DTMManager(policy, dtm_config)
    power_model = PowerModel(floorplan)
    thermal = LumpedThermalModel(
        floorplan, heatsink_temperature=thermal_config.heatsink_temperature
    )
    dvfs = DVFSScaling()
    rng = np.random.default_rng(np.random.SeedSequence([profile.seed, seed]))
    names = floorplan.names
    bpred_index = floorplan.index("bpred")
    sample = dtm_config.sampling_interval
    sample_seconds = sample * machine.cycle_time

    committed = 0.0
    cycles = 0
    emergency = 0.0
    pending_stall = 0
    sample_index = 0
    #: DVFS dwell: the resynchronization stall forces scaling policies
    #: to be sticky (the paper's "policy delay" argument), so the
    #: operating point is only reconsidered at policy-delay granularity.
    dvfs_dwell_samples = max(1, dtm_config.policy_delay // sample)
    max_cycles = int(60 * instructions / max(0.1, profile.mean_ipc))
    while committed < instructions and cycles < max_cycles:
        phase = profile.phase_at(int(committed))
        activity = np.array(phase.activity_vector(names))
        if phase.jitter:
            activity = np.clip(
                activity * (1 + rng.normal(0, phase.jitter, len(names))), 0, 1
            )
        demand = max(0.05, phase.ipc)
        duty, _ = manager.on_sample(thermal.max_temperature)

        if mechanism == "toggling":
            supply = duty * machine.fetch_width * 0.8
            effective = min(demand, supply)
            utilization = activity * (effective / demand)
            power_scale = 1.0
        elif mechanism == "throttling":
            width = max(1, round(duty * machine.fetch_width))
            supply = width * 0.8
            effective = min(demand, supply)
            utilization = activity * (effective / demand)
            # Fetch still happens every cycle: the branch predictor and
            # I-cache keep their unthrottled activity.
            utilization[bpred_index] = activity[bpred_index]
            power_scale = 1.0
        elif mechanism == "dvfs":
            if sample_index % dvfs_dwell_samples == 0:
                _, stall = dvfs.set_output(duty)
                pending_stall += stall
            point = dvfs.current
            effective = demand * point.performance_scale
            utilization = activity
            power_scale = point.power_scale
        else:
            raise ValueError(f"unknown mechanism {mechanism!r}")

        stall_now = min(pending_stall, sample)
        pending_stall -= stall_now
        effective *= (sample - stall_now) / sample

        powers = power_model.block_powers(utilization) * power_scale
        start = thermal.temperatures
        steady = thermal.steady_state(powers)
        thermal.advance(powers, sample)
        em = thermal.fraction_above(
            start, steady, sample_seconds, thermal_config.emergency_temperature
        )
        emergency += float(em.max()) * sample
        committed += effective * sample
        cycles += sample
        sample_index += 1

    return {
        "ipc": committed / cycles,
        "emergency_fraction": emergency / cycles,
        "max_temp": thermal.max_temperature,
        "dvfs_transitions": dvfs.transitions if mechanism == "dvfs" else 0,
    }


def run(
    benchmark: str = "gcc",
    quick: bool = False,
) -> ExperimentResult:
    """Compare toggling, throttling, and DVFS under the PID policy."""
    budget = benchmark_budget(benchmark, quick)
    baseline = run_one(benchmark, "none", instructions=budget)
    rows = []
    for mechanism in ("toggling", "throttling", "dvfs"):
        outcome = _run_mechanism(benchmark, mechanism, budget)
        rows.append(
            {
                "mechanism": mechanism,
                "pct_ipc": percent(outcome["ipc"] / baseline.ipc),
                "pct_emergency": percent(outcome["emergency_fraction"]),
                "max_temp_c": outcome["max_temp"],
                "transitions": outcome["dvfs_transitions"],
            }
        )
    text = format_table(
        rows,
        columns=(
            ("mechanism", "mechanism", None),
            ("pct_ipc", "%IPC", ".1f"),
            ("pct_emergency", "em%", ".3f"),
            ("max_temp_c", "max T (C)", ".3f"),
            ("transitions", "V/f switches", "d"),
        ),
    )
    notes = (
        "Throttling cannot cool the branch predictor (fetch still occurs\n"
        "every cycle); DVFS pays resynchronization stalls on every\n"
        "operating-point change -- both reasons the paper's vehicle is\n"
        "fetch toggling."
    )
    return ExperimentResult(
        experiment_id="A5",
        title="DTM mechanism comparison under the PID policy",
        rows=rows,
        text=text,
        notes=notes,
    )
