"""Table 6: average and maximum temperature per structure per benchmark.

Assumes a 100 degC operating (heatsink) temperature and no thermal
management, as the paper's Table 6 does.
"""

from __future__ import annotations

from repro.experiments.common import characterize_suite
from repro.experiments.reporting import ExperimentResult, format_table
from repro.thermal.floorplan import STRUCTURES
from repro.workloads.profiles import BENCHMARKS


def run(quick: bool = False, statistic: str = "max") -> ExperimentResult:
    """Per-structure temperatures; ``statistic`` is ``"max"`` or ``"mean"``."""
    results = characterize_suite(quick=quick)
    rows = []
    for name in BENCHMARKS:
        result = results[name]
        source = (
            result.max_block_temperature
            if statistic == "max"
            else result.mean_block_temperature
        )
        row: dict = {"benchmark": name}
        for structure in STRUCTURES:
            row[structure] = source[structure]
        rows.append(row)
    columns = [("benchmark", "benchmark", None)] + [
        (structure, structure, ".2f") for structure in STRUCTURES
    ]
    text = format_table(rows, columns=tuple(columns))
    return ExperimentResult(
        experiment_id="T6",
        title=f"Per-structure {statistic} temperature (degC), no DTM",
        rows=rows,
        text=text,
        notes="Operating point: heatsink at 100 C, no thermal management.",
    )
