"""Ablation A3: interrupt-driven vs direct microarchitectural triggering.

Brooks & Martonosi's first design invokes the DTM policy through OS
interrupts, costing ~250 cycles per engage/disengage event; the paper
(like their second design) assumes a direct hardware signal.  This
ablation runs the non-CT toggling policies both ways and reports the
event counts and the performance delta.
"""

from __future__ import annotations

from dataclasses import replace

from repro.config import DTMConfig
from repro.experiments.common import benchmark_budget
from repro.experiments.reporting import ExperimentResult, format_table, percent
from repro.sim.sweep import run_one

DEFAULT_BENCHMARKS = ("gcc", "mesa", "art")


def run(
    benchmarks: tuple[str, ...] = DEFAULT_BENCHMARKS,
    policy: str = "toggle1",
    quick: bool = False,
) -> ExperimentResult:
    """Measure the interrupt overhead of the non-CT trigger mechanism."""
    rows = []
    for benchmark in benchmarks:
        budget = benchmark_budget(benchmark, quick)
        baseline = run_one(benchmark, "none", instructions=budget)
        for use_interrupts in (False, True):
            config = replace(DTMConfig(), use_interrupts=use_interrupts)
            result = run_one(
                benchmark, policy, instructions=budget, dtm_config=config
            )
            rows.append(
                {
                    "benchmark": benchmark,
                    "signaling": "interrupt" if use_interrupts else "direct",
                    "pct_ipc": percent(result.relative_ipc(baseline)),
                    "events": result.interrupt_events,
                    "stall_cycles": result.interrupt_stall_cycles,
                    "pct_emergency": percent(result.emergency_fraction),
                }
            )
    text = format_table(
        rows,
        columns=(
            ("benchmark", "benchmark", None),
            ("signaling", "signaling", None),
            ("pct_ipc", "%IPC", ".2f"),
            ("events", "events", "d"),
            ("stall_cycles", "stall cycles", "d"),
            ("pct_emergency", "em%", ".3f"),
        ),
    )
    notes = (
        "Interrupt cost: 250 cycles per engage/disengage transition.  The\n"
        "overhead is small but unavoidable even for an ideal policy, which\n"
        "is why the paper assumes direct microarchitectural signaling."
    )
    return ExperimentResult(
        experiment_id="A3",
        title="Interrupt-driven vs direct DTM triggering",
        rows=rows,
        text=text,
        notes=notes,
    )
