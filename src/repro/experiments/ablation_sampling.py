"""Ablation A2: controller sampling interval.

The paper samples every 1000 cycles (667 ns) and notes it "could likely
have used a longer sampling interval without significantly affecting
accuracy, since the thermal time constants are ... much greater than
667 nanosec."  This sweep re-tunes and re-runs the PID policy at
sampling intervals from 500 to 32 K cycles.  (Retuning happens
automatically: the plant's dead time is half the sampling period.)
"""

from __future__ import annotations

from dataclasses import replace

from repro.config import DTMConfig
from repro.experiments.common import benchmark_budget
from repro.experiments.reporting import ExperimentResult, format_table, percent
from repro.sim.sweep import run_one

DEFAULT_INTERVALS = (500, 1000, 2000, 4000, 8000, 16000, 32000)


def run(
    benchmark: str = "gcc",
    policy: str = "pid",
    intervals: tuple[int, ...] = DEFAULT_INTERVALS,
    quick: bool = False,
) -> ExperimentResult:
    """Sweep the sampling interval for one CT policy."""
    budget = benchmark_budget(benchmark, quick)
    rows = []
    for interval in intervals:
        config = replace(DTMConfig(), sampling_interval=interval)
        baseline = run_one(
            benchmark, "none", instructions=budget, dtm_config=config
        )
        result = run_one(
            benchmark, policy, instructions=budget, dtm_config=config
        )
        rows.append(
            {
                "interval_cycles": interval,
                "interval_us": interval / 1500.0,
                "pct_ipc": percent(result.relative_ipc(baseline)),
                "pct_emergency": percent(result.emergency_fraction),
                "max_temp_c": result.max_temperature,
            }
        )
    text = format_table(
        rows,
        columns=(
            ("interval_cycles", "interval (cyc)", "d"),
            ("interval_us", "interval (us)", ".2f"),
            ("pct_ipc", "%IPC", ".2f"),
            ("pct_emergency", "em%", ".4f"),
            ("max_temp_c", "max T (C)", ".3f"),
        ),
    )
    notes = (
        f"Workload {benchmark}, policy {policy}.  Intervals well below the\n"
        "~175 us block time constant behave identically; degradation only\n"
        "appears once the interval becomes a sizable fraction of it."
    )
    return ExperimentResult(
        experiment_id="A2",
        title="Sampling-interval ablation",
        rows=rows,
        text=text,
        notes=notes,
    )
