"""Extension A7: sensor placement (the paper's Section 4.2 caveat).

"We also currently make the simplifying assumption that it is feasible
to have thermal sensors associated with each functional block.  This
is unrealistic, since the number of sensors is likely to be limited,
and they may not be co-located with the most likely hot spots."

This experiment makes that caveat quantitative: the PID policy runs
with progressively fewer monitored blocks.  As long as the actual hot
spot is covered, nothing changes; the moment it is not, the controller
is blind to the block that matters and emergencies return at nearly
unmanaged rates -- sensor *placement*, not controller quality, becomes
the binding constraint.
"""

from __future__ import annotations

from repro.dtm.policies import make_policy
from repro.experiments.common import benchmark_budget
from repro.experiments.reporting import ExperimentResult, format_table, percent
from repro.sim.fast import FastEngine
from repro.thermal.floorplan import STRUCTURES
from repro.workloads.profiles import get_profile


def run(benchmark: str = "gcc", quick: bool = False) -> ExperimentResult:
    """Sweep sensor coverage under the PID policy."""
    budget = benchmark_budget(benchmark, quick)
    profile = get_profile(benchmark)
    baseline = FastEngine(profile).run(instructions=budget)
    hot_spot = max(
        baseline.max_block_temperature, key=baseline.max_block_temperature.get
    )
    coverages: list[tuple[str, tuple[str, ...]]] = [
        ("all 7 blocks", STRUCTURES),
        (
            f"hot spot only ({hot_spot})",
            (hot_spot,),
        ),
        (
            f"all but the hot spot",
            tuple(name for name in STRUCTURES if name != hot_spot),
        ),
        (
            "execution units only",
            ("int_exec", "fp_exec"),
        ),
    ]
    rows = []
    for label, monitored in coverages:
        result = FastEngine(
            profile,
            policy=make_policy("pid"),
            monitored_blocks=monitored,
        ).run(instructions=budget)
        rows.append(
            {
                "sensors": label,
                "count": len(monitored),
                "covers_hot_spot": "yes" if hot_spot in monitored else "NO",
                "pct_ipc": percent(result.relative_ipc(baseline)),
                "pct_emergency": percent(result.emergency_fraction),
                "max_temp_c": result.max_temperature,
            }
        )
    text = format_table(
        rows,
        columns=(
            ("sensors", "sensor coverage", None),
            ("count", "#", "d"),
            ("covers_hot_spot", "covers hot spot", None),
            ("pct_ipc", "%IPC", ".1f"),
            ("pct_emergency", "em%", ".2f"),
            ("max_temp_c", "max T (C)", ".3f"),
        ),
    )
    notes = (
        f"Workload {benchmark}; unmanaged hot spot: {hot_spot} "
        f"({baseline.max_block_temperature[hot_spot]:.2f} C).\n"
        "A single well-placed sensor equals full coverage; six sensors\n"
        "that miss the hot spot are worth almost nothing -- placement,\n"
        "not count, is what matters."
    )
    return ExperimentResult(
        experiment_id="A7",
        title="Sensor placement: DTM with limited sensor coverage",
        rows=rows,
        text=text,
        notes=notes,
    )
