"""Section 7 setpoint study: how close to emergency can each policy run?

The paper's abstract claim is that the CT controllers respond quickly
enough to set the thermal trigger within 0.2 degC of the maximum
temperature without ever entering emergency, whereas the non-CT
toggling policy -- whose thermal condition is only re-examined at
policy-delay granularity -- needs a trigger a full degree below the
threshold.  This sweep raises the trigger/setpoint toward 102 degC for
both and reports where each starts failing.
"""

from __future__ import annotations

from repro.experiments.common import benchmark_budget
from repro.experiments.reporting import ExperimentResult, format_table, percent
from repro.sim.parallel import WorkSpec, run_specs

DEFAULT_SETPOINTS = (101.0, 101.2, 101.4, 101.6, 101.8, 101.9)
DEFAULT_POLICIES = ("toggle1", "pi", "pid")
#: Hot benchmarks where the trigger placement actually matters.
DEFAULT_BENCHMARKS = ("gcc", "equake", "perlbmk")


def run(
    setpoints: tuple[float, ...] = DEFAULT_SETPOINTS,
    policies: tuple[str, ...] = DEFAULT_POLICIES,
    benchmarks: tuple[str, ...] = DEFAULT_BENCHMARKS,
    quick: bool = False,
) -> ExperimentResult:
    """Sweep trigger/setpoint toward the emergency threshold.

    The whole (setpoint x policy x benchmark) matrix is expressed as
    :class:`~repro.sim.parallel.WorkSpec` values and fanned out through
    :func:`~repro.sim.parallel.run_specs`, so ``--jobs`` and the
    fault-tolerant sweep options apply.  Each benchmark's unmanaged
    baseline runs once (it does not depend on the setpoint) instead of
    once per matrix cell.
    """
    budgets = {b: benchmark_budget(b, quick) for b in benchmarks}
    specs = [
        WorkSpec(benchmark=b, policy="none", instructions=budgets[b])
        for b in benchmarks
    ]
    specs += [
        WorkSpec(
            benchmark=benchmark,
            policy=policy,
            instructions=budgets[benchmark],
            setpoint=setpoint,
            tag=(setpoint, policy),
        )
        for setpoint in setpoints
        for policy in policies
        for benchmark in benchmarks
    ]
    results = run_specs(specs)
    baselines = dict(zip(benchmarks, results))
    managed = dict(zip((s.tag + (s.benchmark,) for s in specs[len(benchmarks):]),
                       results[len(benchmarks):]))
    rows = []
    for setpoint in setpoints:
        row: dict = {"setpoint": setpoint}
        for policy in policies:
            worst_emergency = 0.0
            mean_relative = 0.0
            for benchmark in benchmarks:
                baseline = baselines[benchmark]
                result = managed[(setpoint, policy, benchmark)]
                worst_emergency = max(worst_emergency, result.emergency_fraction)
                mean_relative += result.relative_ipc(baseline) / len(benchmarks)
            row[f"ipc_{policy}"] = percent(mean_relative)
            row[f"em_{policy}"] = percent(worst_emergency)
            row[f"safe_{policy}"] = "yes" if worst_emergency == 0 else "NO"
        rows.append(row)
    columns = [("setpoint", "setpoint (C)", ".1f")]
    for policy in policies:
        columns.append((f"ipc_{policy}", f"{policy} %IPC", ".1f"))
        columns.append((f"em_{policy}", f"{policy} em%", ".3f"))
        columns.append((f"safe_{policy}", f"{policy} safe", None))
    text = format_table(rows, columns=tuple(columns))
    notes = (
        "A policy is 'safe' at a setpoint if no benchmark enters emergency.\n"
        "The CT controllers stay safe all the way to 101.8-101.9 C (within\n"
        "0.2 C of the 102 C threshold); the fixed policy fails first."
    )
    return ExperimentResult(
        experiment_id="T12",
        title="Setpoint sweep: trigger placement vs emergency avoidance",
        rows=rows,
        text=text,
        notes=notes,
    )
