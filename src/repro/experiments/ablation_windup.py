"""Ablation A1: integral anti-windup (paper Section 3.3).

The paper's windup scenario: a long cool stretch keeps the error
positive while the actuator is saturated at full speed, so an
unprotected integral grows without bound; when a hot burst arrives the
controller cannot unwind in time and the chip "possibly enter[s] a
thermal emergency".  The bursty ``art`` profile is exactly that
workload.  We run PI/PID with anti-windup disabled vs the paper's
conditional-integration scheme.
"""

from __future__ import annotations

from repro.control.pid import AntiWindup
from repro.experiments.common import benchmark_budget
from repro.experiments.reporting import ExperimentResult, format_table, percent
from repro.sim.parallel import WorkSpec, run_specs

WINDUP_MODES = (AntiWindup.NONE, AntiWindup.CLAMP, AntiWindup.CONDITIONAL)


def run(
    benchmark: str = "art",
    policies: tuple[str, ...] = ("pi", "pid"),
    quick: bool = False,
) -> ExperimentResult:
    """Compare anti-windup strategies on a bursty workload.

    The (policy x anti-windup) grid runs through
    :func:`~repro.sim.parallel.run_specs`, so ``--jobs`` and the
    fault-tolerant sweep options apply.
    """
    # Windup develops over full cool phases, so the run must cover at
    # least two complete burst periods regardless of quick mode.
    budget = benchmark_budget(benchmark, quick=False)
    specs = [WorkSpec(benchmark=benchmark, policy="none", instructions=budget)]
    specs += [
        WorkSpec(
            benchmark=benchmark,
            policy=policy,
            instructions=budget,
            anti_windup=windup,
            tag=(policy, windup.value),
        )
        for policy in policies
        for windup in WINDUP_MODES
    ]
    results = run_specs(specs)
    baseline = results[0]
    rows = []
    for spec, result in zip(specs[1:], results[1:]):
        policy, windup_value = spec.tag
        rows.append(
            {
                "policy": policy,
                "anti_windup": windup_value,
                "pct_ipc": percent(result.relative_ipc(baseline)),
                "pct_emergency": percent(result.emergency_fraction),
                "max_temp_c": result.max_temperature,
            }
        )
    text = format_table(
        rows,
        columns=(
            ("policy", "policy", None),
            ("anti_windup", "anti-windup", None),
            ("pct_ipc", "%IPC", ".1f"),
            ("pct_emergency", "em%", ".4f"),
            ("max_temp_c", "max T (C)", ".3f"),
        ),
    )
    notes = (
        f"Workload: {benchmark} (long cool phases, short hot bursts).\n"
        "Without protection the integral winds up during cool phases and\n"
        "the controller reacts late to bursts (higher peak temperature);\n"
        "conditional integration (the paper's mechanism) removes the lag."
    )
    return ExperimentResult(
        experiment_id="A1",
        title="Anti-windup ablation on a bursty workload",
        rows=rows,
        text=text,
        notes=notes,
    )
