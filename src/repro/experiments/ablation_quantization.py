"""Ablation A4: number of discrete toggling duty levels.

The paper's actuator exposes eight evenly spaced duty levels
(Section 5.3).  This sweep varies the level count from 2 (pure
bang-bang) to 64 (near-continuous) under the PID policy and reports
how much resolution the controller actually needs.
"""

from __future__ import annotations

from dataclasses import replace

from repro.config import DTMConfig
from repro.experiments.common import benchmark_budget
from repro.experiments.reporting import ExperimentResult, format_table, percent
from repro.sim.sweep import run_one

DEFAULT_LEVELS = (2, 3, 4, 8, 16, 64)


def run(
    benchmark: str = "gcc",
    policy: str = "pid",
    levels: tuple[int, ...] = DEFAULT_LEVELS,
    quick: bool = False,
) -> ExperimentResult:
    """Sweep the actuator's duty-quantization level count."""
    budget = benchmark_budget(benchmark, quick)
    baseline = run_one(benchmark, "none", instructions=budget)
    rows = []
    for level_count in levels:
        config = replace(DTMConfig(), toggle_levels=level_count)
        result = run_one(
            benchmark, policy, instructions=budget, dtm_config=config
        )
        rows.append(
            {
                "levels": level_count,
                "pct_ipc": percent(result.relative_ipc(baseline)),
                "pct_emergency": percent(result.emergency_fraction),
                "max_temp_c": result.max_temperature,
                "engaged_pct": percent(result.engaged_fraction),
            }
        )
    text = format_table(
        rows,
        columns=(
            ("levels", "duty levels", "d"),
            ("pct_ipc", "%IPC", ".2f"),
            ("pct_emergency", "em%", ".4f"),
            ("max_temp_c", "max T (C)", ".3f"),
            ("engaged_pct", "engaged %", ".1f"),
        ),
    )
    return ExperimentResult(
        experiment_id="A4",
        title="Duty-quantization ablation (number of toggling levels)",
        rows=rows,
        text=text,
        notes=f"Workload {benchmark}, policy {policy}; paper default is 8 levels.",
    )
