"""Table 3: per-structure area, peak power, thermal R, C, and RC.

Derivation per Section 4.3: R and C follow from silicon material
properties and block geometry; the chip-wide row uses the lumped
chip+heatsink values.  The paper's observation that block time
constants sit in the tens-to-hundreds of microseconds while the chip's
is tens of seconds is what justifies per-block DTM.
"""

from __future__ import annotations

from repro.experiments.reporting import ExperimentResult, format_table
from repro.thermal.floorplan import Floorplan


def run(floorplan: Floorplan | None = None) -> ExperimentResult:
    """Regenerate Table 3 from the floorplan's material derivation."""
    plan = floorplan if floorplan is not None else Floorplan.default()
    rows = []
    for raw in plan.table3_rows():
        rc = float(raw["rc_seconds"])
        rows.append(
            {
                "structure": raw["structure"],
                "area_m2": float(raw["area_m2"]),
                "peak_power_w": float(raw["peak_power_w"]),
                "r_k_per_w": float(raw["r_k_per_w"]),
                "c_j_per_k": float(raw["c_j_per_k"]),
                "rc_seconds": rc,
                "rc_human": f"{rc * 1e6:.0f} us" if rc < 1.0 else f"{rc:.0f} s",
            }
        )
    text = format_table(
        rows,
        columns=(
            ("structure", "structure", None),
            ("area_m2", "area (m^2)", ".1e"),
            ("peak_power_w", "peak power (W)", ".1f"),
            ("r_k_per_w", "R (K/W)", ".3f"),
            ("c_j_per_k", "C (J/K)", ".2e"),
            ("rc_human", "RC (= sec)", None),
        ),
    )
    notes = (
        "All blocks share one vertical time constant (R*C = rho*c_v*t^2 is\n"
        "area-independent), ~175 us -- within the paper's 'tens to hundreds\n"
        "of microseconds'.  The chip+heatsink constant is ~20 s, five orders\n"
        "of magnitude slower, which is why localized modeling matters."
    )
    return ExperimentResult(
        experiment_id="T3",
        title="Per-structure area and thermal-R/C estimates",
        rows=rows,
        text=text,
        notes=notes,
    )
