"""Shared infrastructure for experiment drivers.

Characterization experiments (Tables 4-8) all consume the same
unmanaged suite run, so it is computed once and cached per instruction
budget.  Budgets are per-benchmark: at least two full passes over the
profile's phase sequence (bursty profiles like ``art`` need a full
period to show their duty cycle).
"""

from __future__ import annotations

from functools import lru_cache

from repro.config import TelemetryConfig
from repro.sim.fast import FastEngine
from repro.sim.results import RunResult
from repro.telemetry import Telemetry, TraceRecord, merge_telemetry
from repro.workloads.profiles import BENCHMARKS, get_profile

#: Floor on the per-benchmark instruction budget for characterization.
MIN_INSTRUCTIONS = 2_000_000

#: Reduced budget used by ``quick=True`` drivers (tests, smoke runs).
#: Still long enough to get past the initial heating transient
#: (~3 block time constants = ~800 K cycles).
QUICK_INSTRUCTIONS = 1_500_000


def benchmark_budget(name: str, quick: bool = False) -> float:
    """Instruction budget covering >= 2 full phase loops of a profile."""
    if quick:
        return QUICK_INSTRUCTIONS
    return max(MIN_INSTRUCTIONS, 2 * get_profile(name).total_instructions)


#: Instructions skipped before characterization statistics start
#: (several block thermal time constants; the analogue of the paper's
#: 2-billion-instruction fast-forward).
WARMUP_INSTRUCTIONS = 1_000_000


@lru_cache(maxsize=8)
def characterize_suite(
    quick: bool = False, record_history: bool = False, seed: int = 0
) -> dict[str, RunResult]:
    """Unmanaged (no-DTM) runs of all 18 benchmarks, cached."""
    results: dict[str, RunResult] = {}
    for name in BENCHMARKS:
        engine = FastEngine(
            get_profile(name), seed=seed, record_history=record_history
        )
        results[name] = engine.run(
            instructions=benchmark_budget(name, quick),
            warmup_instructions=WARMUP_INSTRUCTIONS,
        )
    return results


def characterize_suite_traced(
    quick: bool = False, seed: int = 0, telemetry=None
) -> tuple[dict[str, RunResult], dict[str, list[TraceRecord]]]:
    """Unmanaged suite runs with per-benchmark DTM-sample traces.

    Same budgets, warmup, and seeding as :func:`characterize_suite`
    (telemetry is purely observational, so the :class:`RunResult`
    values are bit-identical -- a test asserts this), but each run also
    captures the shared trace schema; returns ``(results, traces)``
    with ``traces[name]`` the retained
    :class:`~repro.telemetry.trace.TraceRecord` list for ``name``.

    Each benchmark records into a local
    :class:`~repro.telemetry.core.Telemetry`, which is then folded into
    the optional shared ``telemetry`` sink (records, events, metrics),
    keeping per-benchmark extraction unambiguous even when the sink is
    shared across many experiments.  Not cached: trace payloads are
    large and callers usually export them.
    """
    results: dict[str, RunResult] = {}
    traces: dict[str, list[TraceRecord]] = {}
    for name in BENCHMARKS:
        local = Telemetry(TelemetryConfig())
        engine = FastEngine(get_profile(name), seed=seed, telemetry=local)
        results[name] = engine.run(
            instructions=benchmark_budget(name, quick),
            warmup_instructions=WARMUP_INSTRUCTIONS,
        )
        traces[name] = local.trace.records()
        merge_telemetry(telemetry, local)
    return results, traces
