"""Shared infrastructure for experiment drivers.

Characterization experiments (Tables 4-8) all consume the same
unmanaged suite run, so it is computed once and cached per instruction
budget.  Budgets are per-benchmark: at least two full passes over the
profile's phase sequence (bursty profiles like ``art`` need a full
period to show their duty cycle).
"""

from __future__ import annotations

from functools import lru_cache

from repro.sim.fast import FastEngine
from repro.sim.results import RunResult
from repro.workloads.profiles import BENCHMARKS, get_profile

#: Floor on the per-benchmark instruction budget for characterization.
MIN_INSTRUCTIONS = 2_000_000

#: Reduced budget used by ``quick=True`` drivers (tests, smoke runs).
#: Still long enough to get past the initial heating transient
#: (~3 block time constants = ~800 K cycles).
QUICK_INSTRUCTIONS = 1_500_000


def benchmark_budget(name: str, quick: bool = False) -> float:
    """Instruction budget covering >= 2 full phase loops of a profile."""
    if quick:
        return QUICK_INSTRUCTIONS
    return max(MIN_INSTRUCTIONS, 2 * get_profile(name).total_instructions)


#: Instructions skipped before characterization statistics start
#: (several block thermal time constants; the analogue of the paper's
#: 2-billion-instruction fast-forward).
WARMUP_INSTRUCTIONS = 1_000_000


@lru_cache(maxsize=8)
def characterize_suite(
    quick: bool = False, record_history: bool = False, seed: int = 0
) -> dict[str, RunResult]:
    """Unmanaged (no-DTM) runs of all 18 benchmarks, cached."""
    results: dict[str, RunResult] = {}
    for name in BENCHMARKS:
        engine = FastEngine(
            get_profile(name), seed=seed, record_history=record_history
        )
        results[name] = engine.run(
            instructions=benchmark_budget(name, quick),
            warmup_instructions=WARMUP_INSTRUCTIONS,
        )
    return results
