"""Extension P1: where the power goes, and what DTM does to energy.

Two Wattch-style views the paper's evaluation doesn't print but its
infrastructure implies:

1. **per-structure power breakdown** of an unmanaged run -- mean power
   per monitored structure split into dynamic (activity) and idle
   (clock/leakage floor) components, with each structure's share; and
2. **energy per instruction under DTM** -- toggling lowers power but
   stretches runtime while the idle floor keeps burning, so aggressive
   throttling *raises* EPI even as it caps temperature.
"""

from __future__ import annotations

from repro.dtm.policies import make_policy
from repro.experiments.common import benchmark_budget
from repro.experiments.reporting import ExperimentResult, format_table, percent
from repro.power.metrics import energy_summary, power_breakdown
from repro.sim.fast import FastEngine
from repro.thermal.floorplan import Floorplan
from repro.workloads.profiles import get_profile


def run(
    benchmark: str = "gcc",
    policies: tuple[str, ...] = ("toggle1", "m", "pid"),
    quick: bool = False,
) -> ExperimentResult:
    """Power breakdown + per-policy energy metrics on one benchmark."""
    budget = benchmark_budget(benchmark, quick)
    floorplan = Floorplan.default()
    profile = get_profile(benchmark)

    baseline = FastEngine(profile, record_history=True).run(instructions=budget)
    assert baseline.history is not None
    breakdown_rows = [
        {
            "structure": entry.name,
            "total_w": entry.mean_total_w,
            "dynamic_w": entry.mean_dynamic_w,
            "idle_w": entry.mean_idle_w,
            "dynamic_pct": percent(entry.dynamic_share),
            "share_pct": percent(entry.fraction_of_monitored),
        }
        for entry in power_breakdown(baseline.history, floorplan)
    ]

    runs = {"none": baseline}
    for policy in policies:
        runs[policy] = FastEngine(
            profile, policy=make_policy(policy)
        ).run(instructions=budget)
    energy_rows = [
        {
            "policy": entry.policy,
            "mean_power_w": entry.mean_power_w,
            "epi_nj": entry.energy_per_instruction_nj,
            "relative_epi": entry.relative_epi,
            "pct_ipc": percent(runs[entry.policy].relative_ipc(baseline)),
        }
        for entry in energy_summary(runs)
    ]

    text = "\n".join(
        [
            format_table(
                breakdown_rows,
                columns=(
                    ("structure", "structure", None),
                    ("total_w", "mean P (W)", ".2f"),
                    ("dynamic_w", "dynamic (W)", ".2f"),
                    ("idle_w", "idle (W)", ".2f"),
                    ("dynamic_pct", "dynamic %", ".1f"),
                    ("share_pct", "share of monitored %", ".1f"),
                ),
                title=f"{benchmark}: per-structure power breakdown (unmanaged)",
            ),
            "",
            format_table(
                energy_rows,
                columns=(
                    ("policy", "policy", None),
                    ("mean_power_w", "mean P (W)", ".1f"),
                    ("epi_nj", "EPI (nJ)", ".2f"),
                    ("relative_epi", "EPI vs none", ".3f"),
                    ("pct_ipc", "%IPC", ".1f"),
                ),
                title="energy per instruction under DTM",
            ),
        ]
    )
    notes = (
        "DTM is a temperature tool, not an energy tool: every throttling\n"
        "policy raises EPI (the idle floor burns through the stretched\n"
        "runtime), and the harsher the policy, the worse the energy."
    )
    return ExperimentResult(
        experiment_id="P1",
        title="Power breakdown and DTM energy accounting",
        rows=breakdown_rows + energy_rows,
        text=text,
        notes=notes,
        extras={"energy_rows": energy_rows},
    )
