"""Table 4: per-benchmark IPC, power, temperature, and thermal stress.

Columns follow the paper: average IPC, average power, average
temperature (on the package model: ambient 27 degC through the
chip-wide thermal R of 0.34 K/W), percent of cycles in thermal
emergency (above 102 degC) and above the stress trigger (101 degC),
the latter two on the localized model with the heatsink at 100 degC.
"""

from __future__ import annotations

from repro.config import DTMConfig, ThermalConfig
from repro.experiments.common import characterize_suite
from repro.experiments.reporting import ExperimentResult, format_table, percent
from repro.workloads.profiles import BENCHMARKS


def run(quick: bool = False) -> ExperimentResult:
    """Regenerate Table 4 from unmanaged suite runs."""
    thermal = ThermalConfig()
    dtm = DTMConfig()
    results = characterize_suite(quick=quick)
    rows = []
    for name in BENCHMARKS:
        result = results[name]
        avg_temp = (
            thermal.ambient_temperature
            + result.mean_chip_power * thermal.chip_thermal_resistance
        )
        rows.append(
            {
                "benchmark": name,
                "ipc": result.ipc,
                "avg_power_w": result.mean_chip_power,
                "avg_temp_c": avg_temp,
                "pct_above_emergency": percent(result.emergency_fraction),
                "pct_above_stress": percent(result.stress_fraction),
            }
        )
    text = format_table(
        rows,
        columns=(
            ("benchmark", "benchmark", None),
            ("ipc", "Avg IPC", ".2f"),
            ("avg_power_w", "Avg pwr (W)", ".1f"),
            ("avg_temp_c", "Avg temp (C)", ".1f"),
            ("pct_above_emergency", f"% > {thermal.emergency_temperature:.0f}C", ".2f"),
            ("pct_above_stress", f"% > {dtm.nonct_trigger:.0f}C", ".2f"),
        ),
    )
    notes = (
        "Avg temp assumes the heatsink at a 27 C ambient through the\n"
        "chip-wide thermal R of 0.34 K/W; the threshold columns assume the\n"
        "heatsink has risen to 100 C and use the per-structure R/C values,\n"
        "with no thermal management -- exactly the paper's Table 4 setup."
    )
    return ExperimentResult(
        experiment_id="T4",
        title="Average IPC, power, and temperature characteristics",
        rows=rows,
        text=text,
        notes=notes,
    )
