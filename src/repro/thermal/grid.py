"""2D finite-difference thermal model of the die (grid validation).

The paper's lumped per-block model (Figure 3C) is an idealization of
the continuous heat equation on the die.  This module solves that
equation directly: the die is discretized into an N x N grid of silicon
cells of the die thickness; each cell conducts laterally to its four
neighbors (the continuum version of the tangential resistances) and
vertically to the isothermal heatsink (the normal resistance), and
stores heat in its own capacitance.  Per cell of side ``d`` and
thickness ``t``:

* lateral conductance to a neighbor: ``G_lat = k * d * t / d = k * t``
  (conduction through a ``d*t`` face over a ``d`` path);
* vertical conductance to the heatsink: ``G_ver = k * d^2 / t``;
* capacitance: ``C = c_v * d^2 * t``.

Block powers are spread uniformly over each block's rectangle (from
:mod:`repro.thermal.geometry`).  The model integrates with forward
Euler, automatically sub-stepped for stability, fully vectorized.

This is the direct ancestor-in-spirit of HotSpot's grid model: it
exists here to *validate* the lumped simplification (experiment V1
compares per-block mean temperatures between the two), including the
lateral coupling the lumped model drops.
"""

from __future__ import annotations

import numpy as np

from repro import units
from repro.errors import ThermalModelError
from repro.thermal.floorplan import Floorplan
from repro.thermal.geometry import DieLayout, slicing_layout


class GridThermalModel:
    """Transient 2D heat solver over the die, above an isothermal sink."""

    def __init__(
        self,
        floorplan: Floorplan,
        resolution: int = 32,
        heatsink_temperature: float = 100.0,
        layout: DieLayout | None = None,
        thickness: float = units.DIE_THICKNESS,
        conductivity: float = units.SILICON_THERMAL_CONDUCTIVITY,
        volumetric_heat_capacity: float = units.SILICON_VOLUMETRIC_HEAT_CAPACITY,
    ) -> None:
        if resolution < 4:
            raise ThermalModelError("grid resolution must be at least 4")
        self.floorplan = floorplan
        self.layout = layout if layout is not None else slicing_layout(floorplan)
        self.resolution = resolution
        self.heatsink_temperature = float(heatsink_temperature)

        die_w = self.layout.die_width
        die_h = self.layout.die_height
        self._cell_w = die_w / resolution
        self._cell_h = die_h / resolution
        cell_area = self._cell_w * self._cell_h

        # Conductances (uniform silicon): lateral uses the mean cell
        # pitch; vertical goes through the die thickness.
        self._g_lat_x = conductivity * self._cell_h * thickness / self._cell_w
        self._g_lat_y = conductivity * self._cell_w * thickness / self._cell_h
        self._g_ver = conductivity * cell_area / thickness
        self._cell_c = volumetric_heat_capacity * cell_area * thickness

        # Map cells to blocks: mask[b, i, j] = cell (i,j) inside block b.
        xs = (np.arange(resolution) + 0.5) * self._cell_w
        ys = (np.arange(resolution) + 0.5) * self._cell_h
        self._block_masks = np.zeros(
            (len(floorplan.blocks), resolution, resolution), dtype=bool
        )
        for b, block in enumerate(floorplan.blocks):
            rect = self.layout.rectangle(block.name)
            in_x = (xs >= rect.x) & (xs < rect.x + rect.width)
            in_y = (ys >= rect.y) & (ys < rect.y + rect.height)
            self._block_masks[b] = np.outer(in_y, in_x)
        self._cells_per_block = self._block_masks.sum(axis=(1, 2))
        if np.any(self._cells_per_block == 0):
            missing = [
                floorplan.blocks[b].name
                for b in range(len(floorplan.blocks))
                if self._cells_per_block[b] == 0
            ]
            raise ThermalModelError(
                f"grid too coarse: no cells landed in {missing}; "
                "raise the resolution"
            )

        self._temps = np.full(
            (resolution, resolution), self.heatsink_temperature, dtype=float
        )
        # Explicit-Euler stability bound: C / G_total per cell.
        g_total = 2 * self._g_lat_x + 2 * self._g_lat_y + self._g_ver
        self._max_stable_dt = self._cell_c / g_total

    # -- state -------------------------------------------------------------
    @property
    def temperatures(self) -> np.ndarray:
        """Cell temperature field [degC], shape (N, N) (copy)."""
        return self._temps.copy()

    @property
    def max_temperature(self) -> float:
        """Hottest cell on the die [degC]."""
        return float(self._temps.max())

    def block_temperatures(self, statistic: str = "mean") -> np.ndarray:
        """Per-block cell-temperature summary, in floorplan order.

        ``statistic`` must be ``"mean"`` or ``"max"``; anything else
        raises :class:`ValueError` (it used to fall back to the mean
        silently, hiding typos like ``"median"``).
        """
        if statistic not in ("mean", "max"):
            raise ValueError(
                f"unknown statistic {statistic!r}; expected 'mean' or 'max'"
            )
        result = np.empty(len(self.floorplan.blocks))
        for b in range(len(self.floorplan.blocks)):
            cells = self._temps[self._block_masks[b]]
            result[b] = cells.max() if statistic == "max" else cells.mean()
        return result

    def block_temperature(self, name: str, statistic: str = "mean") -> float:
        """One block's cell-temperature summary.

        ``statistic`` is validated exactly as in
        :meth:`block_temperatures`.
        """
        index = self.floorplan.index(name)
        return float(self.block_temperatures(statistic)[index])

    def reset(self) -> None:
        """Return the whole die to the heatsink temperature."""
        self._temps.fill(self.heatsink_temperature)

    # -- integration -----------------------------------------------------------
    def _power_field(self, block_powers: np.ndarray) -> np.ndarray:
        block_powers = np.asarray(block_powers, dtype=float)
        if block_powers.shape != (len(self.floorplan.blocks),):
            raise ThermalModelError(
                f"expected {len(self.floorplan.blocks)} block powers"
            )
        per_cell = block_powers / self._cells_per_block
        field = np.zeros_like(self._temps)
        for b in range(len(block_powers)):
            field[self._block_masks[b]] += per_cell[b]
        return field

    def advance(self, block_powers: np.ndarray, seconds: float) -> np.ndarray:
        """Integrate ``seconds`` of constant per-block power.

        Returns the per-block mean temperatures after the interval.
        """
        if seconds <= 0:
            raise ThermalModelError("seconds must be positive")
        power = self._power_field(block_powers)
        sub_dt = 0.4 * self._max_stable_dt
        steps = max(1, int(np.ceil(seconds / sub_dt)))
        dt = seconds / steps
        temps = self._temps
        sink = self.heatsink_temperature
        gx, gy, gv, c = self._g_lat_x, self._g_lat_y, self._g_ver, self._cell_c
        for _ in range(steps):
            flow = power - gv * (temps - sink)
            # Lateral conduction with adiabatic (insulated) die edges.
            dx = np.diff(temps, axis=1)  # T[:, j+1] - T[:, j]
            flow[:, :-1] += gx * dx
            flow[:, 1:] -= gx * dx
            dy = np.diff(temps, axis=0)
            flow[:-1, :] += gy * dy
            flow[1:, :] -= gy * dy
            temps = temps + (dt / c) * flow
        self._temps = temps
        return self.block_temperatures()

    def steady_state(self, block_powers: np.ndarray) -> np.ndarray:
        """Per-block mean temperatures at equilibrium.

        Integrates until the field stops changing (the direct linear
        solve would be a (N^2 x N^2) system; iteration is simpler and
        the vertical path makes convergence fast).
        """
        self.reset()
        tau = self._cell_c / self._g_ver
        previous = self.block_temperatures()
        for _ in range(200):
            current = self.advance(block_powers, 5 * tau)
            if np.max(np.abs(current - previous)) < 1e-6:
                return current
            previous = current
        return previous
