"""2D finite-difference thermal model of the die (grid validation).

The paper's lumped per-block model (Figure 3C) is an idealization of
the continuous heat equation on the die.  This module solves that
equation directly: the die is discretized into an N x N grid of silicon
cells of the die thickness; each cell conducts laterally to its four
neighbors (the continuum version of the tangential resistances) and
vertically to the isothermal heatsink (the normal resistance), and
stores heat in its own capacitance.  Per cell of side ``d`` and
thickness ``t``:

* lateral conductance to a neighbor: ``G_lat = k * d * t / d = k * t``
  (conduction through a ``d*t`` face over a ``d`` path);
* vertical conductance to the heatsink: ``G_ver = k * d^2 / t``;
* capacitance: ``C = c_v * d^2 * t``.

Block powers are spread uniformly over each block's rectangle (from
:mod:`repro.thermal.geometry`).  Two time integrators are provided,
selected by the ``solver`` argument:

* ``"spectral"`` (the default) -- the exact-exponential propagator of
  :mod:`repro.thermal.spectral`: the operator is diagonalized once in
  the DCT-II cosine eigenbasis (exact for the adiabatic-edge
  discretization), so *any* interval advances unconditionally stably
  in one projection/decay/back-projection step and ``steady_state`` is
  a direct solve.  Exact in time for this spatial discretization.
* ``"euler"`` -- the original forward-Euler integrator, automatically
  sub-stepped for stability (``sub_dt = 0.4 * C / G_total``), fully
  vectorized.  Kept verbatim as the pinned reference: its behaviour is
  byte-identical to the pre-spectral implementation (regression-tested),
  so every historical validation number stays reproducible.

The two solvers are *different discretizations in time* of the same
operator, so cross-solver agreement is tolerance-gated (per-block mean
temperatures within 0.05 degC), not bitwise.  The gate holds directly
on every steady state and on the DTM sampling cadence; on heating
probes that run Euler right at its stability bound, Euler's own
first-order error exceeds the gate, so parity there is asserted
against the sub-step-refined Euler limit (the gap halves per sub-step
halving -- it belongs to Euler, not to the spectral solve; see
``tests/test_thermal_spectral.py``).

This is the direct ancestor-in-spirit of HotSpot's grid model: it
exists here to *validate* the lumped simplification (experiment V1
compares per-block mean temperatures between the two), including the
lateral coupling the lumped model drops.
"""

from __future__ import annotations

import numpy as np

from repro import units
from repro.errors import ThermalModelError
from repro.thermal.floorplan import Floorplan
from repro.thermal.geometry import DieLayout, slicing_layout
from repro.thermal.spectral import SpectralPropagator

#: Settle-iteration budget for the Euler ``steady_state`` fixed point.
STEADY_MAX_ITERATIONS = 200

#: Convergence gate for the Euler ``steady_state`` fixed point [degC]:
#: the largest per-block change over one 5-tau settle interval.
STEADY_TOLERANCE = 1e-6


class GridThermalModel:
    """Transient 2D heat solver over the die, above an isothermal sink."""

    #: Accepted ``solver`` arguments.
    SOLVERS = ("spectral", "euler")

    def __init__(
        self,
        floorplan: Floorplan,
        resolution: int = 32,
        heatsink_temperature: float = 100.0,
        layout: DieLayout | None = None,
        thickness: float = units.DIE_THICKNESS,
        conductivity: float = units.SILICON_THERMAL_CONDUCTIVITY,
        volumetric_heat_capacity: float = units.SILICON_VOLUMETRIC_HEAT_CAPACITY,
        solver: str = "spectral",
    ) -> None:
        if resolution < 4:
            raise ThermalModelError("grid resolution must be at least 4")
        if solver not in self.SOLVERS:
            raise ThermalModelError(
                f"unknown grid solver {solver!r}; expected one of "
                f"{self.SOLVERS}"
            )
        self.floorplan = floorplan
        self.layout = layout if layout is not None else slicing_layout(floorplan)
        self.resolution = resolution
        self.heatsink_temperature = float(heatsink_temperature)
        self.solver = solver

        die_w = self.layout.die_width
        die_h = self.layout.die_height
        self._cell_w = die_w / resolution
        self._cell_h = die_h / resolution
        cell_area = self._cell_w * self._cell_h

        # Conductances (uniform silicon): lateral uses the mean cell
        # pitch; vertical goes through the die thickness.
        self._g_lat_x = conductivity * self._cell_h * thickness / self._cell_w
        self._g_lat_y = conductivity * self._cell_w * thickness / self._cell_h
        self._g_ver = conductivity * cell_area / thickness
        self._cell_c = volumetric_heat_capacity * cell_area * thickness

        # Map cells to blocks: mask[b, i, j] = cell (i,j) inside block b.
        xs = (np.arange(resolution) + 0.5) * self._cell_w
        ys = (np.arange(resolution) + 0.5) * self._cell_h
        self._block_masks = np.zeros(
            (len(floorplan.blocks), resolution, resolution), dtype=bool
        )
        for b, block in enumerate(floorplan.blocks):
            rect = self.layout.rectangle(block.name)
            in_x = (xs >= rect.x) & (xs < rect.x + rect.width)
            in_y = (ys >= rect.y) & (ys < rect.y + rect.height)
            self._block_masks[b] = np.outer(in_y, in_x)
        self._cells_per_block = self._block_masks.sum(axis=(1, 2))
        if np.any(self._cells_per_block == 0):
            missing = [
                floorplan.blocks[b].name
                for b in range(len(floorplan.blocks))
                if self._cells_per_block[b] == 0
            ]
            raise ThermalModelError(
                f"grid too coarse: no cells landed in {missing}; "
                "raise the resolution"
            )

        # Precomputed flat-index forms of the per-block scatter/gather
        # (shared by both solvers; bitwise-identical to the original
        # boolean-mask loops, which survive as ``*_loop`` for the
        # regression tests).  ``_scatter_cells``/``_scatter_blocks``
        # list every (cell, owning block) pair in block-major order --
        # the exact iteration order of the old loop -- so a single
        # fancy-index assignment (or ``np.add.at`` under overlapping
        # masks) places the exact same floats.  Blocks with equal cell
        # counts are grouped into one ``(k, count)`` gather matrix so
        # ``mean``/``max`` reduce a whole group in one row-wise pass
        # (bitwise-identical to the per-block 1D reductions: numpy's
        # pairwise summation over the innermost contiguous axis is the
        # same computation either way).
        flat_indices = [
            np.flatnonzero(self._block_masks[b].ravel())
            for b in range(len(floorplan.blocks))
        ]
        self._scatter_cells = np.concatenate(flat_indices)
        self._scatter_blocks = np.repeat(
            np.arange(len(floorplan.blocks)), self._cells_per_block
        )
        self._scatter_overlaps = bool(self._block_masks.sum(axis=0).max() > 1)
        groups: dict[int, list[int]] = {}
        for b, count in enumerate(self._cells_per_block):
            groups.setdefault(int(count), []).append(b)
        self._gather_groups = tuple(
            (
                np.array(blocks, dtype=np.intp),
                np.stack([flat_indices[b] for b in blocks]),
            )
            for blocks in groups.values()
        )

        self._temps = np.full(
            (resolution, resolution), self.heatsink_temperature, dtype=float
        )
        # Explicit-Euler stability bound: C / G_total per cell.
        g_total = 2 * self._g_lat_x + 2 * self._g_lat_y + self._g_ver
        self._max_stable_dt = self._cell_c / g_total
        self._spectral: SpectralPropagator | None = None
        if solver == "spectral":
            self._spectral = SpectralPropagator(
                resolution,
                g_lat_x=self._g_lat_x,
                g_lat_y=self._g_lat_y,
                g_ver=self._g_ver,
                cell_c=self._cell_c,
            )

    # -- state -------------------------------------------------------------
    @property
    def temperatures(self) -> np.ndarray:
        """Cell temperature field [degC], shape (N, N) (copy)."""
        return self._temps.copy()

    @property
    def max_temperature(self) -> float:
        """Hottest cell on the die [degC]."""
        return float(self._temps.max())

    def block_temperatures(self, statistic: str = "mean") -> np.ndarray:
        """Per-block cell-temperature summary, in floorplan order.

        ``statistic`` must be ``"mean"`` or ``"max"``; anything else
        raises :class:`ValueError` (it used to fall back to the mean
        silently, hiding typos like ``"median"``).
        """
        if statistic not in ("mean", "max"):
            raise ValueError(
                f"unknown statistic {statistic!r}; expected 'mean' or 'max'"
            )
        flat = self._temps.ravel()
        result = np.empty(len(self.floorplan.blocks))
        for blocks, indices in self._gather_groups:
            cells = flat[indices]
            result[blocks] = (
                cells.max(axis=1) if statistic == "max" else cells.mean(axis=1)
            )
        return result

    def _block_temperatures_loop(self, statistic: str = "mean") -> np.ndarray:
        """The original boolean-mask gather, pinned for regression tests.

        :meth:`block_temperatures` must stay bitwise-identical to this
        loop form (``tests/test_thermal_spectral.py`` asserts it).
        """
        if statistic not in ("mean", "max"):
            raise ValueError(
                f"unknown statistic {statistic!r}; expected 'mean' or 'max'"
            )
        result = np.empty(len(self.floorplan.blocks))
        for b in range(len(self.floorplan.blocks)):
            cells = self._temps[self._block_masks[b]]
            result[b] = cells.max() if statistic == "max" else cells.mean()
        return result

    def block_temperature(self, name: str, statistic: str = "mean") -> float:
        """One block's cell-temperature summary.

        ``statistic`` is validated exactly as in
        :meth:`block_temperatures`.
        """
        index = self.floorplan.index(name)
        return float(self.block_temperatures(statistic)[index])

    def reset(self) -> None:
        """Return the whole die to the heatsink temperature."""
        self._temps.fill(self.heatsink_temperature)

    # -- integration -----------------------------------------------------------
    def _power_field(self, block_powers: np.ndarray) -> np.ndarray:
        block_powers = np.asarray(block_powers, dtype=float)
        if block_powers.shape != (len(self.floorplan.blocks),):
            raise ThermalModelError(
                f"expected {len(self.floorplan.blocks)} block powers"
            )
        per_cell = block_powers / self._cells_per_block
        field = np.zeros(self._temps.size)
        if self._scatter_overlaps:
            # Overlapping masks (custom layouts only) accumulate; the
            # block-major index order reproduces the loop's addition
            # order exactly.
            np.add.at(field, self._scatter_cells, per_cell[self._scatter_blocks])
        else:
            field[self._scatter_cells] = per_cell[self._scatter_blocks]
        return field.reshape(self._temps.shape)

    def _power_field_loop(self, block_powers: np.ndarray) -> np.ndarray:
        """The original per-block scatter, pinned for regression tests.

        :meth:`_power_field` must stay bitwise-identical to this loop
        form (``tests/test_thermal_spectral.py`` asserts it).
        """
        block_powers = np.asarray(block_powers, dtype=float)
        if block_powers.shape != (len(self.floorplan.blocks),):
            raise ThermalModelError(
                f"expected {len(self.floorplan.blocks)} block powers"
            )
        per_cell = block_powers / self._cells_per_block
        field = np.zeros_like(self._temps)
        for b in range(len(block_powers)):
            field[self._block_masks[b]] += per_cell[b]
        return field

    def advance(self, block_powers: np.ndarray, seconds: float) -> np.ndarray:
        """Integrate ``seconds`` of constant per-block power.

        Returns the per-block mean temperatures after the interval.
        With ``solver="spectral"`` the whole interval is one exact
        closed-form step; with ``solver="euler"`` it is forward Euler
        sub-stepped to 40% of the stability bound (the original,
        byte-identical integrator).
        """
        if seconds <= 0:
            raise ThermalModelError("seconds must be positive")
        power = self._power_field(block_powers)
        if self._spectral is not None:
            sink = self.heatsink_temperature
            self._temps = sink + self._spectral.advance(
                self._temps - sink, power, seconds
            )
        else:
            self._advance_euler(power, seconds)
        return self.block_temperatures()

    def _advance_euler(self, power: np.ndarray, seconds: float) -> None:
        sub_dt = 0.4 * self._max_stable_dt
        steps = max(1, int(np.ceil(seconds / sub_dt)))
        dt = seconds / steps
        temps = self._temps
        sink = self.heatsink_temperature
        gx, gy, gv, c = self._g_lat_x, self._g_lat_y, self._g_ver, self._cell_c
        for _ in range(steps):
            flow = power - gv * (temps - sink)
            # Lateral conduction with adiabatic (insulated) die edges.
            dx = np.diff(temps, axis=1)  # T[:, j+1] - T[:, j]
            flow[:, :-1] += gx * dx
            flow[:, 1:] -= gx * dx
            dy = np.diff(temps, axis=0)
            flow[:-1, :] += gy * dy
            flow[1:, :] -= gy * dy
            temps = temps + (dt / c) * flow
        self._temps = temps

    def steady_state(self, block_powers: np.ndarray) -> np.ndarray:
        """Per-block mean temperatures at equilibrium.

        Side effect: the model state is **overwritten** with the steady
        field -- the spectral path assigns the direct solve, and the
        Euler path resets to the heatsink temperature and settles, so
        in both cases ``temperatures`` afterwards is the equilibrium
        field, not whatever transient preceded the call.  Callers that
        need the pre-call state must snapshot ``temperatures`` first.

        With ``solver="spectral"`` this is a direct elementwise solve
        in the eigenbasis (``P_hat / lambda``) -- no iteration.  With
        ``solver="euler"`` it integrates 5-tau settle intervals until
        the field stops changing and raises :class:`ThermalModelError`
        with the residual if ``STEADY_MAX_ITERATIONS`` intervals are
        not enough (it used to return the last iterate silently).
        """
        if self._spectral is not None:
            power = self._power_field(block_powers)
            self._temps = (
                self.heatsink_temperature + self._spectral.steady_state(power)
            )
            return self.block_temperatures()
        self.reset()
        tau = self._cell_c / self._g_ver
        previous = self.block_temperatures()
        for _ in range(STEADY_MAX_ITERATIONS):
            current = self.advance(block_powers, 5 * tau)
            residual = float(np.max(np.abs(current - previous)))
            if residual < STEADY_TOLERANCE:
                return current
            previous = current
        raise ThermalModelError(
            f"grid steady_state did not converge within "
            f"{STEADY_MAX_ITERATIONS} settle iterations: per-block "
            f"residual {residual:g} degC >= {STEADY_TOLERANCE:g} degC; "
            "the field is still drifting -- check the conductances, or "
            "use solver='spectral' for the direct solve"
        )
