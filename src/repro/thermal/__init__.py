"""Lumped thermal-RC modeling (paper Section 4).

Public surface:

* :mod:`repro.thermal.duality` -- the thermal/electrical equivalence of
  Table 1.
* :mod:`repro.thermal.materials` -- derivation of per-block R and C from
  silicon material properties and block geometry (Section 4.3).
* :mod:`repro.thermal.floorplan` -- the per-structure floorplan with
  areas and peak powers (Table 3).
* :mod:`repro.thermal.rc_network` -- a general thermal RC network solver
  (the detailed model of Figure 3B, with tangential resistances).
* :mod:`repro.thermal.lumped` -- the simplified per-block model of
  Figure 3C used by the simulator (one R and C per block to an
  isothermal heatsink).
* :mod:`repro.thermal.package` -- the chip-level package model of
  Figure 2 (die -> heatsink -> ambient).
* :mod:`repro.thermal.sensors` -- temperature sensor models.
* :mod:`repro.thermal.grid` -- the 2D finite-difference grid model
  that validates the lumped simplification against the continuum
  (``solver="spectral"`` exact-exponential or ``solver="euler"``).
* :mod:`repro.thermal.spectral` -- the DCT-II cosine-eigenbasis
  exact-exponential propagator behind the grid model's default solver.
"""

from repro.thermal.duality import DualityRow, EQUIVALENCE_TABLE
from repro.thermal.floorplan import Block, Floorplan
from repro.thermal.geometry import DieLayout, Rectangle, slicing_layout
from repro.thermal.grid import GridThermalModel
from repro.thermal.lumped import LumpedThermalModel
from repro.thermal.materials import (
    block_capacitance,
    block_normal_resistance,
    block_tangential_resistance,
    block_time_constant,
)
from repro.thermal.package import PackageModel
from repro.thermal.rc_network import ThermalRCNetwork
from repro.thermal.sensors import IdealSensor, NoisySensor, QuantizedSensor
from repro.thermal.spectral import (
    SpectralPropagator,
    cosine_basis,
    neumann_eigenvalues,
)

__all__ = [
    "Block",
    "DieLayout",
    "DualityRow",
    "EQUIVALENCE_TABLE",
    "Floorplan",
    "GridThermalModel",
    "IdealSensor",
    "LumpedThermalModel",
    "NoisySensor",
    "PackageModel",
    "QuantizedSensor",
    "Rectangle",
    "SpectralPropagator",
    "ThermalRCNetwork",
    "cosine_basis",
    "neumann_eigenvalues",
    "slicing_layout",
    "block_capacitance",
    "block_normal_resistance",
    "block_tangential_resistance",
    "block_time_constant",
]
